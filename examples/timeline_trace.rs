//! Reproduce the story of Figure 1: watch the request/disk/reply timeline of a
//! 4-biod sequential writer against the standard server and the gathering
//! server, side by side.
//!
//! ```text
//! cargo run --release --example timeline_trace
//! ```

use wg_server::WritePolicy;
use wg_simcore::TraceKind;
use wg_workload::{ExperimentConfig, FileCopySystem, NetworkKind};

fn main() {
    for (label, policy) in [
        ("standard server", WritePolicy::Standard),
        ("gathering server", WritePolicy::Gathering),
    ] {
        let mut system = FileCopySystem::new(
            ExperimentConfig::new(NetworkKind::Fddi, 4, policy)
                .with_file_size(128 * 1024)
                .with_trace(true),
        );
        let result = system.run();
        println!("===== {label} (128 KB, 4 biods, FDDI) =====");
        for event in system.trace().events() {
            let keep = matches!(
                event.kind,
                TraceKind::RequestArrived
                    | TraceKind::Procrastinate
                    | TraceKind::ReplyDeferred
                    | TraceKind::DataToDisk
                    | TraceKind::MetadataToDisk
                    | TraceKind::ReplySent
            );
            if keep {
                println!(
                    "  {:>9.3} ms  {:<18} {}",
                    event.at.as_millis_f64(),
                    format!("{:?}", event.kind),
                    event.detail
                );
            }
        }
        println!(
            "  => {} disk transactions for 16 writes, {:.0} KB/s\n",
            (result.disk_trans_per_sec * result.elapsed_secs).round(),
            result.client_write_kb_per_sec
        );
    }
    println!("Note how the gathering server answers a burst of writes with one");
    println!("clustered data transfer and one metadata update, while the standard");
    println!("server pays a data write plus a metadata write per request.");
}
