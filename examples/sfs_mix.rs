//! Drive the server with a SPEC SFS 1.0 (LADDIS)-style operation mix and
//! report throughput, latency and server utilisation — a single point of the
//! curves in Figures 2 and 3.
//!
//! ```text
//! cargo run --release --example sfs_mix                  # 600 ops/s offered
//! cargo run --release --example sfs_mix -- 1200          # heavier load
//! cargo run --release --example sfs_mix -- 1200 presto   # with NVRAM (Figure 3)
//! ```

use wg_server::WritePolicy;
use wg_workload::sfs::SfsSystem;
use wg_workload::SfsConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let offered: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(600.0);
    let presto = args.iter().any(|a| a == "presto");

    println!(
        "SFS-style mix at {offered:.0} offered ops/s{}",
        if presto { " with Prestoserve" } else { "" }
    );
    println!(
        "{:<22} {:>14} {:>14} {:>10}",
        "policy", "achieved ops/s", "avg latency ms", "cpu %"
    );
    for (name, policy) in [
        ("standard", WritePolicy::Standard),
        ("write gathering", WritePolicy::Gathering),
    ] {
        let config = if presto {
            SfsConfig::figure3(offered, policy)
        } else {
            SfsConfig::figure2(offered, policy)
        };
        let mut system = SfsSystem::new(config);
        let point = system.run();
        println!(
            "{:<22} {:>14.1} {:>14.2} {:>10.1}",
            name, point.achieved_ops_per_sec, point.avg_latency_ms, point.server_cpu_percent
        );
    }
    println!("\n(The `figure2_3` binary in wg-bench sweeps the full load range.)");
}
