//! Quickstart: build a gathering NFS server, feed it a burst of writes from a
//! 4-biod client over FDDI, and print what happened.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use wg_server::WritePolicy;
use wg_workload::{ExperimentConfig, FileCopySystem, NetworkKind};

fn main() {
    // One client with 4 biod write-behind daemons copies a 2 MB file to an
    // NFS server running the paper's write-gathering policy.
    let config = ExperimentConfig::new(NetworkKind::Fddi, 4, WritePolicy::Gathering)
        .with_file_size(2 * 1024 * 1024);
    let mut system = FileCopySystem::new(config);
    let result = system.run();

    println!("write gathering quickstart (2 MB copy, FDDI, 4 biods)");
    println!(
        "  client write speed : {:>8.0} KB/s",
        result.client_write_kb_per_sec
    );
    println!(
        "  server CPU         : {:>8.1} %",
        result.server_cpu_percent
    );
    println!(
        "  disk throughput    : {:>8.0} KB/s",
        result.disk_kb_per_sec
    );
    println!(
        "  disk transactions  : {:>8.1} /s",
        result.disk_trans_per_sec
    );
    println!("  writes per flush   : {:>8.1}", result.mean_batch_size);
    println!("  elapsed (simulated): {:>8.2} s", result.elapsed_secs);

    // The same copy against the baseline server, for contrast.
    let baseline = FileCopySystem::new(
        ExperimentConfig::new(NetworkKind::Fddi, 4, WritePolicy::Standard)
            .with_file_size(2 * 1024 * 1024),
    )
    .run();
    println!(
        "\nversus the standard server: {:.0} KB/s -> {:.0} KB/s ({:.1}x)",
        baseline.client_write_kb_per_sec,
        result.client_write_kb_per_sec,
        result.client_write_kb_per_sec / baseline.client_write_kb_per_sec
    );

    // Every acknowledged byte is on stable storage: that is the NFS contract
    // gathering preserves.
    assert_eq!(system.server().uncommitted_bytes(), 0);
    println!("uncommitted bytes after the run: 0 (stable-storage contract held)");
}
