//! The paper's headline experiment: a 10 MB file copy, swept over biod counts
//! and policies, on the network and storage configuration of your choice.
//!
//! ```text
//! cargo run --release --example file_copy
//! cargo run --release --example file_copy -- fddi presto 3     # Table 6 setup
//! cargo run --release --example file_copy -- ethernet plain 1  # Table 1 setup
//! ```

use wg_server::WritePolicy;
use wg_workload::{ExperimentConfig, FileCopySystem, NetworkKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let network = match args.first().map(String::as_str) {
        Some("ethernet") => NetworkKind::Ethernet,
        _ => NetworkKind::Fddi,
    };
    let presto = matches!(args.get(1).map(String::as_str), Some("presto"));
    let spindles: usize = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1);
    let file_size = 10 * 1024 * 1024;

    println!(
        "10 MB NFS file copy over {network:?}, {} spindle(s){}",
        spindles,
        if presto { ", Prestoserve" } else { "" }
    );
    println!(
        "{:>6} | {:>22} | {:>22}",
        "biods", "standard server", "gathering server"
    );
    println!(
        "{:>6} | {:>10} {:>11} | {:>10} {:>11}",
        "", "KB/s", "disk tr/s", "KB/s", "disk tr/s"
    );
    for biods in [0usize, 3, 7, 11, 15] {
        let mut row = Vec::new();
        for policy in [WritePolicy::Standard, WritePolicy::Gathering] {
            let result = FileCopySystem::new(
                ExperimentConfig::new(network, biods, policy)
                    .with_presto(presto)
                    .with_spindles(spindles)
                    .with_file_size(file_size),
            )
            .run();
            row.push(result);
        }
        println!(
            "{:>6} | {:>10.0} {:>11.1} | {:>10.0} {:>11.1}",
            biods,
            row[0].client_write_kb_per_sec,
            row[0].disk_trans_per_sec,
            row[1].client_write_kb_per_sec,
            row[1].disk_trans_per_sec
        );
    }
    println!("\n(The `tables` binary in wg-bench prints the full paper-format tables.)");
}
