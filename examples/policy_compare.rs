//! Compare all four write policies — the paper's gathering algorithm, the
//! standard baseline, the [SIVA93] first-write-latency variant and "dangerous
//! mode" — on the same workload, including what each leaves un-committed.
//!
//! ```text
//! cargo run --release --example policy_compare
//! cargo run --release --example policy_compare -- 15   # 15 biods
//! ```

use wg_server::WritePolicy;
use wg_workload::{ExperimentConfig, FileCopySystem, NetworkKind};

fn main() {
    let biods: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let file_size = 4 * 1024 * 1024;

    println!("4 MB copy, FDDI, {biods} biods, single RZ26 — all write policies\n");
    println!(
        "{:<22} {:>11} {:>8} {:>13} {:>13} {:>18}",
        "policy", "KB/s", "cpu %", "disk trans/s", "batch size", "uncommitted bytes"
    );
    for (name, policy) in [
        ("standard", WritePolicy::Standard),
        ("gathering (paper)", WritePolicy::Gathering),
        ("first-write latency", WritePolicy::FirstWriteLatency),
        ("dangerous async", WritePolicy::DangerousAsync),
    ] {
        let mut system = FileCopySystem::new(
            ExperimentConfig::new(NetworkKind::Fddi, biods, policy).with_file_size(file_size),
        );
        let result = system.run();
        println!(
            "{:<22} {:>11.0} {:>8.1} {:>13.1} {:>13.1} {:>18}",
            name,
            result.client_write_kb_per_sec,
            result.server_cpu_percent,
            result.disk_trans_per_sec,
            result.mean_batch_size,
            system.server().uncommitted_bytes(),
        );
    }
    println!();
    println!("Dangerous mode looks fastest precisely because it breaks the NFS");
    println!("stable-storage contract: the last column is data a server crash");
    println!("would silently lose.  Write gathering gets most of the speed while");
    println!("keeping that column at zero.");
}
