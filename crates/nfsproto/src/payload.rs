//! Zero-copy write/read payloads.
//!
//! Every simulated 8 KB WRITE used to materialise a fresh `Vec<u8>`, clone it
//! into the socket-buffer entry and the duplicate request cache, and copy it
//! again into the filesystem's block cache — the reproduction of a paper
//! about cheap writes was itself write-path-bound.  [`Payload`] replaces the
//! raw byte vector with a shared, pattern-aware representation:
//!
//! * [`Payload::Fill`] describes the synthetic workload case — `len` copies
//!   of one byte — in 8 bytes, with `Clone` a register copy and no backing
//!   allocation at all;
//! * [`Payload::Shared`] carries real bytes behind an [`Arc`], so cloning a
//!   call or reply (socket buffer, duplicate request cache, retransmission
//!   replay) bumps a reference count instead of copying kilobytes.
//!
//! Equality is *logical* (a `Fill` equals a `Shared` with the same bytes), so
//! protocol round-trip tests are unaffected by which representation a value
//! happens to use.  The [`materialize`](Payload::materialize) probe counts
//! every time a `Fill` is expanded into real bytes; the zero-copy regression
//! test asserts the count stays at zero across an entire simulated file copy.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use wg_xdr::{XdrDecoder, XdrEncoder, XdrError};

/// Number of times a [`Payload::Fill`] has been expanded into a real byte
/// buffer since process start (see [`materialize_count`]).
static MATERIALIZED: AtomicU64 = AtomicU64::new(0);

/// Global count of fill-payload materialisations.
///
/// The zero-copy datapath test snapshots this counter, runs a simulated file
/// copy whose writes are all `Fill` payloads, and asserts the count did not
/// move: no per-write payload bytes were allocated anywhere in the client,
/// network, server, cache or filesystem path.
pub fn materialize_count() -> u64 {
    MATERIALIZED.load(Ordering::Relaxed)
}

/// The data carried by a WRITE request or a READ reply.
#[derive(Clone)]
pub enum Payload {
    /// `len` repetitions of `byte`, never materialised unless explicitly
    /// asked for.  This is what synthetic workloads send.
    Fill {
        /// The repeated byte value.
        byte: u8,
        /// Number of repetitions.
        len: u32,
    },
    /// Real bytes, shared by reference count.
    Shared(Arc<[u8]>),
}

impl Payload {
    /// An empty payload.
    pub fn empty() -> Self {
        Payload::Fill { byte: 0, len: 0 }
    }

    /// A payload of `len` copies of `byte` (no allocation).
    pub fn fill(byte: u8, len: u32) -> Self {
        Payload::Fill { byte, len }
    }

    /// Wrap real bytes.  If the bytes are one repeated value the compact
    /// [`Payload::Fill`] form is chosen, which keeps payloads decoded from
    /// the wire as cheap as the ones the workload generators build directly.
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        match bytes.split_first() {
            None => Payload::empty(),
            Some((first, rest)) if rest.iter().all(|b| b == first) => Payload::Fill {
                byte: *first,
                len: bytes.len() as u32,
            },
            _ => Payload::Shared(bytes.into()),
        }
    }

    /// Number of data bytes.
    pub fn len(&self) -> usize {
        match self {
            Payload::Fill { len, .. } => *len as usize,
            Payload::Shared(bytes) => bytes.len(),
        }
    }

    /// `true` if the payload carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The backing slice, if the payload is already materialised.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Payload::Fill { .. } => None,
            Payload::Shared(bytes) => Some(bytes),
        }
    }

    /// The fill pattern, if the payload is a `Fill`.
    pub fn as_fill(&self) -> Option<(u8, u32)> {
        match self {
            Payload::Fill { byte, len } => Some((*byte, *len)),
            Payload::Shared(_) => None,
        }
    }

    /// Expand to a concrete byte buffer.
    ///
    /// For `Shared` payloads this is a reference-count bump.  For `Fill`
    /// payloads it allocates — and increments the probe counter behind
    /// [`materialize_count`], which is how the zero-copy test catches hot
    /// paths that fell back to real bytes.
    pub fn materialize(&self) -> Arc<[u8]> {
        match self {
            Payload::Fill { byte, len } => {
                MATERIALIZED.fetch_add(1, Ordering::Relaxed);
                vec![*byte; *len as usize].into()
            }
            Payload::Shared(bytes) => Arc::clone(bytes),
        }
    }

    /// Append the payload's bytes to a caller-owned buffer.
    ///
    /// Expanding a `Fill` counts toward [`materialize_count`] exactly like
    /// [`Payload::materialize`]: this is the honest flattening primitive the
    /// read path's cold coalescing uses, so the zero-copy probe still catches
    /// a hot path that degenerates into byte copies.
    pub fn append_to(&self, out: &mut Vec<u8>) {
        match self {
            Payload::Fill { byte, len } => {
                if *len > 0 {
                    MATERIALIZED.fetch_add(1, Ordering::Relaxed);
                }
                out.resize(out.len() + *len as usize, *byte);
            }
            Payload::Shared(bytes) => out.extend_from_slice(bytes),
        }
    }

    /// Size of this payload as an XDR variable-length opaque: the 4-byte
    /// length prefix plus the data padded to a 4-byte boundary.  Pure
    /// arithmetic — no encoding happens.
    pub fn xdr_size(&self) -> usize {
        4 + self.len().div_ceil(4) * 4
    }

    /// Append the payload as XDR variable-length opaque data.
    pub fn encode(&self, enc: &mut XdrEncoder) {
        match self {
            Payload::Fill { byte, len } => enc.put_opaque_fill(*byte, *len as usize),
            Payload::Shared(bytes) => enc.put_opaque(bytes),
        }
    }

    /// Read a payload from XDR variable-length opaque data.
    pub fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Payload::from_vec(dec.get_opaque()?))
    }

    /// Iterate the payload's bytes without materialising it (test helper and
    /// slow-path consumer).
    pub fn iter_bytes(&self) -> impl Iterator<Item = u8> + '_ {
        let (fill, slice): (Option<(u8, u32)>, &[u8]) = match self {
            Payload::Fill { byte, len } => (Some((*byte, *len)), &[]),
            Payload::Shared(bytes) => (None, bytes),
        };
        let fill_iter = fill
            .into_iter()
            .flat_map(|(byte, len)| std::iter::repeat_n(byte, len as usize));
        fill_iter.chain(slice.iter().copied())
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Payload::Fill { byte, len } => write!(f, "Payload::Fill({byte:#04x} x {len})"),
            Payload::Shared(bytes) => write!(f, "Payload::Shared({} bytes)", bytes.len()),
        }
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Payload::Fill { byte: a, len: la }, Payload::Fill { byte: b, len: lb }) => {
                la == lb && (*la == 0 || a == b)
            }
            (Payload::Shared(a), Payload::Shared(b)) => a == b,
            (Payload::Fill { byte, len }, Payload::Shared(s))
            | (Payload::Shared(s), Payload::Fill { byte, len }) => {
                s.len() == *len as usize && s.iter().all(|x| x == byte)
            }
        }
    }
}

impl Eq for Payload {}

impl From<Vec<u8>> for Payload {
    fn from(bytes: Vec<u8>) -> Self {
        Payload::from_vec(bytes)
    }
}

impl From<&[u8]> for Payload {
    fn from(bytes: &[u8]) -> Self {
        Payload::from_vec(bytes.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_xdr::XdrDecoder;

    #[test]
    fn fill_and_shared_compare_logically() {
        let fill = Payload::fill(7, 4);
        let shared = Payload::Shared(vec![7u8; 4].into());
        assert_eq!(fill, shared);
        assert_eq!(shared, fill);
        assert_ne!(fill, Payload::fill(8, 4));
        assert_ne!(fill, Payload::fill(7, 5));
        assert_ne!(shared, Payload::Shared(vec![7u8, 7, 7, 8].into()));
        // Empty payloads are equal regardless of the fill byte.
        assert_eq!(Payload::fill(1, 0), Payload::fill(2, 0));
        assert_eq!(Payload::empty(), Payload::Shared(Vec::new().into()));
    }

    #[test]
    fn from_vec_detects_uniform_bytes() {
        assert_eq!(Payload::from_vec(vec![5; 100]).as_fill(), Some((5, 100)));
        assert!(Payload::from_vec(vec![1, 2]).as_fill().is_none());
        assert_eq!(Payload::from_vec(Vec::new()).len(), 0);
    }

    #[test]
    fn len_and_xdr_size() {
        assert_eq!(Payload::fill(0, 8192).len(), 8192);
        assert_eq!(Payload::fill(0, 8192).xdr_size(), 4 + 8192);
        assert_eq!(Payload::fill(0, 5).xdr_size(), 4 + 8); // padded
        assert_eq!(Payload::empty().xdr_size(), 4);
        assert!(Payload::empty().is_empty());
        assert!(!Payload::fill(1, 1).is_empty());
        let shared = Payload::Shared(vec![1, 2, 3].into());
        assert_eq!(shared.len(), 3);
        assert_eq!(shared.xdr_size(), 4 + 4);
    }

    #[test]
    fn xdr_roundtrip_both_representations() {
        for payload in [
            Payload::fill(0xAB, 8192),
            Payload::fill(0, 0),
            Payload::fill(9, 5),
            Payload::Shared(vec![1, 2, 3, 4, 5, 6, 7].into()),
        ] {
            let mut enc = XdrEncoder::new();
            payload.encode(&mut enc);
            let bytes = enc.into_bytes();
            assert_eq!(bytes.len(), payload.xdr_size(), "{payload:?}");
            let mut dec = XdrDecoder::new(&bytes);
            let back = Payload::decode(&mut dec).unwrap();
            assert_eq!(back, payload, "{payload:?}");
            assert_eq!(dec.remaining(), 0);
        }
    }

    #[test]
    fn materialize_counts_fill_expansions_only() {
        let before = materialize_count();
        let shared = Payload::Shared(vec![3u8; 16].into());
        let bytes = shared.materialize();
        assert_eq!(&bytes[..], &[3u8; 16]);
        assert_eq!(
            materialize_count(),
            before,
            "Shared materialise must not count"
        );
        let fill = Payload::fill(4, 8);
        let bytes = fill.materialize();
        assert_eq!(&bytes[..], &[4u8; 8]);
        assert!(materialize_count() > before, "Fill materialise must count");
    }

    #[test]
    fn append_to_counts_like_materialize() {
        let mut out = Vec::new();
        let before = materialize_count();
        Payload::Shared(vec![1u8, 2, 3].into()).append_to(&mut out);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(materialize_count(), before, "Shared append must not count");
        Payload::fill(9, 0).append_to(&mut out);
        assert_eq!(
            materialize_count(),
            before,
            "empty Fill append must not count"
        );
        Payload::fill(7, 4).append_to(&mut out);
        assert_eq!(out, vec![1, 2, 3, 7, 7, 7, 7]);
        assert!(materialize_count() > before, "Fill append must count");
    }

    #[test]
    fn iter_bytes_matches_materialize() {
        for payload in [Payload::fill(6, 10), Payload::Shared(vec![1, 2, 3].into())] {
            let collected: Vec<u8> = payload.iter_bytes().collect();
            assert_eq!(&collected[..], &payload.materialize()[..]);
        }
    }

    #[test]
    fn clone_is_shallow_for_shared() {
        let payload = Payload::Shared(vec![1u8; 1024].into());
        let clone = payload.clone();
        let (Payload::Shared(a), Payload::Shared(b)) = (&payload, &clone) else {
            panic!("expected shared payloads");
        };
        assert!(Arc::ptr_eq(a, b), "clone must share the allocation");
    }
}
