//! NFS v2 procedure numbers and their argument/result structures.
//!
//! The write-gathering experiments exercise WRITE heavily, but the SPEC SFS
//! (LADDIS) workload of Figures 2–3 mixes in LOOKUP, GETATTR, READ, READDIR
//! and the other procedures, so the full v2 procedure table is represented
//! here and the structures used by the workload all have real XDR encodings.

use crate::attr::Sattr;
use crate::handle::FileHandle;
use crate::payload::Payload;
use crate::{Fattr, NfsStatus};
use wg_xdr::{XdrDecode, XdrDecoder, XdrEncode, XdrEncoder, XdrError};

/// The NFS version 2 procedure numbers (RFC 1094 §2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ProcNumber {
    /// Do nothing (used for pinging).
    Null,
    /// Get file attributes.
    Getattr,
    /// Set file attributes.
    Setattr,
    /// Obsolete root procedure.
    Root,
    /// Look up a file name in a directory.
    Lookup,
    /// Read a symbolic link.
    Readlink,
    /// Read from a file.
    Read,
    /// Obsolete write-to-cache procedure.
    Writecache,
    /// Write to a file — the operation this whole repository is about.
    Write,
    /// Create a file.
    Create,
    /// Remove a file.
    Remove,
    /// Rename a file.
    Rename,
    /// Create a hard link.
    Link,
    /// Create a symbolic link.
    Symlink,
    /// Create a directory.
    Mkdir,
    /// Remove a directory.
    Rmdir,
    /// Read entries from a directory.
    Readdir,
    /// Get filesystem statistics.
    Statfs,
    /// Commit cached unstable writes to stable storage (the NFSv3 procedure
    /// this reproduction grafts onto the v2 table as number 18, one past the
    /// v2 range, so the paper's procedures keep their original numbers).
    Commit,
    /// Register a client and renew its lease (the NFSv4 RENEW/SETCLIENTID
    /// pair collapsed into one procedure, grafted past the v2 range like
    /// COMMIT; carries the client's boot verifier so a changed verifier
    /// doubles as re-registration after a client reboot).
    Renew,
    /// Acquire or reclaim a byte-range lock under the client's lease.
    Lock,
    /// Release a byte-range lock.
    Unlock,
}

impl ProcNumber {
    /// The wire procedure number.
    pub fn number(self) -> u32 {
        match self {
            ProcNumber::Null => 0,
            ProcNumber::Getattr => 1,
            ProcNumber::Setattr => 2,
            ProcNumber::Root => 3,
            ProcNumber::Lookup => 4,
            ProcNumber::Readlink => 5,
            ProcNumber::Read => 6,
            ProcNumber::Writecache => 7,
            ProcNumber::Write => 8,
            ProcNumber::Create => 9,
            ProcNumber::Remove => 10,
            ProcNumber::Rename => 11,
            ProcNumber::Link => 12,
            ProcNumber::Symlink => 13,
            ProcNumber::Mkdir => 14,
            ProcNumber::Rmdir => 15,
            ProcNumber::Readdir => 16,
            ProcNumber::Statfs => 17,
            ProcNumber::Commit => 18,
            ProcNumber::Renew => 19,
            ProcNumber::Lock => 20,
            ProcNumber::Unlock => 21,
        }
    }

    /// Parse a wire procedure number.
    pub fn from_number(n: u32) -> Result<Self, XdrError> {
        Ok(match n {
            0 => ProcNumber::Null,
            1 => ProcNumber::Getattr,
            2 => ProcNumber::Setattr,
            3 => ProcNumber::Root,
            4 => ProcNumber::Lookup,
            5 => ProcNumber::Readlink,
            6 => ProcNumber::Read,
            7 => ProcNumber::Writecache,
            8 => ProcNumber::Write,
            9 => ProcNumber::Create,
            10 => ProcNumber::Remove,
            11 => ProcNumber::Rename,
            12 => ProcNumber::Link,
            13 => ProcNumber::Symlink,
            14 => ProcNumber::Mkdir,
            15 => ProcNumber::Rmdir,
            16 => ProcNumber::Readdir,
            17 => ProcNumber::Statfs,
            18 => ProcNumber::Commit,
            19 => ProcNumber::Renew,
            20 => ProcNumber::Lock,
            21 => ProcNumber::Unlock,
            other => {
                return Err(XdrError::InvalidEnum {
                    type_name: "ProcNumber",
                    value: other,
                })
            }
        })
    }
}

/// Arguments of GETATTR: just the file handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct GetattrArgs {
    /// Target file.
    pub file: FileHandle,
}

impl XdrEncode for GetattrArgs {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.file.encode(enc);
    }
}

impl XdrDecode for GetattrArgs {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(GetattrArgs {
            file: FileHandle::decode(dec)?,
        })
    }
}

/// Arguments of SETATTR.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SetattrArgs {
    /// Target file.
    pub file: FileHandle,
    /// Attributes to change.
    pub attributes: Sattr,
}

impl XdrEncode for SetattrArgs {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.file.encode(enc);
        self.attributes.encode(enc);
    }
}

impl XdrDecode for SetattrArgs {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(SetattrArgs {
            file: FileHandle::decode(dec)?,
            attributes: Sattr::decode(dec)?,
        })
    }
}

/// Arguments naming an entry within a directory (LOOKUP, and the directory
/// halves of CREATE/REMOVE/MKDIR/RMDIR).
///
/// The name is a refcounted `Arc<str>` rather than an owned `String`: load
/// generators issue millions of LOOKUPs against a fixed namespace, and an
/// interned name lets them build each call body with a pointer bump instead
/// of a heap allocation per operation.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DirOpArgs {
    /// The directory file handle.
    pub dir: FileHandle,
    /// The entry name (shared, clone-without-allocating).
    pub name: std::sync::Arc<str>,
}

impl XdrEncode for DirOpArgs {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.dir.encode(enc);
        enc.put_string(&self.name);
    }
}

impl XdrDecode for DirOpArgs {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(DirOpArgs {
            dir: FileHandle::decode(dec)?,
            name: dec.get_string()?.into(),
        })
    }
}

/// Arguments of LOOKUP (alias of [`DirOpArgs`], kept as its own name for
/// call-site clarity).
pub type LookupArgs = DirOpArgs;

/// Arguments of REMOVE / RMDIR (alias of [`DirOpArgs`]).
pub type RemoveArgs = DirOpArgs;

/// The successful result of LOOKUP and CREATE: the new handle plus its
/// attributes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DirOpOk {
    /// Handle of the found or created file.
    pub file: FileHandle,
    /// Its attributes.
    pub attributes: Fattr,
}

impl XdrEncode for DirOpOk {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.file.encode(enc);
        self.attributes.encode(enc);
    }
}

impl XdrDecode for DirOpOk {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(DirOpOk {
            file: FileHandle::decode(dec)?,
            attributes: Fattr::decode(dec)?,
        })
    }
}

/// Arguments of READ.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ReadArgs {
    /// Target file.
    pub file: FileHandle,
    /// Byte offset to read from.
    pub offset: u32,
    /// Number of bytes to read (at most [`crate::NFS_MAXDATA`]).
    pub count: u32,
    /// Hint field present in the v2 protocol but unused by servers.
    pub totalcount: u32,
}

impl XdrEncode for ReadArgs {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.file.encode(enc);
        enc.put_u32(self.offset);
        enc.put_u32(self.count);
        enc.put_u32(self.totalcount);
    }
}

impl XdrDecode for ReadArgs {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(ReadArgs {
            file: FileHandle::decode(dec)?,
            offset: dec.get_u32()?,
            count: dec.get_u32()?,
            totalcount: dec.get_u32()?,
        })
    }
}

/// The successful result of READ: post-read attributes and the data.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ReadOk {
    /// File attributes after the read.
    pub attributes: Fattr,
    /// The bytes read (shared, so caching and replaying the reply is cheap).
    pub data: Payload,
}

impl XdrEncode for ReadOk {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.attributes.encode(enc);
        self.data.encode(enc);
    }
}

impl XdrDecode for ReadOk {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(ReadOk {
            attributes: Fattr::decode(dec)?,
            data: Payload::decode(dec)?,
        })
    }
}

/// How stable a WRITE must be before the server may reply — the NFSv3
/// `stable_how` argument, carried in the v2 message's obsolete `beginoffset`
/// field so the default (`FileSync`, encoded as 0) keeps every v2 write
/// byte-identical on the wire.
///
/// The wire values therefore differ from RFC 1813 (which puts UNSTABLE at 0):
/// here 0 must mean "fully synchronous" because that is what a zeroed
/// obsolete field has always meant to this server.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum StableHow {
    /// Data and metadata must be on stable storage before the reply (the v2
    /// semantics; the default).
    #[default]
    FileSync,
    /// The server may reply once the data is cached in volatile memory; the
    /// client must hold its copy until a matching COMMIT succeeds.
    Unstable,
    /// Data must be stable but metadata may be deferred.
    DataSync,
}

impl StableHow {
    /// The wire encoding (the value carried in `beginoffset`).
    pub fn to_wire(self) -> u32 {
        match self {
            StableHow::FileSync => 0,
            StableHow::Unstable => 1,
            StableHow::DataSync => 2,
        }
    }

    /// Decode a wire value; anything unknown is treated as the conservative
    /// `FileSync` (an old client writing garbage into an obsolete field gets
    /// the strongest guarantee, never a weaker one).
    pub fn from_wire(v: u32) -> Self {
        match v {
            1 => StableHow::Unstable,
            2 => StableHow::DataSync,
            _ => StableHow::FileSync,
        }
    }
}

/// A server boot instance verifier: changes on every reboot so clients can
/// detect that cached unstable writes died with a crash and must be re-sent.
pub type WriteVerf = u64;

/// Arguments of WRITE — the request at the heart of the paper.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WriteArgs {
    /// Target file.
    pub file: FileHandle,
    /// Obsolete field kept for wire compatibility ("beginoffset").
    pub beginoffset: u32,
    /// Byte offset at which to write.
    pub offset: u32,
    /// Obsolete field kept for wire compatibility ("totalcount").
    pub totalcount: u32,
    /// The data to write (at most [`crate::NFS_MAXDATA`] bytes), carried
    /// without per-copy allocation (see [`Payload`]).
    pub data: Payload,
}

impl WriteArgs {
    /// Convenience constructor for the common case.
    pub fn new(file: FileHandle, offset: u32, data: impl Into<Payload>) -> Self {
        let data = data.into();
        WriteArgs {
            file,
            beginoffset: 0,
            offset,
            totalcount: data.len() as u32,
            data,
        }
    }

    /// A write of `len` repetitions of `byte` — the synthetic-workload case,
    /// allocation-free end to end.
    pub fn fill(file: FileHandle, offset: u32, byte: u8, len: u32) -> Self {
        WriteArgs::new(file, offset, Payload::fill(byte, len))
    }

    /// Request a different stability level (see [`StableHow`]); the default
    /// constructors produce `FileSync`, whose encoding is the all-zero
    /// obsolete field of a v2 write.
    pub fn with_stability(mut self, stable: StableHow) -> Self {
        self.beginoffset = stable.to_wire();
        self
    }

    /// The stability this write requests.
    pub fn stable_how(&self) -> StableHow {
        StableHow::from_wire(self.beginoffset)
    }

    /// Number of data bytes carried.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if this write carries no data.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl XdrEncode for WriteArgs {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.file.encode(enc);
        enc.put_u32(self.beginoffset);
        enc.put_u32(self.offset);
        enc.put_u32(self.totalcount);
        self.data.encode(enc);
    }
}

impl XdrDecode for WriteArgs {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(WriteArgs {
            file: FileHandle::decode(dec)?,
            beginoffset: dec.get_u32()?,
            offset: dec.get_u32()?,
            totalcount: dec.get_u32()?,
            data: Payload::decode(dec)?,
        })
    }
}

/// Arguments of COMMIT: flush the given byte range (count = 0 means "to the
/// end of the file") of previously-unstable writes to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CommitArgs {
    /// Target file.
    pub file: FileHandle,
    /// Start of the range to commit.
    pub offset: u32,
    /// Length of the range (0 = everything from `offset` on).
    pub count: u32,
}

impl XdrEncode for CommitArgs {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.file.encode(enc);
        enc.put_u32(self.offset);
        enc.put_u32(self.count);
    }
}

impl XdrDecode for CommitArgs {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(CommitArgs {
            file: FileHandle::decode(dec)?,
            offset: dec.get_u32()?,
            count: dec.get_u32()?,
        })
    }
}

/// The successful result of a WRITE answered by a server running the
/// unstable-write protocol: post-write attributes, how far the data actually
/// got, and the boot verifier the client checks at COMMIT time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WriteVerfOk {
    /// File attributes after the write.
    pub attributes: Fattr,
    /// The stability the server actually provided (it may promote an
    /// UNSTABLE request to `FileSync`, e.g. while NVRAM runs degraded).
    pub committed: StableHow,
    /// The server's boot instance verifier.
    pub verf: WriteVerf,
}

impl XdrEncode for WriteVerfOk {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.attributes.encode(enc);
        enc.put_u32(self.committed.to_wire());
        enc.put_u64(self.verf);
    }
}

impl XdrDecode for WriteVerfOk {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(WriteVerfOk {
            attributes: Fattr::decode(dec)?,
            committed: StableHow::from_wire(dec.get_u32()?),
            verf: dec.get_u64()?,
        })
    }
}

/// The successful result of COMMIT: post-flush attributes plus the boot
/// verifier (a mismatch against the one seen at write time tells the client
/// the server rebooted and its cached writes must be re-sent).
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CommitOk {
    /// File attributes after the flush.
    pub attributes: Fattr,
    /// The server's boot instance verifier.
    pub verf: WriteVerf,
}

impl XdrEncode for CommitOk {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.attributes.encode(enc);
        enc.put_u64(self.verf);
    }
}

impl XdrDecode for CommitOk {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(CommitOk {
            attributes: Fattr::decode(dec)?,
            verf: dec.get_u64()?,
        })
    }
}

/// Arguments of RENEW: register (or re-register) the client and renew its
/// lease.  A verifier that differs from the one on record means the client
/// rebooted: the server discards the old incarnation's state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RenewArgs {
    /// The client's stable identity.
    pub client_id: u32,
    /// The client's boot instance verifier.
    pub verifier: u64,
}

impl XdrEncode for RenewArgs {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(self.client_id);
        enc.put_u64(self.verifier);
    }
}

impl XdrDecode for RenewArgs {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(RenewArgs {
            client_id: dec.get_u32()?,
            verifier: dec.get_u64()?,
        })
    }
}

/// The successful result of RENEW: the server's boot verifier (a change
/// tells the client the server rebooted and held locks must be reclaimed)
/// and whether the server is currently in its grace period.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RenewOk {
    /// The server's boot instance verifier.
    pub verf: WriteVerf,
    /// `true` while the post-crash grace period is open.
    pub in_grace: bool,
}

impl XdrEncode for RenewOk {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u64(self.verf);
        enc.put_u32(self.in_grace as u32);
    }
}

impl XdrDecode for RenewOk {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(RenewOk {
            verf: dec.get_u64()?,
            in_grace: dec.get_u32()? != 0,
        })
    }
}

/// Arguments of LOCK: acquire (or, during grace, reclaim) a byte-range lock
/// keyed by `(client_id, stateid, seqid)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LockArgs {
    /// Target file.
    pub file: FileHandle,
    /// The owning client.
    pub client_id: u32,
    /// The lock-owner state identifier chosen by the client.
    pub stateid: u32,
    /// Per-owner sequence number; the server rejects replays and reordering
    /// by requiring strict monotonicity.
    pub seqid: u32,
    /// Start of the locked range.
    pub offset: u32,
    /// Length of the locked range (0 = to end of file).
    pub count: u32,
    /// `true` when re-asserting a lock held before a server crash; only
    /// admitted during the grace period.
    pub reclaim: bool,
}

impl XdrEncode for LockArgs {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.file.encode(enc);
        enc.put_u32(self.client_id);
        enc.put_u32(self.stateid);
        enc.put_u32(self.seqid);
        enc.put_u32(self.offset);
        enc.put_u32(self.count);
        enc.put_u32(self.reclaim as u32);
    }
}

impl XdrDecode for LockArgs {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(LockArgs {
            file: FileHandle::decode(dec)?,
            client_id: dec.get_u32()?,
            stateid: dec.get_u32()?,
            seqid: dec.get_u32()?,
            offset: dec.get_u32()?,
            count: dec.get_u32()?,
            reclaim: dec.get_u32()? != 0,
        })
    }
}

/// The successful result of LOCK: the granted state identity echoed back.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LockOk {
    /// The lock-owner state identifier.
    pub stateid: u32,
    /// The sequence number the grant consumed.
    pub seqid: u32,
}

impl XdrEncode for LockOk {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(self.stateid);
        enc.put_u32(self.seqid);
    }
}

impl XdrDecode for LockOk {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(LockOk {
            stateid: dec.get_u32()?,
            seqid: dec.get_u32()?,
        })
    }
}

/// Arguments of UNLOCK: release a byte-range lock.  The reply is a bare
/// status.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct UnlockArgs {
    /// Target file.
    pub file: FileHandle,
    /// The owning client.
    pub client_id: u32,
    /// The lock-owner state identifier.
    pub stateid: u32,
    /// Per-owner sequence number (same monotonicity rule as LOCK).
    pub seqid: u32,
    /// Start of the range to release.
    pub offset: u32,
    /// Length of the range to release.
    pub count: u32,
}

impl XdrEncode for UnlockArgs {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.file.encode(enc);
        enc.put_u32(self.client_id);
        enc.put_u32(self.stateid);
        enc.put_u32(self.seqid);
        enc.put_u32(self.offset);
        enc.put_u32(self.count);
    }
}

impl XdrDecode for UnlockArgs {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(UnlockArgs {
            file: FileHandle::decode(dec)?,
            client_id: dec.get_u32()?,
            stateid: dec.get_u32()?,
            seqid: dec.get_u32()?,
            offset: dec.get_u32()?,
            count: dec.get_u32()?,
        })
    }
}

/// Arguments of CREATE / MKDIR.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CreateArgs {
    /// Directory and name to create in.
    pub where_: DirOpArgs,
    /// Initial attributes.
    pub attributes: Sattr,
}

impl XdrEncode for CreateArgs {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.where_.encode(enc);
        self.attributes.encode(enc);
    }
}

impl XdrDecode for CreateArgs {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(CreateArgs {
            where_: DirOpArgs::decode(dec)?,
            attributes: Sattr::decode(dec)?,
        })
    }
}

/// Arguments of READDIR.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ReaddirArgs {
    /// Directory to list.
    pub dir: FileHandle,
    /// Opaque resume cookie (0 to start).
    pub cookie: u32,
    /// Maximum reply size the client will accept.
    pub count: u32,
}

impl XdrEncode for ReaddirArgs {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.dir.encode(enc);
        enc.put_u32(self.cookie);
        enc.put_u32(self.count);
    }
}

impl XdrDecode for ReaddirArgs {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(ReaddirArgs {
            dir: FileHandle::decode(dec)?,
            cookie: dec.get_u32()?,
            count: dec.get_u32()?,
        })
    }
}

/// The successful result of STATFS.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StatfsOk {
    /// Optimal transfer size.
    pub tsize: u32,
    /// Filesystem block size.
    pub bsize: u32,
    /// Total blocks.
    pub blocks: u32,
    /// Free blocks.
    pub bfree: u32,
    /// Blocks available to non-superusers.
    pub bavail: u32,
}

impl XdrEncode for StatfsOk {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(self.tsize);
        enc.put_u32(self.bsize);
        enc.put_u32(self.blocks);
        enc.put_u32(self.bfree);
        enc.put_u32(self.bavail);
    }
}

impl XdrDecode for StatfsOk {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(StatfsOk {
            tsize: dec.get_u32()?,
            bsize: dec.get_u32()?,
            blocks: dec.get_u32()?,
            bfree: dec.get_u32()?,
            bavail: dec.get_u32()?,
        })
    }
}

/// A generic "status or value" reply body used by GETATTR/SETATTR/WRITE
/// (attrstat), LOOKUP/CREATE (diropres), READ (readres) and STATFS.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum StatusReply<T> {
    /// The operation succeeded and produced `T`.
    Ok(T),
    /// The operation failed with the given status.
    Err(NfsStatus),
}

impl<T> StatusReply<T> {
    /// `true` if the reply is a success.
    pub fn is_ok(&self) -> bool {
        matches!(self, StatusReply::Ok(_))
    }

    /// The status code carried by the reply.
    pub fn status(&self) -> NfsStatus {
        match self {
            StatusReply::Ok(_) => NfsStatus::Ok,
            StatusReply::Err(s) => *s,
        }
    }
}

impl<T: XdrEncode> XdrEncode for StatusReply<T> {
    fn encode(&self, enc: &mut XdrEncoder) {
        match self {
            StatusReply::Ok(v) => {
                NfsStatus::Ok.encode(enc);
                v.encode(enc);
            }
            StatusReply::Err(s) => s.encode(enc),
        }
    }
}

impl<T: XdrDecode> XdrDecode for StatusReply<T> {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let status = NfsStatus::decode(dec)?;
        if status.is_ok() {
            Ok(StatusReply::Ok(T::decode(dec)?))
        } else {
            Ok(StatusReply::Err(status))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_xdr::{from_bytes, to_bytes};

    fn fh() -> FileHandle {
        FileHandle::new(1, 42, 7)
    }

    #[test]
    fn proc_numbers_roundtrip() {
        for n in 0..=21u32 {
            let p = ProcNumber::from_number(n).unwrap();
            assert_eq!(p.number(), n);
        }
        assert!(ProcNumber::from_number(22).is_err());
        assert_eq!(ProcNumber::Write.number(), 8);
        assert_eq!(ProcNumber::Commit.number(), 18);
        assert_eq!(ProcNumber::Renew.number(), 19);
        assert_eq!(ProcNumber::Lock.number(), 20);
        assert_eq!(ProcNumber::Unlock.number(), 21);
    }

    #[test]
    fn state_args_and_results_roundtrip() {
        let renew = RenewArgs {
            client_id: 42,
            verifier: 0x1994_0606_0000_0001,
        };
        assert_eq!(from_bytes::<RenewArgs>(&to_bytes(&renew)).unwrap(), renew);

        let rok = RenewOk {
            verf: 0xDEAD_BEEF,
            in_grace: true,
        };
        assert_eq!(from_bytes::<RenewOk>(&to_bytes(&rok)).unwrap(), rok);

        let lock = LockArgs {
            file: fh(),
            client_id: 42,
            stateid: 7,
            seqid: 3,
            offset: 8192,
            count: 4096,
            reclaim: true,
        };
        assert_eq!(from_bytes::<LockArgs>(&to_bytes(&lock)).unwrap(), lock);

        let lok = LockOk {
            stateid: 7,
            seqid: 3,
        };
        assert_eq!(from_bytes::<LockOk>(&to_bytes(&lok)).unwrap(), lok);

        let unlock = UnlockArgs {
            file: fh(),
            client_id: 42,
            stateid: 7,
            seqid: 4,
            offset: 8192,
            count: 4096,
        };
        assert_eq!(
            from_bytes::<UnlockArgs>(&to_bytes(&unlock)).unwrap(),
            unlock
        );
    }

    #[test]
    fn stable_how_rides_the_obsolete_beginoffset_unchanged_by_default() {
        // The default constructors keep the field at zero, so a FileSync
        // write is bit-for-bit the v2 message the golden tables were
        // recorded against.
        let args = WriteArgs::fill(fh(), 0, 7, 8192);
        assert_eq!(args.stable_how(), StableHow::FileSync);
        assert_eq!(args.beginoffset, 0);
        let unstable = WriteArgs::fill(fh(), 0, 7, 8192).with_stability(StableHow::Unstable);
        assert_eq!(unstable.stable_how(), StableHow::Unstable);
        let back: WriteArgs = from_bytes(&to_bytes(&unstable)).unwrap();
        assert_eq!(back.stable_how(), StableHow::Unstable);
        // Unknown junk in the obsolete field degrades to the strongest
        // guarantee, never a weaker one.
        assert_eq!(StableHow::from_wire(99), StableHow::FileSync);
        for s in [
            StableHow::FileSync,
            StableHow::Unstable,
            StableHow::DataSync,
        ] {
            assert_eq!(StableHow::from_wire(s.to_wire()), s);
        }
    }

    #[test]
    fn commit_args_and_results_roundtrip() {
        let args = CommitArgs {
            file: fh(),
            offset: 8192,
            count: 0,
        };
        let back: CommitArgs = from_bytes(&to_bytes(&args)).unwrap();
        assert_eq!(back, args);

        let wok = WriteVerfOk {
            attributes: Fattr::default(),
            committed: StableHow::Unstable,
            verf: 0xDEAD_BEEF_0000_0001,
        };
        let back: WriteVerfOk = from_bytes(&to_bytes(&wok)).unwrap();
        assert_eq!(back, wok);

        let cok = CommitOk {
            attributes: Fattr::default(),
            verf: 2,
        };
        let back: CommitOk = from_bytes(&to_bytes(&cok)).unwrap();
        assert_eq!(back, cok);
    }

    #[test]
    fn write_args_roundtrip() {
        let args = WriteArgs::new(fh(), 24576, vec![0xAB; 8192]);
        assert_eq!(args.len(), 8192);
        assert!(!args.is_empty());
        let bytes = to_bytes(&args);
        // handle (32) + 3 u32 (12) + length prefix (4) + data (8192).
        assert_eq!(bytes.len(), 32 + 12 + 4 + 8192);
        let back: WriteArgs = from_bytes(&bytes).unwrap();
        assert_eq!(back, args);
    }

    #[test]
    fn read_args_and_result_roundtrip() {
        let args = ReadArgs {
            file: fh(),
            offset: 8192,
            count: 8192,
            totalcount: 0,
        };
        let back: ReadArgs = from_bytes(&to_bytes(&args)).unwrap();
        assert_eq!(back, args);

        let ok = ReadOk {
            attributes: Fattr::default(),
            data: vec![1, 2, 3, 4, 5].into(),
        };
        let back: ReadOk = from_bytes(&to_bytes(&ok)).unwrap();
        assert_eq!(back, ok);
    }

    #[test]
    fn dirop_and_create_roundtrip() {
        let lookup = DirOpArgs {
            dir: fh(),
            name: "data.out".into(),
        };
        let back: DirOpArgs = from_bytes(&to_bytes(&lookup)).unwrap();
        assert_eq!(back, lookup);

        let create = CreateArgs {
            where_: lookup.clone(),
            attributes: Sattr::with_mode(0o644),
        };
        let back: CreateArgs = from_bytes(&to_bytes(&create)).unwrap();
        assert_eq!(back, create);

        let ok = DirOpOk {
            file: fh(),
            attributes: Fattr::default(),
        };
        let back: DirOpOk = from_bytes(&to_bytes(&ok)).unwrap();
        assert_eq!(back, ok);
    }

    #[test]
    fn getattr_setattr_readdir_statfs_roundtrip() {
        let g = GetattrArgs { file: fh() };
        assert_eq!(from_bytes::<GetattrArgs>(&to_bytes(&g)).unwrap(), g);

        let s = SetattrArgs {
            file: fh(),
            attributes: Sattr::with_mode(0o600),
        };
        assert_eq!(from_bytes::<SetattrArgs>(&to_bytes(&s)).unwrap(), s);

        let rd = ReaddirArgs {
            dir: fh(),
            cookie: 0,
            count: 4096,
        };
        assert_eq!(from_bytes::<ReaddirArgs>(&to_bytes(&rd)).unwrap(), rd);

        let sf = StatfsOk {
            tsize: 8192,
            bsize: 8192,
            blocks: 100_000,
            bfree: 60_000,
            bavail: 55_000,
        };
        assert_eq!(from_bytes::<StatfsOk>(&to_bytes(&sf)).unwrap(), sf);
    }

    #[test]
    fn status_reply_both_arms_roundtrip() {
        let ok: StatusReply<Fattr> = StatusReply::Ok(Fattr::default());
        assert!(ok.is_ok());
        assert_eq!(ok.status(), NfsStatus::Ok);
        let back: StatusReply<Fattr> = from_bytes(&to_bytes(&ok)).unwrap();
        assert_eq!(back, ok);

        let err: StatusReply<Fattr> = StatusReply::Err(NfsStatus::NoSpc);
        assert!(!err.is_ok());
        assert_eq!(err.status(), NfsStatus::NoSpc);
        let back: StatusReply<Fattr> = from_bytes(&to_bytes(&err)).unwrap();
        assert_eq!(back, err);
    }
}
