//! ONC RPC (RFC 1057) call and reply framing.
//!
//! NFS v2 requests travel as RPC *call* messages and come back as RPC *reply*
//! messages.  The transaction id ([`Xid`]) chosen by the client is what the
//! server's duplicate request cache keys on when a retransmission arrives
//! ([JUSZ89]); the reproduction therefore carries real xids end to end.

use wg_xdr::{XdrDecode, XdrDecoder, XdrEncode, XdrEncoder, XdrError};

/// An RPC transaction identifier chosen by the client.
///
/// A retransmission of a request reuses the xid of the original, which is how
/// the server recognises duplicates.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct Xid(pub u32);

impl XdrEncode for Xid {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(self.0);
    }
}

impl XdrDecode for Xid {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Xid(dec.get_u32()?))
    }
}

/// RPC authentication flavors.  The reproduction only uses `AUTH_UNIX`
/// (flavor 1) and `AUTH_NULL` (flavor 0), like the reference port.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum AuthFlavor {
    /// No authentication.
    Null,
    /// Traditional uid/gid credential.
    Unix,
}

impl AuthFlavor {
    fn code(self) -> u32 {
        match self {
            AuthFlavor::Null => 0,
            AuthFlavor::Unix => 1,
        }
    }

    fn from_code(code: u32) -> Result<Self, XdrError> {
        match code {
            0 => Ok(AuthFlavor::Null),
            1 => Ok(AuthFlavor::Unix),
            other => Err(XdrError::InvalidEnum {
                type_name: "AuthFlavor",
                value: other,
            }),
        }
    }
}

/// The fixed part of an RPC call message: everything up to (but not
/// including) the procedure-specific arguments.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RpcCallHeader {
    /// Transaction id.
    pub xid: Xid,
    /// RPC version (always 2).
    pub rpc_version: u32,
    /// Program number (100003 for NFS).
    pub program: u32,
    /// Program version (2 for NFS v2).
    pub version: u32,
    /// Procedure number within the program.
    pub procedure: u32,
    /// Credential flavor.
    pub auth: AuthFlavor,
    /// Caller uid carried in the AUTH_UNIX credential (0 when AUTH_NULL).
    pub uid: u32,
    /// Caller gid carried in the AUTH_UNIX credential (0 when AUTH_NULL).
    pub gid: u32,
}

impl RpcCallHeader {
    /// A call header for an NFS v2 procedure using AUTH_UNIX root credentials.
    pub fn nfs_call(xid: Xid, procedure: u32) -> Self {
        RpcCallHeader {
            xid,
            rpc_version: 2,
            program: crate::NFS_PROGRAM,
            version: crate::NFS_VERSION,
            procedure,
            auth: AuthFlavor::Unix,
            uid: 0,
            gid: 0,
        }
    }
}

const MSG_TYPE_CALL: u32 = 0;
const MSG_TYPE_REPLY: u32 = 1;

impl XdrEncode for RpcCallHeader {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.xid.encode(enc);
        enc.put_u32(MSG_TYPE_CALL);
        enc.put_u32(self.rpc_version);
        enc.put_u32(self.program);
        enc.put_u32(self.version);
        enc.put_u32(self.procedure);
        // Credential: flavor + opaque body.
        enc.put_u32(self.auth.code());
        match self.auth {
            AuthFlavor::Null => enc.put_opaque(&[]),
            AuthFlavor::Unix => {
                // stamp, machine name, uid, gid, gids<> packed as opaque body.
                let mut body = XdrEncoder::new();
                body.put_u32(0); // stamp
                body.put_string("simclient");
                body.put_u32(self.uid);
                body.put_u32(self.gid);
                body.put_u32(0); // no auxiliary gids
                enc.put_opaque(body.as_bytes());
            }
        }
        // Verifier: AUTH_NULL.
        enc.put_u32(0);
        enc.put_opaque(&[]);
    }
}

impl XdrDecode for RpcCallHeader {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let xid = Xid::decode(dec)?;
        let msg_type = dec.get_u32()?;
        if msg_type != MSG_TYPE_CALL {
            return Err(XdrError::InvalidEnum {
                type_name: "RpcMessageType(call)",
                value: msg_type,
            });
        }
        let rpc_version = dec.get_u32()?;
        let program = dec.get_u32()?;
        let version = dec.get_u32()?;
        let procedure = dec.get_u32()?;
        let auth = AuthFlavor::from_code(dec.get_u32()?)?;
        let cred_body = dec.get_opaque()?;
        let (uid, gid) = match auth {
            AuthFlavor::Null => (0, 0),
            AuthFlavor::Unix => {
                let mut body = XdrDecoder::new(&cred_body);
                let _stamp = body.get_u32()?;
                let _machine = body.get_string()?;
                let uid = body.get_u32()?;
                let gid = body.get_u32()?;
                (uid, gid)
            }
        };
        // Verifier.
        let _verf_flavor = dec.get_u32()?;
        let _verf_body = dec.get_opaque()?;
        Ok(RpcCallHeader {
            xid,
            rpc_version,
            program,
            version,
            procedure,
            auth,
            uid,
            gid,
        })
    }
}

/// Why an RPC call was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RejectReason {
    /// RPC version mismatch.
    RpcMismatch,
    /// Authentication failure.
    AuthError,
    /// Program unavailable on this server.
    ProgramUnavailable,
    /// Program version not supported.
    ProgramMismatch,
    /// Procedure number not recognised.
    ProcedureUnavailable,
    /// The arguments could not be decoded.
    GarbageArgs,
}

/// The disposition of an RPC reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RpcReplyStatus {
    /// The call was accepted and executed; procedure results follow.
    Accepted,
    /// The call was rejected before execution.
    Rejected(RejectReason),
}

/// The fixed part of an RPC reply message.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RpcReplyHeader {
    /// Transaction id copied from the call.
    pub xid: Xid,
    /// Accept/reject disposition.
    pub status: RpcReplyStatus,
}

impl RpcReplyHeader {
    /// An accepted-reply header for the given transaction.
    pub fn accepted(xid: Xid) -> Self {
        RpcReplyHeader {
            xid,
            status: RpcReplyStatus::Accepted,
        }
    }
}

impl XdrEncode for RpcReplyHeader {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.xid.encode(enc);
        enc.put_u32(MSG_TYPE_REPLY);
        match self.status {
            RpcReplyStatus::Accepted => {
                enc.put_u32(0); // MSG_ACCEPTED
                enc.put_u32(0); // verifier flavor AUTH_NULL
                enc.put_opaque(&[]);
                enc.put_u32(0); // accept status SUCCESS
            }
            RpcReplyStatus::Rejected(reason) => {
                enc.put_u32(1); // MSG_DENIED
                let code = match reason {
                    RejectReason::RpcMismatch => 0,
                    RejectReason::AuthError => 1,
                    RejectReason::ProgramUnavailable => 2,
                    RejectReason::ProgramMismatch => 3,
                    RejectReason::ProcedureUnavailable => 4,
                    RejectReason::GarbageArgs => 5,
                };
                enc.put_u32(code);
            }
        }
    }
}

impl XdrDecode for RpcReplyHeader {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let xid = Xid::decode(dec)?;
        let msg_type = dec.get_u32()?;
        if msg_type != MSG_TYPE_REPLY {
            return Err(XdrError::InvalidEnum {
                type_name: "RpcMessageType(reply)",
                value: msg_type,
            });
        }
        let disposition = dec.get_u32()?;
        let status = match disposition {
            0 => {
                let _verf_flavor = dec.get_u32()?;
                let _verf_body = dec.get_opaque()?;
                let accept = dec.get_u32()?;
                if accept != 0 {
                    return Err(XdrError::InvalidEnum {
                        type_name: "RpcAcceptStatus",
                        value: accept,
                    });
                }
                RpcReplyStatus::Accepted
            }
            1 => {
                let code = dec.get_u32()?;
                let reason = match code {
                    0 => RejectReason::RpcMismatch,
                    1 => RejectReason::AuthError,
                    2 => RejectReason::ProgramUnavailable,
                    3 => RejectReason::ProgramMismatch,
                    4 => RejectReason::ProcedureUnavailable,
                    5 => RejectReason::GarbageArgs,
                    other => {
                        return Err(XdrError::InvalidEnum {
                            type_name: "RejectReason",
                            value: other,
                        })
                    }
                };
                RpcReplyStatus::Rejected(reason)
            }
            other => {
                return Err(XdrError::InvalidEnum {
                    type_name: "RpcReplyDisposition",
                    value: other,
                })
            }
        };
        Ok(RpcReplyHeader { xid, status })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_xdr::{from_bytes, to_bytes};

    #[test]
    fn call_header_roundtrip() {
        let hdr = RpcCallHeader::nfs_call(Xid(0xABCD), 8);
        let bytes = to_bytes(&hdr);
        let back: RpcCallHeader = from_bytes(&bytes).unwrap();
        assert_eq!(back, hdr);
        assert_eq!(back.program, crate::NFS_PROGRAM);
        assert_eq!(back.version, 2);
        assert_eq!(back.procedure, 8);
    }

    #[test]
    fn null_auth_call_roundtrip() {
        let hdr = RpcCallHeader {
            auth: AuthFlavor::Null,
            uid: 0,
            gid: 0,
            ..RpcCallHeader::nfs_call(Xid(5), 1)
        };
        let bytes = to_bytes(&hdr);
        let back: RpcCallHeader = from_bytes(&bytes).unwrap();
        assert_eq!(back.auth, AuthFlavor::Null);
    }

    #[test]
    fn accepted_reply_roundtrip() {
        let hdr = RpcReplyHeader::accepted(Xid(42));
        let bytes = to_bytes(&hdr);
        let back: RpcReplyHeader = from_bytes(&bytes).unwrap();
        assert_eq!(back, hdr);
    }

    #[test]
    fn rejected_reply_roundtrip() {
        for reason in [
            RejectReason::RpcMismatch,
            RejectReason::AuthError,
            RejectReason::ProgramUnavailable,
            RejectReason::ProgramMismatch,
            RejectReason::ProcedureUnavailable,
            RejectReason::GarbageArgs,
        ] {
            let hdr = RpcReplyHeader {
                xid: Xid(7),
                status: RpcReplyStatus::Rejected(reason),
            };
            let bytes = to_bytes(&hdr);
            let back: RpcReplyHeader = from_bytes(&bytes).unwrap();
            assert_eq!(back, hdr);
        }
    }

    #[test]
    fn reply_is_not_a_call() {
        let reply = to_bytes(&RpcReplyHeader::accepted(Xid(1)));
        assert!(from_bytes::<RpcCallHeader>(&reply).is_err());
        let call = to_bytes(&RpcCallHeader::nfs_call(Xid(1), 1));
        assert!(from_bytes::<RpcReplyHeader>(&call).is_err());
    }
}
