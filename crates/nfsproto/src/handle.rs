//! NFS v2 file handles.
//!
//! A file handle is a 32-byte opaque token minted by the server that the
//! client presents on every subsequent operation.  In this reproduction a
//! handle packs a filesystem id, an inode number and a generation counter
//! (exactly the information a 4.3BSD-derived server put in its handles); the
//! rest is zero padding.  The generation counter is what makes handles go
//! *stale*: when an inode is freed and reused, the generation bumps and old
//! handles referring to the previous file are rejected with
//! [`NfsStatus::Stale`](crate::NfsStatus::Stale), the case §6.9 of the paper
//! warns must not orphan gathered writes.

use crate::NFS_FHSIZE;
use wg_xdr::{XdrDecode, XdrDecoder, XdrEncode, XdrEncoder, XdrError};

/// A 32-byte opaque NFS v2 file handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct FileHandle {
    bytes: [u8; NFS_FHSIZE],
}

impl FileHandle {
    /// Construct a handle from its components.
    pub fn new(fsid: u32, inode: u64, generation: u32) -> Self {
        let mut bytes = [0u8; NFS_FHSIZE];
        bytes[0..4].copy_from_slice(&fsid.to_be_bytes());
        bytes[4..12].copy_from_slice(&inode.to_be_bytes());
        bytes[12..16].copy_from_slice(&generation.to_be_bytes());
        FileHandle { bytes }
    }

    /// Construct a handle from raw bytes received off the wire.
    pub fn from_bytes(bytes: [u8; NFS_FHSIZE]) -> Self {
        FileHandle { bytes }
    }

    /// The filesystem id encoded in the handle.
    pub fn fsid(&self) -> u32 {
        u32::from_be_bytes([self.bytes[0], self.bytes[1], self.bytes[2], self.bytes[3]])
    }

    /// The inode number encoded in the handle.
    pub fn inode(&self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.bytes[4..12]);
        u64::from_be_bytes(b)
    }

    /// The inode generation encoded in the handle.
    pub fn generation(&self) -> u32 {
        u32::from_be_bytes([
            self.bytes[12],
            self.bytes[13],
            self.bytes[14],
            self.bytes[15],
        ])
    }

    /// The raw 32 bytes.
    pub fn as_bytes(&self) -> &[u8; NFS_FHSIZE] {
        &self.bytes
    }
}

impl std::fmt::Debug for FileHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fh(fsid={}, ino={}, gen={})",
            self.fsid(),
            self.inode(),
            self.generation()
        )
    }
}

impl XdrEncode for FileHandle {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_opaque_fixed(&self.bytes);
    }
}

impl XdrDecode for FileHandle {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let raw = dec.get_opaque_fixed(NFS_FHSIZE)?;
        let mut bytes = [0u8; NFS_FHSIZE];
        bytes.copy_from_slice(&raw);
        Ok(FileHandle { bytes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_xdr::{from_bytes, to_bytes};

    #[test]
    fn packs_and_unpacks_fields() {
        let fh = FileHandle::new(3, 0xDEAD_BEEF_1234, 17);
        assert_eq!(fh.fsid(), 3);
        assert_eq!(fh.inode(), 0xDEAD_BEEF_1234);
        assert_eq!(fh.generation(), 17);
    }

    #[test]
    fn wire_size_is_32_bytes() {
        let fh = FileHandle::new(1, 2, 3);
        assert_eq!(to_bytes(&fh).len(), NFS_FHSIZE);
    }

    #[test]
    fn xdr_roundtrip() {
        let fh = FileHandle::new(9, 123456789, 42);
        let bytes = to_bytes(&fh);
        let back: FileHandle = from_bytes(&bytes).unwrap();
        assert_eq!(back, fh);
    }

    #[test]
    fn different_generation_is_a_different_handle() {
        let a = FileHandle::new(1, 100, 1);
        let b = FileHandle::new(1, 100, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn debug_is_readable() {
        let fh = FileHandle::new(1, 5, 2);
        assert_eq!(format!("{fh:?}"), "fh(fsid=1, ino=5, gen=2)");
    }
}
