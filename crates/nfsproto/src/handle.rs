//! NFS v2 file handles.
//!
//! A file handle is a 32-byte opaque token minted by the server that the
//! client presents on every subsequent operation.  In this reproduction a
//! handle packs a filesystem id, an inode number and a generation counter
//! (exactly the information a 4.3BSD-derived server put in its handles); the
//! rest is zero padding.  The generation counter is what makes handles go
//! *stale*: when an inode is freed and reused, the generation bumps and old
//! handles referring to the previous file are rejected with
//! [`NfsStatus::Stale`](crate::NfsStatus::Stale), the case §6.9 of the paper
//! warns must not orphan gathered writes.

use crate::NFS_FHSIZE;
use wg_xdr::{XdrDecode, XdrDecoder, XdrEncode, XdrEncoder, XdrError};

/// A 32-byte opaque NFS v2 file handle.
///
/// In memory only the three meaningful fields are stored (16 bytes — half
/// the wire size).  Handles are embedded in almost every call and reply
/// body, and those bodies ride inside every scheduled event, so the
/// in-memory size is pure hot-path bytes; the zero padding exists only on
/// the wire and is reconstructed at encode time.
#[derive(Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct FileHandle {
    fsid: u32,
    generation: u32,
    inode: u64,
}

impl FileHandle {
    /// Construct a handle from its components.
    pub fn new(fsid: u32, inode: u64, generation: u32) -> Self {
        FileHandle {
            fsid,
            generation,
            inode,
        }
    }

    /// Construct a handle from raw bytes received off the wire.  The
    /// padding bytes (16..32) are not preserved; every handle this server
    /// mints has them zeroed, and re-encoding zero-fills them again.
    pub fn from_bytes(bytes: [u8; NFS_FHSIZE]) -> Self {
        FileHandle {
            fsid: u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]),
            inode: u64::from_be_bytes(bytes[4..12].try_into().unwrap()),
            generation: u32::from_be_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]),
        }
    }

    /// The filesystem id encoded in the handle.
    pub fn fsid(&self) -> u32 {
        self.fsid
    }

    /// The inode number encoded in the handle.
    pub fn inode(&self) -> u64 {
        self.inode
    }

    /// The inode generation encoded in the handle.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// The raw 32 wire bytes: the packed fields plus zero padding.
    pub fn to_wire_bytes(&self) -> [u8; NFS_FHSIZE] {
        let mut bytes = [0u8; NFS_FHSIZE];
        bytes[0..4].copy_from_slice(&self.fsid.to_be_bytes());
        bytes[4..12].copy_from_slice(&self.inode.to_be_bytes());
        bytes[12..16].copy_from_slice(&self.generation.to_be_bytes());
        bytes
    }
}

impl std::fmt::Debug for FileHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fh(fsid={}, ino={}, gen={})",
            self.fsid(),
            self.inode(),
            self.generation()
        )
    }
}

impl XdrEncode for FileHandle {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_opaque_fixed(&self.to_wire_bytes());
    }
}

impl XdrDecode for FileHandle {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let raw = dec.get_opaque_fixed(NFS_FHSIZE)?;
        let mut bytes = [0u8; NFS_FHSIZE];
        bytes.copy_from_slice(&raw);
        Ok(FileHandle::from_bytes(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_xdr::{from_bytes, to_bytes};

    #[test]
    fn packs_and_unpacks_fields() {
        let fh = FileHandle::new(3, 0xDEAD_BEEF_1234, 17);
        assert_eq!(fh.fsid(), 3);
        assert_eq!(fh.inode(), 0xDEAD_BEEF_1234);
        assert_eq!(fh.generation(), 17);
    }

    #[test]
    fn wire_size_is_32_bytes() {
        let fh = FileHandle::new(1, 2, 3);
        assert_eq!(to_bytes(&fh).len(), NFS_FHSIZE);
    }

    #[test]
    fn xdr_roundtrip() {
        let fh = FileHandle::new(9, 123456789, 42);
        let bytes = to_bytes(&fh);
        let back: FileHandle = from_bytes(&bytes).unwrap();
        assert_eq!(back, fh);
    }

    #[test]
    fn different_generation_is_a_different_handle() {
        let a = FileHandle::new(1, 100, 1);
        let b = FileHandle::new(1, 100, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn debug_is_readable() {
        let fh = FileHandle::new(1, 5, 2);
        assert_eq!(format!("{fh:?}"), "fh(fsid=1, ino=5, gen=2)");
    }
}
