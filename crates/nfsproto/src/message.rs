//! Whole-message convenience layer.
//!
//! The simulation passes complete NFS requests and replies between the client,
//! network and server models.  [`NfsCall`] and [`NfsReply`] bundle the RPC
//! transaction id with a typed procedure body, and can be flattened to (and
//! parsed back from) real wire bytes via [`WireMessage`].  The wire size is
//! what the network model charges for transmission and what the server
//! socket-buffer model counts against its capacity, so the sizes here must be
//! faithful: an 8 KB write really occupies a little more than 8 KB on the
//! wire once RPC and NFS headers are added.

use std::sync::OnceLock;

use crate::attr::{Fattr, NfsStatus, Sattr};
use crate::procs::{
    CommitArgs, CommitOk, CreateArgs, DirOpArgs, DirOpOk, GetattrArgs, LockArgs, LockOk,
    ProcNumber, ReadArgs, ReadOk, ReaddirArgs, RenewArgs, RenewOk, SetattrArgs, StatfsOk,
    StatusReply, UnlockArgs, WriteArgs, WriteVerfOk,
};
use crate::rpc::{RpcCallHeader, RpcReplyHeader, Xid};
use crate::NFS_FHSIZE;
use wg_xdr::{XdrDecode, XdrDecoder, XdrEncode, XdrEncoder, XdrError};

/// Wire size of an XDR variable-length opaque (or string) of `len` bytes:
/// the length word plus the data padded to a 4-byte boundary.
fn opaque_wire_size(len: usize) -> usize {
    4 + len.div_ceil(4) * 4
}

/// Wire size of the RPC call header (fixed: the AUTH_UNIX credential the
/// simulation uses has a constant machine name and no auxiliary gids).
/// Computed once by encoding a representative header, so the arithmetic can
/// never drift from the real encoder.
fn call_header_wire_size() -> usize {
    static SIZE: OnceLock<usize> = OnceLock::new();
    *SIZE.get_or_init(|| {
        let mut enc = XdrEncoder::new();
        RpcCallHeader::nfs_call(Xid(0), 0).encode(&mut enc);
        enc.len()
    })
}

/// Wire size of the accepted RPC reply header (fixed), computed like
/// [`call_header_wire_size`].
fn reply_header_wire_size() -> usize {
    static SIZE: OnceLock<usize> = OnceLock::new();
    *SIZE.get_or_init(|| {
        let mut enc = XdrEncoder::new();
        RpcReplyHeader::accepted(Xid(0)).encode(&mut enc);
        enc.len()
    })
}

/// Wire size of a full attribute block (fixed at 68 bytes per RFC 1094, but
/// derived from the encoder so the two can never disagree).
fn fattr_wire_size() -> usize {
    static SIZE: OnceLock<usize> = OnceLock::new();
    *SIZE.get_or_init(|| {
        let mut enc = XdrEncoder::new();
        Fattr::default().encode(&mut enc);
        enc.len()
    })
}

/// Wire size of a settable-attribute block (fixed at 32 bytes).
fn sattr_wire_size() -> usize {
    static SIZE: OnceLock<usize> = OnceLock::new();
    *SIZE.get_or_init(|| {
        let mut enc = XdrEncoder::new();
        Sattr::default().encode(&mut enc);
        enc.len()
    })
}

/// The typed body of an NFS call.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum NfsCallBody {
    /// NULL ping.
    Null,
    /// GETATTR.
    Getattr(GetattrArgs),
    /// SETATTR.
    Setattr(SetattrArgs),
    /// LOOKUP.
    Lookup(DirOpArgs),
    /// READ.
    Read(ReadArgs),
    /// WRITE.
    Write(WriteArgs),
    /// CREATE.
    Create(CreateArgs),
    /// REMOVE.
    Remove(DirOpArgs),
    /// READDIR.
    Readdir(ReaddirArgs),
    /// STATFS.
    Statfs(GetattrArgs),
    /// COMMIT (only issued by clients running the unstable-write protocol).
    Commit(CommitArgs),
    /// RENEW (only issued by clients running the lease protocol).
    Renew(RenewArgs),
    /// LOCK (lease protocol).
    Lock(LockArgs),
    /// UNLOCK (lease protocol).
    Unlock(UnlockArgs),
}

impl NfsCallBody {
    /// The procedure this body belongs to.
    pub fn procedure(&self) -> ProcNumber {
        match self {
            NfsCallBody::Null => ProcNumber::Null,
            NfsCallBody::Getattr(_) => ProcNumber::Getattr,
            NfsCallBody::Setattr(_) => ProcNumber::Setattr,
            NfsCallBody::Lookup(_) => ProcNumber::Lookup,
            NfsCallBody::Read(_) => ProcNumber::Read,
            NfsCallBody::Write(_) => ProcNumber::Write,
            NfsCallBody::Create(_) => ProcNumber::Create,
            NfsCallBody::Remove(_) => ProcNumber::Remove,
            NfsCallBody::Readdir(_) => ProcNumber::Readdir,
            NfsCallBody::Statfs(_) => ProcNumber::Statfs,
            NfsCallBody::Commit(_) => ProcNumber::Commit,
            NfsCallBody::Renew(_) => ProcNumber::Renew,
            NfsCallBody::Lock(_) => ProcNumber::Lock,
            NfsCallBody::Unlock(_) => ProcNumber::Unlock,
        }
    }

    fn encode_args(&self, enc: &mut XdrEncoder) {
        match self {
            NfsCallBody::Null => {}
            NfsCallBody::Getattr(a) | NfsCallBody::Statfs(a) => a.encode(enc),
            NfsCallBody::Setattr(a) => a.encode(enc),
            NfsCallBody::Lookup(a) | NfsCallBody::Remove(a) => a.encode(enc),
            NfsCallBody::Read(a) => a.encode(enc),
            NfsCallBody::Write(a) => a.encode(enc),
            NfsCallBody::Create(a) => a.encode(enc),
            NfsCallBody::Readdir(a) => a.encode(enc),
            NfsCallBody::Commit(a) => a.encode(enc),
            NfsCallBody::Renew(a) => a.encode(enc),
            NfsCallBody::Lock(a) => a.encode(enc),
            NfsCallBody::Unlock(a) => a.encode(enc),
        }
    }

    /// Encoded size of the procedure arguments, computed arithmetically.
    ///
    /// The simulation's hot loop needs wire sizes for network serialisation
    /// and socket-buffer accounting on every message; materialising the full
    /// encoding (8 KB+ per write) just to measure it was the single largest
    /// allocation source in the simulator.  [`NfsCall::wire_size`] asserts
    /// equality with the real encoder in tests.
    fn args_wire_size(&self) -> usize {
        const FH: usize = NFS_FHSIZE; // file handles are fixed-size opaques
        match self {
            NfsCallBody::Null => 0,
            NfsCallBody::Getattr(_) | NfsCallBody::Statfs(_) => FH,
            NfsCallBody::Setattr(_) => FH + sattr_wire_size(),
            NfsCallBody::Lookup(a) | NfsCallBody::Remove(a) => FH + opaque_wire_size(a.name.len()),
            NfsCallBody::Read(_) => FH + 12,
            NfsCallBody::Write(a) => FH + 12 + a.data.xdr_size(),
            NfsCallBody::Create(a) => {
                FH + opaque_wire_size(a.where_.name.len()) + sattr_wire_size()
            }
            NfsCallBody::Readdir(_) => FH + 8,
            NfsCallBody::Commit(_) => FH + 8,
            // client_id word + 8-byte verifier.
            NfsCallBody::Renew(_) => 12,
            // client_id, stateid, seqid, offset, count, reclaim words.
            NfsCallBody::Lock(_) => FH + 24,
            // client_id, stateid, seqid, offset, count words.
            NfsCallBody::Unlock(_) => FH + 20,
        }
    }

    fn decode_args(proc_: ProcNumber, dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(match proc_ {
            ProcNumber::Null => NfsCallBody::Null,
            ProcNumber::Getattr => NfsCallBody::Getattr(GetattrArgs::decode(dec)?),
            ProcNumber::Setattr => NfsCallBody::Setattr(SetattrArgs::decode(dec)?),
            ProcNumber::Lookup => NfsCallBody::Lookup(DirOpArgs::decode(dec)?),
            ProcNumber::Read => NfsCallBody::Read(ReadArgs::decode(dec)?),
            ProcNumber::Write => NfsCallBody::Write(WriteArgs::decode(dec)?),
            ProcNumber::Create => NfsCallBody::Create(CreateArgs::decode(dec)?),
            ProcNumber::Remove => NfsCallBody::Remove(DirOpArgs::decode(dec)?),
            ProcNumber::Readdir => NfsCallBody::Readdir(ReaddirArgs::decode(dec)?),
            ProcNumber::Statfs => NfsCallBody::Statfs(GetattrArgs::decode(dec)?),
            ProcNumber::Commit => NfsCallBody::Commit(CommitArgs::decode(dec)?),
            ProcNumber::Renew => NfsCallBody::Renew(RenewArgs::decode(dec)?),
            ProcNumber::Lock => NfsCallBody::Lock(LockArgs::decode(dec)?),
            ProcNumber::Unlock => NfsCallBody::Unlock(UnlockArgs::decode(dec)?),
            other => {
                return Err(XdrError::InvalidEnum {
                    type_name: "NfsCallBody(procedure)",
                    value: other.number(),
                })
            }
        })
    }
}

/// A complete NFS call: transaction id plus typed body.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct NfsCall {
    /// Transaction id chosen by the client (reused on retransmission).
    pub xid: Xid,
    /// Procedure-specific arguments.
    pub body: NfsCallBody,
}

impl NfsCall {
    /// Bundle a transaction id with a call body.
    pub fn new(xid: Xid, body: NfsCallBody) -> Self {
        NfsCall { xid, body }
    }

    /// Serialise to wire bytes (RPC call header + XDR arguments).
    pub fn to_wire(&self) -> WireMessage {
        let mut enc = XdrEncoder::with_capacity(256);
        RpcCallHeader::nfs_call(self.xid, self.body.procedure().number()).encode(&mut enc);
        self.body.encode_args(&mut enc);
        WireMessage {
            bytes: enc.into_bytes(),
        }
    }

    /// Parse a call from wire bytes, validating the RPC header.
    pub fn from_wire(msg: &WireMessage) -> Result<Self, XdrError> {
        let mut dec = XdrDecoder::new(&msg.bytes);
        let header = RpcCallHeader::decode(&mut dec)?;
        let proc_ = ProcNumber::from_number(header.procedure)?;
        let body = NfsCallBody::decode_args(proc_, &mut dec)?;
        if dec.remaining() != 0 {
            return Err(XdrError::TrailingBytes(dec.remaining()));
        }
        Ok(NfsCall {
            xid: header.xid,
            body,
        })
    }

    /// The size of this call on the wire, in bytes.
    ///
    /// Pure arithmetic — nothing is encoded and nothing is allocated.  The
    /// `wire_sizes_match_real_encodings` test pins this against
    /// [`NfsCall::to_wire`] for every procedure.
    pub fn wire_size(&self) -> usize {
        call_header_wire_size() + self.body.args_wire_size()
    }
}

/// The typed body of an NFS reply.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum NfsReplyBody {
    /// NULL ping reply.
    Null,
    /// GETATTR / SETATTR / WRITE reply ("attrstat").
    Attr(StatusReply<Fattr>),
    /// LOOKUP / CREATE reply ("diropres").
    DirOp(StatusReply<DirOpOk>),
    /// READ reply ("readres").
    Read(StatusReply<ReadOk>),
    /// REMOVE / RMDIR reply: just a status.
    Status(NfsStatus),
    /// READDIR reply: names only (entries are summarised as a name list in
    /// this reproduction; cookies and eof handling live in the server model).
    /// The list is shared so caching or replaying the reply never clones the
    /// names.
    Readdir(StatusReply<std::sync::Arc<Vec<std::sync::Arc<str>>>>),
    /// STATFS reply.
    Statfs(StatusReply<StatfsOk>),
    /// WRITE reply carrying stability + boot verifier, emitted only by a
    /// server running the unstable-write protocol (a plain v2 server answers
    /// writes with [`NfsReplyBody::Attr`], keeping the default wire format
    /// untouched).
    WriteVerf(StatusReply<WriteVerfOk>),
    /// COMMIT reply.
    Commit(StatusReply<CommitOk>),
    /// RENEW reply (lease protocol).
    Renew(StatusReply<RenewOk>),
    /// LOCK reply (lease protocol; UNLOCK answers with
    /// [`NfsReplyBody::Status`]).
    Lock(StatusReply<LockOk>),
}

impl NfsReplyBody {
    /// The NFS status carried by the reply.
    pub fn status(&self) -> NfsStatus {
        match self {
            NfsReplyBody::Null => NfsStatus::Ok,
            NfsReplyBody::Attr(r) => r.status(),
            NfsReplyBody::DirOp(r) => r.status(),
            NfsReplyBody::Read(r) => r.status(),
            NfsReplyBody::Status(s) => *s,
            NfsReplyBody::Readdir(r) => r.status(),
            NfsReplyBody::Statfs(r) => r.status(),
            NfsReplyBody::WriteVerf(r) => r.status(),
            NfsReplyBody::Commit(r) => r.status(),
            NfsReplyBody::Renew(r) => r.status(),
            NfsReplyBody::Lock(r) => r.status(),
        }
    }

    /// `true` if the reply reports success.
    pub fn is_ok(&self) -> bool {
        self.status().is_ok()
    }

    fn tag(&self) -> u32 {
        match self {
            NfsReplyBody::Null => 0,
            NfsReplyBody::Attr(_) => 1,
            NfsReplyBody::DirOp(_) => 2,
            NfsReplyBody::Read(_) => 3,
            NfsReplyBody::Status(_) => 4,
            NfsReplyBody::Readdir(_) => 5,
            NfsReplyBody::Statfs(_) => 6,
            NfsReplyBody::WriteVerf(_) => 7,
            NfsReplyBody::Commit(_) => 8,
            NfsReplyBody::Renew(_) => 9,
            NfsReplyBody::Lock(_) => 10,
        }
    }

    /// Encoded size of the reply results (excluding header and body tag),
    /// computed arithmetically — see [`NfsCallBody::args_wire_size`].
    fn results_wire_size(&self) -> usize {
        // Every status-discriminated reply starts with the 4-byte status word.
        match self {
            NfsReplyBody::Null => 0,
            NfsReplyBody::Attr(StatusReply::Ok(_)) => 4 + fattr_wire_size(),
            NfsReplyBody::DirOp(StatusReply::Ok(_)) => 4 + NFS_FHSIZE + fattr_wire_size(),
            NfsReplyBody::Read(StatusReply::Ok(r)) => 4 + fattr_wire_size() + r.data.xdr_size(),
            NfsReplyBody::Readdir(StatusReply::Ok(names)) => {
                4 + 4
                    + names
                        .iter()
                        .map(|n| opaque_wire_size(n.len()))
                        .sum::<usize>()
            }
            NfsReplyBody::Statfs(StatusReply::Ok(_)) => 4 + 20,
            // status + fattr + stable_how word + 8-byte verifier.
            NfsReplyBody::WriteVerf(StatusReply::Ok(_)) => 4 + fattr_wire_size() + 4 + 8,
            // status + fattr + 8-byte verifier.
            NfsReplyBody::Commit(StatusReply::Ok(_)) => 4 + fattr_wire_size() + 8,
            // status + 8-byte verifier + in_grace word.
            NfsReplyBody::Renew(StatusReply::Ok(_)) => 4 + 12,
            // status + stateid + seqid words.
            NfsReplyBody::Lock(StatusReply::Ok(_)) => 4 + 8,
            NfsReplyBody::Attr(StatusReply::Err(_))
            | NfsReplyBody::DirOp(StatusReply::Err(_))
            | NfsReplyBody::Read(StatusReply::Err(_))
            | NfsReplyBody::Readdir(StatusReply::Err(_))
            | NfsReplyBody::Statfs(StatusReply::Err(_))
            | NfsReplyBody::WriteVerf(StatusReply::Err(_))
            | NfsReplyBody::Commit(StatusReply::Err(_))
            | NfsReplyBody::Renew(StatusReply::Err(_))
            | NfsReplyBody::Lock(StatusReply::Err(_))
            | NfsReplyBody::Status(_) => 4,
        }
    }
}

/// A complete NFS reply: the transaction id it answers plus a typed body.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct NfsReply {
    /// The transaction this reply answers.
    pub xid: Xid,
    /// Procedure-specific results.
    pub body: NfsReplyBody,
}

impl NfsReply {
    /// Bundle a transaction id with a reply body.
    pub fn new(xid: Xid, body: NfsReplyBody) -> Self {
        NfsReply { xid, body }
    }

    /// Serialise to wire bytes (RPC reply header + a body tag + XDR results).
    ///
    /// The body tag is a one-word extension over the strict v2 wire format:
    /// real NFS clients know which procedure a reply answers by matching the
    /// xid against their outstanding-call table, but the simulation's decoder
    /// is stateless, so the tag makes parsing self-contained.  The size cost
    /// (4 bytes) is negligible relative to header sizes.
    pub fn to_wire(&self) -> WireMessage {
        let mut enc = XdrEncoder::with_capacity(128);
        RpcReplyHeader::accepted(self.xid).encode(&mut enc);
        enc.put_u32(self.body.tag());
        match &self.body {
            NfsReplyBody::Null => {}
            NfsReplyBody::Attr(r) => r.encode(&mut enc),
            NfsReplyBody::DirOp(r) => r.encode(&mut enc),
            NfsReplyBody::Read(r) => r.encode(&mut enc),
            NfsReplyBody::Status(s) => s.encode(&mut enc),
            NfsReplyBody::Readdir(r) => r.encode(&mut enc),
            NfsReplyBody::Statfs(r) => r.encode(&mut enc),
            NfsReplyBody::WriteVerf(r) => r.encode(&mut enc),
            NfsReplyBody::Commit(r) => r.encode(&mut enc),
            NfsReplyBody::Renew(r) => r.encode(&mut enc),
            NfsReplyBody::Lock(r) => r.encode(&mut enc),
        }
        WireMessage {
            bytes: enc.into_bytes(),
        }
    }

    /// Parse a reply from wire bytes.
    pub fn from_wire(msg: &WireMessage) -> Result<Self, XdrError> {
        let mut dec = XdrDecoder::new(&msg.bytes);
        let header = RpcReplyHeader::decode(&mut dec)?;
        let tag = dec.get_u32()?;
        let body = match tag {
            0 => NfsReplyBody::Null,
            1 => NfsReplyBody::Attr(StatusReply::decode(&mut dec)?),
            2 => NfsReplyBody::DirOp(StatusReply::decode(&mut dec)?),
            3 => NfsReplyBody::Read(StatusReply::decode(&mut dec)?),
            4 => NfsReplyBody::Status(NfsStatus::decode(&mut dec)?),
            5 => NfsReplyBody::Readdir(StatusReply::decode(&mut dec)?),
            6 => NfsReplyBody::Statfs(StatusReply::decode(&mut dec)?),
            7 => NfsReplyBody::WriteVerf(StatusReply::decode(&mut dec)?),
            8 => NfsReplyBody::Commit(StatusReply::decode(&mut dec)?),
            9 => NfsReplyBody::Renew(StatusReply::decode(&mut dec)?),
            10 => NfsReplyBody::Lock(StatusReply::decode(&mut dec)?),
            other => {
                return Err(XdrError::InvalidEnum {
                    type_name: "NfsReplyBody(tag)",
                    value: other,
                })
            }
        };
        if dec.remaining() != 0 {
            return Err(XdrError::TrailingBytes(dec.remaining()));
        }
        Ok(NfsReply {
            xid: header.xid,
            body,
        })
    }

    /// The size of this reply on the wire, in bytes.
    ///
    /// Pure arithmetic — nothing is encoded and nothing is allocated (the
    /// body tag word is included).
    pub fn wire_size(&self) -> usize {
        reply_header_wire_size() + 4 + self.body.results_wire_size()
    }
}

/// Raw bytes of one NFS message as carried in a UDP datagram.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WireMessage {
    /// Encoded bytes.
    pub bytes: Vec<u8>,
}

impl WireMessage {
    /// Size in bytes (excluding UDP/IP headers, which the network model adds).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `true` if the message is empty (never the case for valid NFS traffic).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::FileHandle;
    use crate::NFS_MAXDATA;

    fn fh() -> FileHandle {
        FileHandle::new(1, 10, 1)
    }

    #[test]
    fn write_call_roundtrip_and_size() {
        let call = NfsCall::new(
            Xid(1001),
            NfsCallBody::Write(WriteArgs::new(fh(), 16384, vec![7u8; NFS_MAXDATA as usize])),
        );
        let wire = call.to_wire();
        // An 8 KB write occupies a bit more than 8 KB on the wire.
        assert!(wire.len() > NFS_MAXDATA as usize);
        assert!(wire.len() < NFS_MAXDATA as usize + 256);
        let back = NfsCall::from_wire(&wire).unwrap();
        assert_eq!(back, call);
        assert_eq!(back.body.procedure(), ProcNumber::Write);
    }

    #[test]
    fn every_call_body_roundtrips() {
        let bodies = vec![
            NfsCallBody::Null,
            NfsCallBody::Getattr(GetattrArgs { file: fh() }),
            NfsCallBody::Setattr(SetattrArgs {
                file: fh(),
                attributes: crate::Sattr::with_mode(0o644),
            }),
            NfsCallBody::Lookup(DirOpArgs {
                dir: fh(),
                name: "a.txt".into(),
            }),
            NfsCallBody::Read(ReadArgs {
                file: fh(),
                offset: 0,
                count: 8192,
                totalcount: 0,
            }),
            NfsCallBody::Write(WriteArgs::new(fh(), 0, vec![1, 2, 3])),
            NfsCallBody::Create(CreateArgs {
                where_: DirOpArgs {
                    dir: fh(),
                    name: "new".into(),
                },
                attributes: crate::Sattr::with_mode(0o600),
            }),
            NfsCallBody::Remove(DirOpArgs {
                dir: fh(),
                name: "old".into(),
            }),
            NfsCallBody::Readdir(ReaddirArgs {
                dir: fh(),
                cookie: 0,
                count: 1024,
            }),
            NfsCallBody::Statfs(GetattrArgs { file: fh() }),
            NfsCallBody::Commit(CommitArgs {
                file: fh(),
                offset: 0,
                count: 65536,
            }),
            NfsCallBody::Write(
                WriteArgs::new(fh(), 0, vec![4, 5, 6])
                    .with_stability(crate::procs::StableHow::Unstable),
            ),
            NfsCallBody::Renew(RenewArgs {
                client_id: 3,
                verifier: 0xFEED_F00D,
            }),
            NfsCallBody::Lock(LockArgs {
                file: fh(),
                client_id: 3,
                stateid: 3,
                seqid: 1,
                offset: 0,
                count: 8192,
                reclaim: false,
            }),
            NfsCallBody::Unlock(UnlockArgs {
                file: fh(),
                client_id: 3,
                stateid: 3,
                seqid: 2,
                offset: 0,
                count: 8192,
            }),
        ];
        for (i, body) in bodies.into_iter().enumerate() {
            let call = NfsCall::new(Xid(i as u32), body);
            let back = NfsCall::from_wire(&call.to_wire()).unwrap();
            assert_eq!(back, call);
        }
    }

    #[test]
    fn every_reply_body_roundtrips() {
        let replies = vec![
            NfsReplyBody::Null,
            NfsReplyBody::Attr(StatusReply::Ok(Fattr::default())),
            NfsReplyBody::Attr(StatusReply::Err(NfsStatus::NoSpc)),
            NfsReplyBody::DirOp(StatusReply::Ok(DirOpOk {
                file: fh(),
                attributes: Fattr::default(),
            })),
            NfsReplyBody::DirOp(StatusReply::Err(NfsStatus::NoEnt)),
            NfsReplyBody::Read(StatusReply::Ok(ReadOk {
                attributes: Fattr::default(),
                data: vec![9; 100].into(),
            })),
            NfsReplyBody::Status(NfsStatus::Ok),
            NfsReplyBody::Status(NfsStatus::Stale),
            NfsReplyBody::Readdir(StatusReply::Ok(vec!["a".into(), "b".into()].into())),
            NfsReplyBody::Statfs(StatusReply::Ok(StatfsOk {
                tsize: 8192,
                bsize: 8192,
                blocks: 1,
                bfree: 1,
                bavail: 1,
            })),
            NfsReplyBody::WriteVerf(StatusReply::Ok(WriteVerfOk {
                attributes: Fattr::default(),
                committed: crate::procs::StableHow::Unstable,
                verf: 0x1122_3344_5566_7788,
            })),
            NfsReplyBody::WriteVerf(StatusReply::Err(NfsStatus::NoSpc)),
            NfsReplyBody::Commit(StatusReply::Ok(CommitOk {
                attributes: Fattr::default(),
                verf: 42,
            })),
            NfsReplyBody::Commit(StatusReply::Err(NfsStatus::Io)),
            NfsReplyBody::Renew(StatusReply::Ok(RenewOk {
                verf: 0x1994_0606,
                in_grace: true,
            })),
            NfsReplyBody::Renew(StatusReply::Err(NfsStatus::Expired)),
            NfsReplyBody::Lock(StatusReply::Ok(LockOk {
                stateid: 3,
                seqid: 1,
            })),
            NfsReplyBody::Lock(StatusReply::Err(NfsStatus::Grace)),
            NfsReplyBody::Lock(StatusReply::Err(NfsStatus::Denied)),
        ];
        for (i, body) in replies.into_iter().enumerate() {
            let reply = NfsReply::new(Xid(i as u32), body);
            let back = NfsReply::from_wire(&reply.to_wire()).unwrap();
            assert_eq!(back, reply);
        }
    }

    /// The arithmetic `wire_size` must agree with the real encoder for every
    /// call and reply shape the simulation produces, including names and
    /// payloads whose lengths exercise XDR padding.
    #[test]
    fn wire_sizes_match_real_encodings() {
        use crate::payload::Payload;
        let calls = vec![
            NfsCallBody::Null,
            NfsCallBody::Getattr(GetattrArgs { file: fh() }),
            NfsCallBody::Statfs(GetattrArgs { file: fh() }),
            NfsCallBody::Setattr(SetattrArgs {
                file: fh(),
                attributes: crate::Sattr::with_mode(0o644),
            }),
            NfsCallBody::Lookup(DirOpArgs {
                dir: fh(),
                name: "a".into(),
            }),
            NfsCallBody::Lookup(DirOpArgs {
                dir: fh(),
                name: "abcd".into(),
            }),
            NfsCallBody::Remove(DirOpArgs {
                dir: fh(),
                name: "abcde".into(),
            }),
            NfsCallBody::Read(ReadArgs {
                file: fh(),
                offset: 0,
                count: 8192,
                totalcount: 0,
            }),
            NfsCallBody::Write(WriteArgs::new(fh(), 0, Payload::fill(7, NFS_MAXDATA))),
            NfsCallBody::Write(WriteArgs::new(fh(), 0, vec![1, 2, 3])),
            NfsCallBody::Write(WriteArgs::new(fh(), 0, Vec::new())),
            NfsCallBody::Create(CreateArgs {
                where_: DirOpArgs {
                    dir: fh(),
                    name: "scratch_01".into(),
                },
                attributes: crate::Sattr::with_mode(0o600),
            }),
            NfsCallBody::Readdir(ReaddirArgs {
                dir: fh(),
                cookie: 0,
                count: 4096,
            }),
            NfsCallBody::Commit(CommitArgs {
                file: fh(),
                offset: 8192,
                count: 0,
            }),
            NfsCallBody::Write(
                WriteArgs::new(fh(), 0, Payload::fill(7, 8192))
                    .with_stability(crate::procs::StableHow::Unstable),
            ),
            NfsCallBody::Renew(RenewArgs {
                client_id: 7,
                verifier: u64::MAX,
            }),
            NfsCallBody::Lock(LockArgs {
                file: fh(),
                client_id: 7,
                stateid: 7,
                seqid: 9,
                offset: 4096,
                count: 0,
                reclaim: true,
            }),
            NfsCallBody::Unlock(UnlockArgs {
                file: fh(),
                client_id: 7,
                stateid: 7,
                seqid: 10,
                offset: 4096,
                count: 0,
            }),
        ];
        for body in calls {
            let call = NfsCall::new(Xid(9), body);
            assert_eq!(
                call.wire_size(),
                call.to_wire().len(),
                "{:?}",
                call.body.procedure()
            );
        }

        let replies = vec![
            NfsReplyBody::Null,
            NfsReplyBody::Attr(StatusReply::Ok(Fattr::default())),
            NfsReplyBody::Attr(StatusReply::Err(NfsStatus::NoSpc)),
            NfsReplyBody::DirOp(StatusReply::Ok(DirOpOk {
                file: fh(),
                attributes: Fattr::default(),
            })),
            NfsReplyBody::DirOp(StatusReply::Err(NfsStatus::NoEnt)),
            NfsReplyBody::Read(StatusReply::Ok(ReadOk {
                attributes: Fattr::default(),
                data: crate::Payload::fill(9, 100),
            })),
            NfsReplyBody::Read(StatusReply::Ok(ReadOk {
                attributes: Fattr::default(),
                data: vec![1, 2, 3, 4, 5].into(),
            })),
            NfsReplyBody::Read(StatusReply::Err(NfsStatus::Io)),
            NfsReplyBody::Status(NfsStatus::Stale),
            NfsReplyBody::Readdir(StatusReply::Ok(
                vec!["a".into(), "file_with_longer_name".into()].into(),
            )),
            NfsReplyBody::Readdir(StatusReply::Err(NfsStatus::NotDir)),
            NfsReplyBody::Statfs(StatusReply::Ok(StatfsOk {
                tsize: 8192,
                bsize: 8192,
                blocks: 1,
                bfree: 1,
                bavail: 1,
            })),
            NfsReplyBody::Statfs(StatusReply::Err(NfsStatus::Io)),
            NfsReplyBody::WriteVerf(StatusReply::Ok(WriteVerfOk {
                attributes: Fattr::default(),
                committed: crate::procs::StableHow::FileSync,
                verf: u64::MAX,
            })),
            NfsReplyBody::WriteVerf(StatusReply::Err(NfsStatus::NoSpc)),
            NfsReplyBody::Commit(StatusReply::Ok(CommitOk {
                attributes: Fattr::default(),
                verf: 7,
            })),
            NfsReplyBody::Commit(StatusReply::Err(NfsStatus::Stale)),
            NfsReplyBody::Renew(StatusReply::Ok(RenewOk {
                verf: 1,
                in_grace: false,
            })),
            NfsReplyBody::Renew(StatusReply::Err(NfsStatus::Expired)),
            NfsReplyBody::Lock(StatusReply::Ok(LockOk {
                stateid: 1,
                seqid: 2,
            })),
            NfsReplyBody::Lock(StatusReply::Err(NfsStatus::Grace)),
        ];
        for body in replies {
            let reply = NfsReply::new(Xid(9), body);
            assert_eq!(reply.wire_size(), reply.to_wire().len(), "{:?}", reply.body);
        }
    }

    #[test]
    fn reply_status_helpers() {
        let ok = NfsReplyBody::Attr(StatusReply::Ok(Fattr::default()));
        assert!(ok.is_ok());
        let bad = NfsReplyBody::Status(NfsStatus::Io);
        assert!(!bad.is_ok());
        assert_eq!(bad.status(), NfsStatus::Io);
    }

    #[test]
    fn call_and_reply_cannot_be_confused() {
        let call = NfsCall::new(Xid(5), NfsCallBody::Null).to_wire();
        assert!(NfsReply::from_wire(&call).is_err());
        let reply = NfsReply::new(Xid(5), NfsReplyBody::Null).to_wire();
        assert!(NfsCall::from_wire(&reply).is_err());
    }

    #[test]
    fn garbage_wire_bytes_are_rejected_not_panicking() {
        let garbage = WireMessage {
            bytes: vec![0xFF; 40],
        };
        assert!(NfsCall::from_wire(&garbage).is_err());
        assert!(NfsReply::from_wire(&garbage).is_err());
        let empty = WireMessage { bytes: vec![] };
        assert!(empty.is_empty());
        assert!(NfsCall::from_wire(&empty).is_err());
    }
}
