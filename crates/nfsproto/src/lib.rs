//! # wg-nfsproto — ONC RPC framing and the NFS version 2 protocol
//!
//! The paper's server speaks the Sun NFS version 2 protocol over ONC RPC/UDP
//! ([SAND85]).  This crate defines, from scratch:
//!
//! * the NFS v2 on-the-wire data types — file handles, [`Fattr`] file
//!   attributes, [`Sattr`] settable attributes, [`NfsStatus`] result codes
//!   ([`attr`], [`handle`]),
//! * the argument and result structures of the NFS v2 procedures the
//!   reproduction exercises (WRITE, READ, LOOKUP, GETATTR, SETATTR, CREATE,
//!   REMOVE, READDIR, STATFS, ...) together with their XDR encodings
//!   ([`procs`]),
//! * ONC RPC call/reply framing with transaction ids used for duplicate
//!   request detection ([`rpc`]),
//! * a convenience [`message`] layer that bundles a complete request or reply
//!   as one Rust value plus its wire size, which is what the network and
//!   socket-buffer models operate on.
//!
//! The encoding layer exists so the protocol handling in the server is real —
//! requests cross the simulated network as XDR bytes and are decoded and
//! validated by the server exactly as a kernel implementation would.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod handle;
pub mod message;
pub mod payload;
pub mod procs;
pub mod rpc;

pub use attr::{Fattr, FileType, NfsStatus, Sattr, Timeval};
pub use handle::FileHandle;
pub use message::{NfsCall, NfsCallBody, NfsReply, NfsReplyBody, WireMessage};
pub use payload::Payload;
pub use procs::{
    CommitArgs, CommitOk, CreateArgs, DirOpArgs, DirOpOk, GetattrArgs, LockArgs, LockOk,
    LookupArgs, ProcNumber, ReadArgs, ReadOk, ReaddirArgs, RemoveArgs, RenewArgs, RenewOk,
    SetattrArgs, StableHow, StatfsOk, StatusReply, UnlockArgs, WriteArgs, WriteVerf, WriteVerfOk,
};
pub use rpc::{AuthFlavor, RejectReason, RpcCallHeader, RpcReplyHeader, RpcReplyStatus, Xid};

/// Maximum NFS v2 read/write transfer size in bytes (the classic 8 KB limit
/// that shapes the whole paper: clients emit 8 KB writes, servers see 8 KB
/// requests, UFS clusters them into up to 64 KB disk transfers).
pub const NFS_MAXDATA: u32 = 8192;

/// NFS v2 file handle size in bytes.
pub const NFS_FHSIZE: usize = 32;

/// The RPC program number assigned to NFS.
pub const NFS_PROGRAM: u32 = 100003;

/// The NFS protocol version this crate implements.
pub const NFS_VERSION: u32 = 2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_constants_match_rfc1094() {
        assert_eq!(NFS_MAXDATA, 8192);
        assert_eq!(NFS_FHSIZE, 32);
        assert_eq!(NFS_PROGRAM, 100003);
        assert_eq!(NFS_VERSION, 2);
    }
}
