//! NFS v2 file attributes and status codes.
//!
//! Every successful NFS v2 reply that touches a file carries a full [`Fattr`]
//! attribute block back to the client.  The paper leans on this: a gathering
//! server answers a burst of writes with replies that all carry the *same*
//! file modification time, because a single metadata update covered them all
//! (§6, "all the replies have the same file modify time in the returned file
//! attributes").

use wg_xdr::{XdrDecode, XdrDecoder, XdrEncode, XdrEncoder, XdrError};

/// NFS v2 status codes (RFC 1094 "stat").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum NfsStatus {
    /// The call completed successfully.
    Ok,
    /// Not owner.
    Perm,
    /// No such file or directory.
    NoEnt,
    /// I/O error.
    Io,
    /// Permission denied.
    Access,
    /// File exists.
    Exist,
    /// Not a directory.
    NotDir,
    /// Is a directory.
    IsDir,
    /// File too large.
    FBig,
    /// No space left on device — the error sync-on-close exists to surface.
    NoSpc,
    /// Read-only filesystem.
    Rofs,
    /// File name too long.
    NameTooLong,
    /// Directory not empty.
    NotEmpty,
    /// Disk quota exceeded.
    Dquot,
    /// Invalid (stale) file handle: the file referred to no longer exists.
    Stale,
    /// Lock conflict or bad seqid — the state operation was refused (the
    /// NFSv4 NFS4ERR_DENIED code, grafted onto the v2 table like COMMIT is).
    Denied,
    /// The client's lease has expired; its state was revoked and it must
    /// re-register (NFS4ERR_EXPIRED).
    Expired,
    /// The server is in its post-crash grace period: only reclaims are
    /// admitted, new state requests must be retried after it ends
    /// (NFS4ERR_GRACE).
    Grace,
}

impl NfsStatus {
    /// The RFC 1094 numeric value.
    pub fn code(self) -> u32 {
        match self {
            NfsStatus::Ok => 0,
            NfsStatus::Perm => 1,
            NfsStatus::NoEnt => 2,
            NfsStatus::Io => 5,
            NfsStatus::Access => 13,
            NfsStatus::Exist => 17,
            NfsStatus::NotDir => 20,
            NfsStatus::IsDir => 21,
            NfsStatus::FBig => 27,
            NfsStatus::NoSpc => 28,
            NfsStatus::Rofs => 30,
            NfsStatus::NameTooLong => 63,
            NfsStatus::NotEmpty => 66,
            NfsStatus::Dquot => 69,
            NfsStatus::Stale => 70,
            NfsStatus::Denied => 10010,
            NfsStatus::Expired => 10011,
            NfsStatus::Grace => 10013,
        }
    }

    /// Parse the RFC 1094 numeric value.
    pub fn from_code(code: u32) -> Result<Self, XdrError> {
        Ok(match code {
            0 => NfsStatus::Ok,
            1 => NfsStatus::Perm,
            2 => NfsStatus::NoEnt,
            5 => NfsStatus::Io,
            13 => NfsStatus::Access,
            17 => NfsStatus::Exist,
            20 => NfsStatus::NotDir,
            21 => NfsStatus::IsDir,
            27 => NfsStatus::FBig,
            28 => NfsStatus::NoSpc,
            30 => NfsStatus::Rofs,
            63 => NfsStatus::NameTooLong,
            66 => NfsStatus::NotEmpty,
            69 => NfsStatus::Dquot,
            70 => NfsStatus::Stale,
            10010 => NfsStatus::Denied,
            10011 => NfsStatus::Expired,
            10013 => NfsStatus::Grace,
            other => {
                return Err(XdrError::InvalidEnum {
                    type_name: "NfsStatus",
                    value: other,
                })
            }
        })
    }

    /// `true` for the success status.
    pub fn is_ok(self) -> bool {
        self == NfsStatus::Ok
    }
}

impl XdrEncode for NfsStatus {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(self.code());
    }
}

impl XdrDecode for NfsStatus {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        NfsStatus::from_code(dec.get_u32()?)
    }
}

/// NFS v2 file types ("ftype").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FileType {
    /// A non-file (the null type).
    None,
    /// A regular file.
    Regular,
    /// A directory.
    Directory,
    /// A block special device.
    BlockDev,
    /// A character special device.
    CharDev,
    /// A symbolic link.
    Symlink,
}

impl FileType {
    fn code(self) -> u32 {
        match self {
            FileType::None => 0,
            FileType::Regular => 1,
            FileType::Directory => 2,
            FileType::BlockDev => 3,
            FileType::CharDev => 4,
            FileType::Symlink => 5,
        }
    }

    fn from_code(code: u32) -> Result<Self, XdrError> {
        Ok(match code {
            0 => FileType::None,
            1 => FileType::Regular,
            2 => FileType::Directory,
            3 => FileType::BlockDev,
            4 => FileType::CharDev,
            5 => FileType::Symlink,
            other => {
                return Err(XdrError::InvalidEnum {
                    type_name: "FileType",
                    value: other,
                })
            }
        })
    }
}

impl XdrEncode for FileType {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(self.code());
    }
}

impl XdrDecode for FileType {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        FileType::from_code(dec.get_u32()?)
    }
}

/// An NFS v2 timestamp: seconds and microseconds.
#[derive(
    Clone,
    Copy,
    Debug,
    Default,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct Timeval {
    /// Whole seconds.
    pub seconds: u32,
    /// Microseconds within the second.
    pub useconds: u32,
}

impl Timeval {
    /// Build a timestamp from a nanosecond count (e.g. a simulation clock
    /// reading), truncating to microsecond resolution as the protocol does.
    pub fn from_nanos(ns: u64) -> Self {
        let us = ns / 1_000;
        Timeval {
            seconds: (us / 1_000_000) as u32,
            useconds: (us % 1_000_000) as u32,
        }
    }
}

impl XdrEncode for Timeval {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(self.seconds);
        enc.put_u32(self.useconds);
    }
}

impl XdrDecode for Timeval {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Timeval {
            seconds: dec.get_u32()?,
            useconds: dec.get_u32()?,
        })
    }
}

/// The full NFS v2 file attribute block ("fattr") returned by most replies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Fattr {
    /// File type.
    pub ftype: FileType,
    /// Protection mode bits.
    pub mode: u32,
    /// Hard link count.
    pub nlink: u32,
    /// Owner user id.
    pub uid: u32,
    /// Owner group id.
    pub gid: u32,
    /// File size in bytes.
    pub size: u32,
    /// Preferred block size.
    pub blocksize: u32,
    /// Device number for special files.
    pub rdev: u32,
    /// Number of disk blocks used.
    pub blocks: u32,
    /// Filesystem identifier.
    pub fsid: u32,
    /// Inode number.
    pub fileid: u32,
    /// Last access time.
    pub atime: Timeval,
    /// Last modification time — the field write gathering causes to be shared
    /// across a burst of replies.
    pub mtime: Timeval,
    /// Last status change time.
    pub ctime: Timeval,
}

impl Default for Fattr {
    fn default() -> Self {
        Fattr {
            ftype: FileType::Regular,
            mode: 0o644,
            nlink: 1,
            uid: 0,
            gid: 0,
            size: 0,
            blocksize: 8192,
            rdev: 0,
            blocks: 0,
            fsid: 0,
            fileid: 0,
            atime: Timeval::default(),
            mtime: Timeval::default(),
            ctime: Timeval::default(),
        }
    }
}

impl XdrEncode for Fattr {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.ftype.encode(enc);
        enc.put_u32(self.mode);
        enc.put_u32(self.nlink);
        enc.put_u32(self.uid);
        enc.put_u32(self.gid);
        enc.put_u32(self.size);
        enc.put_u32(self.blocksize);
        enc.put_u32(self.rdev);
        enc.put_u32(self.blocks);
        enc.put_u32(self.fsid);
        enc.put_u32(self.fileid);
        self.atime.encode(enc);
        self.mtime.encode(enc);
        self.ctime.encode(enc);
    }
}

impl XdrDecode for Fattr {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Fattr {
            ftype: FileType::decode(dec)?,
            mode: dec.get_u32()?,
            nlink: dec.get_u32()?,
            uid: dec.get_u32()?,
            gid: dec.get_u32()?,
            size: dec.get_u32()?,
            blocksize: dec.get_u32()?,
            rdev: dec.get_u32()?,
            blocks: dec.get_u32()?,
            fsid: dec.get_u32()?,
            fileid: dec.get_u32()?,
            atime: Timeval::decode(dec)?,
            mtime: Timeval::decode(dec)?,
            ctime: Timeval::decode(dec)?,
        })
    }
}

/// Settable attributes ("sattr") supplied on CREATE and SETATTR; `u32::MAX`
/// in any field means "do not change".
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Sattr {
    /// Protection mode bits, or `u32::MAX` to leave unchanged.
    pub mode: u32,
    /// Owner uid, or `u32::MAX`.
    pub uid: u32,
    /// Owner gid, or `u32::MAX`.
    pub gid: u32,
    /// New size (0 truncates), or `u32::MAX`.
    pub size: u32,
    /// New access time.
    pub atime: Timeval,
    /// New modification time.
    pub mtime: Timeval,
}

impl Default for Sattr {
    fn default() -> Self {
        Sattr {
            mode: u32::MAX,
            uid: u32::MAX,
            gid: u32::MAX,
            size: u32::MAX,
            atime: Timeval::default(),
            mtime: Timeval::default(),
        }
    }
}

impl Sattr {
    /// A sattr that sets only the mode, as a typical CREATE does.
    pub fn with_mode(mode: u32) -> Self {
        Sattr {
            mode,
            ..Sattr::default()
        }
    }
}

impl XdrEncode for Sattr {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(self.mode);
        enc.put_u32(self.uid);
        enc.put_u32(self.gid);
        enc.put_u32(self.size);
        self.atime.encode(enc);
        self.mtime.encode(enc);
    }
}

impl XdrDecode for Sattr {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Sattr {
            mode: dec.get_u32()?,
            uid: dec.get_u32()?,
            gid: dec.get_u32()?,
            size: dec.get_u32()?,
            atime: Timeval::decode(dec)?,
            mtime: Timeval::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_xdr::{from_bytes, to_bytes};

    #[test]
    fn status_codes_match_rfc1094() {
        assert_eq!(NfsStatus::Ok.code(), 0);
        assert_eq!(NfsStatus::NoEnt.code(), 2);
        assert_eq!(NfsStatus::NoSpc.code(), 28);
        assert_eq!(NfsStatus::Stale.code(), 70);
        assert!(NfsStatus::Ok.is_ok());
        assert!(!NfsStatus::Io.is_ok());
    }

    #[test]
    fn status_roundtrip_all_variants() {
        for s in [
            NfsStatus::Ok,
            NfsStatus::Perm,
            NfsStatus::NoEnt,
            NfsStatus::Io,
            NfsStatus::Access,
            NfsStatus::Exist,
            NfsStatus::NotDir,
            NfsStatus::IsDir,
            NfsStatus::FBig,
            NfsStatus::NoSpc,
            NfsStatus::Rofs,
            NfsStatus::NameTooLong,
            NfsStatus::NotEmpty,
            NfsStatus::Dquot,
            NfsStatus::Stale,
            NfsStatus::Denied,
            NfsStatus::Expired,
            NfsStatus::Grace,
        ] {
            assert_eq!(NfsStatus::from_code(s.code()).unwrap(), s);
            let bytes = to_bytes(&s);
            assert_eq!(from_bytes::<NfsStatus>(&bytes).unwrap(), s);
        }
        assert!(NfsStatus::from_code(999).is_err());
    }

    #[test]
    fn filetype_roundtrip() {
        for t in [
            FileType::None,
            FileType::Regular,
            FileType::Directory,
            FileType::BlockDev,
            FileType::CharDev,
            FileType::Symlink,
        ] {
            let bytes = to_bytes(&t);
            assert_eq!(from_bytes::<FileType>(&bytes).unwrap(), t);
        }
        assert!(FileType::from_code(42).is_err());
    }

    #[test]
    fn timeval_from_nanos() {
        let t = Timeval::from_nanos(3_000_123_456);
        assert_eq!(t.seconds, 3);
        assert_eq!(t.useconds, 123);
        let bytes = to_bytes(&t);
        assert_eq!(bytes.len(), 8);
        assert_eq!(from_bytes::<Timeval>(&bytes).unwrap(), t);
    }

    #[test]
    fn fattr_roundtrip_and_wire_size() {
        let attr = Fattr {
            size: 81920,
            blocks: 160,
            fileid: 77,
            mtime: Timeval {
                seconds: 12,
                useconds: 34,
            },
            ..Fattr::default()
        };
        let bytes = to_bytes(&attr);
        // 17 32-bit words per RFC 1094: ftype + 10 scalar fields + 3 timevals.
        assert_eq!(bytes.len(), 68);
        assert_eq!(from_bytes::<Fattr>(&bytes).unwrap(), attr);
    }

    #[test]
    fn sattr_defaults_mean_no_change() {
        let s = Sattr::default();
        assert_eq!(s.mode, u32::MAX);
        assert_eq!(s.size, u32::MAX);
        let with_mode = Sattr::with_mode(0o600);
        assert_eq!(with_mode.mode, 0o600);
        assert_eq!(with_mode.uid, u32::MAX);
        let bytes = to_bytes(&with_mode);
        assert_eq!(from_bytes::<Sattr>(&bytes).unwrap(), with_mode);
    }
}
