//! # wg-nvram — a Prestoserve-style NVRAM write accelerator
//!
//! Prestoserve ([MORA90], [PRES93]) is a board of battery-backed RAM plus a
//! driver ("Presto") that sits between the filesystem and the disk driver.  A
//! synchronous write completes as soon as the data has been *copied into
//! NVRAM*; Presto later drains dirty NVRAM to the disk with its own
//! clustering, asynchronously and in parallel with NFS processing.  Four
//! properties matter for the paper:
//!
//! 1. The write latency seen by the filesystem is a memory-copy latency, not a
//!    disk latency — so the paper's §6.6 observation that "the first write is
//!    done faster than other writes can arrive" holds and the first-write-as-
//!    latency-device gathering of [SIVA93] cannot work.
//! 2. Repeated writes to the same disk blocks (the inode block a stream of
//!    NFS writes keeps updating) *overwrite in place* in NVRAM, so they cost
//!    one eventual disk transfer, not one per update — Presto's own form of
//!    metadata absorption.
//! 3. The NVRAM cache is small (typically one or a few MB), so sustained
//!    write bandwidth is eventually limited by the drain bandwidth of the
//!    underlying disk at Presto's (large) transfer size — the regime of
//!    Table 4.
//! 4. Presto declines requests above a size threshold (typically 8 KB), which
//!    fall through to the underlying disk at disk speed.
//!
//! [`Presto`] implements [`BlockDevice`] and wraps any other [`BlockDevice`],
//! so the filesystem can be pointed at a raw disk, a stripe set, or an
//! accelerated version of either — exactly the on/off configurations the
//! paper's tables compare.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, VecDeque};

use wg_disk::{BlockDevice, DeviceStats, DiskRequest, IoKind, SpindleStats};
use wg_simcore::{Duration, SimTime};

/// Configuration of the NVRAM board and its drain policy.
#[derive(Clone, Debug, serde::Serialize)]
pub struct PrestoParams {
    /// Usable NVRAM capacity in bytes.
    pub cache_bytes: u64,
    /// Largest single request Presto will accept; larger requests bypass the
    /// cache and go straight to the underlying device.
    pub max_request: u64,
    /// Fixed driver overhead per accepted request.
    pub per_request_overhead: Duration,
    /// Host-memory-to-NVRAM copy bandwidth in bytes per second (this copy is
    /// CPU work; the server model charges it to the CPU as well).
    pub copy_rate: f64,
    /// Transfer size Presto uses when draining contiguous dirty data to disk.
    pub drain_transfer: u64,
    /// Drain onto the underlying device with queued submission: each drain
    /// transfer joins its target spindle's own FIFO queue
    /// ([`BlockDevice::submit_at`]) instead of waiting for the whole device's
    /// set-wide [`BlockDevice::free_at`].  On a stripe set this lets
    /// concurrent drains proceed on independent spindles; on a single disk it
    /// is behaviourally identical.  `false` (the default) reproduces the
    /// serial drain exactly.
    pub queued_submission: bool,
}

impl Default for PrestoParams {
    fn default() -> Self {
        PrestoParams {
            cache_bytes: 1024 * 1024,
            max_request: 8192,
            per_request_overhead: Duration::from_micros(120),
            copy_rate: 40e6,
            drain_transfer: 128 * 1024,
            queued_submission: false,
        }
    }
}

impl PrestoParams {
    /// Enable or disable queued drain submission (see
    /// [`PrestoParams::queued_submission`]).
    pub fn with_queued_submission(mut self, on: bool) -> Self {
        self.queued_submission = on;
        self
    }
}

/// The Prestoserve accelerator wrapping an underlying block device.
#[derive(Debug)]
pub struct Presto<D: BlockDevice> {
    params: PrestoParams,
    disk: D,
    /// Dirty extents held in NVRAM and not yet issued to the disk, keyed by
    /// start address.  Extents are kept non-overlapping and merged when
    /// adjacent, which is what gives Presto its write-cancellation and
    /// clustering behaviour.
    dirty: BTreeMap<u64, u64>,
    /// Bytes covered by `dirty`.
    dirty_bytes: u64,
    /// Drain transfers already issued to the disk: `(completion_time, bytes)`
    /// in completion order.  Their bytes still occupy NVRAM until completion.
    inflight: VecDeque<(SimTime, u64)>,
    /// Bytes covered by `inflight`.
    inflight_bytes: u64,
    /// Accelerator-level statistics (accepted requests and bytes).
    accepted: DeviceStats,
    /// Requests declined because they exceeded [`PrestoParams::max_request`].
    declined: u64,
    /// Writes (or parts of writes) absorbed because the same bytes were
    /// already dirty in NVRAM.
    absorbed_bytes: u64,
    /// `false` while the battery is failed: the board can no longer promise
    /// its contents survive a crash, so Presto degrades to write-through and
    /// every write goes straight to the underlying device.
    battery_healthy: bool,
    /// Writes forwarded to the disk while degraded to write-through.
    write_through_writes: u64,
    /// Boot-time recovery replays performed ([`BlockDevice::crash_recover`]).
    recoveries: u64,
}

impl<D: BlockDevice> Presto<D> {
    /// Wrap `disk` with an accelerator configured by `params`.
    pub fn new(params: PrestoParams, disk: D) -> Self {
        Presto {
            params,
            disk,
            dirty: BTreeMap::new(),
            dirty_bytes: 0,
            inflight: VecDeque::new(),
            inflight_bytes: 0,
            accepted: DeviceStats::new(),
            declined: 0,
            absorbed_bytes: 0,
            battery_healthy: true,
            write_through_writes: 0,
            recoveries: 0,
        }
    }

    /// Wrap `disk` with the default 1 MB board.
    pub fn with_defaults(disk: D) -> Self {
        Presto::new(PrestoParams::default(), disk)
    }

    /// The accelerator configuration.
    pub fn params(&self) -> &PrestoParams {
        &self.params
    }

    /// Access the underlying device (for its statistics).
    pub fn underlying(&self) -> &D {
        &self.disk
    }

    /// Requests declined due to the size limit.
    pub fn declined(&self) -> u64 {
        self.declined
    }

    /// Bytes whose write was absorbed by an overlapping dirty extent (they
    /// will reach the disk once, not once per overwrite).
    pub fn absorbed_bytes(&self) -> u64 {
        self.absorbed_bytes
    }

    /// Statistics of requests accepted into NVRAM (not underlying disk I/O).
    pub fn accepted_stats(&self) -> &DeviceStats {
        &self.accepted
    }

    /// Whether the battery currently backs the board (see
    /// [`BlockDevice::set_battery`]).
    pub fn battery_healthy(&self) -> bool {
        self.battery_healthy
    }

    /// Writes forwarded straight to the disk while degraded to write-through
    /// by a battery failure.
    pub fn write_through_writes(&self) -> u64 {
        self.write_through_writes
    }

    /// Boot-time recovery replays performed so far.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Dirty + in-flight bytes currently occupying NVRAM (after applying
    /// drain completions up to `now`).
    pub fn occupancy_at(&mut self, now: SimTime) -> u64 {
        self.advance(now);
        self.dirty_bytes + self.inflight_bytes
    }

    /// Apply all drain completions that have happened by `now`.
    fn advance(&mut self, now: SimTime) {
        while let Some(&(t, bytes)) = self.inflight.front() {
            if t <= now {
                self.inflight_bytes = self.inflight_bytes.saturating_sub(bytes);
                self.inflight.pop_front();
            } else {
                break;
            }
        }
    }

    /// Insert an extent into the dirty map, merging with neighbours and
    /// overlaps.  Returns the number of bytes that were not already dirty.
    fn insert_dirty(&mut self, addr: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let mut new_start = addr;
        let mut new_end = addr + len;
        let mut already_covered = 0u64;

        // Collect every existing extent that overlaps or touches [start, end).
        let mut to_remove = Vec::new();
        // Start from the extent at or before new_start.
        let candidates: Vec<(u64, u64)> = self
            .dirty
            .range(..new_end.saturating_add(1))
            .map(|(&a, &l)| (a, l))
            .collect();
        for (a, l) in candidates {
            let e = a + l;
            if e < new_start || a > new_end {
                continue;
            }
            // Overlapping or adjacent: merge.
            let overlap_start = a.max(new_start);
            let overlap_end = e.min(new_end);
            if overlap_end > overlap_start {
                already_covered += overlap_end - overlap_start;
            }
            new_start = new_start.min(a);
            new_end = new_end.max(e);
            to_remove.push(a);
        }
        let mut merged_existing_bytes = 0u64;
        for a in to_remove {
            if let Some(l) = self.dirty.remove(&a) {
                merged_existing_bytes += l;
            }
        }
        self.dirty.insert(new_start, new_end - new_start);
        let new_total = new_end - new_start;
        let added = new_total - merged_existing_bytes;
        self.dirty_bytes += added;
        self.absorbed_bytes += already_covered;
        added
    }

    /// How many drain transfers Presto keeps outstanding at the disk.  Keeping
    /// this small lets dirty extents accumulate (and merge) between drains, so
    /// the disk sees large transfers even under sustained pressure.
    const MAX_INFLIGHT_DRAINS: usize = 4;

    /// Issue drain transfers to the underlying disk, keeping at most
    /// [`Self::MAX_INFLIGHT_DRAINS`] outstanding.  Completion times land in
    /// `inflight`.
    fn pump(&mut self, now: SimTime) {
        while self.dirty_bytes > 0 && self.inflight.len() < Self::MAX_INFLIGHT_DRAINS {
            // Prefer the largest extent: Presto clusters, and large sequential
            // runs are where the disk bandwidth is.
            let (&addr, &len) = match self.dirty.iter().max_by_key(|(_, &l)| l) {
                Some(kv) => kv,
                None => break,
            };
            let take = len.min(self.params.drain_transfer);
            self.dirty.remove(&addr);
            if take < len {
                self.dirty.insert(addr + take, len - take);
            }
            self.dirty_bytes -= take;
            // Queued drains join the target spindle's own queue at `now`;
            // serial drains wait for the whole device (for a stripe set, the
            // busiest member) to go idle first.
            let done = if self.params.queued_submission {
                self.disk.submit_at(now, DiskRequest::write(addr, take))
            } else {
                self.disk
                    .submit(now.max(self.disk.free_at()), DiskRequest::write(addr, take))
            };
            self.inflight_bytes += take;
            // Keep `inflight` sorted by completion time.  Serial drains
            // complete in issue order so this appends; queued drains on a
            // stripe set can complete out of order across spindles.
            let pos = self.inflight.partition_point(|&(t, _)| t <= done);
            self.inflight.insert(pos, (done, take));
        }
    }

    /// Earliest time at which `needed` additional bytes fit in NVRAM.
    ///
    /// When the cache is full, the caller effectively waits while the drain
    /// makes progress: step forward through drain completions, issuing further
    /// drains as slots free up, until enough space exists.
    fn time_for_space(&mut self, now: SimTime, needed: u64) -> SimTime {
        let mut t = now;
        loop {
            self.advance(t);
            if self.dirty_bytes + self.inflight_bytes + needed <= self.params.cache_bytes {
                return t;
            }
            // Under space pressure the drain must make progress: issue drains
            // (bounded by the in-flight limit) and step to the next
            // completion.
            self.pump(t);
            match self.inflight.front() {
                Some(&(tc, _)) => t = tc.max(t),
                // Nothing left to drain and still no room: the request is
                // larger than the whole cache, which submit() should have
                // declined; give up waiting.
                None => return t,
            }
        }
    }

    /// Force all dirty data to be issued to the underlying device, returning
    /// the time at which the NVRAM would be fully clean.  Used at the end of
    /// an experiment so disk statistics include the trailing drain, and by
    /// crash-consistency tests.
    pub fn flush_all(&mut self, now: SimTime) -> SimTime {
        let mut t = now;
        loop {
            self.advance(t);
            self.pump(t);
            if self.dirty_bytes == 0 {
                return self.inflight.back().map(|&(tc, _)| tc).unwrap_or(t).max(t);
            }
            match self.inflight.front() {
                Some(&(tc, _)) => t = tc.max(t),
                None => return t,
            }
        }
    }
}

impl<D: BlockDevice> BlockDevice for Presto<D> {
    /// Submit a request through the accelerator.
    ///
    /// * Writes no larger than `max_request` complete after a driver overhead
    ///   plus the NVRAM copy time, once cache space is available.
    /// * Larger writes, and all reads, bypass the accelerator and are served
    ///   by the underlying device directly (Presto only accelerates writes).
    fn submit(&mut self, now: SimTime, req: DiskRequest) -> SimTime {
        if req.kind == IoKind::Read || req.len > self.params.max_request {
            if req.kind == IoKind::Write {
                self.declined += 1;
            }
            return self.disk.submit(now, req);
        }
        if !self.battery_healthy {
            // Degraded to write-through: with no battery the board cannot
            // promise stability, so the write must reach the medium itself.
            self.write_through_writes += 1;
            return self.disk.submit(now.max(self.disk.free_at()), req);
        }
        self.advance(now);
        // Bytes already dirty in NVRAM are overwritten in place and need no
        // new space; only the uncovered remainder might have to wait.
        let already = self
            .dirty
            .range(..req.addr + req.len)
            .filter(|(&a, &l)| a + l > req.addr)
            .map(|(&a, &l)| {
                let s = a.max(req.addr);
                let e = (a + l).min(req.addr + req.len);
                e.saturating_sub(s)
            })
            .sum::<u64>();
        let new_bytes = req.len.saturating_sub(already);
        let space_at = self.time_for_space(now, new_bytes);
        self.advance(space_at);
        let copy = Duration::from_secs_f64(req.len as f64 / self.params.copy_rate);
        let done = space_at + self.params.per_request_overhead + copy;
        self.insert_dirty(req.addr, req.len);
        self.accepted
            .record_transfer(req.len, self.params.per_request_overhead + copy);

        // Opportunistically drain whole-transfer-sized runs; smaller runs wait
        // for more company (or for a flush / space pressure).
        if self
            .dirty
            .values()
            .any(|&l| l >= self.params.drain_transfer)
        {
            self.pump(done);
        }
        done
    }

    fn stats(&self) -> DeviceStats {
        // The interesting disk statistics (the tables' "server disk" rows) are
        // those of the underlying device; accelerator-level acceptance counts
        // are available via `accepted_stats`.
        self.disk.stats()
    }

    fn spindle_stats(&self) -> Vec<SpindleStats> {
        self.disk.spindle_stats()
    }

    fn reset_stats(&mut self) {
        self.disk.reset_stats();
        self.accepted = DeviceStats::new();
        self.declined = 0;
        self.absorbed_bytes = 0;
    }

    fn free_at(&self) -> SimTime {
        self.disk.free_at()
    }

    fn describe(&self) -> String {
        format!(
            "Presto({} KB) over {}",
            self.params.cache_bytes / 1024,
            self.disk.describe()
        )
    }

    /// Boot-time recovery: the battery preserved the board's contents across
    /// the crash, so everything dirty or in flight is replayed to the disk
    /// before the server may accept traffic.  Returns when the replay (and
    /// any drains the crash interrupted) completes.
    fn crash_recover(&mut self, now: SimTime) -> SimTime {
        self.recoveries += 1;
        let done = self.flush_all(now);
        self.advance(done);
        debug_assert_eq!(self.dirty_bytes + self.inflight_bytes, 0);
        done
    }

    /// Battery failure / repair.  On failure the board performs an emergency
    /// drain of everything it holds (while charge remains) and then degrades
    /// to write-through; on repair it re-arms and accepts writes again.
    fn set_battery(&mut self, healthy: bool, now: SimTime) -> SimTime {
        if healthy {
            self.battery_healthy = true;
            return now;
        }
        if !self.battery_healthy {
            return now;
        }
        self.battery_healthy = false;
        let done = self.flush_all(now);
        self.advance(done);
        done
    }

    fn pending_stable_bytes(&self) -> u64 {
        self.dirty_bytes + self.inflight_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_disk::Disk;

    fn presto() -> Presto<Disk> {
        Presto::with_defaults(Disk::rz26())
    }

    #[test]
    fn accelerated_write_is_much_faster_than_disk() {
        let mut p = presto();
        let done = p.submit(SimTime::ZERO, DiskRequest::write(100_000_000, 8192));
        // Copy of 8 KB at 25 MB/s plus overhead: well under a millisecond.
        assert!(done < SimTime::from_millis(1), "{done:?}");
        let mut raw = Disk::rz26();
        let raw_done = raw.submit(SimTime::ZERO, DiskRequest::write(100_000_000, 8192));
        assert!(raw_done > done + Duration::from_millis(5));
    }

    #[test]
    fn oversized_writes_fall_through_to_disk_speed() {
        let mut p = presto();
        let done = p.submit(SimTime::ZERO, DiskRequest::write(100_000_000, 64 * 1024));
        assert!(done > SimTime::from_millis(10));
        assert_eq!(p.declined(), 1);
    }

    #[test]
    fn reads_bypass_the_accelerator() {
        let mut p = presto();
        let done = p.submit(SimTime::ZERO, DiskRequest::read(200_000_000, 8192));
        assert!(done > SimTime::from_millis(5));
        assert_eq!(p.declined(), 0);
    }

    #[test]
    fn sustained_writes_are_limited_by_drain_bandwidth() {
        // Pour 8 MB of 8 KB writes in as fast as the accelerator allows; the
        // completion time of the last write must reflect the disk drain rate
        // (~2 MB/s), not the copy rate (25 MB/s), because the 1 MB cache fills.
        let mut p = presto();
        let total: u64 = 8 * 1024 * 1024;
        let mut addr = 0u64;
        let mut now = SimTime::ZERO;
        while addr < total {
            now = p.submit(now, DiskRequest::write(addr, 8192));
            addr += 8192;
        }
        let secs = now.as_secs_f64();
        let rate = total as f64 / secs;
        assert!(
            (1.5e6..2.6e6).contains(&rate),
            "sustained accelerated rate {rate:.0} B/s should approach disk drain bandwidth"
        );
    }

    #[test]
    fn burst_within_cache_is_copy_speed() {
        let mut p = presto();
        // 512 KB burst fits in the 1 MB cache comfortably.
        let mut now = SimTime::ZERO;
        let mut addr = 0u64;
        while addr < 512 * 1024 {
            now = p.submit(now, DiskRequest::write(addr, 8192));
            addr += 8192;
        }
        // 512 KB at 40 MB/s is about 13 ms; allow generous overheads.
        assert!(now < SimTime::from_millis(40), "{now:?}");
        assert!(p.occupancy_at(now) > 0);
    }

    #[test]
    fn repeated_writes_to_the_same_block_are_absorbed() {
        // The inode-block pattern: the filesystem rewrites the same 8 KB block
        // over and over.  NVRAM absorbs the overwrites; the disk sees the
        // block far fewer times than it was written.
        let mut p = presto();
        let mut now = SimTime::ZERO;
        for _ in 0..200 {
            now = p.submit(now, DiskRequest::write(16_000_000, 8192));
        }
        let flush_done = p.flush_all(now);
        assert!(flush_done >= now);
        let disk_writes = p.underlying().stats().transfers.events();
        assert!(
            disk_writes <= 3,
            "inode block hit the disk {disk_writes} times"
        );
        assert!(p.absorbed_bytes() >= 190 * 8192);
        assert_eq!(p.accepted_stats().transfers.events(), 200);
    }

    #[test]
    fn interleaved_data_and_metadata_still_drain_efficiently() {
        // Alternate a sequential data stream with updates of one far-away
        // metadata block, the pattern a standard NFS server produces.  The
        // drain must still move the data in large transfers.
        let mut p = presto();
        let mut now = SimTime::ZERO;
        let total_data: u64 = 4 * 1024 * 1024;
        let mut addr = 64 * 1024 * 1024;
        while addr < 64 * 1024 * 1024 + total_data {
            now = p.submit(now, DiskRequest::write(addr, 8192));
            now = p.submit(now, DiskRequest::write(16_000_000, 8192));
            addr += 8192;
        }
        p.flush_all(now);
        let stats = p.underlying().stats();
        let mean_transfer = stats.transfers.bytes() as f64 / stats.transfers.events() as f64;
        assert!(
            mean_transfer > 48.0 * 1024.0,
            "mean drain transfer only {mean_transfer:.0} bytes"
        );
        // Sustained rate stayed near the disk's large-transfer bandwidth.
        let rate = total_data as f64 / now.as_secs_f64();
        assert!(rate > 1.2e6, "rate {rate:.0} B/s");
    }

    #[test]
    fn drain_uses_large_transfers() {
        let mut p = presto();
        let mut now = SimTime::ZERO;
        let mut addr = 0u64;
        while addr < 2 * 1024 * 1024 {
            now = p.submit(now, DiskRequest::write(addr, 8192));
            addr += 8192;
        }
        let flush_done = p.flush_all(now);
        assert!(flush_done >= now);
        let disk_stats = p.underlying().stats();
        // 2 MB drained with 128 KB transfers -> roughly 16 disk transactions,
        // far fewer than the 256 8 KB writes accepted.
        assert!(
            disk_stats.transfers.events() <= 20,
            "transfers {}",
            disk_stats.transfers.events()
        );
        assert_eq!(disk_stats.transfers.bytes(), 2 * 1024 * 1024);
        assert_eq!(p.accepted_stats().transfers.events(), 256);
    }

    #[test]
    fn flush_all_on_clean_cache_is_a_noop() {
        let mut p = presto();
        assert_eq!(
            p.flush_all(SimTime::from_millis(3)),
            SimTime::from_millis(3)
        );
    }

    #[test]
    fn describe_and_reset() {
        let mut p = presto();
        p.submit(SimTime::ZERO, DiskRequest::write(0, 8192));
        assert!(p.describe().contains("Presto"));
        assert!(p.describe().contains("RZ26"));
        p.flush_all(SimTime::from_secs(1));
        p.reset_stats();
        assert_eq!(p.stats().transfers.events(), 0);
        assert_eq!(p.accepted_stats().transfers.events(), 0);
        assert_eq!(p.absorbed_bytes(), 0);
    }

    #[test]
    fn noncontiguous_writes_still_drain() {
        let mut p = presto();
        let mut now = SimTime::ZERO;
        // Alternate between two regions so runs keep breaking.
        for i in 0..64u64 {
            let addr = if i % 2 == 0 {
                i * 8192
            } else {
                500_000_000 + i * 8192
            };
            now = p.submit(now, DiskRequest::write(addr, 8192));
        }
        let done = p.flush_all(now);
        assert!(done > now);
        assert_eq!(p.underlying().stats().transfers.bytes(), 64 * 8192);
    }

    #[test]
    fn queued_drains_overlap_spindles_of_a_stripe_set() {
        use wg_disk::StripeSet;
        // Scattered dirty regions so successive drain transfers land on
        // different members of the stripe set.
        let fill = |p: &mut Presto<StripeSet>| {
            let mut now = SimTime::ZERO;
            for i in 0..96u64 {
                let region = (i % 3) * 300_000_000;
                now = p.submit(now, DiskRequest::write(region + (i / 3) * 8192, 8192));
            }
            now
        };
        let mut serial = Presto::new(PrestoParams::default(), StripeSet::three_rz26());
        let mut queued = Presto::new(
            PrestoParams::default().with_queued_submission(true),
            StripeSet::three_rz26(),
        );
        let t1 = fill(&mut serial);
        let t2 = fill(&mut queued);
        let serial_done = serial.flush_all(t1);
        let queued_done = queued.flush_all(t2);
        // Same data reaches the platters either way.
        assert_eq!(
            serial.underlying().stats().transfers.bytes(),
            queued.underlying().stats().transfers.bytes()
        );
        assert!(
            queued_done < serial_done,
            "queued drain {queued_done} not faster than serial {serial_done}"
        );
        // The breakdown shows more than one spindle did the work.
        let spindles = queued.spindle_stats();
        assert_eq!(spindles.len(), 3);
        assert!(
            spindles
                .iter()
                .filter(|s| s.stats.transfers.events() > 0)
                .count()
                >= 2
        );
    }

    #[test]
    fn crash_recover_replays_everything_to_disk() {
        let mut p = presto();
        let mut now = SimTime::ZERO;
        for i in 0..32u64 {
            now = p.submit(now, DiskRequest::write(i * 8192, 8192));
        }
        assert!(p.pending_stable_bytes() > 0, "nothing held in NVRAM");
        let recovered = p.crash_recover(now);
        assert!(recovered > now, "replay should take disk time");
        assert_eq!(p.pending_stable_bytes(), 0);
        assert_eq!(p.underlying().stats().transfers.bytes(), 32 * 8192);
        assert_eq!(p.recoveries(), 1);
    }

    #[test]
    fn battery_failure_degrades_to_write_through_until_repaired() {
        let mut p = presto();
        let mut now = p.submit(SimTime::ZERO, DiskRequest::write(0, 8192));
        // Failure: emergency drain empties the board.
        now = p.set_battery(false, now);
        assert!(!p.battery_healthy());
        assert_eq!(p.pending_stable_bytes(), 0);
        // Degraded writes go to the disk at disk speed.
        let start = now;
        now = p.submit(now, DiskRequest::write(100_000_000, 8192));
        assert!(now > start + Duration::from_millis(5), "not write-through");
        assert_eq!(p.write_through_writes(), 1);
        assert_eq!(p.pending_stable_bytes(), 0);
        // Repair re-arms the accelerator.
        now = p.set_battery(true, now);
        assert!(p.battery_healthy());
        let before = now;
        let done = p.submit(now, DiskRequest::write(200_000_000, 8192));
        assert!(done < before + Duration::from_millis(1), "not re-armed");
        assert!(p.pending_stable_bytes() > 0);
    }

    #[test]
    fn extent_merging_is_exact() {
        let mut p = presto();
        // Three disjoint extents, then one write bridging all of them.
        p.submit(SimTime::ZERO, DiskRequest::write(0, 8192));
        p.submit(SimTime::ZERO, DiskRequest::write(16384, 8192));
        p.submit(SimTime::ZERO, DiskRequest::write(32768, 8192));
        assert_eq!(p.dirty.len(), 3);
        assert_eq!(p.dirty_bytes, 3 * 8192);
        p.submit(SimTime::ZERO, DiskRequest::write(8192, 8192));
        p.submit(SimTime::ZERO, DiskRequest::write(24576, 8192));
        assert_eq!(p.dirty.len(), 1);
        assert_eq!(p.dirty_bytes, 5 * 8192);
        assert_eq!(*p.dirty.get(&0).unwrap(), 5 * 8192);
    }
}
