//! The shared network medium.

use wg_simcore::{Counter, Duration, SimRng, SimTime, Utilization};

/// Which physical medium a [`MediumParams`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum MediumKind {
    /// 10 Mb/s shared Ethernet.
    Ethernet,
    /// 100 Mb/s FDDI ring.
    Fddi,
}

/// Calibration of one network segment.
#[derive(Clone, Debug, serde::Serialize)]
pub struct MediumParams {
    /// Which medium this is.
    pub kind: MediumKind,
    /// Raw signalling rate in bits per second.
    pub bits_per_sec: f64,
    /// Maximum link-layer payload per packet (the IP fragment size).
    pub mtu_payload: u32,
    /// Link + IP/UDP header bytes charged per packet.
    pub header_bytes: u32,
    /// Fixed per-packet gap (preamble, inter-frame spacing, token latency).
    pub per_packet_gap: Duration,
    /// One-way propagation/latency floor for a datagram.
    pub propagation: Duration,
    /// The paper's empirically derived procrastination interval for this
    /// medium (§6.6: "approx. 8 msec for Ethernet ... 5 msec for FDDI").
    pub procrastination: Duration,
}

impl MediumParams {
    /// Private 10 Mb/s Ethernet, as used in Tables 1 and 2.
    pub fn ethernet() -> Self {
        MediumParams {
            kind: MediumKind::Ethernet,
            bits_per_sec: 10e6,
            mtu_payload: 1472,
            header_bytes: 42,
            per_packet_gap: Duration::from_micros(50),
            propagation: Duration::from_micros(100),
            procrastination: Duration::from_millis(8),
        }
    }

    /// Private 100 Mb/s FDDI ring, as used in Tables 3–6 and Figures 1–3.
    pub fn fddi() -> Self {
        MediumParams {
            kind: MediumKind::Fddi,
            bits_per_sec: 100e6,
            mtu_payload: 4312,
            header_bytes: 40,
            per_packet_gap: Duration::from_micros(15),
            propagation: Duration::from_micros(80),
            procrastination: Duration::from_millis(5),
        }
    }

    /// Number of link packets needed to carry a UDP datagram of `bytes`
    /// payload bytes.
    pub fn fragments_for(&self, bytes: usize) -> u32 {
        if bytes == 0 {
            return 1;
        }
        bytes.div_ceil(self.mtu_payload as usize) as u32
    }

    /// Conservative lookahead window of a segment built on this medium: a
    /// strict lower bound on the delay between a transmit at `t` and its
    /// arrival.  Any real datagram carries at least one payload byte on top
    /// of the empty-datagram serialisation charged here, so arrivals land
    /// strictly *after* `t + lookahead()` — the inequality the parallel
    /// simulation core's horizon protocol relies on (see
    /// `wg_simcore::parallel`).
    pub fn lookahead(&self) -> Duration {
        let l = self.serialisation_time(0) + self.propagation;
        assert!(
            !l.is_zero(),
            "a zero-lookahead medium cannot bound cross-partition arrivals"
        );
        l
    }

    /// Pure serialisation time of a datagram of `bytes` payload bytes
    /// (fragment headers and inter-packet gaps included, propagation
    /// excluded).
    pub fn serialisation_time(&self, bytes: usize) -> Duration {
        let fragments = self.fragments_for(bytes) as u64;
        let wire_bytes = bytes as u64 + fragments * self.header_bytes as u64;
        let bits = wire_bytes as f64 * 8.0;
        Duration::from_secs_f64(bits / self.bits_per_sec)
            + self.per_packet_gap.saturating_mul(fragments)
    }
}

/// The result of attempting to transmit a datagram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransmitOutcome {
    /// The datagram will be fully received at the given time.
    Delivered {
        /// Arrival time of the last fragment at the receiver.
        arrives_at: SimTime,
    },
    /// The datagram was lost (a fragment was dropped); the sender will only
    /// find out via its retransmission timer.
    Lost,
}

/// A shared, half-duplex network segment carrying NFS traffic between one or
/// more clients and the server.
///
/// Both directions contend for the same signalling capacity, as they did on
/// the paper's private Ethernet and FDDI segments.
#[derive(Clone, Debug)]
pub struct Medium {
    params: MediumParams,
    busy_until: SimTime,
    loss_probability: f64,
    rng: SimRng,
    to_server: Counter,
    to_client: Counter,
    busy: Utilization,
    lost: u64,
    /// Injected loss windows: while `from <= now < until`, datagrams are
    /// additionally dropped with the window's probability (a probability of
    /// 1.0 or more is a clean partition).  Empty in every default run.
    windows: Vec<(SimTime, SimTime, f64)>,
}

/// Direction of a transfer on the segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Client-to-server (requests).
    ToServer,
    /// Server-to-client (replies).
    ToClient,
}

impl Medium {
    /// A loss-free segment (the paper's case study assumes "we don't have any
    /// lost requests or responses").
    pub fn new(params: MediumParams) -> Self {
        Medium {
            params,
            busy_until: SimTime::ZERO,
            loss_probability: 0.0,
            rng: SimRng::seed_from(0),
            to_server: Counter::new(),
            to_client: Counter::new(),
            busy: Utilization::new(),
            lost: 0,
            windows: Vec::new(),
        }
    }

    /// A segment that independently drops each datagram with probability
    /// `loss_probability`, used by the retransmission tests and ablations.
    pub fn with_loss(params: MediumParams, loss_probability: f64, seed: u64) -> Self {
        let mut m = Medium::new(params);
        m.loss_probability = loss_probability.clamp(0.0, 1.0);
        m.rng = SimRng::seed_from(seed);
        m
    }

    /// The segment's calibration.
    pub fn params(&self) -> &MediumParams {
        &self.params
    }

    /// The procrastination interval the paper prescribes for this medium.
    pub fn procrastination(&self) -> Duration {
        self.params.procrastination
    }

    /// Inject a loss window: between `from` (inclusive) and `until`
    /// (exclusive) datagrams are additionally dropped with `probability`.
    /// A probability of 1.0 or more partitions the segment outright: every
    /// datagram in the window is dropped, and the partition decision itself
    /// consumes no randomness, so the base loss stream of the surviving
    /// traffic is exactly what it would have been without the window.
    pub fn inject_loss_window(&mut self, from: SimTime, until: SimTime, probability: f64) {
        self.windows.push((from, until, probability.max(0.0)));
    }

    /// The injected-window loss probability active at `now` (0.0 outside all
    /// windows; overlapping windows take the maximum).
    fn window_probability(&self, now: SimTime) -> f64 {
        self.windows
            .iter()
            .filter(|&&(from, until, _)| from <= now && now < until)
            .map(|&(_, _, p)| p)
            .fold(0.0, f64::max)
    }

    /// Transmit a datagram of `bytes` payload bytes in the given direction,
    /// starting no earlier than `now`.
    pub fn transmit(&mut self, now: SimTime, bytes: usize, dir: Direction) -> TransmitOutcome {
        let ser = self.params.serialisation_time(bytes);
        let start = now.max(self.busy_until);
        let end = start + ser;
        self.busy_until = end;
        self.busy.add_busy(ser);
        // Base loss draw first, for every datagram, so the base rng stream —
        // and with it the fate of traffic outside any window — is identical
        // whether or not loss windows were injected.
        if self.loss_probability > 0.0 && self.rng.chance(self.loss_probability) {
            self.lost += 1;
            return TransmitOutcome::Lost;
        }
        if !self.windows.is_empty() {
            let window_p = self.window_probability(now);
            if window_p >= 1.0 {
                // Clean partition: drop without a random draw.
                self.lost += 1;
                return TransmitOutcome::Lost;
            }
            if window_p > 0.0 && self.rng.chance(window_p) {
                self.lost += 1;
                return TransmitOutcome::Lost;
            }
        }
        match dir {
            Direction::ToServer => self.to_server.record(bytes as u64),
            Direction::ToClient => self.to_client.record(bytes as u64),
        }
        TransmitOutcome::Delivered {
            arrives_at: end + self.params.propagation,
        }
    }

    /// Bytes and datagrams carried toward the server.
    pub fn to_server_stats(&self) -> &Counter {
        &self.to_server
    }

    /// Bytes and datagrams carried toward the client(s).
    pub fn to_client_stats(&self) -> &Counter {
        &self.to_client
    }

    /// Number of datagrams dropped by loss injection.
    pub fn lost_datagrams(&self) -> u64 {
        self.lost
    }

    /// Segment utilisation percentage over an observed span.
    pub fn utilization_percent(&self, observed: Duration) -> f64 {
        self.busy.percent(observed)
    }

    /// The time the segment becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_counts_match_mtu() {
        let eth = MediumParams::ethernet();
        assert_eq!(eth.fragments_for(0), 1);
        assert_eq!(eth.fragments_for(1000), 1);
        assert_eq!(eth.fragments_for(1472), 1);
        assert_eq!(eth.fragments_for(1473), 2);
        // A little over 8 KB (RPC header + 8 KB data) needs 6 Ethernet fragments.
        assert_eq!(eth.fragments_for(8300), 6);
        let fddi = MediumParams::fddi();
        assert_eq!(fddi.fragments_for(8300), 2);
    }

    #[test]
    fn an_8k_write_takes_about_7ms_on_ethernet() {
        // 8300 bytes + 6*42 header bytes = 8552 bytes = 68416 bits at 10 Mb/s
        // = 6.84 ms, plus 6 * 50 us of gaps = 7.14 ms.
        let eth = MediumParams::ethernet();
        let t = eth.serialisation_time(8300);
        assert!(
            t > Duration::from_millis(6) && t < Duration::from_millis(8),
            "{t}"
        );
        // And well under 1 ms on FDDI.
        let fddi = MediumParams::fddi();
        assert!(fddi.serialisation_time(8300) < Duration::from_millis(1));
    }

    #[test]
    fn shared_medium_serialises_traffic() {
        let mut m = Medium::new(MediumParams::ethernet());
        let a = m.transmit(SimTime::ZERO, 8300, Direction::ToServer);
        let b = m.transmit(SimTime::ZERO, 8300, Direction::ToServer);
        let (ta, tb) = match (a, b) {
            (
                TransmitOutcome::Delivered { arrives_at: ta },
                TransmitOutcome::Delivered { arrives_at: tb },
            ) => (ta, tb),
            _ => panic!("no loss expected"),
        };
        assert!(tb > ta);
        // Second datagram waits for the first: arrival gap equals one
        // serialisation time.
        let gap = tb.since(ta);
        let ser = m.params().serialisation_time(8300);
        assert_eq!(gap, ser);
    }

    #[test]
    fn replies_and_requests_contend() {
        let mut m = Medium::new(MediumParams::fddi());
        m.transmit(SimTime::ZERO, 8300, Direction::ToServer);
        let request_ser = m.params().serialisation_time(8300);
        let reply = m.transmit(SimTime::ZERO, 128, Direction::ToClient);
        match reply {
            TransmitOutcome::Delivered { arrives_at } => {
                // The reply had to wait for the request occupying the segment.
                assert!(arrives_at > SimTime::ZERO + request_ser);
            }
            TransmitOutcome::Lost => panic!("no loss expected"),
        }
        assert_eq!(m.to_server_stats().events(), 1);
        assert_eq!(m.to_client_stats().events(), 1);
    }

    #[test]
    fn procrastination_intervals_match_the_paper() {
        assert_eq!(
            MediumParams::ethernet().procrastination,
            Duration::from_millis(8)
        );
        assert_eq!(
            MediumParams::fddi().procrastination,
            Duration::from_millis(5)
        );
        assert_eq!(
            Medium::new(MediumParams::fddi()).procrastination(),
            Duration::from_millis(5)
        );
    }

    #[test]
    fn loss_injection_drops_some_datagrams() {
        let mut m = Medium::with_loss(MediumParams::ethernet(), 0.5, 99);
        let mut lost = 0;
        for i in 0..200 {
            let outcome = m.transmit(SimTime::from_millis(i * 10), 1000, Direction::ToServer);
            if outcome == TransmitOutcome::Lost {
                lost += 1;
            }
        }
        assert!(lost > 50 && lost < 150, "lost {lost}");
        assert_eq!(m.lost_datagrams(), lost);
    }

    #[test]
    fn zero_loss_never_drops() {
        let mut m = Medium::new(MediumParams::fddi());
        for i in 0..100 {
            assert!(matches!(
                m.transmit(SimTime::from_millis(i), 512, Direction::ToClient),
                TransmitOutcome::Delivered { .. }
            ));
        }
        assert_eq!(m.lost_datagrams(), 0);
    }

    #[test]
    fn partition_window_drops_everything_inside_and_nothing_outside() {
        let mut m = Medium::new(MediumParams::fddi());
        m.inject_loss_window(SimTime::from_millis(100), SimTime::from_millis(200), 1.0);
        assert!(matches!(
            m.transmit(SimTime::from_millis(50), 512, Direction::ToServer),
            TransmitOutcome::Delivered { .. }
        ));
        assert_eq!(
            m.transmit(SimTime::from_millis(150), 512, Direction::ToServer),
            TransmitOutcome::Lost
        );
        assert!(matches!(
            m.transmit(SimTime::from_millis(250), 512, Direction::ToServer),
            TransmitOutcome::Delivered { .. }
        ));
        assert_eq!(m.lost_datagrams(), 1);
    }

    #[test]
    fn partition_window_does_not_perturb_the_base_loss_stream() {
        // The same seeded lossy medium must make identical base-loss
        // decisions about the surviving traffic whether or not a partition
        // window swallowed unrelated datagrams in between.
        let drops = |partition: bool| {
            let mut m = Medium::with_loss(MediumParams::ethernet(), 0.3, 1234);
            if partition {
                m.inject_loss_window(SimTime::from_millis(400), SimTime::from_millis(600), 1.0);
            }
            let mut outcomes = Vec::new();
            for i in 0..100u64 {
                let t = SimTime::from_millis(i * 10);
                let lost = m.transmit(t, 512, Direction::ToServer) == TransmitOutcome::Lost;
                // Only compare traffic outside the partition.
                if !(SimTime::from_millis(400) <= t && t < SimTime::from_millis(600)) {
                    outcomes.push(lost);
                }
            }
            outcomes
        };
        assert_eq!(drops(false), drops(true));
    }

    #[test]
    fn burst_window_drops_extra_datagrams() {
        let mut m = Medium::new(MediumParams::fddi());
        m.inject_loss_window(SimTime::ZERO, SimTime::from_secs(10), 0.5);
        let mut lost = 0;
        for i in 0..200u64 {
            if m.transmit(SimTime::from_millis(i * 10), 512, Direction::ToServer)
                == TransmitOutcome::Lost
            {
                lost += 1;
            }
        }
        assert!(lost > 50 && lost < 150, "lost {lost}");
    }

    #[test]
    fn utilization_reflects_busy_time() {
        let mut m = Medium::new(MediumParams::ethernet());
        m.transmit(SimTime::ZERO, 8300, Direction::ToServer);
        let util = m.utilization_percent(Duration::from_millis(100));
        assert!(util > 5.0 && util < 10.0, "util {util}");
        assert!(m.free_at() > SimTime::ZERO);
    }
}
