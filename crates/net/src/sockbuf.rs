//! The server socket buffer.
//!
//! "A typical NFS server system simply waits for work to appear on an incoming
//! request queue.  This queue is the socket buffer allocated for the NFS
//! socket.  [...] If the queue fills (requests coming in faster than they can
//! be processed) then some incoming requests may be lost and client
//! backoff/retransmission comes into play." (§4.2)
//!
//! [`SocketBuffer`] is that queue: a FIFO of incoming datagrams bounded by a
//! byte capacity (DEC OSF/1 used at most 0.25 MB, per the paper's
//! Conclusions).  It also supports the "mbuf hunter" (§6.5): scanning the
//! queued-but-unserviced requests for another write to a given file, which is
//! how a fast Prestoserve server discovers gathering opportunities without
//! blocking.

use std::collections::VecDeque;

/// The default socket buffer capacity: 0.25 MB, the DEC OSF/1 maximum the
/// paper quotes.
pub const DEFAULT_CAPACITY_BYTES: usize = 256 * 1024;

/// A bounded FIFO of incoming datagrams with byte-capacity accounting.
#[derive(Clone, Debug)]
pub struct SocketBuffer<T> {
    entries: VecDeque<(usize, T)>,
    capacity_bytes: usize,
    used_bytes: usize,
    dropped: u64,
    accepted: u64,
}

impl<T> SocketBuffer<T> {
    /// A buffer with the OSF/1 default capacity of 0.25 MB.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY_BYTES)
    }

    /// A buffer with an explicit byte capacity.
    pub fn with_capacity(capacity_bytes: usize) -> Self {
        SocketBuffer {
            entries: VecDeque::new(),
            capacity_bytes,
            used_bytes: 0,
            dropped: 0,
            accepted: 0,
        }
    }

    /// Offer an incoming datagram of `size` bytes.  Returns `true` if it was
    /// queued, `false` if it was dropped because the buffer was full (the
    /// caller's client will eventually retransmit).
    pub fn offer(&mut self, size: usize, item: T) -> bool {
        if self.used_bytes + size > self.capacity_bytes {
            self.dropped += 1;
            return false;
        }
        self.used_bytes += size;
        self.accepted += 1;
        self.entries.push_back((size, item));
        true
    }

    /// Dequeue the oldest datagram.
    pub fn take(&mut self) -> Option<T> {
        let (size, item) = self.entries.pop_front()?;
        self.used_bytes -= size;
        Some(item)
    }

    /// Peek at the queued datagrams without consuming them, oldest first.
    ///
    /// This is the scan the paper's "mbuf hunter" performs: an nfsd that has
    /// already pushed its data into the filesystem looks at the unserviced
    /// queue for another write to the same file before deciding whether to
    /// defer its reply.
    pub fn scan(&self) -> impl Iterator<Item = &T> {
        self.entries.iter().map(|(_, item)| item)
    }

    /// Remove and return the first queued datagram matching a predicate,
    /// preserving the order of the others.  Used by gathering servers that
    /// pull a matching follow-on write directly out of the socket buffer.
    pub fn take_matching(&mut self, mut pred: impl FnMut(&T) -> bool) -> Option<T> {
        let idx = self.entries.iter().position(|(_, item)| pred(item))?;
        let (size, item) = self.entries.remove(idx)?;
        self.used_bytes -= size;
        Some(item)
    }

    /// Number of queued datagrams.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently queued.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// The byte capacity.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Datagrams dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Datagrams accepted into the buffer over its lifetime.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }
}

impl<T> Default for SocketBuffer<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut sb = SocketBuffer::new();
        for i in 0..5u32 {
            assert!(sb.offer(100, i));
        }
        assert_eq!(sb.len(), 5);
        let order: Vec<_> = std::iter::from_fn(|| sb.take()).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert!(sb.is_empty());
        assert_eq!(sb.used_bytes(), 0);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let mut sb = SocketBuffer::with_capacity(1000);
        assert!(sb.offer(600, "a"));
        assert!(!sb.offer(600, "b"));
        assert!(sb.offer(400, "c"));
        assert_eq!(sb.dropped(), 1);
        assert_eq!(sb.accepted(), 2);
        assert_eq!(sb.used_bytes(), 1000);
        assert_eq!(sb.capacity_bytes(), 1000);
    }

    #[test]
    fn default_capacity_matches_osf1() {
        let sb: SocketBuffer<u8> = SocketBuffer::new();
        assert_eq!(sb.capacity_bytes(), 256 * 1024);
    }

    #[test]
    fn scan_sees_everything_without_consuming() {
        let mut sb = SocketBuffer::new();
        sb.offer(10, 1u32);
        sb.offer(10, 2u32);
        sb.offer(10, 3u32);
        let seen: Vec<_> = sb.scan().copied().collect();
        assert_eq!(seen, vec![1, 2, 3]);
        assert_eq!(sb.len(), 3);
    }

    #[test]
    fn take_matching_pulls_from_the_middle() {
        let mut sb = SocketBuffer::new();
        sb.offer(8300, ("file-a", 0u32));
        sb.offer(8300, ("file-b", 1u32));
        sb.offer(8300, ("file-a", 2u32));
        let hit = sb.take_matching(|(f, _)| *f == "file-b");
        assert_eq!(hit, Some(("file-b", 1)));
        assert_eq!(sb.len(), 2);
        assert_eq!(sb.used_bytes(), 2 * 8300);
        // Remaining order preserved.
        assert_eq!(sb.take(), Some(("file-a", 0)));
        assert_eq!(sb.take(), Some(("file-a", 2)));
        // No match returns None and changes nothing.
        assert_eq!(sb.take_matching(|_| false), None);
    }

    #[test]
    fn freed_space_can_be_reused() {
        let mut sb = SocketBuffer::with_capacity(100);
        assert!(sb.offer(100, 1u8));
        assert!(!sb.offer(1, 2u8));
        sb.take();
        assert!(sb.offer(100, 3u8));
        assert_eq!(sb.dropped(), 1);
    }
}
