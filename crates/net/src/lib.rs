//! # wg-net — network medium model and the server socket buffer
//!
//! The paper's experiments run over two private networks: 10 Mb/s Ethernet and
//! 100 Mb/s FDDI.  Both are shared media: request datagrams from the client
//! and reply datagrams from the server serialise onto the same segment.  NFS
//! requests are UDP datagrams of up to a little over 8 KB, fragmented into
//! link-layer packets (the "freight train of 8K datagrams fragmented into
//! transport units" of the paper's case study).
//!
//! This crate provides:
//!
//! * [`MediumParams`] — link calibrations ([`MediumParams::ethernet`],
//!   [`MediumParams::fddi`]), including the per-medium procrastination
//!   interval the paper derived empirically (8 ms Ethernet, 5 ms FDDI),
//! * [`Medium`] — the shared half-duplex link model with fragmentation,
//!   serialisation/propagation delay, optional loss injection and per
//!   direction byte accounting,
//! * [`SocketBuffer`] — the bounded server-side incoming request queue that
//!   both drops datagrams when overrun (triggering client retransmission) and
//!   is scanned by the paper's "mbuf hunter" looking for follow-on writes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod medium;
pub mod sockbuf;

pub use medium::{Medium, MediumKind, MediumParams, TransmitOutcome};
pub use sockbuf::SocketBuffer;
