//! # wg-workload — experiment orchestration and load generation
//!
//! This crate assembles complete client ⇄ network ⇄ server systems out of the
//! component models and runs the experiments of the paper's evaluation:
//!
//! * [`system`] — the single-client 10 MB file-copy system behind Tables 1–6
//!   and Figure 1: a [`wg_client::FileWriterClient`], a shared
//!   [`wg_net::Medium`] (Ethernet or FDDI) and a [`wg_server::NfsServer`]
//!   wired together through one deterministic event loop.
//! * [`multi`] — the N-client scale-out system reproducing the paper's
//!   "several clients" remarks: independent salted write streams sharing one
//!   medium (or riding per-client LAN segments) into one server, with
//!   per-client, aggregate and fairness results.
//! * [`sfs`] — a SPEC SFS 1.0 (LADDIS)-like mixed-operation load generator
//!   and the throughput/latency sweep behind Figures 2 and 3, scalable to N
//!   independent generator streams over the same per-client LAN topology
//!   and sweepable in parallel on a thread pool.
//! * [`results`] — the result records the benchmark harness prints, shaped
//!   like the rows of the paper's tables.
//!
//! Everything is deterministic: the same configuration and seed produce the
//! same numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod multi;
pub mod results;
pub mod sfs;
pub mod system;

pub use multi::{MultiClientConfig, MultiClientSystem};
pub use results::{FileCopyResult, MultiClientResult, SfsPoint, TableRow};
pub use sfs::{SfsConfig, SfsMix, SfsRunStats, SfsSweep};
pub use system::{ExperimentConfig, FileCopySystem, NetworkKind};
