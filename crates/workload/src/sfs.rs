//! A SPEC SFS 1.0 (LADDIS)-like mixed-operation load generator.
//!
//! Figures 2 and 3 of the paper plot NFS throughput (SPECnfs ops/sec) against
//! average response time for a DEC 3800 server with and without write
//! gathering, driven by the SPEC SFS 1.0 benchmark.  SFS itself is a large
//! proprietary harness; what matters for the reproduction is its *shape*:
//!
//! * a fixed operation mix in which writes are a small (≈15 %) but expensive
//!   fraction ([WITT93]),
//! * an offered load swept upward until the server saturates,
//! * the reported curve of achieved ops/sec vs average latency.
//!
//! [`SfsSystem`] generates Poisson streams of operations drawn from the
//! LADDIS mix against a pre-populated filesystem, and [`SfsSweep`] runs the
//! load sweep that regenerates the figures.
//!
//! # Scale-out
//!
//! The real SFS harness drives a server from a *fleet* of load-generating
//! clients; the single-generator configuration of the original figures
//! saturates on single-LAN and single-dispatch-queue artifacts long before
//! the sharded, multi-core, pipelined server of later PRs does.
//! [`SfsConfig::clients`] grows the harness to N independent generator
//! streams — per-client RNG salt, xid partition and scratch-file namespace —
//! optionally over per-client LAN segments
//! ([`SfsConfig::per_client_lans`], the topology of
//! [`crate::MultiClientSystem`]), feeding one server configured with the full
//! shard/core/spindle/overlap stack.  The defaults (`clients = 1`, shared
//! LAN, one shard, one core, serial driver) reproduce the original
//! single-generator points exactly.
//!
//! # Hot-loop discipline
//!
//! Steady-state op generation performs no per-operation heap allocation for
//! LOOKUP / READ / GETATTR / WRITE-burst traffic: file names are interned
//! `Arc<str>`s picked by index, write payloads are fill patterns, and the
//! outstanding-call table is a pre-sized ring keyed by xid offset rather
//! than a hash map.  Only CREATE mints a fresh name (it has to — every
//! created file needs a unique name) and scratch-file rotation allocates a
//! generation name; both are counted in [`SfsSystem::name_mints`] so tests
//! can pin "nothing else allocates".

use std::sync::Arc;
use wg_simcore::FxHashMap;

use wg_net::medium::Direction;
use wg_net::TransmitOutcome;
use wg_nfsproto::{
    CommitArgs, CreateArgs, DirOpArgs, FileHandle, GetattrArgs, LockArgs, NfsCall, NfsCallBody,
    NfsReply, NfsReplyBody, NfsStatus, ReadArgs, ReaddirArgs, RenewArgs, Sattr, StableHow,
    StatusReply, WriteArgs, Xid,
};
use wg_server::{NfsServer, ServerAction, ServerConfig, ServerInput, StabilityMode, WritePolicy};
use wg_simcore::{
    CalStats, Duration, EventQueue, FaultKind, FaultPlan, LatencyStat, SimRng, SimTime,
};

use crate::multi::ClientLans;
use crate::results::{MultiClientResult, SfsPoint};
use crate::system::NetworkKind;

mod par;

/// The operation mix, as percentages that sum to 100.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct SfsMix {
    /// LOOKUP share.
    pub lookup: f64,
    /// READ share.
    pub read: f64,
    /// WRITE share (the paper quotes 15 %).
    pub write: f64,
    /// GETATTR share.
    pub getattr: f64,
    /// READDIR share.
    pub readdir: f64,
    /// CREATE share.
    pub create: f64,
    /// REMOVE share.
    pub remove: f64,
    /// SETATTR share.
    pub setattr: f64,
    /// STATFS share.
    pub statfs: f64,
}

impl SfsMix {
    /// The LADDIS / SPEC SFS 1.0 mix (writes at 15 %).
    pub fn laddis() -> Self {
        SfsMix {
            lookup: 34.0,
            read: 22.0,
            write: 15.0,
            getattr: 13.0,
            readdir: 7.0,
            create: 3.0,
            remove: 3.0,
            setattr: 2.0,
            statfs: 1.0,
        }
    }

    /// A mix of only the allocation-free steady-state operations (LOOKUP,
    /// READ, GETATTR and WRITE bursts), in LADDIS proportions.  Used by the
    /// zero-allocation probes: a generator driven by this mix must perform no
    /// per-op heap allocation at all.
    pub fn steady_state() -> Self {
        SfsMix {
            lookup: 40.0,
            read: 26.0,
            write: 18.0,
            getattr: 16.0,
            readdir: 0.0,
            create: 0.0,
            remove: 0.0,
            setattr: 0.0,
            statfs: 0.0,
        }
    }

    fn weights(&self) -> [f64; 9] {
        [
            self.lookup,
            self.read,
            self.write,
            self.getattr,
            self.readdir,
            self.create,
            self.remove,
            self.setattr,
            self.statfs,
        ]
    }
}

/// Number of scratch files each generator's write bursts rotate over.
const SCRATCH_SLOTS: usize = 32;

/// Size of one write burst chunk (NFS v2 clients write in 8 KB blocks).
const CHUNK: u64 = 8192;

/// First xid of client 0's window (kept from the single-client harness so
/// default runs replay identically).
const XID_ORIGIN: u32 = 0x2000_0000;

/// Configuration of one SFS-style measurement point.
#[derive(Clone, Debug)]
pub struct SfsConfig {
    /// Network medium (the paper's SFS runs use FDDI).
    pub network: NetworkKind,
    /// Server write policy.
    pub policy: WritePolicy,
    /// Prestoserve acceleration (Figure 3).
    pub prestoserve: bool,
    /// Server spindles (the Figure 2/3 server has a large disk farm; several
    /// spindles keep the disk from being the first bottleneck).
    pub spindles: usize,
    /// Number of nfsds (32 in the figures' configuration).
    pub nfsds: usize,
    /// *Total* offered load in operations per second, split evenly across the
    /// generator streams.
    pub offered_ops_per_sec: f64,
    /// Measured interval of simulated time.
    pub duration: Duration,
    /// Number of files pre-created in the exported filesystem (shared by
    /// every client's LOOKUP/READ/GETATTR traffic).
    pub file_count: usize,
    /// Size of each pre-created file.
    pub file_size: u64,
    /// Operation mix.
    pub mix: SfsMix,
    /// Number of consecutive sequential 8 KB writes issued when a write is
    /// drawn from the mix.  LADDIS writes whole files in sequential chunks,
    /// which is the burstiness write gathering exploits; each write in the
    /// burst still counts as one NFS operation so the mix percentages hold.
    pub write_burst: usize,
    /// RNG seed (runs are deterministic per seed; each client stream derives
    /// its own generator from this).
    pub seed: u64,
    /// Number of independent load-generator streams (1 = the original
    /// single-client harness, bit-identical to it).
    pub clients: usize,
    /// Give every client stream its own LAN segment into the server instead
    /// of contending on one shared medium.
    pub per_client_lans: bool,
    /// Number of server request-path shards (see
    /// [`wg_server::ServerConfig::shards`]).
    pub shards: usize,
    /// Number of server CPU cores (see [`wg_server::ServerConfig::cores`]).
    pub cores: usize,
    /// Pipelined storage-stack execution on the server (see
    /// [`wg_server::ServerConfig::io_overlap`]).
    pub io_overlap: bool,
    /// FFS-style inode groups on the exported filesystem (see
    /// [`wg_server::ServerConfig::inode_groups`]).  `1` keeps the flat
    /// layout of the original figures; the scaled harness spreads the
    /// working set's inode blocks across the stripe so one member spindle
    /// does not absorb every metadata flush.
    pub inode_groups: usize,
    /// Buffer-cache read caching on the server (see
    /// [`wg_server::ServerConfig::read_caching`]).  Off in the original
    /// figures (every read of the pre-populated set pays a disk trip); the
    /// scaled harness turns it on so the bounded working set stops
    /// re-reading the same blocks from a saturated disk farm.
    pub read_caching: bool,
    /// Largest append offset a scratch write file grows to before the
    /// generator rotates to a fresh file.  UFS caps a file at ≈16 MB
    /// (12 direct + 2048 single-indirect 8 KB blocks); the rotation keeps
    /// long, write-hot runs from silently wrapping offsets past the cap the
    /// way the old `offset as u32` append stream did.
    pub scratch_file_limit: u64,
    /// Fault-injection schedule.  Empty (the default) keeps the fault layer
    /// inert and the run bit-identical to a build without it.
    pub fault_plan: FaultPlan,
    /// Steady per-datagram loss probability on every LAN segment.  `0.0`
    /// (the default) consumes no randomness at all; a positive rate seeds
    /// each segment's loss stream from the cell's `(seed, offered load,
    /// segment)` alone, so sweep cells draw identical loss patterns whether
    /// they run serially or on worker threads.
    pub loss_probability: f64,
    /// Retransmit timeout of the first retry, when the fault layer is armed.
    pub retry_initial_timeout: Duration,
    /// Attempts after which an unanswered call is abandoned and counted in
    /// `gave_up` — a counted failure, never a silent success.
    pub max_retransmits: u32,
    /// Worker threads driving one run's event loops.  `0` or `1` (the
    /// default) keeps the serial loop; `≥ 2` partitions the topology into
    /// per-LAN-segment event loops plus a server/disk island synchronised by
    /// conservative lookahead ([`wg_simcore::parallel`]), bit-identical to
    /// the serial run.
    pub sim_threads: usize,
    /// Pages of the server's bounded unified buffer cache (`0`, the default,
    /// keeps the paper's unbounded delayed-write pool and replays every
    /// original figure point byte-for-byte).
    pub cache_pages: u64,
    /// Dirty-page throttle fraction of the unified cache (see
    /// [`wg_server::ServerConfig::dirty_ratio`]).
    pub dirty_ratio: f64,
    /// Write-stability regime of the cell.  Under
    /// [`StabilityMode::Unstable`] every write burst is issued as
    /// `WRITE(UNSTABLE)` and chased by one whole-file `COMMIT` — the NFSv3
    /// write path — instead of the v2 per-write synchronous commit.
    pub stability: StabilityMode,
    /// Arm the client-state layer: every stream registers a lease, renews it
    /// each [`SfsConfig::lease_renew_interval`], acquires one byte-range
    /// lock, and runs the grace-period reclaim protocol after server
    /// crashes.  Off (the default) keeps the stateless harness bit-identical
    /// to the pre-lease build.
    pub leases: bool,
    /// How often each stream renews its lease (every stream ticks in the
    /// same interval window — at scale that *is* the renewal storm).
    pub lease_renew_interval: Duration,
    /// Server-side lease lifetime (must exceed the renew interval or every
    /// client expires between renewals).
    pub lease_duration: Duration,
    /// Server-side post-crash grace window.
    pub grace_period: Duration,
    /// Client-reboot churn: each stream reboots (new boot verifier, all
    /// state forgotten) once per this interval, staggered across streams.
    /// [`Duration::ZERO`] (the default) disables churn.
    pub churn_interval: Duration,
}

impl SfsConfig {
    /// A Figure 2-style configuration at a given offered load.
    pub fn figure2(offered_ops_per_sec: f64, policy: WritePolicy) -> Self {
        SfsConfig {
            network: NetworkKind::Fddi,
            policy,
            prestoserve: false,
            // The Figure 2/3 server is a DEC 3800 with "20 DISKS, 5 SCSI
            // BUSES"; six spindles keeps the disk farm from being the first
            // bottleneck without simulating all twenty.
            spindles: 6,
            nfsds: 32,
            offered_ops_per_sec,
            duration: Duration::from_secs(20),
            file_count: 200,
            file_size: 128 * 1024,
            mix: SfsMix::laddis(),
            write_burst: 8,
            seed: 1993,
            clients: 1,
            per_client_lans: false,
            shards: 1,
            cores: 1,
            io_overlap: false,
            inode_groups: 1,
            read_caching: false,
            scratch_file_limit: 8 * 1024 * 1024,
            fault_plan: FaultPlan::new(),
            loss_probability: 0.0,
            retry_initial_timeout: Duration::from_millis(700),
            max_retransmits: 8,
            sim_threads: 0,
            cache_pages: 0,
            dirty_ratio: 0.5,
            stability: StabilityMode::Stable,
            leases: false,
            lease_renew_interval: Duration::from_secs(1),
            lease_duration: Duration::from_secs(3),
            grace_period: Duration::from_millis(500),
            churn_interval: Duration::ZERO,
        }
    }

    /// A Figure 3-style configuration (Prestoserve in front of the disks).
    pub fn figure3(offered_ops_per_sec: f64, policy: WritePolicy) -> Self {
        SfsConfig {
            prestoserve: true,
            ..SfsConfig::figure2(offered_ops_per_sec, policy)
        }
    }

    /// The scaled-out harness: `clients` generator streams over per-client
    /// LANs through the sharded (4-way), multi-core (4), pipelined server —
    /// the full stack of PRs 3–4 under the Figure 2 workload.
    pub fn scaled(offered_ops_per_sec: f64, policy: WritePolicy, clients: usize) -> Self {
        SfsConfig::figure2(offered_ops_per_sec, policy)
            .with_clients(clients)
            .with_per_client_lans(true)
            .with_shards(4)
            .with_cores(4)
            .with_io_overlap(true)
            .with_inode_groups(64)
            .with_read_caching(true)
    }

    /// Set the number of generator streams.
    pub fn with_clients(mut self, n: usize) -> Self {
        self.clients = n.max(1);
        self
    }

    /// Give every client stream its own LAN segment.
    pub fn with_per_client_lans(mut self, on: bool) -> Self {
        self.per_client_lans = on;
        self
    }

    /// Shard the server's request path `n` ways.
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Give the server `n` CPU cores.
    pub fn with_cores(mut self, n: usize) -> Self {
        self.cores = n.max(1);
        self
    }

    /// Enable pipelined storage-stack execution on the server.
    pub fn with_io_overlap(mut self, on: bool) -> Self {
        self.io_overlap = on;
        self
    }

    /// Spread the exported filesystem's inodes over `n` FFS-style groups.
    pub fn with_inode_groups(mut self, n: usize) -> Self {
        self.inode_groups = n.max(1);
        self
    }

    /// Keep read-fetched blocks resident in the server's buffer cache.
    pub fn with_read_caching(mut self, on: bool) -> Self {
        self.read_caching = on;
        self
    }

    /// Use a stripe set of `n` spindles.
    pub fn with_spindles(mut self, n: usize) -> Self {
        self.spindles = n.max(1);
        self
    }

    /// Set the scratch-file rotation limit (test hook; the default 8 MB
    /// stays well inside the ≈16 MB UFS single-indirect file cap).
    pub fn with_scratch_file_limit(mut self, bytes: u64) -> Self {
        self.scratch_file_limit = bytes;
        self
    }

    /// Attach a fault-injection schedule to the run.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Drop datagrams on every LAN segment with probability `p`.
    pub fn with_loss(mut self, p: f64) -> Self {
        self.loss_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Override the retry knobs (first-retry timeout and attempt cap).
    pub fn with_retry(mut self, initial_timeout: Duration, max_retransmits: u32) -> Self {
        self.retry_initial_timeout = initial_timeout;
        self.max_retransmits = max_retransmits;
        self
    }

    /// Drive the run with `n` cooperating event loops (`≤ 1` keeps the
    /// serial driver).  Results are bit-identical either way.
    pub fn with_sim_threads(mut self, n: usize) -> Self {
        self.sim_threads = n;
        self
    }

    /// Arm the server's bounded unified buffer cache with `pages` pages
    /// (`0` disarms it).
    pub fn with_unified_cache(mut self, pages: u64) -> Self {
        self.cache_pages = pages;
        self
    }

    /// Set the dirty-page throttle fraction of the unified cache.
    pub fn with_dirty_ratio(mut self, ratio: f64) -> Self {
        self.dirty_ratio = ratio;
        self
    }

    /// Select the write-stability regime of the cell.
    pub fn with_stability(mut self, mode: StabilityMode) -> Self {
        self.stability = mode;
        self
    }

    /// Arm the client-state layer (leases, locks, grace-period recovery).
    pub fn with_leases(mut self, on: bool) -> Self {
        self.leases = on;
        self
    }

    /// Override the lease timing knobs: client renew interval, server lease
    /// lifetime and post-crash grace window.
    pub fn with_lease_timing(mut self, renew: Duration, lease: Duration, grace: Duration) -> Self {
        self.lease_renew_interval = renew;
        self.lease_duration = lease;
        self.grace_period = grace;
        self
    }

    /// Reboot each client stream once per `interval` ([`Duration::ZERO`]
    /// disables churn).
    pub fn with_churn(mut self, interval: Duration) -> Self {
        self.churn_interval = interval;
        self
    }

    /// Whether the fault layer is armed: any injected fault or loss means
    /// calls can vanish, so the generators track outstanding calls for
    /// bounded retransmission.  With neither, the retry machinery schedules
    /// nothing and clones nothing.
    pub fn faults_enabled(&self) -> bool {
        !self.fault_plan.is_empty() || self.loss_probability > 0.0
    }

    /// Loss-stream seed of this measurement cell, derived from the cell's
    /// own identity (base seed and offered load) so a parallel sweep draws
    /// the same losses as a serial one.
    fn loss_seed(&self) -> u64 {
        self.seed ^ self.offered_ops_per_sec.to_bits().rotate_left(17)
    }

    /// The xid window stride per client: the space above [`XID_ORIGIN`] split
    /// evenly, so every stream's xids stay globally unique and debuggable
    /// (duplicate detection is keyed by `(client, xid)` anyway).
    fn xid_stride(&self) -> u32 {
        (u32::MAX - XID_ORIGIN) / self.clients.max(1) as u32
    }

    /// First xid of a client's window.
    fn xid_base(&self, client: usize) -> u32 {
        XID_ORIGIN + self.xid_stride() * client as u32
    }

    /// Expected operations one client stream issues over the run, used to
    /// size its outstanding-call ring.
    fn expected_ops_per_client(&self) -> u64 {
        let per_client = self.offered_ops_per_sec.max(0.0) / self.clients.max(1) as f64;
        (per_client * self.duration.as_secs_f64()).ceil() as u64
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpKind {
    Lookup,
    Read,
    Write,
    Getattr,
    Readdir,
    Create,
    Remove,
    Setattr,
    Statfs,
    /// COMMIT chasing an unstable write burst (never drawn from the mix;
    /// queued by [`SfsGenerator::finish_write`] under
    /// [`StabilityMode::Unstable`]).
    Commit,
    /// Lease registration/renewal (never drawn from the mix; issued by the
    /// lease ticks when [`SfsConfig::leases`] is armed).
    Renew,
    /// Byte-range lock acquisition or grace-period reclaim (lease ticks
    /// only, like RENEW).
    Lock,
}

const OP_KINDS: [OpKind; 9] = [
    OpKind::Lookup,
    OpKind::Read,
    OpKind::Write,
    OpKind::Getattr,
    OpKind::Readdir,
    OpKind::Create,
    OpKind::Remove,
    OpKind::Setattr,
    OpKind::Statfs,
];

/// One slot of the outstanding-call ring.
#[derive(Clone)]
struct RingSlot {
    xid: u32,
    entry: Option<(SimTime, OpKind)>,
}

/// The outstanding-call table of one generator stream: a pre-sized ring
/// keyed by xid offset.  Xids are handed out sequentially, so the slot of a
/// call is simply `(xid - base) mod capacity`; inserting and removing is an
/// index, not a hash, and the ring never allocates after construction.
///
/// A call that never gets a reply (dropped datagram, socket overflow)
/// leaves its slot occupied until the xid sequence laps the ring — at which
/// point the stale slot is reclaimed and counted in `stale_overwrites`,
/// which is exactly the bookkeeping a hash map would have silently leaked.
struct OutstandingRing {
    base: u32,
    mask: usize,
    slots: Vec<RingSlot>,
    stale_overwrites: u64,
}

impl OutstandingRing {
    fn new(base: u32, expected_ops: u64, compact: bool) -> Self {
        // Twice the expectation plus slack covers Poisson variance, so a
        // default-length run never laps the ring and ring semantics stay
        // identical to the old hash map's; the clamp bounds memory for
        // extreme offered loads.  `compact` (huge fleets: ≥ 1024 streams)
        // shrinks the slack and floor so a 10 000-client storm cell costs
        // kilobytes per stream instead of the default 4096-slot floor —
        // per-stream expectations are tiny there, so the ring still never
        // laps.
        let (slack, floor) = if compact {
            (256, 1 << 8)
        } else {
            (4096, 1 << 12)
        };
        let capacity = (expected_ops.saturating_mul(2) + slack)
            .next_power_of_two()
            .clamp(floor, 1 << 20) as usize;
        OutstandingRing {
            base,
            mask: capacity - 1,
            slots: vec![
                RingSlot {
                    xid: 0,
                    entry: None
                };
                capacity
            ],
            stale_overwrites: 0,
        }
    }

    fn slot_index(&self, xid: u32) -> usize {
        xid.wrapping_sub(self.base) as usize & self.mask
    }

    fn insert(&mut self, xid: u32, sent: SimTime, kind: OpKind) {
        let idx = self.slot_index(xid);
        let slot = &mut self.slots[idx];
        if slot.entry.is_some() {
            self.stale_overwrites += 1;
        }
        slot.xid = xid;
        slot.entry = Some((sent, kind));
    }

    fn take(&mut self, xid: u32) -> Option<(SimTime, OpKind)> {
        let idx = self.slot_index(xid);
        let slot = &mut self.slots[idx];
        if slot.xid == xid {
            slot.entry.take()
        } else {
            None
        }
    }

    /// Whether a call is still awaiting its reply (used by the retry timer
    /// to tell "unanswered" from "answered while the timer was in flight").
    fn contains(&self, xid: u32) -> bool {
        let slot = &self.slots[self.slot_index(xid)];
        slot.xid == xid && slot.entry.is_some()
    }
}

/// One scratch file a generator's write bursts append to.
#[derive(Clone, Copy)]
struct ScratchFile {
    handle: FileHandle,
    /// Current append offset (always `< scratch_file_limit`).
    offset: u64,
    /// Which of the [`SCRATCH_SLOTS`] this is — names the rotation chain.
    slot: usize,
    /// How many times this slot has rotated to a fresh file.
    generation: u32,
}

/// The namespace every generator stream shares: the exported root and the
/// pre-populated read/lookup file set, names interned once at construction.
struct SharedFiles {
    root: FileHandle,
    files: Vec<(Arc<str>, FileHandle, u64)>,
}

/// Where one stream's lease state machine stands (armed by
/// [`SfsConfig::leases`]; inert otherwise).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LeasePhase {
    /// No lease: the next tick sends a registering RENEW.
    Unregistered,
    /// RENEW sent, confirmation pending (re-sent each tick until one lands).
    Registering,
    /// Lease held: ticks renew it, or acquire the lock if not yet held.
    Active,
    /// The server rebooted into its grace window: the next tick reclaims
    /// the lock.
    Reclaiming,
}

/// Client-side lease/lock state of one generator stream, driven entirely by
/// the per-client lease tick chain and by replies — never by the op mix.
struct LeaseState {
    phase: LeasePhase,
    /// This incarnation's boot verifier (bumped by churn reboots).
    verifier: u64,
    /// Server boot verifier last seen in a RENEW reply (0 = none yet); a
    /// change means the server rebooted and its volatile state is gone.
    server_verifier: u64,
    /// Whether this stream believes it holds its byte-range lock.
    lock_held: bool,
    /// Next lock sequence id (strictly monotonic per stateid server-side).
    next_seqid: u32,
    /// Set once the stream abandons a call (`gave_up`): it stops renewing,
    /// so the server's expiry sweep orphans and reclaims its records — the
    /// abandoned-lease path the orphan counters watch.
    dead: bool,
    /// Lease-protocol calls sent / replies applied (kept out of the
    /// throughput counters so state traffic never inflates achieved ops).
    issued: u64,
    completed: u64,
    /// Soft rejections observed while the server was in grace.
    grace_denied: u64,
    /// Hard lock denials (conflict, stale seqid, refused reclaim, expiry).
    lock_denied: u64,
    /// Fresh lock grants / grace-window reclaims confirmed by replies.
    locks_granted: u64,
    reclaims_granted: u64,
    /// Server reboots this stream observed through verifier changes.
    server_reboots: u64,
    /// Churn reboots this stream performed.
    churns: u64,
}

impl LeaseState {
    fn new(client: u32) -> Self {
        LeaseState {
            phase: LeasePhase::Unregistered,
            // Per-client verifier space; the low word counts incarnations.
            verifier: ((client as u64) << 32) | 1,
            server_verifier: 0,
            lock_held: false,
            next_seqid: 1,
            dead: false,
            issued: 0,
            completed: 0,
            grace_denied: 0,
            lock_denied: 0,
            locks_granted: 0,
            reclaims_granted: 0,
            server_reboots: 0,
            churns: 0,
        }
    }
}

/// One independent load-generator stream: its own RNG, xid window,
/// scratch-file namespace, outstanding-call ring and latency accumulator.
struct SfsGenerator {
    client: u32,
    rng: SimRng,
    next_xid: u32,
    xid_end: u32,
    mean_gap: f64,
    write_files: Vec<ScratchFile>,
    created_names: Vec<Arc<str>>,
    create_counter: u64,
    /// Remaining bodies of an in-progress write burst; drained one per
    /// arrival before a new operation is drawn from the mix.
    burst_queue: Vec<NfsCallBody>,
    outstanding: OutstandingRing,
    latency: LatencyStat,
    issued: u64,
    completed: u64,
    /// Name-minting allocations this stream performed (fresh CREATE names and
    /// scratch rotations) — the *only* events at which steady-state op
    /// generation is allowed to touch the heap.
    name_mints: u64,
    /// Calls re-sent after an unanswered timeout (fault mode only).
    retransmissions: u64,
    /// Calls abandoned after [`SfsConfig::max_retransmits`] attempts — every
    /// one a counted failure.
    gave_up: u64,
    /// Retained copies of unanswered calls, keyed by xid, so a retry timer
    /// can re-send them.  Populated only when [`SfsConfig::faults_enabled`];
    /// otherwise never touched, keeping the steady-state loop allocation-free
    /// and bit-identical to the pre-fault harness.
    retry_calls: FxHashMap<u32, NfsCall>,
    /// Lease/lock client state (inert unless [`SfsConfig::leases`]).
    lease: LeaseState,
}

/// Pre-population name of a scratch write file (generation 0) or of a
/// rotation successor (generation ≥ 1).  Client 0 keeps the single-client
/// harness's names so default runs build an identical filesystem.
fn scratch_file_name(client: usize, slot: usize, generation: u32) -> String {
    match (client, generation) {
        (0, 0) => format!("sfs_write_{slot:03}"),
        (0, g) => format!("sfs_write_{slot:03}_g{g}"),
        (c, 0) => format!("sfs_c{c:02}_write_{slot:03}"),
        (c, g) => format!("sfs_c{c:02}_write_{slot:03}_g{g}"),
    }
}

impl SfsGenerator {
    /// Name of the `n`-th CREATE of this stream (client 0 keeps the
    /// single-client harness's names).
    fn create_name(&self, n: u64) -> String {
        if self.client == 0 {
            format!("sfs_scratch_{n}")
        } else {
            format!("sfs_c{:02}_scratch_{n}", self.client)
        }
    }

    fn take_xid(&mut self) -> Xid {
        let xid = self.next_xid;
        assert!(
            xid != self.xid_end,
            "client {} exhausted its xid window; lower the offered load or \
             the client count",
            self.client
        );
        self.next_xid = self.next_xid.wrapping_add(1);
        Xid(xid)
    }

    /// Mint the successor name of a rotating scratch slot (counted in
    /// `name_mints`); [`SfsGenerator::install_rotated`] installs the created
    /// file once the server island has created it.
    fn mint_rotation_name(&mut self, idx: usize) -> String {
        let slot = self.write_files[idx].slot;
        let generation = self.write_files[idx].generation + 1;
        self.name_mints += 1;
        scratch_file_name(self.client as usize, slot, generation)
    }

    /// Point a rotating slot at the freshly created zero-length file.
    fn install_rotated(&mut self, idx: usize, handle: FileHandle) {
        let slot = self.write_files[idx].slot;
        let generation = self.write_files[idx].generation + 1;
        self.write_files[idx] = ScratchFile {
            handle,
            offset: 0,
            slot,
            generation,
        };
    }

    /// Rotate a scratch slot to a fresh zero-length file, creating it in the
    /// exported filesystem out-of-band (the same way pre-population does).
    /// Keeps every append offset inside the UFS file cap no matter how long
    /// or write-hot the run is.
    fn rotate_scratch(&mut self, idx: usize, server: &mut NfsServer) {
        let name = self.mint_rotation_name(idx);
        let root = server.fs().root();
        let ino = server
            .fs_mut()
            .create(root, &name, 0o644, 0)
            .expect("scratch rotation name is fresh");
        let handle = server.handle_for_ino(ino).expect("live inode");
        self.install_rotated(idx, handle);
    }

    /// Whether the next operation this stream draws *could* have to rotate a
    /// scratch slot (a server-island filesystem mutation).  Conservative: a
    /// fresh burst start might pick any slot, so any slot near the cap
    /// answers yes.  Mid-burst chunks never rotate.
    fn could_rotate(&self, config: &SfsConfig) -> bool {
        if !self.burst_queue.is_empty() {
            return false;
        }
        let burst_len = config.write_burst.max(1) as u64;
        self.write_files
            .iter()
            .any(|f| f.offset + burst_len * CHUNK > config.scratch_file_limit)
    }

    fn pick_file<'a>(&mut self, shared: &'a SharedFiles) -> &'a (Arc<str>, FileHandle, u64) {
        let idx = self.rng.next_below(shared.files.len() as u64) as usize;
        &shared.files[idx]
    }

    /// Produce the next call of this stream, stamping its send time into the
    /// outstanding ring at insertion (one code path: a call dropped before
    /// arrival still carries the time it was really sent).
    fn next_call(
        &mut self,
        now: SimTime,
        shared: &SharedFiles,
        config: &SfsConfig,
        server: &mut NfsServer,
    ) -> NfsCall {
        match self.next_call_step(now, shared, config) {
            CallStep::Ready(call) => call,
            CallStep::NeedsRotation { xid, idx } => {
                self.rotate_scratch(idx, server);
                self.finish_write(now, xid, idx, config.write_burst.max(1), config.stability)
            }
        }
    }

    /// Build the write-burst head against slot `idx` (post-rotation, if one
    /// was needed), queueing the follow-on chunks and stamping the ring.
    /// Under [`StabilityMode::Unstable`] every chunk is tagged
    /// `WRITE(UNSTABLE)` and one whole-file `COMMIT` is queued behind the
    /// burst, making the burst's durability one batched flush — the NFSv3
    /// shape — instead of `burst` synchronous commits.
    fn finish_write(
        &mut self,
        now: SimTime,
        xid: Xid,
        idx: usize,
        burst: usize,
        stability: StabilityMode,
    ) -> NfsCall {
        let burst_len = burst as u64;
        let ScratchFile {
            handle: fh,
            offset: start,
            ..
        } = self.write_files[idx];
        self.write_files[idx].offset = start + burst_len * CHUNK;
        debug_assert!(start + burst_len * CHUNK <= u32::MAX as u64);
        let stable_how = match stability {
            StabilityMode::Stable => StableHow::FileSync,
            StabilityMode::Unstable => StableHow::Unstable,
        };
        // The COMMIT pops after the last chunk of the burst (the queue pops
        // from the back, so it is pushed first).
        if stability == StabilityMode::Unstable {
            self.burst_queue.push(NfsCallBody::Commit(CommitArgs {
                file: fh,
                offset: 0,
                count: 0,
            }));
        }
        // Queue the follow-on chunks in reverse so popping yields ascending
        // offsets.
        for i in (1..burst_len).rev() {
            let offset = start + i * CHUNK;
            let fill = (offset / CHUNK) as u8;
            self.burst_queue.push(NfsCallBody::Write(
                WriteArgs::fill(fh, offset as u32, fill, CHUNK as u32).with_stability(stable_how),
            ));
        }
        let fill = (start / CHUNK) as u8;
        let body = NfsCallBody::Write(
            WriteArgs::fill(fh, start as u32, fill, CHUNK as u32).with_stability(stable_how),
        );
        self.outstanding.insert(xid.0, now, OpKind::Write);
        NfsCall::new(xid, body)
    }

    /// Advance the stream to its next call, stopping just before a scratch
    /// rotation: the serial driver rotates inline ([`SfsGenerator::next_call`]),
    /// the partitioned driver ships the create to the server island and
    /// resumes with [`SfsGenerator::finish_write`].  Both paths draw the RNG
    /// identically.
    fn next_call_step(
        &mut self,
        now: SimTime,
        shared: &SharedFiles,
        config: &SfsConfig,
    ) -> CallStep {
        // Drain an in-progress write burst first: LADDIS writes whole files
        // in consecutive 8 KB chunks, so write operations arrive in bursts
        // (under unstable stability the burst's trailing COMMIT rides the
        // same queue).
        if let Some(body) = self.burst_queue.pop() {
            let xid = self.take_xid();
            let kind = if matches!(body, NfsCallBody::Commit(_)) {
                OpKind::Commit
            } else {
                OpKind::Write
            };
            self.outstanding.insert(xid.0, now, kind);
            return CallStep::Ready(NfsCall::new(xid, body));
        }
        // Scale the write weight down by the burst length so that writes stay
        // at their configured share of *operations* even though each burst
        // start expands into `write_burst` of them.
        let burst = config.write_burst.max(1);
        let mut weights = config.mix.weights();
        weights[2] /= burst as f64;
        let kind = OP_KINDS[self.rng.pick_weighted(&weights)];
        let xid = self.take_xid();
        let body = match kind {
            OpKind::Lookup => {
                let (name, _, _) = self.pick_file(shared);
                NfsCallBody::Lookup(DirOpArgs {
                    dir: shared.root,
                    name: name.clone(),
                })
            }
            OpKind::Read => {
                let &(_, fh, size) = self.pick_file(shared);
                let blocks = (size / CHUNK).max(1);
                let offset = self.rng.next_below(blocks) * CHUNK;
                NfsCallBody::Read(ReadArgs {
                    file: fh,
                    offset: offset as u32,
                    count: CHUNK as u32,
                    totalcount: 0,
                })
            }
            OpKind::Write => {
                // Start a burst of sequential appending writes to one of the
                // scratch files: every chunk allocates fresh blocks, as the
                // file-writing phases of LADDIS do.
                let idx = self.rng.next_below(self.write_files.len() as u64) as usize;
                if self.write_files[idx].offset + burst as u64 * CHUNK > config.scratch_file_limit {
                    return CallStep::NeedsRotation { xid, idx };
                }
                return CallStep::Ready(self.finish_write(now, xid, idx, burst, config.stability));
            }
            OpKind::Getattr => {
                let &(_, fh, _) = self.pick_file(shared);
                NfsCallBody::Getattr(GetattrArgs { file: fh })
            }
            OpKind::Readdir => NfsCallBody::Readdir(ReaddirArgs {
                dir: shared.root,
                cookie: 0,
                count: 4096,
            }),
            OpKind::Create => {
                self.create_counter += 1;
                let name: Arc<str> = self.create_name(self.create_counter).into();
                self.name_mints += 1;
                self.created_names.push(name.clone());
                NfsCallBody::Create(CreateArgs {
                    where_: DirOpArgs {
                        dir: shared.root,
                        name,
                    },
                    attributes: Sattr::with_mode(0o644),
                })
            }
            OpKind::Remove => {
                if let Some(name) = self.created_names.pop() {
                    NfsCallBody::Remove(DirOpArgs {
                        dir: shared.root,
                        name,
                    })
                } else {
                    // Nothing of ours to remove yet: fall back to a getattr so
                    // the offered load is preserved.
                    let &(_, fh, _) = self.pick_file(shared);
                    NfsCallBody::Getattr(GetattrArgs { file: fh })
                }
            }
            OpKind::Setattr => {
                let &(_, fh, _) = self.pick_file(shared);
                NfsCallBody::Setattr(wg_nfsproto::SetattrArgs {
                    file: fh,
                    attributes: Sattr::with_mode(0o644),
                })
            }
            OpKind::Statfs => NfsCallBody::Statfs(GetattrArgs { file: shared.root }),
            // COMMIT only ever rides the burst queue behind an unstable
            // write burst; RENEW/LOCK only ever ride the lease ticks.  None
            // of them is drawn from the mix.
            OpKind::Commit | OpKind::Renew | OpKind::Lock => {
                unreachable!("not a mix operation")
            }
        };
        self.outstanding.insert(xid.0, now, kind);
        CallStep::Ready(NfsCall::new(xid, body))
    }

    /// The client-state call of one lease tick, if the stream still runs its
    /// lease machine: RENEW to register or renew, LOCK to acquire or reclaim.
    /// Streams that abandoned a call (`gave_up`) go lease-dead and return
    /// [`None`] — they stop renewing, so the server's expiry sweep reclaims
    /// their records as orphans.  Draws no RNG: the workload stream is
    /// untouched by the state machine.
    fn lease_tick_call(&mut self, now: SimTime, shared: &SharedFiles) -> Option<NfsCall> {
        if self.gave_up > 0 {
            self.lease.dead = true;
        }
        if self.lease.dead {
            return None;
        }
        let renew = NfsCallBody::Renew(RenewArgs {
            client_id: self.client,
            verifier: self.lease.verifier,
        });
        let body = match self.lease.phase {
            LeasePhase::Unregistered | LeasePhase::Registering => {
                self.lease.phase = LeasePhase::Registering;
                renew
            }
            LeasePhase::Active if self.lease.lock_held => renew,
            phase @ (LeasePhase::Active | LeasePhase::Reclaiming) => {
                // Every stream locks a disjoint chunk of the first shared
                // file (or the export root when the cell has none): lock
                // traffic at scale without cross-client conflicts, so any
                // conflict the oracle sees is a real grace-period leak.
                let file = shared
                    .files
                    .first()
                    .map(|&(_, fh, _)| fh)
                    .unwrap_or(shared.root);
                let seqid = self.lease.next_seqid;
                self.lease.next_seqid += 1;
                NfsCallBody::Lock(LockArgs {
                    file,
                    client_id: self.client,
                    stateid: 1,
                    seqid,
                    offset: self.client * CHUNK as u32,
                    count: CHUNK as u32,
                    reclaim: phase == LeasePhase::Reclaiming,
                })
            }
        };
        let kind = if matches!(body, NfsCallBody::Lock(_)) {
            OpKind::Lock
        } else {
            OpKind::Renew
        };
        let xid = self.take_xid();
        self.outstanding.insert(xid.0, now, kind);
        self.lease.issued += 1;
        Some(NfsCall::new(xid, body))
    }

    /// Apply a lease-protocol reply to the client state machine.  Pure local
    /// mutation — never transmits — so both drivers call it inline from
    /// their reply arms without affecting partitioned lookahead.
    fn on_state_reply(&mut self, body: &NfsReplyBody) {
        match body {
            NfsReplyBody::Renew(StatusReply::Ok(ok)) => {
                let rebooted =
                    self.lease.server_verifier != 0 && self.lease.server_verifier != ok.verf;
                self.lease.server_verifier = ok.verf;
                if rebooted {
                    self.lease.server_reboots += 1;
                    if self.lease.lock_held && ok.in_grace {
                        // Our lock died with the server's volatile state;
                        // the next tick reclaims it inside the grace window.
                        self.lease.phase = LeasePhase::Reclaiming;
                    } else {
                        // Grace already over (or nothing to reclaim): any
                        // old lock is forfeit; re-acquire fresh.
                        self.lease.lock_held = false;
                        self.lease.phase = LeasePhase::Active;
                    }
                } else if self.lease.phase == LeasePhase::Registering {
                    self.lease.phase = LeasePhase::Active;
                }
            }
            NfsReplyBody::Lock(StatusReply::Ok(_)) => {
                if self.lease.phase == LeasePhase::Reclaiming {
                    self.lease.reclaims_granted += 1;
                } else {
                    self.lease.locks_granted += 1;
                }
                self.lease.lock_held = true;
                self.lease.phase = LeasePhase::Active;
            }
            NfsReplyBody::Lock(StatusReply::Err(status)) => match status {
                NfsStatus::Grace => self.lease.grace_denied += 1,
                NfsStatus::Expired => {
                    // Lease lapsed server-side: drop everything and
                    // re-register from scratch.
                    self.lease.lock_denied += 1;
                    self.lease.lock_held = false;
                    self.lease.phase = LeasePhase::Unregistered;
                }
                _ => {
                    self.lease.lock_denied += 1;
                    if self.lease.phase == LeasePhase::Reclaiming {
                        // Reclaim refused (window closed, image forfeited):
                        // the old lock is gone; re-acquire fresh.
                        self.lease.lock_held = false;
                        self.lease.phase = LeasePhase::Active;
                    }
                }
            },
            // RENEW errors (a lease-disarmed server answers Denied) leave
            // the phase untouched; the next tick simply tries again.
            _ => {}
        }
    }

    /// Churn: this stream reboots — new boot verifier, all lease and lock
    /// state forgotten.  The server learns of the reboot at the next
    /// registering RENEW and wipes the previous incarnation's records.
    fn lease_reboot(&mut self) {
        self.lease.verifier += 1;
        self.lease.phase = LeasePhase::Unregistered;
        self.lease.lock_held = false;
        self.lease.next_seqid = 1;
        self.lease.churns += 1;
    }
}

/// First lease tick of `client`: one renew interval in, plus a per-client
/// nanosecond skew.  The skew keeps tick keys distinct (deterministic order
/// in both drivers, no measure-zero tie against the continuous arrival
/// draws) while still landing the whole fleet's renewals inside a window
/// that is microseconds wide — which at 10 000 clients *is* the storm.
fn lease_tick_origin(renew: Duration, client: usize) -> SimTime {
    SimTime::ZERO + renew + Duration::from_nanos(client as u64 + 1)
}

/// First churn reboot of `client`: staggered evenly across one churn
/// interval so the fleet reboots as a rolling wave, not en masse.
fn churn_origin(churn: Duration, client: usize, clients: usize) -> SimTime {
    let stagger = churn.as_nanos() / clients.max(1) as u64 * client as u64;
    SimTime::ZERO + churn + Duration::from_nanos(stagger + client as u64 + 1)
}

/// One step of a generator stream: either the call is ready, or the drawn
/// write must rotate its scratch slot first — a filesystem mutation the
/// serial driver performs inline and the partitioned driver ships to the
/// server island.
enum CallStep {
    Ready(NfsCall),
    NeedsRotation { xid: Xid, idx: usize },
}

enum Ev {
    NextArrival(usize),
    Server(ServerInput),
    Reply(u32, NfsReply),
    /// Retry timer of one call: `(client, xid, attempts already made)`.
    RetryCheck(usize, u32, u32),
    /// An injected fault fires (scheduled only when the plan is non-empty).
    Fault(FaultKind),
    /// The NVRAM battery comes back after a `BatteryFailure`.
    BatteryRepair,
    /// One client's lease tick: register/renew/lock/reclaim, then
    /// self-reschedule (scheduled only when [`SfsConfig::leases`]).
    LeaseTick(usize),
    /// One client's churn reboot, self-rescheduling (scheduled only when
    /// [`SfsConfig::churn_interval`] is non-zero).
    ChurnTick(usize),
}

/// One SFS-style measurement run: N generator streams, their LAN fan-in and
/// the server, wired through one deterministic event loop.
pub struct SfsSystem {
    config: SfsConfig,
    server: NfsServer,
    lans: ClientLans,
    queue: EventQueue<Ev>,
    shared: SharedFiles,
    generators: Vec<SfsGenerator>,
    latency: LatencyStat,
    issued: u64,
    completed: u64,
    events_processed: u64,
    /// Events scheduled / past-clamps accumulated by partitioned runs (the
    /// serial path's live in `queue`; accessors report the sum).
    par_scheduled_total: u64,
    par_clamped_past: u64,
    /// Scheduler-health counters banked from partitioned runs' queues.
    par_sched: CalStats,
}

impl SfsSystem {
    /// Build the system and pre-populate the exported filesystem.
    pub fn new(config: SfsConfig) -> Self {
        let clients = config.clients.max(1);
        assert!(
            config.scratch_file_limit >= config.write_burst.max(1) as u64 * CHUNK,
            "scratch_file_limit must hold at least one write burst"
        );
        assert!(
            config.scratch_file_limit <= 16 * 1024 * 1024,
            "scratch_file_limit must stay inside the ≈16 MB UFS file cap"
        );
        let medium_params = config.network.params();
        let mut server_config = ServerConfig {
            policy: config.policy,
            nfsds: config.nfsds,
            // The DEC 3800 of Figures 2/3 is a faster machine than the cost
            // table's reference; reflect that so the curves reach a few
            // hundred ops/sec before CPU saturation.
            cpu_speed: 1.6,
            ..ServerConfig::standard()
        };
        server_config.storage.prestoserve = config.prestoserve;
        server_config.storage.spindles = config.spindles;
        server_config.procrastination = medium_params.procrastination;
        server_config.shards = config.shards.max(1);
        server_config.cores = config.cores.max(1);
        server_config.io_overlap = config.io_overlap;
        server_config.inode_groups = config.inode_groups.max(1);
        server_config.read_caching = config.read_caching;
        assert!(
            !config.leases || config.lease_renew_interval > Duration::ZERO,
            "lease_renew_interval must be non-zero when leases are armed"
        );
        server_config = server_config
            .with_unified_cache(config.cache_pages)
            .with_dirty_ratio(config.dirty_ratio)
            .with_stability(config.stability)
            .with_leases(config.leases)
            .with_lease_duration(config.lease_duration)
            .with_grace_period(config.grace_period);
        let mut server = NfsServer::new(server_config);

        let root = server.fs().root();
        let mut files = Vec::with_capacity(config.file_count);
        for i in 0..config.file_count {
            let name = format!("sfs_file_{i:04}");
            let ino = server
                .fs_mut()
                .create_prefilled(root, &name, config.file_size, 0)
                .expect("pre-population fits the data region");
            let handle = server.handle_for_ino(ino).expect("live inode");
            files.push((Arc::<str>::from(name), handle, config.file_size));
        }
        let stride = config.xid_stride();
        let expected_ops = config.expected_ops_per_client();
        let mean_gap = clients as f64 / config.offered_ops_per_sec.max(1e-9);
        let mut generators = Vec::with_capacity(clients);
        for client in 0..clients {
            let mut write_files = Vec::with_capacity(SCRATCH_SLOTS);
            for slot in 0..SCRATCH_SLOTS {
                let name = scratch_file_name(client, slot, 0);
                let ino = server
                    .fs_mut()
                    .create(root, &name, 0o644, 0)
                    .expect("fresh namespace");
                write_files.push(ScratchFile {
                    handle: server.handle_for_ino(ino).expect("live inode"),
                    offset: 0,
                    slot,
                    generation: 0,
                });
            }
            let base = config.xid_base(client);
            generators.push(SfsGenerator {
                client: client as u32,
                // Client 0 replays the single-client harness's stream; the
                // others run independent, salted streams of the same shape.
                rng: SimRng::seed_from(
                    config
                        .seed
                        .wrapping_add((client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                ),
                next_xid: base,
                xid_end: base.wrapping_add(stride),
                mean_gap,
                write_files,
                created_names: Vec::new(),
                create_counter: 0,
                burst_queue: Vec::new(),
                outstanding: OutstandingRing::new(base, expected_ops, clients >= 1024),
                latency: LatencyStat::new(),
                issued: 0,
                completed: 0,
                name_mints: 0,
                retransmissions: 0,
                gave_up: 0,
                retry_calls: FxHashMap::default(),
                lease: LeaseState::new(client as u32),
            });
        }
        let root_handle = server.root_handle();
        SfsSystem {
            lans: ClientLans::with_loss(
                &medium_params,
                clients,
                config.per_client_lans,
                config.loss_probability,
                config.loss_seed(),
            ),
            queue: EventQueue::new(),
            shared: SharedFiles {
                root: root_handle,
                files,
            },
            generators,
            latency: LatencyStat::new(),
            issued: 0,
            completed: 0,
            events_processed: 0,
            par_scheduled_total: 0,
            par_clamped_past: 0,
            par_sched: CalStats::default(),
            server,
            config,
        }
    }

    /// Generate one call of a client's stream without transmitting it — the
    /// hook the allocation probes drive the hot loop through.
    pub fn generate_one(&mut self, now: SimTime, client: usize) -> NfsCall {
        let call =
            self.generators[client].next_call(now, &self.shared, &self.config, &mut self.server);
        self.generators[client].issued += 1;
        self.issued += 1;
        call
    }

    /// Transmit one call toward the server on the client's LAN segment.
    fn transmit_call(&mut self, t: SimTime, client: usize, call: NfsCall) {
        let size = call.wire_size();
        let medium = self.lans.medium_mut(client);
        let fragments = medium.params().fragments_for(size);
        if let TransmitOutcome::Delivered { arrives_at } =
            medium.transmit(t, size, Direction::ToServer)
        {
            self.queue.schedule_at(
                arrives_at,
                Ev::Server(ServerInput::Datagram {
                    client: client as u32,
                    call,
                    wire_size: size,
                    fragments,
                }),
            );
        }
    }

    /// Run the measurement and produce one figure point.  With
    /// [`SfsConfig::sim_threads`] `≥ 2` the topology is partitioned into
    /// cooperating event loops ([`par`]); results are bit-identical either
    /// way.
    pub fn run(&mut self) -> SfsPoint {
        let point = if self.config.sim_threads >= 2 {
            par::run_partitioned(self)
        } else {
            self.run_serial()
        };
        if self.config.leases {
            // Deterministic post-run expiry sweep (identical after either
            // driver): any stream that stopped renewing — lease-dead after a
            // give-up, or churn-killed — has its lease expire here and its
            // state reclaimed as orphans.
            self.server
                .expire_leases(SimTime::ZERO + self.config.duration);
        }
        point
    }

    /// The reference single-threaded event loop.
    fn run_serial(&mut self) -> SfsPoint {
        self.events_processed = 0;
        for client in 0..self.generators.len() {
            let gap = {
                let generator = &mut self.generators[client];
                Duration::from_secs_f64(generator.rng.exponential(generator.mean_gap))
            };
            self.queue
                .schedule_at(SimTime::ZERO + gap, Ev::NextArrival(client));
        }
        // With no injected faults and no loss the retry machinery is fully
        // disarmed (no cloned calls, no timers, no extra events) and the
        // plan schedules nothing: the run replays the pre-fault harness
        // event for event.
        let faults_armed = self.config.faults_enabled();
        let retry_timeout = self.config.retry_initial_timeout;
        // Lease machinery is armed the same way: off (the default) schedules
        // no ticks, touches no state and replays the stateless harness event
        // for event.
        if self.config.leases {
            for client in 0..self.generators.len() {
                self.queue.schedule_at(
                    lease_tick_origin(self.config.lease_renew_interval, client),
                    Ev::LeaseTick(client),
                );
            }
            if self.config.churn_interval > Duration::ZERO {
                let clients = self.generators.len();
                for client in 0..clients {
                    self.queue.schedule_at(
                        churn_origin(self.config.churn_interval, client, clients),
                        Ev::ChurnTick(client),
                    );
                }
            }
        }
        if !self.config.fault_plan.is_empty() {
            let events: Vec<_> = self.config.fault_plan.events().to_vec();
            for event in events {
                self.queue.schedule_at(event.at, Ev::Fault(event.kind));
            }
        }
        let end = SimTime::ZERO + self.config.duration;
        // Scratch buffer reused across every server event (see
        // `FileCopySystem::run` for the same pattern on the copy loop).
        let mut server_actions: Vec<ServerAction> = Vec::new();
        while let Some((t, ev)) = self.queue.pop() {
            self.events_processed += 1;
            assert!(
                self.events_processed < 100_000_000 * self.generators.len() as u64,
                "runaway SFS simulation"
            );
            match ev {
                Ev::NextArrival(client) => {
                    if t < end {
                        let call = self.generate_one(t, client);
                        if faults_armed {
                            // Retain a copy so the retry timer can re-send an
                            // unanswered call; the timer chain always ends in
                            // a reply or a counted give-up.
                            let xid = call.xid.0;
                            self.generators[client]
                                .retry_calls
                                .insert(xid, call.clone());
                            self.queue
                                .schedule_at(t + retry_timeout, Ev::RetryCheck(client, xid, 0));
                        }
                        self.transmit_call(t, client, call);
                        let generator = &mut self.generators[client];
                        let gap =
                            Duration::from_secs_f64(generator.rng.exponential(generator.mean_gap));
                        self.queue.schedule_at(t + gap, Ev::NextArrival(client));
                    }
                }
                Ev::Server(input) => {
                    self.server.handle_into(t, input, &mut server_actions);
                    for action in server_actions.drain(..) {
                        match action {
                            ServerAction::Wakeup { at, token } => {
                                self.queue
                                    .schedule_at(at, Ev::Server(ServerInput::Wakeup { token }));
                            }
                            ServerAction::Reply { at, client, reply } => {
                                let size = reply.wire_size();
                                if let TransmitOutcome::Delivered { arrives_at } = self
                                    .lans
                                    .medium_mut(client as usize)
                                    .transmit(at, size, Direction::ToClient)
                                {
                                    self.queue.schedule_at(arrives_at, Ev::Reply(client, reply));
                                }
                            }
                        }
                    }
                }
                Ev::Reply(client, reply) => {
                    let generator = &mut self.generators[client as usize];
                    if let Some((sent, kind)) = generator.outstanding.take(reply.xid.0) {
                        if matches!(kind, OpKind::Renew | OpKind::Lock) {
                            // Lease-protocol traffic: drive the client state
                            // machine, never the throughput counters.
                            generator.lease.completed += 1;
                            generator.on_state_reply(&reply.body);
                        } else {
                            let latency = t.since(sent);
                            self.latency.record(latency);
                            generator.latency.record(latency);
                            generator.completed += 1;
                            self.completed += 1;
                        }
                        if faults_armed {
                            generator.retry_calls.remove(&reply.xid.0);
                        }
                    }
                }
                Ev::RetryCheck(client, xid, attempt) => {
                    let generator = &mut self.generators[client];
                    if !generator.outstanding.contains(xid) {
                        // Answered (or lapped) while the timer was in flight.
                        generator.retry_calls.remove(&xid);
                    } else if attempt >= self.config.max_retransmits {
                        // Exhausted: abandon the call as a counted failure —
                        // never a silent success.
                        generator.outstanding.take(xid);
                        generator.retry_calls.remove(&xid);
                        generator.gave_up += 1;
                    } else if let Some(call) = generator.retry_calls.get(&xid).cloned() {
                        generator.retransmissions += 1;
                        self.transmit_call(t, client, call);
                        // Exponential backoff, capped so the shift can't
                        // overflow on large attempt caps.
                        let backoff = retry_timeout.saturating_mul(1u64 << (attempt + 1).min(10));
                        self.queue
                            .schedule_at(t + backoff, Ev::RetryCheck(client, xid, attempt + 1));
                    }
                }
                Ev::Fault(kind) => match kind {
                    FaultKind::ServerCrash => {
                        self.server.crash(t);
                    }
                    FaultKind::BatteryFailure { repair_after } => {
                        self.server.set_battery(false, t);
                        self.queue.schedule_at(t + repair_after, Ev::BatteryRepair);
                    }
                    FaultKind::DiskDegrade {
                        duration,
                        stall,
                        retries,
                    } => {
                        self.server.inject_disk_fault(t, duration, stall, retries);
                    }
                    FaultKind::LossBurst {
                        duration,
                        probability,
                        segment,
                    } => {
                        self.lans
                            .inject_loss_window(segment, t, t + duration, probability);
                    }
                },
                Ev::BatteryRepair => {
                    self.server.set_battery(true, t);
                }
                Ev::LeaseTick(client) => {
                    if t < end {
                        let call = self.generators[client].lease_tick_call(t, &self.shared);
                        if let Some(call) = call {
                            if faults_armed {
                                let xid = call.xid.0;
                                self.generators[client]
                                    .retry_calls
                                    .insert(xid, call.clone());
                                self.queue
                                    .schedule_at(t + retry_timeout, Ev::RetryCheck(client, xid, 0));
                            }
                            self.transmit_call(t, client, call);
                        }
                        // A lease-dead stream stops ticking; the server's
                        // expiry sweep reclaims its records.
                        if !self.generators[client].lease.dead {
                            self.queue.schedule_at(
                                t + self.config.lease_renew_interval,
                                Ev::LeaseTick(client),
                            );
                        }
                    }
                }
                Ev::ChurnTick(client) => {
                    if t < end {
                        self.generators[client].lease_reboot();
                        self.queue
                            .schedule_at(t + self.config.churn_interval, Ev::ChurnTick(client));
                    }
                }
            }
        }
        self.point()
    }

    /// The figure point of the finished run (shared by both drivers).
    fn point(&self) -> SfsPoint {
        let measured = self.config.duration;
        SfsPoint {
            offered_ops_per_sec: self.config.offered_ops_per_sec,
            achieved_ops_per_sec: self.completed as f64 / measured.as_secs_f64(),
            avg_latency_ms: self.latency.mean().as_millis_f64(),
            server_cpu_percent: self.server.cpu_utilization_percent(measured),
        }
    }

    /// The server, for post-run inspection.
    pub fn server(&self) -> &NfsServer {
        &self.server
    }

    /// The configuration the system was built with.
    pub fn config(&self) -> &SfsConfig {
        &self.config
    }

    /// Drain the server after the measured window: flush the unified cache
    /// (and any gathered batches) to stable storage, as an unmount would.
    /// With the cache disarmed this changes nothing; with it armed it is how
    /// a sweep cell proves no acknowledged data was left volatile.
    pub fn quiesce_server(&mut self) {
        let at = self.queue.now().max(SimTime::ZERO + self.config.duration);
        let mut actions = Vec::new();
        self.server.quiesce(at, &mut actions);
    }

    /// Operations issued and completed, across all client streams.
    pub fn counts(&self) -> (u64, u64) {
        (self.issued, self.completed)
    }

    /// Calls abandoned after the retransmit budget, across all streams.
    /// When the fault layer is armed every issued call ends up either
    /// completed or here: `issued == completed + gave_up`.
    pub fn gave_up(&self) -> u64 {
        self.generators.iter().map(|g| g.gave_up).sum()
    }

    /// Calls re-sent by the retry timers, across all streams.
    pub fn retransmissions(&self) -> u64 {
        self.generators.iter().map(|g| g.retransmissions).sum()
    }

    /// Number of generator streams.
    pub fn clients(&self) -> usize {
        self.generators.len()
    }

    /// Number of distinct LAN segments feeding the server.
    pub fn lan_segments(&self) -> usize {
        self.lans.segments()
    }

    /// Achieved operations per second of each client stream.
    pub fn per_client_achieved_ops(&self) -> Vec<f64> {
        let secs = self.config.duration.as_secs_f64().max(1e-9);
        self.generators
            .iter()
            .map(|g| g.completed as f64 / secs)
            .collect()
    }

    /// Mean response time of each client stream, in milliseconds.
    pub fn per_client_avg_latency_ms(&self) -> Vec<f64> {
        self.generators
            .iter()
            .map(|g| g.latency.mean().as_millis_f64())
            .collect()
    }

    /// Jain's fairness index over per-client achieved throughput.
    pub fn fairness(&self) -> f64 {
        MultiClientResult::jain_fairness(&self.per_client_achieved_ops())
    }

    /// Total name-minting allocations the generators performed (fresh CREATE
    /// names and scratch-file rotations) — everything else in steady-state op
    /// generation is allocation-free.
    pub fn name_mints(&self) -> u64 {
        self.generators.iter().map(|g| g.name_mints).sum()
    }

    /// Lease-protocol calls issued and replies applied, across all streams
    /// (kept out of [`SfsSystem::counts`] so state traffic never inflates
    /// achieved ops).
    pub fn lease_counts(&self) -> (u64, u64) {
        (
            self.generators.iter().map(|g| g.lease.issued).sum(),
            self.generators.iter().map(|g| g.lease.completed).sum(),
        )
    }

    /// Soft rejections clients observed while the server was in grace.
    pub fn grace_denials(&self) -> u64 {
        self.generators.iter().map(|g| g.lease.grace_denied).sum()
    }

    /// Hard lock denials clients observed (conflict, seqid, refused reclaim,
    /// expiry).
    pub fn lock_denials(&self) -> u64 {
        self.generators.iter().map(|g| g.lease.lock_denied).sum()
    }

    /// Fresh lock grants and grace-window reclaims confirmed by replies,
    /// across all streams.
    pub fn lock_grants(&self) -> (u64, u64) {
        (
            self.generators.iter().map(|g| g.lease.locks_granted).sum(),
            self.generators
                .iter()
                .map(|g| g.lease.reclaims_granted)
                .sum(),
        )
    }

    /// Server reboots observed by clients through RENEW verifier changes.
    pub fn observed_server_reboots(&self) -> u64 {
        self.generators.iter().map(|g| g.lease.server_reboots).sum()
    }

    /// Churn reboots the client fleet performed.
    pub fn churn_reboots(&self) -> u64 {
        self.generators.iter().map(|g| g.lease.churns).sum()
    }

    /// Streams that went lease-dead (stopped renewing after a give-up).
    pub fn lease_dead_streams(&self) -> usize {
        self.generators.iter().filter(|g| g.lease.dead).count()
    }

    /// Outstanding-ring slots reclaimed from calls that never got a reply.
    pub fn stale_overwrites(&self) -> u64 {
        self.generators
            .iter()
            .map(|g| g.outstanding.stale_overwrites)
            .sum()
    }

    /// Largest append offset any scratch write file currently holds.
    pub fn max_scratch_offset(&self) -> u64 {
        self.generators
            .iter()
            .flat_map(|g| g.write_files.iter().map(|f| f.offset))
            .max()
            .unwrap_or(0)
    }

    /// How many scratch-file rotations have happened across all streams.
    pub fn scratch_rotations(&self) -> u64 {
        self.generators
            .iter()
            .flat_map(|g| g.write_files.iter().map(|f| f.generation as u64))
            .sum()
    }

    /// Number of events processed by the most recent [`SfsSystem::run`].
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Total events ever scheduled, across the serial queue and any
    /// partitioned run's per-partition queues.
    pub fn scheduled_total(&self) -> u64 {
        self.queue.scheduled_total() + self.par_scheduled_total
    }

    /// Events scheduled into the past and clamped (serial queue plus every
    /// partitioned queue).  Always zero in a healthy model; sweeps assert it
    /// per cell the same way they assert `evicted_in_progress`.
    pub fn clamped_past(&self) -> u64 {
        self.queue.clamped_past() + self.par_clamped_past
    }

    /// Scheduler-health counters of the pending-event set: the serial
    /// queue's calendar geometry folded with any partitioned run's queues
    /// (counts add, high-water marks take the maximum).
    pub fn sched_stats(&self) -> CalStats {
        let mut stats = self.queue.sched_stats();
        stats.absorb(&self.par_sched);
        stats
    }
}

/// One executed sweep point with the health counters the scale harness
/// records alongside the figure numbers.
#[derive(Clone, Debug)]
pub struct SfsRunStats {
    /// The figure point itself.
    pub point: SfsPoint,
    /// Achieved ops/sec per client stream.
    pub per_client_achieved_ops: Vec<f64>,
    /// Jain's fairness index over the per-client achieved throughput.
    pub fairness: f64,
    /// `InProgress` duplicate-cache evictions (must be zero — §6.9).
    pub evicted_in_progress: u64,
    /// Payload materialisations during the run (must be zero on the
    /// zero-copy datapath).
    pub materializations: u64,
    /// Name-minting allocations the generators performed.
    pub name_mints: u64,
    /// Operations issued.
    pub issued: u64,
    /// Operations completed.
    pub completed: u64,
    /// Calls re-sent by the retry timers (0 with the fault layer disarmed).
    pub retransmissions: u64,
    /// Calls abandoned after the retransmit budget — counted failures.
    pub gave_up: u64,
    /// Events scheduled into the past and silently clamped (must be zero).
    pub clamped_past: u64,
}

/// A load sweep producing the curve of Figure 2 or Figure 3.
#[derive(Clone, Debug)]
pub struct SfsSweep {
    /// Base configuration; the offered load is overridden per point.
    pub base: SfsConfig,
}

impl SfsSweep {
    /// Create a sweep from a base configuration.
    pub fn new(base: SfsConfig) -> Self {
        SfsSweep { base }
    }

    fn point_config(&self, load: f64) -> SfsConfig {
        let mut cfg = self.base.clone();
        cfg.offered_ops_per_sec = load;
        cfg
    }

    /// Run the sweep at the given offered loads, serially.
    pub fn run(&self, loads: &[f64]) -> Vec<SfsPoint> {
        loads
            .iter()
            .map(|&load| SfsSystem::new(self.point_config(load)).run())
            .collect()
    }

    /// Run the sweep serially, collecting the health counters of every point.
    pub fn run_stats(&self, loads: &[f64]) -> Vec<SfsRunStats> {
        loads
            .iter()
            .map(|&load| {
                let before = wg_nfsproto::payload::materialize_count();
                let mut system = SfsSystem::new(self.point_config(load));
                let point = system.run();
                let (issued, completed) = system.counts();
                SfsRunStats {
                    point,
                    per_client_achieved_ops: system.per_client_achieved_ops(),
                    fairness: system.fairness(),
                    evicted_in_progress: system.server().dupcache_evicted_in_progress(),
                    materializations: wg_nfsproto::payload::materialize_count() - before,
                    name_mints: system.name_mints(),
                    issued,
                    completed,
                    retransmissions: system.retransmissions(),
                    gave_up: system.gave_up(),
                    clamped_past: system.clamped_past(),
                }
            })
            .collect()
    }

    /// Run the sweep on a pool of `threads` worker threads.
    ///
    /// Every load point is an independent, deterministic simulation, so the
    /// output is bit-identical to [`SfsSweep::run`] regardless of how the
    /// points land on threads; only the wall clock changes.
    pub fn run_parallel(&self, loads: &[f64], threads: usize) -> Vec<SfsPoint> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;
        let workers = threads.min(loads.len());
        if workers <= 1 {
            return self.run(loads);
        }
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<SfsPoint>>> =
            loads.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= loads.len() {
                        break;
                    }
                    let point = SfsSystem::new(self.point_config(loads[i])).run();
                    *results[i].lock().expect("sweep worker poisoned a point") = Some(point);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("sweep worker poisoned a point")
                    .expect("every point was claimed by a worker")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pin the driver event's footprint.  Every schedule moves one `Ev` by
    /// value into the calendar queue and every pop moves it back out, so a
    /// grown variant taxes the whole event loop.  The size is set by the
    /// largest payload (a `ServerInput` carrying an `NfsCall` or a reply-bearing `Ev::Reply`); box a new
    /// large variant instead of raising this pin.
    #[test]
    fn driver_event_stays_within_its_pinned_footprint() {
        assert!(
            std::mem::size_of::<Ev>() <= 112,
            "Ev grew to {} bytes; box the large variant",
            std::mem::size_of::<Ev>()
        );
    }

    fn quick_config(load: f64, policy: WritePolicy) -> SfsConfig {
        SfsConfig {
            duration: Duration::from_secs(4),
            file_count: 30,
            file_size: 64 * 1024,
            ..SfsConfig::figure2(load, policy)
        }
    }

    #[test]
    fn mix_weights_sum_to_100() {
        let total: f64 = SfsMix::laddis().weights().iter().sum();
        assert!((total - 100.0).abs() < 1e-9);
        assert!((SfsMix::laddis().write - 15.0).abs() < 1e-9);
        let steady: f64 = SfsMix::steady_state().weights().iter().sum();
        assert!((steady - 100.0).abs() < 1e-9);
    }

    #[test]
    fn light_load_is_served_with_low_latency() {
        let mut system = SfsSystem::new(quick_config(100.0, WritePolicy::Gathering));
        let point = system.run();
        let (issued, completed) = system.counts();
        assert!(issued > 300, "issued {issued}");
        // Nearly everything issued completes at light load.
        assert!(completed as f64 >= issued as f64 * 0.95);
        assert!(point.achieved_ops_per_sec > 80.0);
        assert!(
            point.avg_latency_ms < 50.0,
            "latency {}",
            point.avg_latency_ms
        );
        assert!(point.server_cpu_percent < 60.0);
    }

    #[test]
    fn saturation_caps_achieved_throughput() {
        let low = SfsSystem::new(quick_config(150.0, WritePolicy::Standard)).run();
        let high = SfsSystem::new(quick_config(3000.0, WritePolicy::Standard)).run();
        // Offered load went up 20x; achieved throughput cannot follow and
        // latency climbs.
        assert!(high.achieved_ops_per_sec < 3000.0 * 0.9);
        assert!(high.avg_latency_ms > low.avg_latency_ms);
    }

    #[test]
    fn gathering_improves_capacity_or_latency_at_heavy_load() {
        let load = 900.0;
        let without = SfsSystem::new(quick_config(load, WritePolicy::Standard)).run();
        let with = SfsSystem::new(quick_config(load, WritePolicy::Gathering)).run();
        // Figure 2's shape: at the same heavy offered load the gathering
        // server either completes more operations or answers them faster (in
        // practice both).
        let better_throughput = with.achieved_ops_per_sec >= without.achieved_ops_per_sec * 0.98;
        let better_latency = with.avg_latency_ms <= without.avg_latency_ms;
        assert!(
            better_throughput || better_latency,
            "with: {with:?}\nwithout: {without:?}"
        );
    }

    #[test]
    fn sweep_is_monotone_in_offered_load_until_saturation() {
        let sweep = SfsSweep::new(quick_config(0.0, WritePolicy::Gathering));
        let points = sweep.run(&[100.0, 300.0, 600.0]);
        assert_eq!(points.len(), 3);
        assert!(points[1].achieved_ops_per_sec > points[0].achieved_ops_per_sec);
        // Latency is non-decreasing with load.
        assert!(points[2].avg_latency_ms >= points[0].avg_latency_ms * 0.8);
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let a = SfsSystem::new(quick_config(200.0, WritePolicy::Gathering)).run();
        let b = SfsSystem::new(quick_config(200.0, WritePolicy::Gathering)).run();
        assert_eq!(a.achieved_ops_per_sec, b.achieved_ops_per_sec);
        assert_eq!(a.avg_latency_ms, b.avg_latency_ms);
    }

    #[test]
    fn multi_client_streams_are_deterministic_and_disjoint() {
        let config = quick_config(400.0, WritePolicy::Gathering)
            .with_clients(3)
            .with_per_client_lans(true);
        let mut a = SfsSystem::new(config.clone());
        let pa = a.run();
        let mut b = SfsSystem::new(config);
        let pb = b.run();
        assert_eq!(pa.achieved_ops_per_sec, pb.achieved_ops_per_sec);
        assert_eq!(pa.avg_latency_ms, pb.avg_latency_ms);
        assert_eq!(a.clients(), 3);
        assert_eq!(a.lan_segments(), 3);
        // Every stream carried a share of the load.
        assert!(a.per_client_achieved_ops().iter().all(|&ops| ops > 0.0));
        assert!(a.fairness() > 0.8, "fairness {}", a.fairness());
    }

    #[test]
    fn xid_windows_are_disjoint_per_client() {
        let config = quick_config(100.0, WritePolicy::Gathering).with_clients(4);
        assert_eq!(config.xid_base(0), XID_ORIGIN);
        for c in 0..3 {
            assert!(config.xid_base(c + 1) > config.xid_base(c));
            assert_eq!(
                config.xid_base(c + 1) - config.xid_base(c),
                config.xid_stride()
            );
        }
    }

    #[test]
    fn outstanding_ring_inserts_takes_and_reclaims() {
        let mut ring = OutstandingRing::new(XID_ORIGIN, 16, false);
        let t = SimTime::ZERO + Duration::from_millis(5);
        ring.insert(XID_ORIGIN, t, OpKind::Read);
        ring.insert(XID_ORIGIN + 1, t, OpKind::Write);
        assert_eq!(ring.take(XID_ORIGIN), Some((t, OpKind::Read)));
        // Double-take and unknown xids miss.
        assert_eq!(ring.take(XID_ORIGIN), None);
        assert_eq!(ring.take(XID_ORIGIN + 2), None);
        // A never-answered call's slot is reclaimed when the ring laps.
        let capacity = ring.slots.len() as u32;
        ring.insert(XID_ORIGIN + 1 + capacity, t, OpKind::Lookup);
        assert_eq!(ring.stale_overwrites, 1);
        assert_eq!(
            ring.take(XID_ORIGIN + 1 + capacity),
            Some((t, OpKind::Lookup))
        );
        // The lapped xid no longer matches.
        assert_eq!(ring.take(XID_ORIGIN + 1), None);
    }

    #[test]
    fn leases_off_keeps_the_server_stateless() {
        let mut system = SfsSystem::new(quick_config(200.0, WritePolicy::Gathering));
        system.run();
        assert_eq!(system.lease_counts(), (0, 0));
        assert_eq!(
            system.server().state_stats(),
            &wg_server::StateStats::default()
        );
        assert_eq!(system.server().active_lease_clients(), 0);
        assert_eq!(system.server().held_locks(), 0);
    }

    #[test]
    fn lease_storm_registers_renews_and_locks_every_stream() {
        let clients = 4;
        let config = quick_config(300.0, WritePolicy::Gathering)
            .with_clients(clients)
            .with_leases(true)
            .with_lease_timing(
                Duration::from_millis(400),
                Duration::from_millis(1500),
                Duration::from_millis(800),
            );
        let mut system = SfsSystem::new(config);
        system.run();
        let stats = system.server().state_stats().clone();
        // Every stream registered once, renewed repeatedly and acquired its
        // disjoint byte-range lock exactly once.
        assert_eq!(stats.leases_granted, clients as u64);
        assert!(
            stats.renewals > clients as u64,
            "renewals {}",
            stats.renewals
        );
        assert_eq!(stats.locks_granted, clients as u64);
        assert_eq!(system.lock_grants(), (clients as u64, 0));
        // Healthy streams renew to the end: nothing expired, nothing held
        // back, and the post-run sweep leaves every lease and lock standing.
        assert_eq!(stats.leases_expired, 0);
        assert_eq!(system.server().active_lease_clients(), clients);
        assert_eq!(system.server().held_locks(), clients);
        assert!(system.server().state_table_bytes() > 0);
        // State oracle: no conflicts, no write past an expired lease.
        assert_eq!(stats.lock_conflicts, 0);
        assert_eq!(stats.grace_conflicts, 0);
        assert_eq!(stats.expired_lease_writes, 0);
        let (issued, applied) = system.lease_counts();
        assert!(issued > 0 && applied > 0);
    }

    #[test]
    fn crash_opens_grace_and_streams_reclaim_their_locks() {
        let clients = 3;
        let plan = FaultPlan::new().at(SimTime::from_millis(1200), FaultKind::ServerCrash);
        let config = quick_config(300.0, WritePolicy::Gathering)
            .with_clients(clients)
            .with_fault_plan(plan)
            .with_retry(Duration::from_millis(300), 6)
            .with_leases(true)
            .with_lease_timing(
                Duration::from_millis(400),
                Duration::from_secs(2),
                Duration::from_millis(1500),
            );
        let mut system = SfsSystem::new(config);
        system.run();
        let stats = system.server().state_stats().clone();
        // Streams held locks before the crash, observed the reboot through
        // the RENEW verifier change, and reclaimed inside the grace window.
        assert!(system.observed_server_reboots() >= 1);
        assert!(stats.locks_reclaimed >= 1, "no reclaim landed: {stats:?}");
        assert_eq!(system.lock_grants().1, stats.locks_reclaimed);
        // State oracle: no lock admitted during grace conflicted with a
        // reclaimable pre-crash lock, no write slipped past an expired
        // lease.
        assert_eq!(stats.grace_conflicts, 0);
        assert_eq!(stats.expired_lease_writes, 0);
    }

    #[test]
    fn churn_reboots_reregister_and_revoke_stale_incarnations() {
        let clients = 2;
        let config = quick_config(200.0, WritePolicy::Gathering)
            .with_clients(clients)
            .with_leases(true)
            .with_lease_timing(
                Duration::from_millis(300),
                Duration::from_millis(1200),
                Duration::from_millis(600),
            )
            .with_churn(Duration::from_millis(1100));
        let mut system = SfsSystem::new(config);
        system.run();
        let stats = system.server().state_stats().clone();
        assert!(system.churn_reboots() >= clients as u64);
        // The server saw rebooted incarnations re-register (wiping the old
        // records) and re-grant their locks.
        assert!(
            stats.client_reboots >= 1,
            "reboots {}",
            stats.client_reboots
        );
        assert!(
            stats.locks_granted > clients as u64,
            "locks {}",
            stats.locks_granted
        );
        assert_eq!(stats.grace_conflicts, 0);
        assert_eq!(stats.expired_lease_writes, 0);
    }

    #[test]
    fn scratch_rotation_keeps_offsets_inside_the_file_cap() {
        // A write-only mix against a tiny rotation limit: the old code would
        // have grown one append stream far past the limit (and, hot enough,
        // past the 16 MB UFS cap where `offset as u32` wrapped); the rotated
        // generator must never let an offset cross it.
        let limit = 256 * 1024u64;
        let mut config = quick_config(2000.0, WritePolicy::Gathering)
            .with_scratch_file_limit(limit)
            .with_clients(1);
        config.mix = SfsMix {
            lookup: 0.0,
            read: 0.0,
            write: 100.0,
            getattr: 0.0,
            readdir: 0.0,
            create: 0.0,
            remove: 0.0,
            setattr: 0.0,
            statfs: 0.0,
        };
        config.duration = Duration::from_secs(8);
        let mut system = SfsSystem::new(config);
        system.run();
        assert!(
            system.scratch_rotations() > 0,
            "the run was hot enough to rotate"
        );
        assert!(system.max_scratch_offset() <= limit);
        // Every scratch file on disk respects the limit too.
        let mut fs = system.server().fs().clone();
        let root = fs.root();
        let mut checked = 0;
        for slot in 0..SCRATCH_SLOTS {
            for generation in 0.. {
                let name = scratch_file_name(0, slot, generation);
                let Ok(ino) = fs.lookup(root, &name) else {
                    break;
                };
                let size = fs.getattr(ino).expect("live file").size;
                assert!(size <= limit, "{name} grew to {size} bytes");
                checked += 1;
            }
        }
        assert!(checked > SCRATCH_SLOTS, "rotation chains exist on disk");
    }

    #[test]
    fn unstable_cells_commit_their_bursts_and_lose_nothing() {
        let config = quick_config(400.0, WritePolicy::Gathering)
            .with_unified_cache(4096)
            .with_stability(StabilityMode::Unstable);
        let mut system = SfsSystem::new(config);
        let point = system.run();
        assert!(point.achieved_ops_per_sec > 0.0);
        let (unstable_writes, commits, forced) = {
            let stats = system.server().stats();
            (stats.unstable_writes, stats.commits, stats.forced_file_sync)
        };
        assert!(unstable_writes > 0, "no WRITE(UNSTABLE) was issued");
        assert!(commits > 0, "no burst was chased by a COMMIT");
        assert_eq!(forced, 0);
        // An unmount-style drain leaves nothing volatile and nothing lost.
        system.quiesce_server();
        assert_eq!(system.server().uncommitted_bytes(), 0);
        assert_eq!(system.server().stats().lost_acked_bytes, 0);
    }

    #[test]
    fn default_cells_never_speak_v3() {
        let mut system = SfsSystem::new(quick_config(200.0, WritePolicy::Gathering));
        system.run();
        let stats = system.server().stats();
        assert_eq!(stats.unstable_writes, 0);
        assert_eq!(stats.commits, 0);
        assert_eq!(stats.forced_file_sync, 0);
    }

    #[test]
    fn unstable_partitioned_run_is_bit_identical_to_serial() {
        let config = quick_config(300.0, WritePolicy::Gathering)
            .with_clients(2)
            .with_per_client_lans(true)
            .with_unified_cache(2048)
            .with_stability(StabilityMode::Unstable);
        let serial = SfsSystem::new(config.clone()).run();
        let parallel = SfsSystem::new(config.with_sim_threads(2)).run();
        assert_eq!(serial.achieved_ops_per_sec, parallel.achieved_ops_per_sec);
        assert_eq!(serial.avg_latency_ms, parallel.avg_latency_ms);
        assert_eq!(serial.server_cpu_percent, parallel.server_cpu_percent);
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let sweep = SfsSweep::new(quick_config(0.0, WritePolicy::Gathering));
        let loads = [100.0, 250.0, 400.0, 550.0];
        let serial = sweep.run(&loads);
        let parallel = sweep.run_parallel(&loads, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(parallel.iter()) {
            assert_eq!(s.offered_ops_per_sec, p.offered_ops_per_sec);
            assert_eq!(s.achieved_ops_per_sec, p.achieved_ops_per_sec);
            assert_eq!(s.avg_latency_ms, p.avg_latency_ms);
            assert_eq!(s.server_cpu_percent, p.server_cpu_percent);
        }
    }

    #[test]
    fn parallel_sweep_stays_bit_identical_with_loss_enabled() {
        // Each cell's loss streams are seeded from the cell's own identity
        // (base seed, offered load, segment index), never from thread or
        // construction order — so a lossy sweep must replay bit-identically
        // on worker threads, retransmissions and all.
        let sweep = SfsSweep::new(
            quick_config(0.0, WritePolicy::Gathering)
                .with_clients(2)
                .with_per_client_lans(true)
                .with_loss(0.05),
        );
        let loads = [100.0, 250.0, 400.0, 550.0];
        let serial = sweep.run(&loads);
        let parallel = sweep.run_parallel(&loads, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(parallel.iter()) {
            assert_eq!(s.offered_ops_per_sec, p.offered_ops_per_sec);
            assert_eq!(s.achieved_ops_per_sec, p.achieved_ops_per_sec);
            assert_eq!(s.avg_latency_ms, p.avg_latency_ms);
            assert_eq!(s.server_cpu_percent, p.server_cpu_percent);
        }
        // The loss rate actually bit: the retry layer had work to do.
        let mut system = SfsSystem::new(sweep.point_config(250.0));
        system.run();
        assert!(system.retransmissions() > 0);
        let (issued, completed) = system.counts();
        assert_eq!(issued, completed + system.gave_up());
    }

    #[test]
    fn run_stats_reports_clean_counters() {
        let sweep = SfsSweep::new(
            quick_config(0.0, WritePolicy::Gathering)
                .with_clients(2)
                .with_per_client_lans(true),
        );
        let stats = sweep.run_stats(&[300.0]);
        assert_eq!(stats.len(), 1);
        let s = &stats[0];
        assert_eq!(s.evicted_in_progress, 0);
        assert_eq!(s.materializations, 0);
        assert_eq!(s.per_client_achieved_ops.len(), 2);
        assert!(s.fairness > 0.8);
        assert!(s.completed > 0 && s.issued >= s.completed);
    }
}
