//! A SPEC SFS 1.0 (LADDIS)-like mixed-operation load generator.
//!
//! Figures 2 and 3 of the paper plot NFS throughput (SPECnfs ops/sec) against
//! average response time for a DEC 3800 server with and without write
//! gathering, driven by the SPEC SFS 1.0 benchmark.  SFS itself is a large
//! proprietary harness; what matters for the reproduction is its *shape*:
//!
//! * a fixed operation mix in which writes are a small (≈15 %) but expensive
//!   fraction ([WITT93]),
//! * an offered load swept upward until the server saturates,
//! * the reported curve of achieved ops/sec vs average latency.
//!
//! [`SfsSystem`] generates a Poisson stream of operations drawn from the
//! LADDIS mix against a pre-populated filesystem, and [`SfsSweep`] runs the
//! load sweep that regenerates the figures.

use std::collections::HashMap;

use wg_net::medium::Direction;
use wg_net::{Medium, TransmitOutcome};
use wg_nfsproto::{
    CreateArgs, DirOpArgs, FileHandle, GetattrArgs, NfsCall, NfsCallBody, NfsReply, ReadArgs,
    ReaddirArgs, Sattr, WriteArgs, Xid,
};
use wg_server::{NfsServer, ServerAction, ServerConfig, ServerInput, WritePolicy};
use wg_simcore::{Duration, EventQueue, LatencyStat, SimRng, SimTime};

use crate::results::SfsPoint;
use crate::system::NetworkKind;

/// The operation mix, as percentages that sum to 100.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct SfsMix {
    /// LOOKUP share.
    pub lookup: f64,
    /// READ share.
    pub read: f64,
    /// WRITE share (the paper quotes 15 %).
    pub write: f64,
    /// GETATTR share.
    pub getattr: f64,
    /// READDIR share.
    pub readdir: f64,
    /// CREATE share.
    pub create: f64,
    /// REMOVE share.
    pub remove: f64,
    /// SETATTR share.
    pub setattr: f64,
    /// STATFS share.
    pub statfs: f64,
}

impl SfsMix {
    /// The LADDIS / SPEC SFS 1.0 mix (writes at 15 %).
    pub fn laddis() -> Self {
        SfsMix {
            lookup: 34.0,
            read: 22.0,
            write: 15.0,
            getattr: 13.0,
            readdir: 7.0,
            create: 3.0,
            remove: 3.0,
            setattr: 2.0,
            statfs: 1.0,
        }
    }

    fn weights(&self) -> [f64; 9] {
        [
            self.lookup,
            self.read,
            self.write,
            self.getattr,
            self.readdir,
            self.create,
            self.remove,
            self.setattr,
            self.statfs,
        ]
    }
}

/// Configuration of one SFS-style measurement point.
#[derive(Clone, Debug)]
pub struct SfsConfig {
    /// Network medium (the paper's SFS runs use FDDI).
    pub network: NetworkKind,
    /// Server write policy.
    pub policy: WritePolicy,
    /// Prestoserve acceleration (Figure 3).
    pub prestoserve: bool,
    /// Server spindles (the Figure 2/3 server has a large disk farm; several
    /// spindles keep the disk from being the first bottleneck).
    pub spindles: usize,
    /// Number of nfsds (32 in the figures' configuration).
    pub nfsds: usize,
    /// Offered load in operations per second.
    pub offered_ops_per_sec: f64,
    /// Measured interval of simulated time.
    pub duration: Duration,
    /// Number of files pre-created in the exported filesystem.
    pub file_count: usize,
    /// Size of each pre-created file.
    pub file_size: u64,
    /// Operation mix.
    pub mix: SfsMix,
    /// Number of consecutive sequential 8 KB writes issued when a write is
    /// drawn from the mix.  LADDIS writes whole files in sequential chunks,
    /// which is the burstiness write gathering exploits; each write in the
    /// burst still counts as one NFS operation so the mix percentages hold.
    pub write_burst: usize,
    /// RNG seed (runs are deterministic per seed).
    pub seed: u64,
}

impl SfsConfig {
    /// A Figure 2-style configuration at a given offered load.
    pub fn figure2(offered_ops_per_sec: f64, policy: WritePolicy) -> Self {
        SfsConfig {
            network: NetworkKind::Fddi,
            policy,
            prestoserve: false,
            // The Figure 2/3 server is a DEC 3800 with "20 DISKS, 5 SCSI
            // BUSES"; six spindles keeps the disk farm from being the first
            // bottleneck without simulating all twenty.
            spindles: 6,
            nfsds: 32,
            offered_ops_per_sec,
            duration: Duration::from_secs(20),
            file_count: 200,
            file_size: 128 * 1024,
            mix: SfsMix::laddis(),
            write_burst: 8,
            seed: 1993,
        }
    }

    /// A Figure 3-style configuration (Prestoserve in front of the disks).
    pub fn figure3(offered_ops_per_sec: f64, policy: WritePolicy) -> Self {
        SfsConfig {
            prestoserve: true,
            ..SfsConfig::figure2(offered_ops_per_sec, policy)
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpKind {
    Lookup,
    Read,
    Write,
    Getattr,
    Readdir,
    Create,
    Remove,
    Setattr,
    Statfs,
}

const OP_KINDS: [OpKind; 9] = [
    OpKind::Lookup,
    OpKind::Read,
    OpKind::Write,
    OpKind::Getattr,
    OpKind::Readdir,
    OpKind::Create,
    OpKind::Remove,
    OpKind::Setattr,
    OpKind::Statfs,
];

enum Ev {
    NextArrival,
    Server(ServerInput),
    Reply(NfsReply),
}

/// One SFS-style measurement run.
pub struct SfsSystem {
    config: SfsConfig,
    server: NfsServer,
    medium: Medium,
    queue: EventQueue<Ev>,
    rng: SimRng,
    root_handle: FileHandle,
    files: Vec<(String, FileHandle, u64)>,
    /// Files the write bursts append to, with their current append offset.
    /// LADDIS writes create and grow files, so every write allocates new
    /// blocks and dirties metadata — the case write gathering amortises.
    write_files: Vec<(FileHandle, u64)>,
    outstanding: HashMap<Xid, (SimTime, OpKind)>,
    latency: LatencyStat,
    issued: u64,
    completed: u64,
    events_processed: u64,
    next_xid: u32,
    created_names: Vec<String>,
    create_counter: u64,
    /// Remaining bodies of an in-progress write burst; drained one per
    /// arrival before a new operation is drawn from the mix.
    burst_queue: Vec<NfsCallBody>,
}

impl SfsSystem {
    /// Build the system and pre-populate the exported filesystem.
    pub fn new(config: SfsConfig) -> Self {
        let medium_params = config.network.params();
        let mut server_config = ServerConfig {
            policy: config.policy,
            nfsds: config.nfsds,
            // The DEC 3800 of Figures 2/3 is a faster machine than the cost
            // table's reference; reflect that so the curves reach a few
            // hundred ops/sec before CPU saturation.
            cpu_speed: 1.6,
            ..ServerConfig::standard()
        };
        server_config.storage.prestoserve = config.prestoserve;
        server_config.storage.spindles = config.spindles;
        server_config.procrastination = medium_params.procrastination;
        let mut server = NfsServer::new(server_config);

        let root = server.fs().root();
        let mut files = Vec::with_capacity(config.file_count);
        for i in 0..config.file_count {
            let name = format!("sfs_file_{i:04}");
            let ino = server
                .fs_mut()
                .create_prefilled(root, &name, config.file_size, 0)
                .expect("pre-population fits the data region");
            let handle = server.handle_for_ino(ino).expect("live inode");
            files.push((name, handle, config.file_size));
        }
        let mut write_files = Vec::new();
        for i in 0..32 {
            let name = format!("sfs_write_{i:03}");
            let ino = server
                .fs_mut()
                .create(root, &name, 0o644, 0)
                .expect("fresh namespace");
            write_files.push((server.handle_for_ino(ino).expect("live inode"), 0u64));
        }
        let root_handle = server.root_handle();
        SfsSystem {
            medium: Medium::new(medium_params),
            queue: EventQueue::new(),
            rng: SimRng::seed_from(config.seed),
            outstanding: HashMap::new(),
            latency: LatencyStat::new(),
            issued: 0,
            completed: 0,
            events_processed: 0,
            next_xid: 0x2000_0000,
            created_names: Vec::new(),
            create_counter: 0,
            burst_queue: Vec::new(),
            write_files,
            root_handle,
            files,
            server,
            config,
        }
    }

    fn pick_file(&mut self) -> (String, FileHandle, u64) {
        let idx = self.rng.next_below(self.files.len() as u64) as usize;
        self.files[idx].clone()
    }

    fn next_call(&mut self) -> NfsCall {
        // Drain an in-progress write burst first: LADDIS writes whole files
        // in consecutive 8 KB chunks, so write operations arrive in bursts.
        if let Some(body) = self.burst_queue.pop() {
            let xid = Xid(self.next_xid);
            self.next_xid += 1;
            self.outstanding.insert(xid, (SimTime::ZERO, OpKind::Write));
            return NfsCall::new(xid, body);
        }
        // Scale the write weight down by the burst length so that writes stay
        // at their configured share of *operations* even though each burst
        // start expands into `write_burst` of them.
        let burst = self.config.write_burst.max(1);
        let mut weights = self.config.mix.weights();
        weights[2] /= burst as f64;
        let kind = OP_KINDS[self.rng.pick_weighted(&weights)];
        let xid = Xid(self.next_xid);
        self.next_xid += 1;
        let chunk = 8192u64;
        let body = match kind {
            OpKind::Lookup => {
                let (name, _, _) = self.pick_file();
                NfsCallBody::Lookup(DirOpArgs {
                    dir: self.root_handle,
                    name,
                })
            }
            OpKind::Read => {
                let (_, fh, size) = self.pick_file();
                let blocks = (size / chunk).max(1);
                let offset = self.rng.next_below(blocks) * chunk;
                NfsCallBody::Read(ReadArgs {
                    file: fh,
                    offset: offset as u32,
                    count: chunk as u32,
                    totalcount: 0,
                })
            }
            OpKind::Write => {
                // Start a burst of sequential appending writes to one of the
                // scratch files: every chunk allocates fresh blocks, as the
                // file-writing phases of LADDIS do.
                let idx = self.rng.next_below(self.write_files.len() as u64) as usize;
                let (fh, start) = self.write_files[idx];
                let burst_len = burst as u64;
                self.write_files[idx].1 = start + burst_len * chunk;
                // Queue the follow-on chunks in reverse so popping yields
                // ascending offsets.
                for i in (1..burst_len).rev() {
                    let offset = start + i * chunk;
                    let fill = (offset / chunk) as u8;
                    self.burst_queue.push(NfsCallBody::Write(WriteArgs::fill(
                        fh,
                        offset as u32,
                        fill,
                        chunk as u32,
                    )));
                }
                let fill = (start / chunk) as u8;
                NfsCallBody::Write(WriteArgs::fill(fh, start as u32, fill, chunk as u32))
            }
            OpKind::Getattr => {
                let (_, fh, _) = self.pick_file();
                NfsCallBody::Getattr(GetattrArgs { file: fh })
            }
            OpKind::Readdir => NfsCallBody::Readdir(ReaddirArgs {
                dir: self.root_handle,
                cookie: 0,
                count: 4096,
            }),
            OpKind::Create => {
                self.create_counter += 1;
                let name = format!("sfs_scratch_{}", self.create_counter);
                self.created_names.push(name.clone());
                NfsCallBody::Create(CreateArgs {
                    where_: DirOpArgs {
                        dir: self.root_handle,
                        name,
                    },
                    attributes: Sattr::with_mode(0o644),
                })
            }
            OpKind::Remove => {
                if let Some(name) = self.created_names.pop() {
                    NfsCallBody::Remove(DirOpArgs {
                        dir: self.root_handle,
                        name,
                    })
                } else {
                    // Nothing of ours to remove yet: fall back to a getattr so
                    // the offered load is preserved.
                    let (_, fh, _) = self.pick_file();
                    NfsCallBody::Getattr(GetattrArgs { file: fh })
                }
            }
            OpKind::Setattr => {
                let (_, fh, _) = self.pick_file();
                NfsCallBody::Setattr(wg_nfsproto::SetattrArgs {
                    file: fh,
                    attributes: Sattr::with_mode(0o644),
                })
            }
            OpKind::Statfs => NfsCallBody::Statfs(GetattrArgs {
                file: self.root_handle,
            }),
        };
        let call = NfsCall::new(xid, body);
        self.outstanding.insert(xid, (SimTime::ZERO, kind));
        call
    }

    /// Run the measurement and produce one figure point.
    pub fn run(&mut self) -> SfsPoint {
        self.events_processed = 0;
        let mean_gap = 1.0 / self.config.offered_ops_per_sec.max(1e-9);
        self.queue.schedule_at(
            SimTime::ZERO + Duration::from_secs_f64(self.rng.exponential(mean_gap)),
            Ev::NextArrival,
        );
        let end = SimTime::ZERO + self.config.duration;
        // Scratch buffer reused across every server event (see
        // `FileCopySystem::run` for the same pattern on the copy loop).
        let mut server_actions: Vec<ServerAction> = Vec::new();
        while let Some((t, ev)) = self.queue.pop() {
            self.events_processed += 1;
            assert!(
                self.events_processed < 100_000_000,
                "runaway SFS simulation"
            );
            match ev {
                Ev::NextArrival => {
                    if t < end {
                        let call = self.next_call();
                        if let Some((sent, _)) = self.outstanding.get_mut(&call.xid) {
                            *sent = t;
                        }
                        self.issued += 1;
                        let size = call.wire_size();
                        let fragments = self.medium.params().fragments_for(size);
                        if let TransmitOutcome::Delivered { arrives_at } =
                            self.medium.transmit(t, size, Direction::ToServer)
                        {
                            self.queue.schedule_at(
                                arrives_at,
                                Ev::Server(ServerInput::Datagram {
                                    client: 0,
                                    call,
                                    wire_size: size,
                                    fragments,
                                }),
                            );
                        }
                        let gap = Duration::from_secs_f64(self.rng.exponential(mean_gap));
                        self.queue.schedule_at(t + gap, Ev::NextArrival);
                    }
                }
                Ev::Server(input) => {
                    self.server.handle_into(t, input, &mut server_actions);
                    for action in server_actions.drain(..) {
                        match action {
                            ServerAction::Wakeup { at, token } => {
                                self.queue
                                    .schedule_at(at, Ev::Server(ServerInput::Wakeup { token }));
                            }
                            ServerAction::Reply { at, reply, .. } => {
                                let size = reply.wire_size();
                                if let TransmitOutcome::Delivered { arrives_at } =
                                    self.medium.transmit(at, size, Direction::ToClient)
                                {
                                    self.queue.schedule_at(arrives_at, Ev::Reply(reply));
                                }
                            }
                        }
                    }
                }
                Ev::Reply(reply) => {
                    if let Some((sent, _kind)) = self.outstanding.remove(&reply.xid) {
                        self.latency.record(t.since(sent));
                        self.completed += 1;
                    }
                }
            }
        }
        let measured = self.config.duration;
        SfsPoint {
            offered_ops_per_sec: self.config.offered_ops_per_sec,
            achieved_ops_per_sec: self.completed as f64 / measured.as_secs_f64(),
            avg_latency_ms: self.latency.mean().as_millis_f64(),
            server_cpu_percent: self.server.cpu_utilization_percent(measured),
        }
    }

    /// The server, for post-run inspection.
    pub fn server(&self) -> &NfsServer {
        &self.server
    }

    /// Operations issued and completed.
    pub fn counts(&self) -> (u64, u64) {
        (self.issued, self.completed)
    }

    /// Number of events processed by the most recent [`SfsSystem::run`].
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Total events ever scheduled on the system's event queue.
    pub fn scheduled_total(&self) -> u64 {
        self.queue.scheduled_total()
    }
}

/// A load sweep producing the curve of Figure 2 or Figure 3.
#[derive(Clone, Debug)]
pub struct SfsSweep {
    /// Base configuration; the offered load is overridden per point.
    pub base: SfsConfig,
}

impl SfsSweep {
    /// Create a sweep from a base configuration.
    pub fn new(base: SfsConfig) -> Self {
        SfsSweep { base }
    }

    /// Run the sweep at the given offered loads.
    pub fn run(&self, loads: &[f64]) -> Vec<SfsPoint> {
        loads
            .iter()
            .map(|&load| {
                let mut cfg = self.base.clone();
                cfg.offered_ops_per_sec = load;
                SfsSystem::new(cfg).run()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(load: f64, policy: WritePolicy) -> SfsConfig {
        SfsConfig {
            duration: Duration::from_secs(4),
            file_count: 30,
            file_size: 64 * 1024,
            ..SfsConfig::figure2(load, policy)
        }
    }

    #[test]
    fn mix_weights_sum_to_100() {
        let total: f64 = SfsMix::laddis().weights().iter().sum();
        assert!((total - 100.0).abs() < 1e-9);
        assert!((SfsMix::laddis().write - 15.0).abs() < 1e-9);
    }

    #[test]
    fn light_load_is_served_with_low_latency() {
        let mut system = SfsSystem::new(quick_config(100.0, WritePolicy::Gathering));
        let point = system.run();
        let (issued, completed) = system.counts();
        assert!(issued > 300, "issued {issued}");
        // Nearly everything issued completes at light load.
        assert!(completed as f64 >= issued as f64 * 0.95);
        assert!(point.achieved_ops_per_sec > 80.0);
        assert!(
            point.avg_latency_ms < 50.0,
            "latency {}",
            point.avg_latency_ms
        );
        assert!(point.server_cpu_percent < 60.0);
    }

    #[test]
    fn saturation_caps_achieved_throughput() {
        let low = SfsSystem::new(quick_config(150.0, WritePolicy::Standard)).run();
        let high = SfsSystem::new(quick_config(3000.0, WritePolicy::Standard)).run();
        // Offered load went up 20x; achieved throughput cannot follow and
        // latency climbs.
        assert!(high.achieved_ops_per_sec < 3000.0 * 0.9);
        assert!(high.avg_latency_ms > low.avg_latency_ms);
    }

    #[test]
    fn gathering_improves_capacity_or_latency_at_heavy_load() {
        let load = 900.0;
        let without = SfsSystem::new(quick_config(load, WritePolicy::Standard)).run();
        let with = SfsSystem::new(quick_config(load, WritePolicy::Gathering)).run();
        // Figure 2's shape: at the same heavy offered load the gathering
        // server either completes more operations or answers them faster (in
        // practice both).
        let better_throughput = with.achieved_ops_per_sec >= without.achieved_ops_per_sec * 0.98;
        let better_latency = with.avg_latency_ms <= without.avg_latency_ms;
        assert!(
            better_throughput || better_latency,
            "with: {with:?}\nwithout: {without:?}"
        );
    }

    #[test]
    fn sweep_is_monotone_in_offered_load_until_saturation() {
        let sweep = SfsSweep::new(quick_config(0.0, WritePolicy::Gathering));
        let points = sweep.run(&[100.0, 300.0, 600.0]);
        assert_eq!(points.len(), 3);
        assert!(points[1].achieved_ops_per_sec > points[0].achieved_ops_per_sec);
        // Latency is non-decreasing with load.
        assert!(points[2].avg_latency_ms >= points[0].avg_latency_ms * 0.8);
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let a = SfsSystem::new(quick_config(200.0, WritePolicy::Gathering)).run();
        let b = SfsSystem::new(quick_config(200.0, WritePolicy::Gathering)).run();
        assert_eq!(a.achieved_ops_per_sec, b.achieved_ops_per_sec);
        assert_eq!(a.avg_latency_ms, b.avg_latency_ms);
    }
}
