//! Partitioned execution of one [`MultiClientSystem`] run.
//!
//! Same hub-and-spoke split as the SFS driver (`crate::sfs::par`): each LAN
//! segment's writers and medium form a spoke, the server/disk island is the
//! hub, and everything is ordered by [`Key`] lineage so the run replays the
//! serial loop bit for bit.  Two things differ from SFS:
//!
//! * nothing here mutates hub state from a spoke (segment files are created
//!   at build time), so there is no freeze/resume protocol; but
//! * a reply *provokes* sends — a [`FileWriterClient`] issues its next write
//!   from the reply handler — so a spoke's published bound alone cannot cover
//!   its future traffic.  The hub therefore tracks an [`OpWindow`] per spoke
//!   (ops mailed but not yet applied) and gates on `min(bound, window)`.
//!   Spokes store *exact* bounds ([`BoundCell::store`]) and release a mailed
//!   op's window entry only after storing the bound that covers the local
//!   events the op materialised — the regression-safety contract described on
//!   [`BoundCell::store`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use wg_client::{ClientAction, ClientInput, FileWriterClient};
use wg_net::medium::{Direction, Medium};
use wg_net::TransmitOutcome;
use wg_nfsproto::{NfsCall, NfsReply};
use wg_server::{NfsServer, ServerAction, ServerInput};
use wg_simcore::parallel::{applied_counter, bump_applied, run_hub, HubPartition};
use wg_simcore::{BoundCell, Duration, Key, KeyedQueue, Mailbox, Monitor, OpWindow, SimTime};

use super::{ClientSlot, MultiClientConfig, MultiClientSystem};
use crate::results::MultiClientResult;

/// Client-island → server-island messages.
enum UpMsg {
    Datagram {
        client: u32,
        call: NfsCall,
        wire_size: usize,
        fragments: u32,
    },
}

/// Server-island → spoke operations, executed by the spoke at the carried
/// key position — exactly where the serial loop ran them inline.
enum DownOp {
    Reply {
        at: SimTime,
        client: u32,
        reply: NfsReply,
    },
}

/// Events of one spoke's queue.
enum SpokeEv {
    Client(usize, ClientInput),
    Op(DownOp),
}

/// Events of the hub's queue.
enum HubEv {
    Server(ServerInput),
}

/// The channel fabric of one run.
struct Channels {
    up: Vec<Mailbox<UpMsg>>,
    down: Vec<Mailbox<DownOp>>,
    spoke_bounds: Vec<BoundCell>,
    hub_bound: BoundCell,
    /// Per-spoke applied-ops counters feeding the hub's [`OpWindow`]s.
    applied: Vec<Arc<AtomicU64>>,
    monitor: Monitor,
    done: AtomicBool,
}

/// Read-only run context shared by every partition.
#[derive(Clone, Copy)]
struct Cx<'a> {
    config: &'a MultiClientConfig,
    ch: &'a Channels,
    lookahead: Duration,
    hub_src: u32,
    runaway_limit: u64,
}

use wg_simcore::parallel::mint_seq as mint;

/// The spoke a client's replies are mailed to (mirrors
/// `ClientLans::medium_mut`).
fn spoke_of(client: usize, n_spokes: usize) -> usize {
    if n_spokes > 1 {
        client
    } else {
        0
    }
}

/// One client-LAN partition: its writer slots, its medium and its event loop.
struct Spoke {
    src: u32,
    /// Global index of the first local slot (`clients[local] = base + local`).
    base: usize,
    slots: Vec<ClientSlot>,
    medium: Medium,
    queue: KeyedQueue<SpokeEv>,
    ctr: u64,
    last_bound: Key,
    actions: Vec<ClientAction>,
    inbound: Vec<(Key, DownOp)>,
    /// Ops applied this round, released to the hub's window only after the
    /// bound covering their materialised events is stored.
    applied_pending: u64,
    events_processed: u64,
    finished: bool,
}

impl Spoke {
    fn new(src: u32, base: usize, slots: Vec<ClientSlot>, medium: Medium) -> Self {
        Spoke {
            src,
            base,
            slots,
            medium,
            queue: KeyedQueue::new(),
            ctr: 0,
            last_bound: Key::MIN,
            actions: Vec::new(),
            inbound: Vec::new(),
            applied_pending: 0,
            events_processed: 0,
            finished: false,
        }
    }

    /// One scheduling round: drain mail, process everything admissible under
    /// the hub's bound, store our exact bound, then release applied ops.
    /// Returns whether any work happened.
    fn pump(&mut self, cx: &Cx) -> bool {
        if self.finished {
            return false;
        }
        let mut progressed = false;
        // Horizon first, then mailbox: a message the hub posted before the
        // bound we read is guaranteed visible to this drain (both sides go
        // through mutexes), so the gate is never ahead of an unseen message.
        let gate = cx.ch.hub_bound.read();
        cx.ch.down[self.src as usize].drain_into(&mut self.inbound);
        for (key, op) in self.inbound.drain(..) {
            progressed = true;
            self.queue.schedule(key, SpokeEv::Op(op));
        }
        while let Some((key, ev)) = self.queue.pop_below(&gate) {
            progressed = true;
            self.handle(key, ev, cx);
        }
        // Once the hub declares the run drained no partition can send
        // anything anymore: whatever is left locally runs unconditionally.
        if cx.ch.done.load(Ordering::Acquire) {
            cx.ch.down[self.src as usize].drain_into(&mut self.inbound);
            for (key, op) in self.inbound.drain(..) {
                self.queue.schedule(key, SpokeEv::Op(op));
            }
            while let Some((key, ev)) = self.queue.pop_any() {
                self.handle(key, ev, cx);
            }
            self.finished = true;
            self.flush_applied(cx);
            cx.ch.monitor.bump();
            return true;
        }
        let bound = self.compute_bound(cx);
        let moved = bound != self.last_bound;
        if moved {
            self.last_bound = bound;
            cx.ch.spoke_bounds[self.src as usize].store(bound);
        }
        // Only now, with the covering bound visible, may the hub's window
        // forget the ops this round applied.
        self.flush_applied(cx);
        if moved || progressed {
            cx.ch.monitor.bump();
        }
        progressed
    }

    fn flush_applied(&mut self, cx: &Cx) {
        for _ in 0..self.applied_pending {
            bump_applied(&cx.ch.applied[self.src as usize]);
        }
        self.applied_pending = 0;
    }

    fn handle(&mut self, key: Key, ev: SpokeEv, cx: &Cx) {
        match ev {
            SpokeEv::Client(client, input) => {
                self.events_processed += 1;
                self.slots[client - self.base].writer.handle_into(
                    key.time,
                    input,
                    &mut self.actions,
                );
                for action in self.actions.drain(..) {
                    match action {
                        ClientAction::Send { at, call } => {
                            let size = call.wire_size();
                            let fragments = self.medium.params().fragments_for(size);
                            match self.medium.transmit(at, size, Direction::ToServer) {
                                TransmitOutcome::Delivered { arrives_at } => {
                                    let seq = mint(&mut self.ctr);
                                    cx.ch.up[self.src as usize].post(
                                        key.child(arrives_at, self.src, seq),
                                        UpMsg::Datagram {
                                            client: client as u32,
                                            call,
                                            wire_size: size,
                                            fragments,
                                        },
                                    );
                                }
                                TransmitOutcome::Lost => {}
                            }
                        }
                        ClientAction::Wakeup { at, token } => {
                            let seq = mint(&mut self.ctr);
                            self.queue.schedule(
                                key.child(at, self.src, seq),
                                SpokeEv::Client(client, ClientInput::Wakeup { token }),
                            );
                        }
                        ClientAction::Completed { at } => {
                            let slot = &mut self.slots[client - self.base];
                            let stats = slot.writer.stats();
                            slot.finished_bytes_acked += stats.bytes_acked;
                            slot.finished_retransmissions += stats.retransmissions;
                            slot.finished_gave_up += stats.gave_up;
                            slot.finished_paced_commits += stats.paced_commits;
                            if let Some((handle, size)) = slot.pending.pop_front() {
                                slot.segment += 1;
                                slot.writer = FileWriterClient::new(
                                    MultiClientSystem::client_config(
                                        cx.config,
                                        client,
                                        slot.segment,
                                        size,
                                    ),
                                    handle,
                                );
                                let seq = mint(&mut self.ctr);
                                self.queue.schedule(
                                    key.child(at, self.src, seq),
                                    SpokeEv::Client(client, ClientInput::Start),
                                );
                            } else {
                                slot.completed_at = Some(at);
                            }
                        }
                    }
                }
            }
            SpokeEv::Op(DownOp::Reply { at, client, reply }) => {
                let size = reply.wire_size();
                if let TransmitOutcome::Delivered { arrives_at } =
                    self.medium.transmit(at, size, Direction::ToClient)
                {
                    let seq = mint(&mut self.ctr);
                    self.queue.schedule(
                        key.child(arrives_at, self.src, seq),
                        SpokeEv::Client(client as usize, ClientInput::Reply(reply)),
                    );
                }
                self.applied_pending += 1;
            }
        }
        assert!(
            self.events_processed < cx.runaway_limit,
            "runaway multi-client simulation"
        );
    }

    /// A key strictly below everything this spoke may still send on its own.
    ///
    /// Every queued event fires at its key time or later, every descendant
    /// fires no earlier than its ancestor, and any send a descendant makes
    /// arrives strictly after its own time plus the medium lookahead — so
    /// `min(time + lookahead)` over the queue covers the whole local closure.
    /// Traffic provoked by ops still in the hub's mail is *not* covered here;
    /// that is the hub-side [`OpWindow`]'s job.
    fn compute_bound(&self, cx: &Cx) -> Key {
        let mut bound = Key::MAX;
        for (key, _) in self.queue.iter() {
            bound = bound.min(Key::time_bound(key.time + cx.lookahead));
        }
        bound
    }
}

/// The server/disk island.
struct Hub<'a> {
    server: &'a mut NfsServer,
    queue: KeyedQueue<HubEv>,
    ctr: u64,
    windows: Vec<OpWindow>,
    actions: Vec<ServerAction>,
    inbound: Vec<(Key, UpMsg)>,
    events_processed: u64,
}

impl Hub<'_> {
    /// The least key any mailed-but-unapplied op can still provoke traffic
    /// at; [`Key::MAX`] when every window is drained.
    fn window_gate(&mut self, lookahead: Duration) -> Key {
        let mut gate = Key::MAX;
        for window in &mut self.windows {
            gate = gate.min(window.bound(lookahead));
        }
        gate
    }

    fn handle(&mut self, key: Key, ev: HubEv, cx: &Cx) {
        let HubEv::Server(input) = ev;
        self.events_processed += 1;
        self.server.handle_into(key.time, input, &mut self.actions);
        for action in self.actions.drain(..) {
            match action {
                ServerAction::Wakeup { at, token } => {
                    let seq = mint(&mut self.ctr);
                    self.queue.schedule(
                        key.child(at, cx.hub_src, seq),
                        HubEv::Server(ServerInput::Wakeup { token }),
                    );
                }
                ServerAction::Reply { at, client, reply } => {
                    let spoke = spoke_of(client as usize, cx.ch.down.len());
                    let seq = mint(&mut self.ctr);
                    self.windows[spoke].note_sent(key.time);
                    cx.ch.down[spoke]
                        .post(key.op(cx.hub_src, seq), DownOp::Reply { at, client, reply });
                }
            }
        }
        assert!(
            self.events_processed < cx.runaway_limit,
            "runaway multi-client simulation"
        );
    }
}

/// [`HubPartition`] view of the hub for the shared
/// [`wg_simcore::parallel::run_hub`] driver: one op window, bound cell and
/// up-mailbox per spoke, with datagrams carrying their client id.
struct HubLoop<'h, 'a, 'c> {
    hub: &'h mut Hub<'a>,
    cx: &'c Cx<'c>,
}

impl HubPartition for HubLoop<'_, '_, '_> {
    type Ev = HubEv;

    fn window_gate(&mut self, lookahead: Duration) -> Key {
        self.hub.window_gate(lookahead)
    }

    fn spoke_gate(&self) -> Key {
        let mut gate = Key::MAX;
        for cell in &self.cx.ch.spoke_bounds {
            gate = gate.min(cell.read());
        }
        gate
    }

    fn drain_mail(&mut self) -> bool {
        for mail in &self.cx.ch.up {
            mail.drain_into(&mut self.hub.inbound);
        }
        let mut progressed = false;
        for (key, msg) in self.hub.inbound.drain(..) {
            progressed = true;
            let UpMsg::Datagram {
                client,
                call,
                wire_size,
                fragments,
            } = msg;
            self.hub.queue.schedule(
                key,
                HubEv::Server(ServerInput::Datagram {
                    client,
                    call,
                    wire_size,
                    fragments,
                }),
            );
        }
        progressed
    }

    fn pop_below(&mut self, limit: &Key) -> Option<(Key, HubEv)> {
        self.hub.queue.pop_below(limit)
    }

    fn handle(&mut self, key: Key, ev: HubEv) {
        self.hub.handle(key, ev, self.cx);
    }

    fn queue_is_empty(&self) -> bool {
        self.hub.queue.is_empty()
    }

    fn peek_key(&self) -> Option<Key> {
        self.hub.queue.peek_key()
    }
}

/// One worker's loop over the spokes it owns.
fn run_spokes(mut spokes: Vec<Spoke>, cx: &Cx) -> Vec<Spoke> {
    loop {
        let epoch = cx.ch.monitor.epoch();
        let mut progressed = false;
        let mut all_done = true;
        for spoke in &mut spokes {
            progressed |= spoke.pump(cx);
            all_done &= spoke.finished;
        }
        if all_done {
            return spokes;
        }
        if !progressed {
            cx.ch.monitor.wait_if(epoch);
        }
    }
}

/// Run `system` on `sim_threads` cooperating event loops.  Bit-identical to
/// the serial loop: same result, same counters, same on-disk filesystem.
pub(super) fn run_partitioned(system: &mut MultiClientSystem) -> MultiClientResult {
    system.events_processed = 0;
    let media = system.lans.take_media();
    let n_spokes = media.len();
    let hub_src = n_spokes as u32;
    let lookahead = system.config.network.params().lookahead();
    let runaway_limit = system.max_events();

    // Partition the writer slots: one spoke per private LAN segment, or a
    // single spoke carrying every client on the shared segment.  The layout
    // depends only on the topology — never on the thread count — so any
    // thread count yields the same schedule.
    let mut taken = std::mem::take(&mut system.slots);
    let mut spokes: Vec<Spoke> = Vec::with_capacity(n_spokes);
    if n_spokes == 1 {
        let medium = media.into_iter().next().expect("one shared segment");
        spokes.push(Spoke::new(0, 0, std::mem::take(&mut taken), medium));
    } else {
        debug_assert_eq!(n_spokes, taken.len());
        for (s, (slot, medium)) in taken.drain(..).zip(media).enumerate() {
            spokes.push(Spoke::new(s as u32, s, vec![slot], medium));
        }
    }
    for spoke in &mut spokes {
        // The serial loop seeds one Start per client, in client order; keys
        // `{ZERO, 0, 0, spoke, seq}` with spoke/seq in client order replicate
        // the serial queue's insertion-order tie-break exactly.
        for local in 0..spoke.slots.len() {
            let seq = mint(&mut spoke.ctr);
            spoke.queue.schedule(
                Key::initial(SimTime::ZERO, spoke.src, seq),
                SpokeEv::Client(spoke.base + local, ClientInput::Start),
            );
        }
    }

    let channels = Channels {
        up: (0..n_spokes).map(|_| Mailbox::new()).collect(),
        down: (0..n_spokes).map(|_| Mailbox::new()).collect(),
        spoke_bounds: (0..n_spokes).map(|_| BoundCell::new()).collect(),
        hub_bound: BoundCell::new(),
        applied: (0..n_spokes).map(|_| applied_counter()).collect(),
        monitor: Monitor::new(),
        done: AtomicBool::new(false),
    };
    let cx = Cx {
        config: &system.config,
        ch: &channels,
        lookahead,
        hub_src,
        runaway_limit,
    };
    let mut hub = Hub {
        server: &mut system.server,
        queue: KeyedQueue::new(),
        ctr: 0,
        windows: channels
            .applied
            .iter()
            .map(|counter| OpWindow::new(counter.clone()))
            .collect(),
        actions: Vec::new(),
        inbound: Vec::new(),
        events_processed: 0,
    };

    // Worker 0 (the calling thread) drives the hub; the remaining workers
    // split the spokes round-robin.
    let spoke_workers = system
        .config
        .sim_threads
        .saturating_sub(1)
        .clamp(1, n_spokes);
    let mut batches: Vec<Vec<Spoke>> = (0..spoke_workers).map(|_| Vec::new()).collect();
    for (s, spoke) in spokes.into_iter().enumerate() {
        batches[s % spoke_workers].push(spoke);
    }
    let mut spokes: Vec<Spoke> = std::thread::scope(|scope| {
        let handles: Vec<_> = batches
            .into_iter()
            .map(|batch| scope.spawn(move || run_spokes(batch, &cx)))
            .collect();
        run_hub(
            &mut HubLoop {
                hub: &mut hub,
                cx: &cx,
            },
            cx.lookahead,
            cx.hub_src,
            &cx.ch.hub_bound,
            &cx.ch.monitor,
            &cx.ch.done,
        );
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("spoke worker panicked"))
            .collect()
    });
    spokes.sort_by_key(|s| s.src);
    for window in &mut hub.windows {
        debug_assert!(window.is_drained(), "hub exited with unapplied ops");
    }

    system.events_processed += hub.events_processed;
    system.par_scheduled_total += hub.queue.scheduled_total();
    system.par_clamped_past += hub.queue.clamped_past();
    system.par_sched.absorb(&hub.queue.sched_stats());
    let mut media_back: Vec<Medium> = Vec::with_capacity(n_spokes);
    for spoke in spokes {
        debug_assert!(spoke.queue.is_empty(), "spoke exited with queued events");
        system.events_processed += spoke.events_processed;
        system.par_scheduled_total += spoke.queue.scheduled_total();
        system.par_clamped_past += spoke.queue.clamped_past();
        system.par_sched.absorb(&spoke.queue.sched_stats());
        system.slots.extend(spoke.slots);
        media_back.push(spoke.medium);
    }
    system.lans.restore_media(media_back);
    system.result()
}

#[cfg(test)]
mod tests {
    use wg_server::{StabilityMode, WritePolicy};

    use super::super::{MultiClientConfig, MultiClientSystem};
    use crate::system::NetworkKind;

    /// Run `config` serially and at every thread count in `threads`, and
    /// assert every observable — the result rows, the counters, the on-disk
    /// filesystem — is bit-identical.
    fn assert_parity(config: MultiClientConfig, threads: &[usize]) {
        let mut serial = MultiClientSystem::new(config.clone().with_sim_threads(0));
        let want = serial.run();
        serial.verify_on_disk().expect("serial data intact");
        for &n in threads {
            let mut par = MultiClientSystem::new(config.clone().with_sim_threads(n));
            let got = par.run();
            let ctx = format!("sim_threads = {n}");
            assert_eq!(want.aggregate_kb_per_sec, got.aggregate_kb_per_sec, "{ctx}");
            assert_eq!(want.total_bytes_acked, got.total_bytes_acked, "{ctx}");
            assert_eq!(want.elapsed_secs, got.elapsed_secs, "{ctx}");
            assert_eq!(want.fairness, got.fairness, "{ctx}");
            assert_eq!(
                want.min_client_kb_per_sec, got.min_client_kb_per_sec,
                "{ctx}"
            );
            assert_eq!(
                want.max_client_kb_per_sec, got.max_client_kb_per_sec,
                "{ctx}"
            );
            assert_eq!(want.completed, got.completed, "{ctx}");
            assert_eq!(want.clients.len(), got.clients.len(), "{ctx}");
            for (i, (w, g)) in want.clients.iter().zip(&got.clients).enumerate() {
                let ctx = format!("sim_threads = {n}, client {i}");
                assert_eq!(
                    w.client_write_kb_per_sec, g.client_write_kb_per_sec,
                    "{ctx}"
                );
                assert_eq!(w.server_cpu_percent, g.server_cpu_percent, "{ctx}");
                assert_eq!(w.disk_kb_per_sec, g.disk_kb_per_sec, "{ctx}");
                assert_eq!(w.disk_trans_per_sec, g.disk_trans_per_sec, "{ctx}");
                assert_eq!(w.elapsed_secs, g.elapsed_secs, "{ctx}");
                assert_eq!(w.mean_batch_size, g.mean_batch_size, "{ctx}");
                assert_eq!(w.retransmissions, g.retransmissions, "{ctx}");
                assert_eq!(w.gave_up, g.gave_up, "{ctx}");
                assert_eq!(w.completed, g.completed, "{ctx}");
            }
            assert_eq!(serial.events_processed(), par.events_processed(), "{ctx}");
            assert_eq!(par.clamped_past(), 0, "{ctx}");
            par.verify_on_disk().expect("partitioned data intact");
        }
    }

    #[test]
    fn partitioned_run_matches_serial_on_a_shared_lan() {
        assert_parity(
            MultiClientConfig::new(NetworkKind::Fddi, 3, 4, WritePolicy::Gathering)
                .with_bytes_per_client(256 * 1024)
                .with_file_limit(128 * 1024),
            &[2, 4],
        );
    }

    #[test]
    fn partitioned_run_matches_serial_on_per_client_lans() {
        assert_parity(
            MultiClientConfig::new(NetworkKind::Fddi, 4, 4, WritePolicy::Gathering)
                .with_bytes_per_client(256 * 1024)
                .with_file_limit(128 * 1024)
                .with_per_client_lans(true),
            &[2, 4, 8],
        );
    }

    #[test]
    fn partitioned_run_matches_serial_on_the_scaled_stack() {
        // Sharded + multi-core + overlapped server, segment rolls, private
        // LANs: the heaviest reply fan-out the scale-out sweeps exercise.
        assert_parity(
            MultiClientConfig::new(NetworkKind::Fddi, 6, 2, WritePolicy::Gathering)
                .with_bytes_per_client(192 * 1024)
                .with_file_limit(64 * 1024)
                .with_per_client_lans(true)
                .with_shards(4)
                .with_cores(4)
                .with_spindles(3)
                .with_io_overlap(true),
            &[2, 4],
        );
    }

    #[test]
    fn partitioned_run_matches_serial_with_the_unified_cache_armed() {
        // Every client writes through the bounded unified cache with
        // UNSTABLE semantics and commits at close; the shared dirty pool,
        // the background writeback and the COMMIT flushes must schedule
        // identically on 2, 4 and 8 cooperating loops.
        assert_parity(
            MultiClientConfig::new(NetworkKind::Fddi, 3, 4, WritePolicy::Gathering)
                .with_bytes_per_client(256 * 1024)
                .with_file_limit(128 * 1024)
                .with_unified_cache(512)
                .with_stability(StabilityMode::Unstable),
            &[2, 4, 8],
        );
    }
}
