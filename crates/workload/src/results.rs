//! Result records shaped like the paper's tables and figures.

/// One cell-set of Tables 1–6: the four quantities the paper reports for a
/// given (network, storage, policy, biod-count) configuration.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct FileCopyResult {
    /// Number of client biods.
    pub biods: usize,
    /// "client write speed (KB/sec.)"
    pub client_write_kb_per_sec: f64,
    /// "server cpu util. (%)"
    pub server_cpu_percent: f64,
    /// "server disk (KB/sec)"
    pub disk_kb_per_sec: f64,
    /// "server disk (trans/sec)"
    pub disk_trans_per_sec: f64,
    /// Wall-clock seconds of simulated time the copy took.
    pub elapsed_secs: f64,
    /// Mean number of writes covered by one metadata flush (1.0 for the
    /// standard server).
    pub mean_batch_size: f64,
    /// Client retransmissions observed (should be 0 on a private network).
    pub retransmissions: u64,
    /// Writes the client abandoned after exhausting its retransmit budget.
    /// Always a counted failure: any cell with `gave_up > 0` also reports
    /// `completed: false`.
    pub gave_up: u64,
    /// `true` if the copy ran to completion (the client's close returned).
    /// An incomplete run reports elapsed time up to the moment the event
    /// queue drained, which must never be mistaken for a slow-but-finished
    /// cell — multi-client sweeps check this flag per client.
    pub completed: bool,
}

/// A row of one of the paper's tables: the same configuration swept across
/// biod counts, with and without gathering.
#[derive(Clone, Debug, serde::Serialize)]
pub struct TableRow {
    /// Row label, e.g. "client write speed (KB/sec.)".
    pub label: String,
    /// One value per biod-count column.
    pub values: Vec<f64>,
}

impl TableRow {
    /// Render the row in the paper's fixed-width style.
    pub fn render(&self) -> String {
        let mut out = format!("{:<34}", self.label);
        for v in &self.values {
            out.push_str(&format!("{:>8.0}", v));
        }
        out
    }
}

/// The outcome of one multi-client scale-out run: per-client cells plus the
/// aggregate and fairness view the paper's "several clients" remarks call for.
#[derive(Clone, Debug, serde::Serialize)]
pub struct MultiClientResult {
    /// One result per client, in client-id order.
    pub clients: Vec<FileCopyResult>,
    /// Combined client throughput: total acknowledged bytes over the span
    /// from start to the last client's completion.
    pub aggregate_kb_per_sec: f64,
    /// Total bytes acknowledged across all clients.
    pub total_bytes_acked: u64,
    /// Simulated seconds from start to the last completion.
    pub elapsed_secs: f64,
    /// Jain's fairness index over per-client throughput: 1.0 when every
    /// client got an equal share, approaching 1/n when one client starved
    /// the rest.
    pub fairness: f64,
    /// Slowest single client's throughput (KB/s).
    pub min_client_kb_per_sec: f64,
    /// Fastest single client's throughput (KB/s).
    pub max_client_kb_per_sec: f64,
    /// `true` only if every client ran to completion.
    pub completed: bool,
}

impl MultiClientResult {
    /// Jain's fairness index of a throughput vector.
    pub fn jain_fairness(rates: &[f64]) -> f64 {
        if rates.is_empty() {
            return 1.0;
        }
        let sum: f64 = rates.iter().sum();
        let sum_sq: f64 = rates.iter().map(|r| r * r).sum();
        if sum_sq <= 0.0 {
            return 1.0;
        }
        sum * sum / (rates.len() as f64 * sum_sq)
    }
}

/// One point of Figure 2 or Figure 3: offered load vs achieved throughput and
/// average latency.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct SfsPoint {
    /// Offered load in NFS operations per second.
    pub offered_ops_per_sec: f64,
    /// Achieved throughput in operations per second.
    pub achieved_ops_per_sec: f64,
    /// Average response time in milliseconds.
    pub avg_latency_ms: f64,
    /// Server CPU utilisation percentage at this load.
    pub server_cpu_percent: f64,
}

/// Minimal hand-rolled JSON emission for the result records.
///
/// The build environment has no network access, so the real `serde_json`
/// cannot be pulled in; the harness binaries instead assemble their machine
/// readable output from these helpers.
pub mod json {
    use super::{FileCopyResult, MultiClientResult, SfsPoint};
    use crate::sfs::SfsRunStats;

    /// Format an `f64` the way JSON expects (no NaN/inf; stable shortest-ish
    /// representation is fine for harness output).
    pub fn number(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }

    /// Render a JSON string literal with the escaping RFC 8259 requires
    /// (quote, backslash, and control characters).
    pub fn string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// Render a JSON object from pre-rendered `(key, value)` pairs.
    pub fn object(fields: &[(&str, String)]) -> String {
        let body: Vec<String> = fields.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
        format!("{{{}}}", body.join(","))
    }

    /// Render a JSON array from pre-rendered values.
    pub fn array(values: &[String]) -> String {
        format!("[{}]", values.join(","))
    }

    impl FileCopyResult {
        /// The record as a JSON object string.
        pub fn to_json(&self) -> String {
            object(&[
                ("biods", self.biods.to_string()),
                (
                    "client_write_kb_per_sec",
                    number(self.client_write_kb_per_sec),
                ),
                ("server_cpu_percent", number(self.server_cpu_percent)),
                ("disk_kb_per_sec", number(self.disk_kb_per_sec)),
                ("disk_trans_per_sec", number(self.disk_trans_per_sec)),
                ("elapsed_secs", number(self.elapsed_secs)),
                ("mean_batch_size", number(self.mean_batch_size)),
                ("retransmissions", self.retransmissions.to_string()),
                ("gave_up", self.gave_up.to_string()),
                ("completed", self.completed.to_string()),
            ])
        }
    }

    impl MultiClientResult {
        /// The record as a JSON object string.
        pub fn to_json(&self) -> String {
            let clients: Vec<String> = self.clients.iter().map(|c| c.to_json()).collect();
            object(&[
                ("clients", array(&clients)),
                ("aggregate_kb_per_sec", number(self.aggregate_kb_per_sec)),
                ("total_bytes_acked", self.total_bytes_acked.to_string()),
                ("elapsed_secs", number(self.elapsed_secs)),
                ("fairness", number(self.fairness)),
                ("min_client_kb_per_sec", number(self.min_client_kb_per_sec)),
                ("max_client_kb_per_sec", number(self.max_client_kb_per_sec)),
                ("completed", self.completed.to_string()),
            ])
        }
    }

    impl SfsPoint {
        /// The record as a JSON object string.
        pub fn to_json(&self) -> String {
            object(&[
                ("offered_ops_per_sec", number(self.offered_ops_per_sec)),
                ("achieved_ops_per_sec", number(self.achieved_ops_per_sec)),
                ("avg_latency_ms", number(self.avg_latency_ms)),
                ("server_cpu_percent", number(self.server_cpu_percent)),
            ])
        }
    }

    impl SfsRunStats {
        /// The record as a JSON object string: the figure point plus the
        /// health counters the scale harness asserts on.
        pub fn to_json(&self) -> String {
            let per_client: Vec<String> = self
                .per_client_achieved_ops
                .iter()
                .map(|&ops| number(ops))
                .collect();
            object(&[
                (
                    "offered_ops_per_sec",
                    number(self.point.offered_ops_per_sec),
                ),
                (
                    "achieved_ops_per_sec",
                    number(self.point.achieved_ops_per_sec),
                ),
                ("avg_latency_ms", number(self.point.avg_latency_ms)),
                ("server_cpu_percent", number(self.point.server_cpu_percent)),
                ("per_client_achieved_ops", array(&per_client)),
                ("fairness", number(self.fairness)),
                ("evicted_in_progress", self.evicted_in_progress.to_string()),
                ("materializations", self.materializations.to_string()),
                ("name_mints", self.name_mints.to_string()),
                ("issued", self.issued.to_string()),
                ("completed", self.completed.to_string()),
                ("retransmissions", self.retransmissions.to_string()),
                ("gave_up", self.gave_up.to_string()),
                ("clamped_past", self.clamped_past.to_string()),
            ])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_row_renders_fixed_width() {
        let row = TableRow {
            label: "client write speed (KB/sec.)".into(),
            values: vec![165.0, 194.0, 201.0],
        };
        let s = row.render();
        assert!(s.starts_with("client write speed"));
        assert!(s.contains("165"));
        assert!(s.contains("201"));
        assert_eq!(s.len(), 34 + 3 * 8);
    }

    #[test]
    fn results_serialize() {
        let r = FileCopyResult {
            biods: 7,
            client_write_kb_per_sec: 493.0,
            server_cpu_percent: 16.0,
            disk_kb_per_sec: 610.0,
            disk_trans_per_sec: 24.0,
            elapsed_secs: 20.0,
            mean_batch_size: 6.5,
            retransmissions: 0,
            gave_up: 0,
            completed: true,
        };
        let json = r.to_json();
        assert!(json.contains("\"biods\":7"));
        assert!(json.contains("\"completed\":true"));
        let p = SfsPoint {
            offered_ops_per_sec: 500.0,
            achieved_ops_per_sec: 480.0,
            avg_latency_ms: 12.0,
            server_cpu_percent: 55.0,
        };
        assert!(p.to_json().contains("480"));
        let m = MultiClientResult {
            clients: vec![r],
            aggregate_kb_per_sec: 493.0,
            total_bytes_acked: 10 * 1024 * 1024,
            elapsed_secs: 20.0,
            fairness: 1.0,
            min_client_kb_per_sec: 493.0,
            max_client_kb_per_sec: 493.0,
            completed: true,
        };
        let mj = m.to_json();
        assert!(mj.contains("\"fairness\":1"));
        assert!(mj.contains("\"clients\":[{"));
        // String escaping covers quotes, backslashes and control characters.
        assert_eq!(json::string("plain"), "\"plain\"");
        assert_eq!(json::string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json::string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn jain_fairness_index() {
        assert_eq!(MultiClientResult::jain_fairness(&[]), 1.0);
        assert_eq!(MultiClientResult::jain_fairness(&[0.0, 0.0]), 1.0);
        let equal = MultiClientResult::jain_fairness(&[100.0, 100.0, 100.0, 100.0]);
        assert!((equal - 1.0).abs() < 1e-12);
        // One client hogging everything tends toward 1/n.
        let starved = MultiClientResult::jain_fairness(&[400.0, 0.0, 0.0, 0.0]);
        assert!((starved - 0.25).abs() < 1e-12);
        let uneven = MultiClientResult::jain_fairness(&[300.0, 100.0]);
        assert!(uneven > 0.5 && uneven < 1.0);
    }
}
