//! The multi-client scale-out system.
//!
//! The paper remarks (§6) that write gathering pays off even more with
//! "several clients", because independent write streams give the server more
//! company to gather per metadata flush — but its tables only measure one
//! client.  [`MultiClientSystem`] runs N [`FileWriterClient`]s against one
//! shared [`Medium`] and one [`NfsServer`], each client copying its own byte
//! budget into its own files, and reports per-client plus aggregate
//! [`FileCopyResult`]s and a fairness readout ([`MultiClientResult`]).
//!
//! The `client` field of [`ServerInput::Datagram`] — plumbed through the
//! server and duplicate request cache since the beginning but always 0 in the
//! single-client system — finally carries real client ids here, and replies
//! are routed back by the id the server echoes in [`ServerAction::Reply`].
//!
//! GB-scale budgets do not fit one UFS file (12 direct + 2048 indirect 8 KB
//! blocks ≈ 16 MB), so each client writes a chain of segment files of at most
//! [`MultiClientConfig::file_limit`] bytes, rolling to the next segment when
//! the previous one's `close(2)` returns — the shape of a real bulk copy of
//! many files.  Segments reuse the single-client state machine unchanged;
//! only the xid base moves per segment so the server's duplicate request
//! cache never confuses two generations of requests.
//!
//! Everything rides the zero-copy datapath: payloads are fill patterns salted
//! per client (see [`wg_client::ClientConfig::fill_salt`]), so a million-op
//! multi-client run allocates no payload bytes and [`verify_on_disk`]
//! (`MultiClientSystem::verify_on_disk`) can attribute every landed block to
//! the client that wrote it.

use std::collections::VecDeque;

use wg_client::{ClientAction, ClientConfig, ClientInput, FileWriterClient};
use wg_net::medium::{Direction, MediumParams};
use wg_net::{Medium, TransmitOutcome};
use wg_nfsproto::{FileHandle, StableHow};
use wg_server::{NfsServer, ServerAction, ServerConfig, ServerInput, StabilityMode, WritePolicy};
use wg_simcore::{CalStats, Duration, EventQueue, SimTime};

use crate::results::{FileCopyResult, MultiClientResult};
use crate::system::NetworkKind;

mod par;

/// Configuration of one multi-client scale-out run.
#[derive(Clone, Debug)]
pub struct MultiClientConfig {
    /// Network medium shared by every client.
    pub network: NetworkKind,
    /// Number of concurrent clients.
    pub clients: usize,
    /// Biods per client.
    pub biods: usize,
    /// Server write policy.
    pub policy: WritePolicy,
    /// Prestoserve acceleration on the server.
    pub prestoserve: bool,
    /// Number of server disk spindles.
    pub spindles: usize,
    /// Number of server nfsds.  More clients need more nfsds: each file being
    /// gathered can hold one nfsd in its procrastination window.
    pub nfsds: usize,
    /// Bytes each client writes in total.
    pub bytes_per_client: u64,
    /// Largest single file a client writes before rolling to the next segment
    /// (must fit UFS's single-indirect limit of ≈16 MB).
    pub file_limit: u64,
    /// Number of server request-path shards (see
    /// [`wg_server::ServerConfig::shards`]).  `1` is the monolithic server.
    pub shards: usize,
    /// Number of server CPU cores (see [`wg_server::ServerConfig::cores`]).
    pub cores: usize,
    /// Give every client its own network segment (one LAN per client, all
    /// feeding the one server) instead of contending on a single shared
    /// medium — the paper's private-segment topology scaled out.
    pub per_client_lans: bool,
    /// Pipelined storage-stack execution on the server (see
    /// [`wg_server::ServerConfig::io_overlap`]).
    pub io_overlap: bool,
    /// Number of cooperating event loops the run executes on (`0` or `1`
    /// keeps the serial loop).  Results are bit-identical either way; see
    /// [`wg_simcore::parallel`].
    pub sim_threads: usize,
    /// Pages of the server's bounded unified buffer cache (`0`, the default,
    /// keeps the paper's unbounded delayed-write pool).
    pub cache_pages: u64,
    /// Dirty-page throttle fraction of the unified cache.
    pub dirty_ratio: f64,
    /// Write-stability regime: [`StabilityMode::Unstable`] makes every client
    /// issue `WRITE(UNSTABLE)` and `COMMIT` each segment at its close.
    pub stability: StabilityMode,
    /// Periodic COMMIT pacing (unstable mode): each client COMMITs once this
    /// many bytes sit uncommitted instead of only at segment close.  `0`
    /// (the default) keeps close-only commits.
    pub commit_interval: u64,
}

/// Minimum headroom a segment's xid window keeps beyond the writes the
/// segment actually issues (file creation, close-time attribute traffic and
/// a safety margin for future per-segment requests).
const XID_SEGMENT_SLACK: u32 = 64;

impl MultiClientConfig {
    /// A scale-out run with the paper's client parameters (10 MB per client,
    /// 8 MB segment files) and an nfsd pool sized to the client count.
    pub fn new(network: NetworkKind, clients: usize, biods: usize, policy: WritePolicy) -> Self {
        MultiClientConfig {
            network,
            clients: clients.max(1),
            biods,
            policy,
            prestoserve: false,
            spindles: 1,
            nfsds: 8.max(4 * clients),
            bytes_per_client: 10 * 1024 * 1024,
            file_limit: 8 * 1024 * 1024,
            shards: 1,
            cores: 1,
            per_client_lans: false,
            io_overlap: false,
            sim_threads: 0,
            cache_pages: 0,
            dirty_ratio: 0.5,
            stability: StabilityMode::Stable,
            commit_interval: 0,
        }
    }

    /// Set the per-client byte budget.
    pub fn with_bytes_per_client(mut self, bytes: u64) -> Self {
        self.bytes_per_client = bytes;
        self
    }

    /// Set the per-segment file size cap.
    pub fn with_file_limit(mut self, bytes: u64) -> Self {
        self.file_limit = bytes;
        self
    }

    /// Enable Prestoserve.
    pub fn with_presto(mut self, on: bool) -> Self {
        self.prestoserve = on;
        self
    }

    /// Use a stripe set of `n` disks.
    pub fn with_spindles(mut self, n: usize) -> Self {
        self.spindles = n;
        self
    }

    /// Set the nfsd pool size.
    pub fn with_nfsds(mut self, n: usize) -> Self {
        self.nfsds = n;
        self
    }

    /// Shard the server's request path `n` ways.
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Give the server `n` CPU cores.
    pub fn with_cores(mut self, n: usize) -> Self {
        self.cores = n;
        self
    }

    /// Give every client its own network segment.
    pub fn with_per_client_lans(mut self, on: bool) -> Self {
        self.per_client_lans = on;
        self
    }

    /// Enable pipelined storage-stack execution on the server.
    pub fn with_io_overlap(mut self, on: bool) -> Self {
        self.io_overlap = on;
        self
    }

    /// Run on `n` cooperating event loops (`0` or `1` keeps the serial loop).
    pub fn with_sim_threads(mut self, n: usize) -> Self {
        self.sim_threads = n;
        self
    }

    /// Arm the server's bounded unified buffer cache with `pages` pages.
    pub fn with_unified_cache(mut self, pages: u64) -> Self {
        self.cache_pages = pages;
        self
    }

    /// Set the dirty-page throttle fraction of the unified cache.
    pub fn with_dirty_ratio(mut self, ratio: f64) -> Self {
        self.dirty_ratio = ratio;
        self
    }

    /// Select the write-stability regime of the run.
    pub fn with_stability(mut self, mode: StabilityMode) -> Self {
        self.stability = mode;
        self
    }

    /// Pace COMMITs every `bytes` of uncommitted data (see
    /// [`MultiClientConfig::commit_interval`]; `0` keeps close-only).
    pub fn with_commit_interval(mut self, bytes: u64) -> Self {
        self.commit_interval = bytes;
        self
    }

    /// The fill-byte salt of a client, distinct per client id (odd multiplier
    /// so the mapping is a bijection modulo 256).
    pub fn fill_salt(client: usize) -> u8 {
        (client as u8).wrapping_mul(61).wrapping_add(17)
    }

    /// Segments each client's byte budget splits into.
    fn segments_per_client(&self) -> u64 {
        self.bytes_per_client
            .div_ceil(self.file_limit.max(1))
            .max(1)
    }

    /// The xid-space partition: the full 32-bit space is split evenly across
    /// the configured client count, and each client's window is split evenly
    /// across its segments.  (Duplicate detection is keyed by `(client,
    /// xid)`, so cross-client collisions would even be harmless — the even
    /// split simply keeps every request globally unique and debuggable.)
    /// Returns `(client_stride, segment_stride)`.
    fn xid_strides(&self) -> (u32, u32) {
        let client_stride = u32::MAX / self.clients.max(1) as u32;
        // Divide in u64: a segment count beyond u32 must collapse the stride
        // to 1 (and fail the constructor's window-width assert), not wrap
        // into another client's window.
        let segment_stride = (client_stride as u64 / self.segments_per_client()).max(1) as u32;
        (client_stride, segment_stride)
    }

    /// Xids a single segment can consume: one per 8 KB write, plus slack for
    /// the surrounding per-segment requests.
    fn xids_per_segment(&self) -> u64 {
        self.file_limit.max(1).div_ceil(8192) + XID_SEGMENT_SLACK as u64
    }

    fn xid_base(&self, client: usize, segment: usize) -> u32 {
        let (client_stride, segment_stride) = self.xid_strides();
        (client as u32).wrapping_mul(client_stride) + (segment as u32).wrapping_mul(segment_stride)
    }

    /// The (name, size) segment layout of one client's byte budget.
    fn layout(&self, client: usize) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        let mut remaining = self.bytes_per_client;
        let mut segment = 0usize;
        while remaining > 0 {
            let size = remaining.min(self.file_limit);
            out.push((format!("mc{client:03}_seg{segment:03}"), size));
            remaining -= size;
            segment += 1;
        }
        out
    }
}

/// The network fan-in of an N-client system: one segment shared by every
/// client, or one private LAN per client, every segment terminating at the
/// one server.  Shared by [`MultiClientSystem`] and the SFS scale-out system
/// ([`crate::sfs::SfsSystem`]) so the two load harnesses model the same
/// topology.
pub(crate) struct ClientLans {
    media: Vec<Medium>,
}

impl ClientLans {
    /// Build the fan-in: `clients` private segments when `per_client` is set,
    /// one shared segment otherwise.
    pub(crate) fn new(params: &MediumParams, clients: usize, per_client: bool) -> Self {
        Self::with_loss(params, clients, per_client, 0.0, 0)
    }

    /// Build the fan-in with every segment dropping datagrams at
    /// `loss_probability`.  Each segment's loss stream is seeded from
    /// `(seed, segment index)` alone — never from construction order or
    /// wall-clock — so a sweep cell built on a worker thread draws exactly
    /// the loss pattern the same cell draws in a serial sweep.
    pub(crate) fn with_loss(
        params: &MediumParams,
        clients: usize,
        per_client: bool,
        loss_probability: f64,
        seed: u64,
    ) -> Self {
        let count = if per_client { clients.max(1) } else { 1 };
        ClientLans {
            media: (0..count)
                .map(|segment| {
                    Medium::with_loss(
                        params.clone(),
                        loss_probability,
                        Self::segment_seed(seed, segment),
                    )
                })
                .collect(),
        }
    }

    /// Per-segment rng seed: a splitmix-style mix of the base seed and the
    /// segment index, so adjacent segments do not share prefixes.
    fn segment_seed(seed: u64, segment: usize) -> u64 {
        let mut z = seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((segment as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Open a loss window on one segment (`Some(idx)`, clamped into range) or
    /// on every segment (`None`).
    pub(crate) fn inject_loss_window(
        &mut self,
        segment: Option<usize>,
        from: SimTime,
        until: SimTime,
        probability: f64,
    ) {
        match segment {
            Some(idx) => {
                let idx = idx.min(self.media.len() - 1);
                self.media[idx].inject_loss_window(from, until, probability);
            }
            None => {
                for medium in &mut self.media {
                    medium.inject_loss_window(from, until, probability);
                }
            }
        }
    }

    /// Hand the segment media to a partitioned driver, which distributes
    /// them over its per-segment event loops and returns them via
    /// [`ClientLans::restore_media`] when the run finishes.
    pub(crate) fn take_media(&mut self) -> Vec<Medium> {
        std::mem::take(&mut self.media)
    }

    /// Put the segment media back after a partitioned run.
    pub(crate) fn restore_media(&mut self, media: Vec<Medium>) {
        self.media = media;
    }

    /// The segment a client transmits and receives on.
    pub(crate) fn medium_mut(&mut self, client: usize) -> &mut Medium {
        let idx = if self.media.len() > 1 { client } else { 0 };
        &mut self.media[idx]
    }

    /// Number of distinct segments.
    pub(crate) fn segments(&self) -> usize {
        self.media.len()
    }
}

/// Events flowing through the combined system.
enum Ev {
    Client(usize, ClientInput),
    Server(ServerInput),
}

/// Per-client bookkeeping: the live writer plus the accumulated stats of the
/// segments it already finished.
struct ClientSlot {
    writer: FileWriterClient,
    /// Segments not yet started: front = next.
    pending: VecDeque<(FileHandle, u64)>,
    /// Index of the segment the live writer is on.
    segment: usize,
    /// Acked bytes of *finished* segments; the live writer's are folded in on
    /// its `Completed` action (see [`ClientSlot::bytes_acked`]).
    finished_bytes_acked: u64,
    finished_retransmissions: u64,
    finished_gave_up: u64,
    finished_paced_commits: u64,
    completed_at: Option<SimTime>,
}

impl ClientSlot {
    /// Total acknowledged bytes, including the live writer's.  An incomplete
    /// client (stalled mid-segment) must still report what it did transfer —
    /// that partial count is exactly what diagnosing a dead multi-client cell
    /// needs.
    fn bytes_acked(&self) -> u64 {
        let live = if self.completed_at.is_some() {
            // The final segment's stats were folded in on completion; the
            // writer still holds them, so don't count them twice.
            0
        } else {
            self.writer.stats().bytes_acked
        };
        self.finished_bytes_acked + live
    }

    /// Total retransmissions, including the live writer's.
    fn retransmissions(&self) -> u64 {
        let live = if self.completed_at.is_some() {
            0
        } else {
            self.writer.stats().retransmissions
        };
        self.finished_retransmissions + live
    }

    /// Total abandoned writes, including the live writer's.
    fn gave_up(&self) -> u64 {
        let live = if self.completed_at.is_some() {
            0
        } else {
            self.writer.stats().gave_up
        };
        self.finished_gave_up + live
    }

    /// Total interval-paced COMMITs, including the live writer's.
    fn paced_commits(&self) -> u64 {
        let live = if self.completed_at.is_some() {
            0
        } else {
            self.writer.stats().paced_commits
        };
        self.finished_paced_commits + live
    }
}

/// The assembled N-client system.
pub struct MultiClientSystem {
    config: MultiClientConfig,
    slots: Vec<ClientSlot>,
    layouts: Vec<Vec<(String, u64)>>,
    server: NfsServer,
    /// One shared segment, or one segment per client when
    /// [`MultiClientConfig::per_client_lans`] is set.
    lans: ClientLans,
    queue: EventQueue<Ev>,
    started_at: SimTime,
    events_processed: u64,
    /// Events scheduled / clamped by the partitioned executor's keyed queues
    /// (the serial queue keeps its own counters).
    par_scheduled_total: u64,
    par_clamped_past: u64,
    /// Scheduler-health counters banked from partitioned runs' queues.
    par_sched: CalStats,
}

impl MultiClientSystem {
    /// Upper bound on events per run, scaled with the aggregate byte budget
    /// (a 10 MB copy needs ~13 k events; this allows ~400× that per 10 MB).
    fn max_events(&self) -> u64 {
        let aggregate_mb =
            (self.config.clients as u64 * self.config.bytes_per_client) / (1024 * 1024);
        5_000_000 * aggregate_mb.max(1)
    }

    /// Build the system: the server exports one fresh filesystem holding
    /// every client's segment files, created outside the measured window.
    pub fn new(config: MultiClientConfig) -> Self {
        // The 32-bit xid space is partitioned clients × segments; the run is
        // only valid if each segment's window covers the requests it issues.
        let (_, segment_stride) = config.xid_strides();
        assert!(
            segment_stride as u64 >= config.xids_per_segment(),
            "xid space too small: {} clients x {} segments leaves a {}-xid \
             window per segment but one segment can use {}; raise file_limit \
             or lower the client count",
            config.clients,
            config.segments_per_client(),
            segment_stride,
            config.xids_per_segment()
        );
        let medium_params = config.network.params();
        let mut server_config = ServerConfig {
            policy: config.policy,
            nfsds: config.nfsds,
            ..ServerConfig::standard()
        };
        server_config.storage.prestoserve = config.prestoserve;
        server_config.storage.spindles = config.spindles;
        server_config.procrastination = medium_params.procrastination;
        server_config.shards = config.shards.max(1);
        server_config.cores = config.cores.max(1);
        server_config.io_overlap = config.io_overlap;
        server_config = server_config
            .with_unified_cache(config.cache_pages)
            .with_dirty_ratio(config.dirty_ratio)
            .with_stability(config.stability);
        // GB-scale aggregates must fit the data region; keep the default
        // geometry unless the sweep actually needs more.
        let aggregate = config.clients as u64 * config.bytes_per_client;
        server_config.data_capacity = server_config.data_capacity.max(aggregate + aggregate / 4);
        let mut server = NfsServer::new(server_config);

        let root = server.fs().root();
        let mut slots = Vec::with_capacity(config.clients);
        let mut layouts = Vec::with_capacity(config.clients);
        for client in 0..config.clients {
            let layout = config.layout(client);
            let mut pending: VecDeque<(FileHandle, u64)> = layout
                .iter()
                .map(|(name, size)| {
                    let ino = server
                        .fs_mut()
                        .create(root, name, 0o644, 0)
                        .expect("fresh namespace");
                    (server.handle_for_ino(ino).expect("live inode"), *size)
                })
                .collect();
            let (handle, size) = pending.pop_front().unwrap_or((
                // A zero-byte budget still gets a writer so the slot completes
                // immediately through the normal path.
                server.root_handle(),
                0,
            ));
            let writer =
                FileWriterClient::new(Self::client_config(&config, client, 0, size), handle);
            slots.push(ClientSlot {
                writer,
                pending,
                segment: 0,
                finished_bytes_acked: 0,
                finished_retransmissions: 0,
                finished_gave_up: 0,
                finished_paced_commits: 0,
                completed_at: None,
            });
            layouts.push(layout);
        }
        let lans = ClientLans::new(&medium_params, config.clients, config.per_client_lans);
        MultiClientSystem {
            lans,
            queue: EventQueue::new(),
            started_at: SimTime::ZERO,
            events_processed: 0,
            par_scheduled_total: 0,
            par_clamped_past: 0,
            par_sched: CalStats::default(),
            slots,
            layouts,
            server,
            config,
        }
    }

    fn client_config(
        config: &MultiClientConfig,
        client: usize,
        segment: usize,
        file_size: u64,
    ) -> ClientConfig {
        ClientConfig {
            biods: config.biods,
            file_size,
            xid_base: config.xid_base(client, segment),
            fill_salt: MultiClientConfig::fill_salt(client),
            stability: match config.stability {
                StabilityMode::Stable => StableHow::FileSync,
                StabilityMode::Unstable => StableHow::Unstable,
            },
            commit_interval: config.commit_interval,
            ..ClientConfig::default()
        }
    }

    /// Run every client to completion and return the scale-out result.  With
    /// [`MultiClientConfig::sim_threads`] `≥ 2` the topology is partitioned
    /// into per-segment event loops (see [`wg_simcore::parallel`]); the
    /// result is bit-identical either way.
    pub fn run(&mut self) -> MultiClientResult {
        if self.config.sim_threads >= 2 {
            return par::run_partitioned(self);
        }
        self.run_serial()
    }

    fn run_serial(&mut self) -> MultiClientResult {
        self.events_processed = 0;
        for client in 0..self.slots.len() {
            self.queue
                .schedule_at(SimTime::ZERO, Ev::Client(client, ClientInput::Start));
        }
        let max_events = self.max_events();
        let mut client_actions: Vec<ClientAction> = Vec::new();
        let mut server_actions: Vec<ServerAction> = Vec::new();
        while let Some((t, ev)) = self.queue.pop() {
            self.events_processed += 1;
            assert!(
                self.events_processed < max_events,
                "runaway multi-client simulation at {t:?}"
            );
            match ev {
                Ev::Client(client, input) => {
                    self.slots[client]
                        .writer
                        .handle_into(t, input, &mut client_actions);
                    self.apply_client_actions(client, &mut client_actions);
                }
                Ev::Server(input) => {
                    self.server.handle_into(t, input, &mut server_actions);
                    self.apply_server_actions(&mut server_actions);
                }
            }
        }
        self.result()
    }

    fn apply_client_actions(&mut self, client: usize, actions: &mut Vec<ClientAction>) {
        for action in actions.drain(..) {
            match action {
                ClientAction::Send { at, call } => {
                    let size = call.wire_size();
                    let medium = self.lans.medium_mut(client);
                    let fragments = medium.params().fragments_for(size);
                    match medium.transmit(at, size, Direction::ToServer) {
                        TransmitOutcome::Delivered { arrives_at } => {
                            self.queue.schedule_at(
                                arrives_at,
                                Ev::Server(ServerInput::Datagram {
                                    client: client as u32,
                                    call,
                                    wire_size: size,
                                    fragments,
                                }),
                            );
                        }
                        TransmitOutcome::Lost => {}
                    }
                }
                ClientAction::Wakeup { at, token } => {
                    self.queue
                        .schedule_at(at, Ev::Client(client, ClientInput::Wakeup { token }));
                }
                ClientAction::Completed { at } => {
                    let slot = &mut self.slots[client];
                    let stats = slot.writer.stats();
                    slot.finished_bytes_acked += stats.bytes_acked;
                    slot.finished_retransmissions += stats.retransmissions;
                    slot.finished_gave_up += stats.gave_up;
                    slot.finished_paced_commits += stats.paced_commits;
                    if let Some((handle, size)) = slot.pending.pop_front() {
                        // Roll to the next segment file: a fresh writer with
                        // the next xid generation, started at this close's
                        // return time.
                        slot.segment += 1;
                        slot.writer = FileWriterClient::new(
                            Self::client_config(&self.config, client, slot.segment, size),
                            handle,
                        );
                        self.queue
                            .schedule_at(at, Ev::Client(client, ClientInput::Start));
                    } else {
                        slot.completed_at = Some(at);
                    }
                }
            }
        }
    }

    fn apply_server_actions(&mut self, actions: &mut Vec<ServerAction>) {
        for action in actions.drain(..) {
            match action {
                ServerAction::Wakeup { at, token } => {
                    self.queue
                        .schedule_at(at, Ev::Server(ServerInput::Wakeup { token }));
                }
                ServerAction::Reply { at, client, reply } => {
                    let size = reply.wire_size();
                    match self.lans.medium_mut(client as usize).transmit(
                        at,
                        size,
                        Direction::ToClient,
                    ) {
                        TransmitOutcome::Delivered { arrives_at } => {
                            self.queue.schedule_at(
                                arrives_at,
                                Ev::Client(client as usize, ClientInput::Reply(reply)),
                            );
                        }
                        TransmitOutcome::Lost => {}
                    }
                }
            }
        }
    }

    fn result(&self) -> MultiClientResult {
        let last_completion = self
            .slots
            .iter()
            .filter_map(|s| s.completed_at)
            .max()
            .unwrap_or(self.queue.now());
        let elapsed = last_completion.since(self.started_at);
        let elapsed = if elapsed.is_zero() {
            Duration::from_nanos(1)
        } else {
            elapsed
        };
        let device = self.server.device_stats();
        let total_gave_up: u64 = self.slots.iter().map(|s| s.gave_up()).sum();
        let all_completed =
            self.slots.iter().all(|s| s.completed_at.is_some()) && total_gave_up == 0;
        // On a loss-free fan-in every client must finish; a lossy or faulted
        // run may legitimately end with counted give-ups instead.
        debug_assert!(
            all_completed || total_gave_up > 0,
            "a client never finished its byte budget"
        );
        let clients: Vec<FileCopyResult> = self
            .slots
            .iter()
            .map(|slot| {
                let completed = slot.completed_at.is_some() && slot.gave_up() == 0;
                let client_elapsed = slot
                    .completed_at
                    .unwrap_or(self.queue.now())
                    .since(self.started_at)
                    .as_secs_f64()
                    .max(1e-9);
                FileCopyResult {
                    biods: self.config.biods,
                    client_write_kb_per_sec: slot.bytes_acked() as f64 / 1024.0 / client_elapsed,
                    // Server-side quantities are shared; report them over the
                    // whole run so the per-client rows stay comparable.
                    server_cpu_percent: self.server.cpu_utilization_percent(elapsed),
                    disk_kb_per_sec: device.kb_per_sec(elapsed),
                    disk_trans_per_sec: device.transfers_per_sec(elapsed),
                    elapsed_secs: client_elapsed,
                    mean_batch_size: self.server.stats().mean_batch_size(),
                    retransmissions: slot.retransmissions(),
                    gave_up: slot.gave_up(),
                    completed,
                }
            })
            .collect();
        let total_bytes_acked: u64 = self.slots.iter().map(|s| s.bytes_acked()).sum();
        let rates: Vec<f64> = clients.iter().map(|c| c.client_write_kb_per_sec).collect();
        MultiClientResult {
            aggregate_kb_per_sec: total_bytes_acked as f64 / 1024.0 / elapsed.as_secs_f64(),
            total_bytes_acked,
            elapsed_secs: elapsed.as_secs_f64(),
            fairness: MultiClientResult::jain_fairness(&rates),
            min_client_kb_per_sec: rates.iter().copied().fold(f64::INFINITY, f64::min),
            max_client_kb_per_sec: rates.iter().copied().fold(0.0, f64::max),
            completed: all_completed,
            clients,
        }
    }

    /// Check every client's data on the server: each segment file must exist
    /// at its full size and every block must carry that client's salted fill
    /// byte.  Catches cross-client bleed, lost writes and mis-routed replies.
    /// Assumes a loss-free run (every write acknowledged).
    pub fn verify_on_disk(&self) -> Result<(), String> {
        let mut fs = self.server.fs().clone();
        let root = fs.root();
        let block = fs.params().block_size;
        for (client, layout) in self.layouts.iter().enumerate() {
            let salt = MultiClientConfig::fill_salt(client);
            for (name, size) in layout {
                let ino = fs
                    .lookup(root, name)
                    .map_err(|e| format!("client {client}: {name} missing: {e}"))?;
                let attrs = fs
                    .getattr(ino)
                    .map_err(|e| format!("client {client}: {name} getattr: {e}"))?;
                if attrs.size != *size {
                    return Err(format!(
                        "client {client}: {name} is {} bytes, expected {size}",
                        attrs.size
                    ));
                }
                for lbn in 0..size.div_ceil(block) {
                    let offset = lbn * block;
                    let want = (lbn as u8).wrapping_add(salt);
                    let got = fs
                        .read(ino, offset, block)
                        .map_err(|e| format!("client {client}: {name} read: {e}"))?;
                    if got.data.iter_bytes().any(|b| b != want) {
                        return Err(format!(
                            "client {client}: {name} block {lbn} does not carry \
                             fill byte {want:#04x} (cross-client bleed or lost write)"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// The server, for post-run inspection.
    pub fn server(&self) -> &NfsServer {
        &self.server
    }

    /// Interval-paced COMMITs sent across all clients (zero unless
    /// [`MultiClientConfig::commit_interval`] is armed).
    pub fn paced_commits(&self) -> u64 {
        self.slots.iter().map(|s| s.paced_commits()).sum()
    }

    /// Number of events processed by the most recent run.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Events ever scheduled, across the serial queue and any partitioned
    /// run's keyed queues.
    pub fn scheduled_total(&self) -> u64 {
        self.queue.scheduled_total() + self.par_scheduled_total
    }

    /// Events scheduled into the simulated past (must stay zero; see
    /// [`EventQueue::clamped_past`]).
    pub fn clamped_past(&self) -> u64 {
        self.queue.clamped_past() + self.par_clamped_past
    }

    /// Scheduler-health counters of the pending-event set: the serial
    /// queue's calendar geometry folded with any partitioned run's queues
    /// (counts add, high-water marks take the maximum).
    pub fn sched_stats(&self) -> CalStats {
        let mut stats = self.queue.sched_stats();
        stats.absorb(&self.par_sched);
        stats
    }

    /// The configuration the system was built with.
    pub fn config(&self) -> &MultiClientConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pin the driver event's footprint.  Every schedule moves one `Ev` by
    /// value into the calendar queue and every pop moves it back out, so a
    /// grown variant taxes the whole event loop.  The size is set by the
    /// largest payload (a `ServerInput` carrying an `NfsCall`); box a new
    /// large variant instead of raising this pin.
    #[test]
    fn driver_event_stays_within_its_pinned_footprint() {
        assert!(
            std::mem::size_of::<Ev>() <= 112,
            "Ev grew to {} bytes; box the large variant",
            std::mem::size_of::<Ev>()
        );
    }

    const MB: u64 = 1024 * 1024;

    #[test]
    fn layout_splits_budgets_at_the_file_limit() {
        let cfg = MultiClientConfig::new(NetworkKind::Fddi, 2, 4, WritePolicy::Gathering)
            .with_bytes_per_client(20 * MB)
            .with_file_limit(8 * MB);
        let layout = cfg.layout(1);
        assert_eq!(layout.len(), 3);
        assert_eq!(layout[0].1, 8 * MB);
        assert_eq!(layout[2].1, 4 * MB);
        assert!(layout[0].0.starts_with("mc001_"));
        // Distinct clients get distinct salts and xid spaces.
        assert_ne!(
            MultiClientConfig::fill_salt(0),
            MultiClientConfig::fill_salt(1)
        );
        let last_segment = cfg.segments_per_client() as usize - 1;
        assert!(cfg.xid_base(1, 0) > cfg.xid_base(0, last_segment));
    }

    #[test]
    fn xid_partitioning_scales_past_128_clients() {
        // 256 clients split the 32-bit xid space without overlap: every
        // segment window is disjoint and wide enough for its writes.
        let cfg = MultiClientConfig::new(NetworkKind::Fddi, 256, 2, WritePolicy::Gathering)
            .with_bytes_per_client(256 * 1024)
            .with_file_limit(128 * 1024);
        let (client_stride, segment_stride) = cfg.xid_strides();
        assert!(segment_stride as u64 >= cfg.xids_per_segment());
        assert!(client_stride as u64 * 256 <= u32::MAX as u64 + 1);
        let mut bases: Vec<u32> = (0..256)
            .flat_map(|c| (0..cfg.segments_per_client() as usize).map(move |s| (c, s)))
            .map(|(c, s)| cfg.xid_base(c, s))
            .collect();
        let total = bases.len();
        bases.sort_unstable();
        bases.dedup();
        assert_eq!(bases.len(), total, "xid bases collide");
        // Consecutive windows never overlap the xids a segment can use.
        assert!(bases
            .windows(2)
            .all(|w| (w[1] - w[0]) as u64 >= cfg.xids_per_segment()));
    }

    #[test]
    #[should_panic(expected = "xid space too small")]
    fn oversized_segment_count_is_rejected_not_wrapped() {
        // ~4.9 billion 8 KB segments: more segments than u32 can index.  The
        // stride math must collapse to a too-narrow window and trip the
        // constructor assert, never truncate and wrap xid windows silently.
        let cfg = MultiClientConfig::new(NetworkKind::Fddi, 2, 4, WritePolicy::Gathering)
            .with_bytes_per_client(40_000_000_000_000)
            .with_file_limit(8192);
        let _ = MultiClientSystem::new(cfg);
    }

    #[test]
    fn two_hundred_fifty_six_clients_run_to_completion() {
        // ROADMAP "client-count scaling past 128": a 256-client run finishes
        // and every client's data survives the fan-in.
        let mut system = MultiClientSystem::new(
            MultiClientConfig::new(NetworkKind::Fddi, 256, 1, WritePolicy::Gathering)
                .with_bytes_per_client(32 * 1024)
                .with_shards(4)
                .with_cores(4)
                .with_io_overlap(true)
                .with_spindles(3),
        );
        let result = system.run();
        assert!(result.completed);
        assert_eq!(result.clients.len(), 256);
        assert_eq!(result.total_bytes_acked, 256 * 32 * 1024);
        system.verify_on_disk().expect("per-client data intact");
        assert_eq!(system.server().dupcache_evicted_in_progress(), 0);
        assert_eq!(system.server().uncommitted_bytes(), 0);
    }

    #[test]
    fn overlapped_multi_client_run_is_not_slower_and_stays_intact() {
        let run = |overlap: bool| {
            let mut system = MultiClientSystem::new(
                MultiClientConfig::new(NetworkKind::Fddi, 4, 4, WritePolicy::Gathering)
                    .with_bytes_per_client(2 * MB)
                    .with_shards(4)
                    .with_spindles(3)
                    .with_io_overlap(overlap),
            );
            let result = system.run();
            assert!(result.completed);
            system.verify_on_disk().expect("per-client data intact");
            assert_eq!(system.server().dupcache_evicted_in_progress(), 0);
            result
        };
        let serial = run(false);
        let overlapped = run(true);
        // Same acknowledged work either way; the pipelined stack never loses
        // throughput on the striped device.
        assert_eq!(serial.total_bytes_acked, overlapped.total_bytes_acked);
        assert!(
            overlapped.aggregate_kb_per_sec >= serial.aggregate_kb_per_sec * 0.999,
            "overlap {:.0} KB/s vs serial {:.0} KB/s",
            overlapped.aggregate_kb_per_sec,
            serial.aggregate_kb_per_sec
        );
    }

    #[test]
    fn two_clients_complete_and_verify() {
        let mut system = MultiClientSystem::new(
            MultiClientConfig::new(NetworkKind::Fddi, 2, 4, WritePolicy::Gathering)
                .with_bytes_per_client(MB)
                .with_file_limit(512 * 1024),
        );
        let result = system.run();
        assert!(result.completed);
        assert_eq!(result.total_bytes_acked, 2 * MB);
        assert_eq!(result.clients.len(), 2);
        assert!(result.fairness > 0.8, "fairness {}", result.fairness);
        assert!(result.aggregate_kb_per_sec > 0.0);
        system.verify_on_disk().expect("per-client data intact");
        assert_eq!(system.server().uncommitted_bytes(), 0);
    }

    #[test]
    fn unstable_clients_commit_every_segment_and_verify_on_disk() {
        let mut system = MultiClientSystem::new(
            MultiClientConfig::new(NetworkKind::Fddi, 3, 4, WritePolicy::Gathering)
                .with_bytes_per_client(MB)
                .with_file_limit(512 * 1024)
                .with_unified_cache(4096)
                .with_stability(StabilityMode::Unstable),
        );
        let result = system.run();
        assert!(result.completed);
        assert_eq!(result.total_bytes_acked, 3 * MB);
        let stats = system.server().stats();
        assert!(stats.unstable_writes > 0);
        // Each client COMMITs every one of its two segments at close.
        assert!(stats.commits >= 6, "commits {}", stats.commits);
        assert_eq!(stats.forced_file_sync, 0);
        assert_eq!(system.server().uncommitted_bytes(), 0);
        system.verify_on_disk().expect("per-client data intact");
    }

    #[test]
    fn sharded_server_with_per_client_lans_completes_and_verifies() {
        let mut system = MultiClientSystem::new(
            MultiClientConfig::new(NetworkKind::Fddi, 3, 4, WritePolicy::Gathering)
                .with_bytes_per_client(MB)
                .with_file_limit(512 * 1024)
                .with_shards(3)
                .with_cores(2)
                .with_per_client_lans(true),
        );
        assert_eq!(system.server().shard_count(), 3);
        let result = system.run();
        assert!(result.completed);
        assert_eq!(result.total_bytes_acked, 3 * MB);
        system.verify_on_disk().expect("per-client data intact");
        assert_eq!(system.server().uncommitted_bytes(), 0);
        assert_eq!(system.server().dupcache_evicted_in_progress(), 0);
        // Independent segments: no client retransmits, fairness stays high.
        assert!(result.clients.iter().all(|c| c.retransmissions == 0));
        assert!(result.fairness > 0.9, "fairness {}", result.fairness);
    }

    #[test]
    fn per_client_lans_do_not_slow_the_aggregate() {
        let run = |lans: bool, shards: usize, cores: usize| {
            MultiClientSystem::new(
                MultiClientConfig::new(NetworkKind::Fddi, 4, 4, WritePolicy::Gathering)
                    .with_bytes_per_client(MB)
                    .with_shards(shards)
                    .with_cores(cores)
                    .with_per_client_lans(lans),
            )
            .run()
        };
        let shared = run(false, 1, 1);
        let sharded = run(true, 4, 4);
        assert!(shared.completed && sharded.completed);
        // Removing wire contention and CPU serialisation must not lose
        // throughput (the shared disk remains the floor).
        assert!(
            sharded.aggregate_kb_per_sec > shared.aggregate_kb_per_sec * 0.95,
            "sharded {:.0} KB/s vs shared {:.0} KB/s",
            sharded.aggregate_kb_per_sec,
            shared.aggregate_kb_per_sec
        );
    }

    #[test]
    fn single_client_cell_matches_the_single_client_system_shape() {
        let mut system = MultiClientSystem::new(
            MultiClientConfig::new(NetworkKind::Fddi, 1, 15, WritePolicy::Gathering)
                .with_bytes_per_client(MB),
        );
        let result = system.run();
        assert!(result.completed);
        assert_eq!(result.clients.len(), 1);
        let lone = &result.clients[0];
        assert!(lone.completed);
        assert_eq!(lone.retransmissions, 0);
        assert!((result.fairness - 1.0).abs() < 1e-12);
        assert!(
            (result.aggregate_kb_per_sec - lone.client_write_kb_per_sec).abs()
                < lone.client_write_kb_per_sec * 1e-6
        );
    }
}
