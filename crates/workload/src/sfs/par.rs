//! Partitioned execution of one [`SfsSystem`] run.
//!
//! The topology splits naturally at the LAN segments: each segment's clients,
//! their media and their retry timers form a *spoke* partition, and the
//! server, filesystem, disks and fault machinery form the *hub*.  Spokes and
//! hub run as cooperating event loops over [`wg_simcore::parallel`]
//! primitives, synchronised by published [`Key`] bounds:
//!
//! * a spoke's bound is strictly below every datagram (and scratch-rotation
//!   request) it may still send — derived per queued event (arrival chains
//!   are covered by a lineage *guard* key, retry chains by the medium
//!   lookahead);
//! * the hub's bound is the [`Key::lift`] of the least work it may still
//!   process, strictly below every reply or loss op it may still mail.
//!
//! Scratch rotation is the one client-side action that mutates hub state
//! (a filesystem create).  The spoke freezes mid-arrival, mails a keyed
//! rotation request — publishing the request key itself as its bound, which
//! the at-or-below pop rule lets the hub admit — and resumes with the handle
//! the hub mails back.  Every cross-partition effect thus executes at the
//! exact key position the serial loop ran it, which is what makes the run
//! bit-identical to [`SfsSystem::run_serial`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use wg_net::medium::{Direction, Medium};
use wg_net::TransmitOutcome;
use wg_nfsproto::{FileHandle, NfsCall, NfsReply, Xid};
use wg_server::{NfsServer, ServerAction, ServerInput};
use wg_simcore::{BoundCell, Duration, FaultKind, Key, KeyedQueue, Mailbox, Monitor, SimTime};

use super::{
    churn_origin, lease_tick_origin, CallStep, OpKind, SfsConfig, SfsGenerator, SfsSystem,
    SharedFiles,
};
use crate::results::SfsPoint;

/// Client-island → server-island messages.
enum UpMsg {
    /// A datagram that survived its LAN segment.
    Datagram {
        client: u32,
        call: NfsCall,
        wire_size: usize,
        fragments: u32,
    },
    /// A scratch-slot rotation: create `name`, answer through the spoke's
    /// rotation slot.
    Rotate { spoke: usize, name: String },
}

/// Server-island → spoke operations, executed by the spoke at the carried
/// key position — exactly where the serial loop ran them inline.
enum DownOp {
    /// Transmit `reply` toward `client` on its segment.
    Reply {
        at: SimTime,
        client: u32,
        reply: NfsReply,
    },
    /// Open a loss window on the segment (from the fault plan).
    Loss {
        from: SimTime,
        until: SimTime,
        probability: f64,
    },
}

/// Events of one spoke's queue.
enum SpokeEv {
    NextArrival(usize),
    Reply(u32, NfsReply),
    RetryCheck(usize, u32, u32),
    Op(DownOp),
    /// One client's lease tick (mirrors the serial `Ev::LeaseTick`).
    LeaseTick(usize),
    /// One client's churn reboot (mirrors the serial `Ev::ChurnTick`).
    ChurnTick(usize),
}

/// Events of the hub's queue.
enum HubEv {
    Server(ServerInput),
    Fault(FaultKind),
    BatteryRepair,
    Rotate { spoke: usize, name: String },
}

/// The channel fabric of one run.
struct Channels {
    up: Vec<Mailbox<UpMsg>>,
    down: Vec<Mailbox<DownOp>>,
    spoke_bounds: Vec<BoundCell>,
    hub_bound: BoundCell,
    /// Per-spoke answer slot of an in-flight rotation request.
    rotations: Vec<Mutex<Option<FileHandle>>>,
    monitor: Monitor,
    done: AtomicBool,
}

/// Read-only run context shared by every partition.
#[derive(Clone, Copy)]
struct Cx<'a> {
    config: &'a SfsConfig,
    shared: &'a SharedFiles,
    ch: &'a Channels,
    end: SimTime,
    lookahead: Duration,
    hub_src: u32,
    faults_armed: bool,
    mix_has_writes: bool,
    runaway_limit: u64,
}

use wg_simcore::parallel::mint_seq as mint;

/// The spoke a client's replies are mailed to (mirrors
/// `ClientLans::medium_mut`).
fn spoke_of(client: usize, n_spokes: usize) -> usize {
    if n_spokes > 1 {
        client
    } else {
        0
    }
}

/// An arrival frozen mid-step on a scratch rotation: the request is in the
/// hub's mail under `req`, and nothing on this spoke runs until the handle
/// comes back.
struct Frozen {
    key: Key,
    req: Key,
    client: usize,
    xid: Xid,
    idx: usize,
}

/// One client-LAN partition: its generators, its medium and its event loop.
struct Spoke {
    src: u32,
    /// Global index of the first local generator (`clients[local] = base +
    /// local`).
    base: usize,
    generators: Vec<SfsGenerator>,
    medium: Medium,
    queue: KeyedQueue<SpokeEv>,
    ctr: u64,
    last_bound: Key,
    frozen: Option<Frozen>,
    /// Completed-call latencies in pop order, replayed into the global
    /// accumulator by key order after the run.
    latency_log: Vec<(Key, Duration)>,
    inbound: Vec<(Key, DownOp)>,
    events_processed: u64,
    issued: u64,
    completed: u64,
    finished: bool,
}

impl Spoke {
    fn new(src: u32, base: usize, generators: Vec<SfsGenerator>, medium: Medium) -> Self {
        Spoke {
            src,
            base,
            generators,
            medium,
            queue: KeyedQueue::new(),
            ctr: 0,
            last_bound: Key::MIN,
            frozen: None,
            latency_log: Vec::new(),
            inbound: Vec::new(),
            events_processed: 0,
            issued: 0,
            completed: 0,
            finished: false,
        }
    }

    /// One scheduling round: drain mail, resume a pending rotation, process
    /// everything admissible under the hub's bound, re-publish our own.
    /// Returns whether any work happened.
    fn pump(&mut self, cx: &Cx) -> bool {
        if self.finished {
            return false;
        }
        let mut progressed = false;
        // Horizon first, then mailbox: a message the hub posted before the
        // bound we read is guaranteed visible to this drain (both sides go
        // through mutexes), so the gate is never ahead of an unseen message.
        let gate = cx.ch.hub_bound.read();
        cx.ch.down[self.src as usize].drain_into(&mut self.inbound);
        for (key, op) in self.inbound.drain(..) {
            progressed = true;
            self.queue.schedule(key, SpokeEv::Op(op));
        }
        if self.frozen.is_some() {
            let handle = cx.ch.rotations[self.src as usize]
                .lock()
                .expect("rotation slot poisoned")
                .take();
            if let Some(handle) = handle {
                let f = self.frozen.take().expect("frozen state just checked");
                progressed = true;
                self.resume(f, handle, cx);
            }
        }
        if self.frozen.is_none() {
            while let Some((key, ev)) = self.queue.pop_below(&gate) {
                progressed = true;
                self.handle(key, ev, cx);
                if self.frozen.is_some() {
                    break;
                }
            }
        }
        // Once the hub declares the run drained no partition can send
        // anything anymore: whatever is left locally (reply deliveries,
        // loss ops) runs unconditionally.
        if self.frozen.is_none() && cx.ch.done.load(Ordering::Acquire) {
            cx.ch.down[self.src as usize].drain_into(&mut self.inbound);
            for (key, op) in self.inbound.drain(..) {
                self.queue.schedule(key, SpokeEv::Op(op));
            }
            while let Some((key, ev)) = self.queue.pop_any() {
                self.handle(key, ev, cx);
            }
            self.finished = true;
            return true;
        }
        let bound = self.compute_bound(cx);
        if bound > self.last_bound {
            self.last_bound = bound;
            cx.ch.spoke_bounds[self.src as usize].publish(bound);
            cx.ch.monitor.bump();
            progressed = true;
        } else if progressed {
            cx.ch.monitor.bump();
        }
        progressed
    }

    fn handle(&mut self, key: Key, ev: SpokeEv, cx: &Cx) {
        match ev {
            SpokeEv::NextArrival(client) => {
                self.events_processed += 1;
                if key.time < cx.end {
                    self.arrival(key, client, cx);
                }
            }
            SpokeEv::Reply(client, reply) => {
                self.events_processed += 1;
                let generator = &mut self.generators[client as usize - self.base];
                if let Some((sent, kind)) = generator.outstanding.take(reply.xid.0) {
                    if matches!(kind, OpKind::Renew | OpKind::Lock) {
                        // Lease-protocol traffic: drive the client state
                        // machine (pure local mutation — never transmits),
                        // never the throughput counters.
                        generator.lease.completed += 1;
                        generator.on_state_reply(&reply.body);
                    } else {
                        let latency = key.time.since(sent);
                        self.latency_log.push((key, latency));
                        generator.latency.record(latency);
                        generator.completed += 1;
                        self.completed += 1;
                    }
                    if cx.faults_armed {
                        generator.retry_calls.remove(&reply.xid.0);
                    }
                }
            }
            SpokeEv::RetryCheck(client, xid, attempt) => {
                self.events_processed += 1;
                let generator = &mut self.generators[client - self.base];
                if !generator.outstanding.contains(xid) {
                    generator.retry_calls.remove(&xid);
                } else if attempt >= cx.config.max_retransmits {
                    generator.outstanding.take(xid);
                    generator.retry_calls.remove(&xid);
                    generator.gave_up += 1;
                } else if let Some(call) = generator.retry_calls.get(&xid).cloned() {
                    generator.retransmissions += 1;
                    self.transmit(key, client, call, cx);
                    let backoff = cx
                        .config
                        .retry_initial_timeout
                        .saturating_mul(1u64 << (attempt + 1).min(10));
                    let seq = mint(&mut self.ctr);
                    self.queue.schedule(
                        key.child(key.time + backoff, self.src, seq),
                        SpokeEv::RetryCheck(client, xid, attempt + 1),
                    );
                }
            }
            SpokeEv::Op(DownOp::Reply { at, client, reply }) => {
                let size = reply.wire_size();
                if let TransmitOutcome::Delivered { arrives_at } =
                    self.medium.transmit(at, size, Direction::ToClient)
                {
                    let seq = mint(&mut self.ctr);
                    self.queue.schedule(
                        key.child(arrives_at, self.src, seq),
                        SpokeEv::Reply(client, reply),
                    );
                }
            }
            SpokeEv::Op(DownOp::Loss {
                from,
                until,
                probability,
            }) => {
                self.medium.inject_loss_window(from, until, probability);
            }
            SpokeEv::LeaseTick(client) => {
                self.events_processed += 1;
                if key.time < cx.end {
                    let call =
                        self.generators[client - self.base].lease_tick_call(key.time, cx.shared);
                    if let Some(call) = call {
                        if cx.faults_armed {
                            let xid = call.xid.0;
                            self.generators[client - self.base]
                                .retry_calls
                                .insert(xid, call.clone());
                            let seq = mint(&mut self.ctr);
                            self.queue.schedule(
                                key.child(
                                    key.time + cx.config.retry_initial_timeout,
                                    self.src,
                                    seq,
                                ),
                                SpokeEv::RetryCheck(client, xid, 0),
                            );
                        }
                        self.transmit(key, client, call, cx);
                    }
                    if !self.generators[client - self.base].lease.dead {
                        let seq = mint(&mut self.ctr);
                        self.queue.schedule(
                            key.child(key.time + cx.config.lease_renew_interval, self.src, seq),
                            SpokeEv::LeaseTick(client),
                        );
                    }
                }
            }
            SpokeEv::ChurnTick(client) => {
                self.events_processed += 1;
                if key.time < cx.end {
                    self.generators[client - self.base].lease_reboot();
                    let seq = mint(&mut self.ctr);
                    self.queue.schedule(
                        key.child(key.time + cx.config.churn_interval, self.src, seq),
                        SpokeEv::ChurnTick(client),
                    );
                }
            }
        }
        assert!(
            self.events_processed < cx.runaway_limit,
            "runaway SFS simulation"
        );
    }

    /// The serial `NextArrival` handler up to the rotation decision.
    fn arrival(&mut self, key: Key, client: usize, cx: &Cx) {
        let step =
            self.generators[client - self.base].next_call_step(key.time, cx.shared, cx.config);
        match step {
            CallStep::Ready(call) => {
                self.generators[client - self.base].issued += 1;
                self.issued += 1;
                self.issue(key, client, call, cx);
            }
            CallStep::NeedsRotation { xid, idx } => {
                let name = self.generators[client - self.base].mint_rotation_name(idx);
                let seq = mint(&mut self.ctr);
                let req = key.op(self.src, seq);
                cx.ch.up[self.src as usize].post(
                    req,
                    UpMsg::Rotate {
                        spoke: self.src as usize,
                        name,
                    },
                );
                self.frozen = Some(Frozen {
                    key,
                    req,
                    client,
                    xid,
                    idx,
                });
            }
        }
    }

    /// Finish a rotation-frozen arrival with the handle the hub created.
    fn resume(&mut self, f: Frozen, handle: FileHandle, cx: &Cx) {
        let generator = &mut self.generators[f.client - self.base];
        generator.install_rotated(f.idx, handle);
        let call = generator.finish_write(
            f.key.time,
            f.xid,
            f.idx,
            cx.config.write_burst.max(1),
            cx.config.stability,
        );
        generator.issued += 1;
        self.issued += 1;
        self.issue(f.key, f.client, call, cx);
    }

    /// Retry bookkeeping, wire transmit and the next-arrival draw — the tail
    /// of the serial `NextArrival` handler, shared by the direct and
    /// post-rotation paths (identical RNG order on both).
    fn issue(&mut self, key: Key, client: usize, call: NfsCall, cx: &Cx) {
        if cx.faults_armed {
            let xid = call.xid.0;
            self.generators[client - self.base]
                .retry_calls
                .insert(xid, call.clone());
            let seq = mint(&mut self.ctr);
            self.queue.schedule(
                key.child(key.time + cx.config.retry_initial_timeout, self.src, seq),
                SpokeEv::RetryCheck(client, xid, 0),
            );
        }
        self.transmit(key, client, call, cx);
        let gap = {
            let generator = &mut self.generators[client - self.base];
            Duration::from_secs_f64(generator.rng.exponential(generator.mean_gap))
        };
        let seq = mint(&mut self.ctr);
        self.queue.schedule(
            key.child(key.time + gap, self.src, seq),
            SpokeEv::NextArrival(client),
        );
    }

    fn transmit(&mut self, key: Key, client: usize, call: NfsCall, cx: &Cx) {
        let size = call.wire_size();
        let fragments = self.medium.params().fragments_for(size);
        if let TransmitOutcome::Delivered { arrives_at } =
            self.medium.transmit(key.time, size, Direction::ToServer)
        {
            let seq = mint(&mut self.ctr);
            cx.ch.up[self.src as usize].post(
                key.child(arrives_at, self.src, seq),
                UpMsg::Datagram {
                    client: client as u32,
                    call,
                    wire_size: size,
                    fragments,
                },
            );
        }
    }

    /// A key strictly below everything this spoke may still send.
    ///
    /// Per queued event: replies and ops emit nothing; a retry chain's
    /// retransmits all arrive strictly after its own time plus the medium
    /// lookahead; an arrival chain in a write-free mix likewise.  With
    /// writes in the mix an arrival's descendants can mint a rotation
    /// request *at the arrival's own key position* (zero inter-arrival gaps
    /// collapse the chain), so the bound falls back to a lineage key: the
    /// request of this arrival would be `{time, b1, b2, src, seq > ctr}`
    /// (covered by the *pred* form when the generator is near its cap) and
    /// any descendant's request is `{t' ≥ time, time, b1, src, ·}` (covered
    /// by the *guard* form).  Both are exact lower bounds with the current
    /// mint counter as the seq, since future mints are strictly larger.
    fn compute_bound(&self, cx: &Cx) -> Key {
        let mut bound = match &self.frozen {
            Some(f) => f.req,
            None => Key::MAX,
        };
        for (key, ev) in self.queue.iter() {
            let contribution = match ev {
                SpokeEv::Reply(..) | SpokeEv::Op(..) => continue,
                // A churn reboot mutates only local client state; neither it
                // nor any descendant reboot ever sends — no contribution.
                SpokeEv::ChurnTick(..) => continue,
                SpokeEv::RetryCheck(..) => Key::time_bound(key.time + cx.lookahead),
                // A lease tick transmits at its own time (no gap draw), so
                // its datagram — and every later tick's, one non-zero renew
                // interval on — arrives no earlier than the medium
                // lookahead, exactly the retry-chain argument.
                SpokeEv::LeaseTick(..) => {
                    if key.time >= cx.end {
                        continue;
                    }
                    Key::time_bound(key.time + cx.lookahead)
                }
                SpokeEv::NextArrival(client) => {
                    if key.time >= cx.end {
                        continue;
                    }
                    if !cx.mix_has_writes {
                        Key::time_bound(key.time + cx.lookahead)
                    } else if self.generators[client - self.base].could_rotate(cx.config) {
                        Key {
                            time: key.time,
                            b1: key.b1,
                            b2: key.b2,
                            src: self.src,
                            seq: self.ctr,
                        }
                    } else {
                        Key {
                            time: key.time,
                            b1: key.time,
                            b2: key.b1,
                            src: self.src,
                            seq: self.ctr,
                        }
                    }
                }
            };
            bound = bound.min(contribution);
        }
        bound
    }
}

/// The server/disk island.
struct Hub<'a> {
    server: &'a mut NfsServer,
    queue: KeyedQueue<HubEv>,
    ctr: u64,
    last_bound: Key,
    actions: Vec<ServerAction>,
    inbound: Vec<(Key, UpMsg)>,
    events_processed: u64,
}

impl Hub<'_> {
    fn handle(&mut self, key: Key, ev: HubEv, cx: &Cx) {
        match ev {
            HubEv::Server(input) => {
                self.events_processed += 1;
                self.server.handle_into(key.time, input, &mut self.actions);
                for action in self.actions.drain(..) {
                    match action {
                        ServerAction::Wakeup { at, token } => {
                            let seq = mint(&mut self.ctr);
                            self.queue.schedule(
                                key.child(at, cx.hub_src, seq),
                                HubEv::Server(ServerInput::Wakeup { token }),
                            );
                        }
                        ServerAction::Reply { at, client, reply } => {
                            let spoke = spoke_of(client as usize, cx.ch.down.len());
                            let seq = mint(&mut self.ctr);
                            cx.ch.down[spoke]
                                .post(key.op(cx.hub_src, seq), DownOp::Reply { at, client, reply });
                        }
                    }
                }
            }
            HubEv::Rotate { spoke, name } => {
                let root = self.server.fs().root();
                let ino = self
                    .server
                    .fs_mut()
                    .create(root, &name, 0o644, 0)
                    .expect("scratch rotation name is fresh");
                let handle = self.server.handle_for_ino(ino).expect("live inode");
                *cx.ch.rotations[spoke]
                    .lock()
                    .expect("rotation slot poisoned") = Some(handle);
            }
            HubEv::Fault(kind) => {
                self.events_processed += 1;
                match kind {
                    FaultKind::ServerCrash => {
                        self.server.crash(key.time);
                    }
                    FaultKind::BatteryFailure { repair_after } => {
                        self.server.set_battery(false, key.time);
                        let seq = mint(&mut self.ctr);
                        self.queue.schedule(
                            key.child(key.time + repair_after, cx.hub_src, seq),
                            HubEv::BatteryRepair,
                        );
                    }
                    FaultKind::DiskDegrade {
                        duration,
                        stall,
                        retries,
                    } => {
                        self.server
                            .inject_disk_fault(key.time, duration, stall, retries);
                    }
                    FaultKind::LossBurst {
                        duration,
                        probability,
                        segment,
                    } => {
                        let from = key.time;
                        let until = key.time + duration;
                        match segment {
                            Some(idx) => {
                                let s = idx.min(cx.ch.down.len() - 1);
                                let seq = mint(&mut self.ctr);
                                cx.ch.down[s].post(
                                    key.op(cx.hub_src, seq),
                                    DownOp::Loss {
                                        from,
                                        until,
                                        probability,
                                    },
                                );
                            }
                            None => {
                                for s in 0..cx.ch.down.len() {
                                    let seq = mint(&mut self.ctr);
                                    cx.ch.down[s].post(
                                        key.op(cx.hub_src, seq),
                                        DownOp::Loss {
                                            from,
                                            until,
                                            probability,
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
            }
            HubEv::BatteryRepair => {
                self.events_processed += 1;
                self.server.set_battery(true, key.time);
            }
        }
        assert!(
            self.events_processed < cx.runaway_limit,
            "runaway SFS simulation"
        );
    }
}

/// The hub's loop: gate on the spoke bounds, drain mail, process, publish.
fn run_hub(hub: &mut Hub, cx: &Cx) {
    loop {
        let epoch = cx.ch.monitor.epoch();
        let mut progressed = false;
        // Bounds first, then mail (see `Spoke::pump` for why the order
        // matters): any message with a key at or below the gate we compute
        // here is already visible to the drain below.
        let mut gate = Key::MAX;
        for cell in &cx.ch.spoke_bounds {
            gate = gate.min(cell.read());
        }
        for mail in &cx.ch.up {
            mail.drain_into(&mut hub.inbound);
        }
        for (key, msg) in hub.inbound.drain(..) {
            progressed = true;
            let ev = match msg {
                UpMsg::Datagram {
                    client,
                    call,
                    wire_size,
                    fragments,
                } => HubEv::Server(ServerInput::Datagram {
                    client,
                    call,
                    wire_size,
                    fragments,
                }),
                UpMsg::Rotate { spoke, name } => HubEv::Rotate { spoke, name },
            };
            hub.queue.schedule(key, ev);
        }
        while let Some((key, ev)) = hub.queue.pop_below(&gate) {
            progressed = true;
            hub.handle(key, ev, cx);
        }
        // Every spoke promised Key::MAX and nothing is queued or in flight:
        // the run is drained.  (Mailboxes were drained above *after* the
        // bounds read, so a spoke at MAX cannot have mail we missed.)
        if hub.queue.is_empty() && gate == Key::MAX {
            cx.ch.hub_bound.publish(Key::MAX);
            cx.ch.done.store(true, Ordering::Release);
            cx.ch.monitor.bump();
            return;
        }
        let horizon = gate.min(hub.queue.peek_key().unwrap_or(Key::MAX));
        let bound = horizon.lift(cx.hub_src);
        if bound > hub.last_bound {
            hub.last_bound = bound;
            cx.ch.hub_bound.publish(bound);
            cx.ch.monitor.bump();
            progressed = true;
        } else if progressed {
            cx.ch.monitor.bump();
        }
        if !progressed {
            cx.ch.monitor.wait_if(epoch);
        }
    }
}

/// One worker's loop over the spokes it owns.
fn run_spokes(mut spokes: Vec<Spoke>, cx: &Cx) -> Vec<Spoke> {
    loop {
        let epoch = cx.ch.monitor.epoch();
        let mut progressed = false;
        let mut all_done = true;
        for spoke in &mut spokes {
            progressed |= spoke.pump(cx);
            all_done &= spoke.finished;
        }
        if all_done {
            return spokes;
        }
        if !progressed {
            cx.ch.monitor.wait_if(epoch);
        }
    }
}

/// Run `system` on `sim_threads` cooperating event loops.  Bit-identical to
/// [`SfsSystem::run_serial`]: same points, same counters, same filesystem.
pub(super) fn run_partitioned(system: &mut SfsSystem) -> SfsPoint {
    system.events_processed = 0;
    let media = system.lans.take_media();
    let n_spokes = media.len();
    let hub_src = n_spokes as u32;
    let clients = system.generators.len();
    let lookahead = system.config.network.params().lookahead();

    // Partition the generators: one spoke per private LAN segment, or a
    // single spoke carrying every stream on the shared segment.  The layout
    // depends only on the topology — never on the thread count — so any
    // thread count yields the same schedule.
    let mut taken = std::mem::take(&mut system.generators);
    let mut spokes: Vec<Spoke> = Vec::with_capacity(n_spokes);
    if n_spokes == 1 {
        let medium = media.into_iter().next().expect("one shared segment");
        spokes.push(Spoke::new(0, 0, std::mem::take(&mut taken), medium));
    } else {
        debug_assert_eq!(n_spokes, clients);
        for (s, (generator, medium)) in taken.drain(..).zip(media).enumerate() {
            spokes.push(Spoke::new(s as u32, s, vec![generator], medium));
        }
    }
    // Initial arrivals: the same RNG draws in the same client order as the
    // serial loop.  Keys are `{gap, 0, 0, spoke, seq}` with spoke/seq in
    // client order, replicating the serial queue's insertion-order tie-break
    // exactly (and sorting before the hub-minted fault events below).
    for spoke in &mut spokes {
        let gaps: Vec<Duration> = spoke
            .generators
            .iter_mut()
            .map(|g| Duration::from_secs_f64(g.rng.exponential(g.mean_gap)))
            .collect();
        for (local, gap) in gaps.into_iter().enumerate() {
            let seq = mint(&mut spoke.ctr);
            spoke.queue.schedule(
                Key::initial(SimTime::ZERO + gap, spoke.src, seq),
                SpokeEv::NextArrival(spoke.base + local),
            );
        }
    }
    // Lease and churn tick chains mirror the serial loop's: same per-client
    // origin times (skewed, so every tick key is distinct), seeded as
    // initial keys per spoke.  Tick times never collide with the continuous
    // arrival draws, so heap order — and the schedule — matches serial.
    if system.config.leases {
        let renew = system.config.lease_renew_interval;
        let churn = system.config.churn_interval;
        for spoke in &mut spokes {
            for local in 0..spoke.generators.len() {
                let client = spoke.base + local;
                let seq = mint(&mut spoke.ctr);
                spoke.queue.schedule(
                    Key::initial(lease_tick_origin(renew, client), spoke.src, seq),
                    SpokeEv::LeaseTick(client),
                );
            }
            if churn > Duration::ZERO {
                for local in 0..spoke.generators.len() {
                    let client = spoke.base + local;
                    let seq = mint(&mut spoke.ctr);
                    spoke.queue.schedule(
                        Key::initial(churn_origin(churn, client, clients), spoke.src, seq),
                        SpokeEv::ChurnTick(client),
                    );
                }
            }
        }
    }
    let mut hub_queue = KeyedQueue::new();
    let mut hub_ctr = 0u64;
    for event in system.config.fault_plan.events() {
        let seq = mint(&mut hub_ctr);
        hub_queue.schedule(
            Key::initial(event.at, hub_src, seq),
            HubEv::Fault(event.kind),
        );
    }

    let channels = Channels {
        up: (0..n_spokes).map(|_| Mailbox::new()).collect(),
        down: (0..n_spokes).map(|_| Mailbox::new()).collect(),
        spoke_bounds: (0..n_spokes).map(|_| BoundCell::new()).collect(),
        hub_bound: BoundCell::new(),
        rotations: (0..n_spokes).map(|_| Mutex::new(None)).collect(),
        monitor: Monitor::new(),
        done: AtomicBool::new(false),
    };
    let cx = Cx {
        config: &system.config,
        shared: &system.shared,
        ch: &channels,
        end: SimTime::ZERO + system.config.duration,
        lookahead,
        hub_src,
        faults_armed: system.config.faults_enabled(),
        mix_has_writes: system.config.mix.write > 0.0,
        runaway_limit: 100_000_000 * clients as u64,
    };
    let mut hub = Hub {
        server: &mut system.server,
        queue: hub_queue,
        ctr: hub_ctr,
        last_bound: Key::MIN,
        actions: Vec::new(),
        inbound: Vec::new(),
        events_processed: 0,
    };

    // Worker 0 (the calling thread) drives the hub; the remaining workers
    // split the spokes round-robin.
    let spoke_workers = system
        .config
        .sim_threads
        .saturating_sub(1)
        .clamp(1, n_spokes);
    let mut batches: Vec<Vec<Spoke>> = (0..spoke_workers).map(|_| Vec::new()).collect();
    for (s, spoke) in spokes.into_iter().enumerate() {
        batches[s % spoke_workers].push(spoke);
    }
    let mut spokes: Vec<Spoke> = std::thread::scope(|scope| {
        let handles: Vec<_> = batches
            .into_iter()
            .map(|batch| scope.spawn(move || run_spokes(batch, &cx)))
            .collect();
        run_hub(&mut hub, &cx);
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("spoke worker panicked"))
            .collect()
    });
    spokes.sort_by_key(|s| s.src);

    let hub_events = hub.events_processed;
    let hub_scheduled = hub.queue.scheduled_total();
    let hub_clamped = hub.queue.clamped_past();
    system.events_processed += hub_events;
    system.par_scheduled_total += hub_scheduled;
    system.par_clamped_past += hub_clamped;
    system.par_sched.absorb(&hub.queue.sched_stats());
    let mut media_back: Vec<Medium> = Vec::with_capacity(n_spokes);
    let mut logs: Vec<std::iter::Peekable<std::vec::IntoIter<(Key, Duration)>>> =
        Vec::with_capacity(n_spokes);
    for spoke in spokes {
        debug_assert!(spoke.queue.is_empty(), "spoke exited with queued events");
        debug_assert!(spoke.frozen.is_none(), "spoke exited mid-rotation");
        system.events_processed += spoke.events_processed;
        system.issued += spoke.issued;
        system.completed += spoke.completed;
        system.par_scheduled_total += spoke.queue.scheduled_total();
        system.par_clamped_past += spoke.queue.clamped_past();
        system.par_sched.absorb(&spoke.queue.sched_stats());
        system.generators.extend(spoke.generators);
        media_back.push(spoke.medium);
        logs.push(spoke.latency_log.into_iter().peekable());
    }
    system.lans.restore_media(media_back);
    // Replay per-spoke latency records in global key order so the f64
    // accumulation order — and with it the reported mean, bit for bit —
    // matches the serial loop's.
    loop {
        let mut best: Option<(usize, Key)> = None;
        for (i, log) in logs.iter_mut().enumerate() {
            if let Some(&(key, _)) = log.peek() {
                if best.map(|(_, b)| key < b).unwrap_or(true) {
                    best = Some((i, key));
                }
            }
        }
        let Some((i, _)) = best else { break };
        let (_, latency) = logs[i].next().expect("peeked entry");
        system.latency.record(latency);
    }
    system.point()
}

#[cfg(test)]
mod tests {
    use wg_server::WritePolicy;
    use wg_simcore::{Duration, FaultKind, FaultPlan, SimTime};

    use super::super::{SfsConfig, SfsMix, SfsSystem};

    fn quick(load: f64) -> SfsConfig {
        SfsConfig {
            duration: Duration::from_secs(3),
            file_count: 30,
            file_size: 64 * 1024,
            ..SfsConfig::figure2(load, WritePolicy::Gathering)
        }
    }

    /// Run `config` serially and at every thread count in `threads`, and
    /// assert every observable — the figure point, the counters, the event
    /// count, the filesystem — is bit-identical.
    fn assert_parity(config: SfsConfig, threads: &[usize]) {
        let mut serial = SfsSystem::new(config.clone().with_sim_threads(0));
        let want = serial.run();
        for &n in threads {
            let mut par = SfsSystem::new(config.clone().with_sim_threads(n));
            let got = par.run();
            let ctx = format!("sim_threads = {n}");
            assert_eq!(want.offered_ops_per_sec, got.offered_ops_per_sec, "{ctx}");
            assert_eq!(want.achieved_ops_per_sec, got.achieved_ops_per_sec, "{ctx}");
            assert_eq!(want.avg_latency_ms, got.avg_latency_ms, "{ctx}");
            assert_eq!(want.server_cpu_percent, got.server_cpu_percent, "{ctx}");
            assert_eq!(serial.counts(), par.counts(), "{ctx}");
            assert_eq!(serial.events_processed(), par.events_processed(), "{ctx}");
            assert_eq!(serial.name_mints(), par.name_mints(), "{ctx}");
            assert_eq!(serial.retransmissions(), par.retransmissions(), "{ctx}");
            assert_eq!(serial.gave_up(), par.gave_up(), "{ctx}");
            assert_eq!(serial.scratch_rotations(), par.scratch_rotations(), "{ctx}");
            assert_eq!(
                serial.max_scratch_offset(),
                par.max_scratch_offset(),
                "{ctx}"
            );
            assert_eq!(
                serial.per_client_avg_latency_ms(),
                par.per_client_avg_latency_ms(),
                "{ctx}"
            );
            assert_eq!(
                serial.per_client_achieved_ops(),
                par.per_client_achieved_ops(),
                "{ctx}"
            );
            assert_eq!(serial.lease_counts(), par.lease_counts(), "{ctx}");
            assert_eq!(serial.grace_denials(), par.grace_denials(), "{ctx}");
            assert_eq!(serial.lock_grants(), par.lock_grants(), "{ctx}");
            assert_eq!(serial.churn_reboots(), par.churn_reboots(), "{ctx}");
            assert_eq!(
                serial.observed_server_reboots(),
                par.observed_server_reboots(),
                "{ctx}"
            );
            assert_eq!(
                serial.server().state_stats(),
                par.server().state_stats(),
                "{ctx}"
            );
            assert_eq!(
                serial.server().state_table_bytes(),
                par.server().state_table_bytes(),
                "{ctx}"
            );
            assert_eq!(par.clamped_past(), 0, "{ctx}");
        }
    }

    #[test]
    fn partitioned_run_matches_serial_on_per_client_lans() {
        assert_parity(
            quick(400.0).with_clients(4).with_per_client_lans(true),
            &[2, 4, 8],
        );
    }

    #[test]
    fn partitioned_run_matches_serial_on_a_shared_lan() {
        // One shared segment means one spoke: the smallest partitioning —
        // and the default Figure 2 topology (clients = 1) rides through it.
        assert_parity(quick(300.0), &[2, 4]);
        assert_parity(quick(350.0).with_clients(3), &[2]);
    }

    #[test]
    fn partitioned_run_matches_serial_with_loss_and_faults_armed() {
        let plan = FaultPlan::new()
            .at(SimTime::from_millis(700), FaultKind::ServerCrash)
            .at(
                SimTime::from_millis(1200),
                FaultKind::BatteryFailure {
                    repair_after: Duration::from_millis(400),
                },
            )
            .at(
                SimTime::from_millis(1600),
                FaultKind::LossBurst {
                    duration: Duration::from_millis(300),
                    probability: 0.6,
                    segment: Some(1),
                },
            )
            .at(
                SimTime::from_millis(2100),
                FaultKind::DiskDegrade {
                    duration: Duration::from_millis(300),
                    stall: Duration::from_millis(4),
                    retries: 2,
                },
            );
        assert_parity(
            quick(400.0)
                .with_clients(4)
                .with_per_client_lans(true)
                .with_loss(0.03)
                .with_fault_plan(plan)
                .with_retry(Duration::from_millis(300), 4),
            &[2, 4, 8],
        );
    }

    #[test]
    fn partitioned_run_matches_serial_with_leases_armed() {
        // Lease ticks on a shared segment and on per-client segments: the
        // renewal storm, lock acquisition and the client state machine must
        // replay bit-identically through the partitioned core.
        assert_parity(
            quick(300.0)
                .with_clients(3)
                .with_leases(true)
                .with_lease_timing(
                    Duration::from_millis(400),
                    Duration::from_millis(1500),
                    Duration::from_millis(800),
                ),
            &[2, 4],
        );
        assert_parity(
            quick(400.0)
                .with_clients(4)
                .with_per_client_lans(true)
                .with_leases(true)
                .with_lease_timing(
                    Duration::from_millis(400),
                    Duration::from_millis(1500),
                    Duration::from_millis(800),
                )
                .with_churn(Duration::from_millis(1300)),
            &[2, 4, 8],
        );
    }

    #[test]
    fn partitioned_run_matches_serial_with_leases_and_crash_armed() {
        // The adversarial composition: a crash wipes the state table and
        // opens the grace window while retransmit timers and lease ticks are
        // in flight; reclaims, soft grace rejections and the post-crash
        // re-registration storm must all be bit-identical to serial.
        let plan = FaultPlan::new().at(SimTime::from_millis(1200), FaultKind::ServerCrash);
        assert_parity(
            quick(400.0)
                .with_clients(4)
                .with_per_client_lans(true)
                .with_loss(0.02)
                .with_fault_plan(plan)
                .with_retry(Duration::from_millis(300), 6)
                .with_leases(true)
                .with_lease_timing(
                    Duration::from_millis(400),
                    Duration::from_secs(2),
                    Duration::from_millis(1500),
                )
                .with_churn(Duration::from_millis(1700)),
            &[2, 4, 8],
        );
    }

    #[test]
    fn partitioned_run_matches_serial_through_scratch_rotations() {
        // A write-only mix against a tiny rotation limit forces the
        // freeze/resume rotation protocol (spoke-minted request, hub-side
        // create, handle mailed back) on every spoke, repeatedly.
        let mut config = quick(1200.0)
            .with_clients(2)
            .with_per_client_lans(true)
            .with_scratch_file_limit(256 * 1024);
        config.mix = SfsMix {
            lookup: 0.0,
            read: 0.0,
            write: 100.0,
            getattr: 0.0,
            readdir: 0.0,
            create: 0.0,
            remove: 0.0,
            setattr: 0.0,
            statfs: 0.0,
        };
        config.duration = Duration::from_secs(6);
        let mut serial = SfsSystem::new(config.clone());
        serial.run();
        assert!(serial.scratch_rotations() > 0, "hot enough to rotate");
        assert_parity(config, &[2, 3]);
    }

    #[test]
    fn partitioned_run_matches_serial_on_the_scaled_stack() {
        assert_parity(
            SfsConfig {
                duration: Duration::from_secs(2),
                file_count: 30,
                file_size: 64 * 1024,
                ..SfsConfig::scaled(600.0, WritePolicy::Gathering, 8)
            },
            &[2, 4, 8],
        );
    }
}
