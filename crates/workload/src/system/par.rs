//! Partitioned execution of one [`FileCopySystem`] run.
//!
//! The smallest instance of the hub-and-spoke split: one spoke (the client
//! and its network segment) and the hub (server, disks, fault machinery), so
//! `sim_threads ≥ 2` always yields exactly two event loops.  Replies provoke
//! the client's next sends, so the hub gates on an [`OpWindow`] over the ops
//! it has mailed, exactly like the multi-client driver
//! (`crate::multi::par`); fault events live on the hub like the SFS driver
//! (`crate::sfs::par`), with loss bursts shipped to the spoke's medium as
//! keyed down-ops.  The run is bit-identical to the serial loop.

use std::sync::atomic::{AtomicBool, Ordering};

use wg_client::{ClientAction, ClientInput, FileWriterClient};
use wg_net::medium::{Direction, Medium};
use wg_net::TransmitOutcome;
use wg_nfsproto::{NfsCall, NfsReply};
use wg_server::{NfsServer, ServerAction, ServerInput};
use wg_simcore::parallel::{applied_counter, bump_applied, run_hub, HubPartition};
use wg_simcore::{
    BoundCell, Duration, FaultKind, Key, KeyedQueue, Mailbox, Monitor, OpWindow, SimTime,
};

use super::FileCopySystem;
use crate::results::FileCopyResult;

/// Client-island → server-island messages.
enum UpMsg {
    Datagram {
        call: NfsCall,
        wire_size: usize,
        fragments: u32,
    },
}

/// Server-island → spoke operations, executed by the spoke at the carried
/// key position — exactly where the serial loop ran them inline.
enum DownOp {
    Reply {
        at: SimTime,
        reply: NfsReply,
    },
    Loss {
        from: SimTime,
        until: SimTime,
        probability: f64,
    },
}

/// Events of the spoke's queue.
enum SpokeEv {
    Client(ClientInput),
    Op(DownOp),
}

/// Events of the hub's queue.
enum HubEv {
    Server(ServerInput),
    Fault(FaultKind),
    BatteryRepair,
}

/// The channel fabric of one run.
struct Channels {
    up: Mailbox<UpMsg>,
    down: Mailbox<DownOp>,
    spoke_bound: BoundCell,
    hub_bound: BoundCell,
    monitor: Monitor,
    done: AtomicBool,
}

const SPOKE_SRC: u32 = 0;
const HUB_SRC: u32 = 1;

use wg_simcore::parallel::mint_seq as mint;

/// The client partition.
struct Spoke<'a> {
    client: &'a mut FileWriterClient,
    medium: &'a mut Medium,
    queue: KeyedQueue<SpokeEv>,
    ctr: u64,
    last_bound: Key,
    actions: Vec<ClientAction>,
    inbound: Vec<(Key, DownOp)>,
    applied: std::sync::Arc<std::sync::atomic::AtomicU64>,
    applied_pending: u64,
    completed_at: Option<SimTime>,
    events_processed: u64,
    finished: bool,
}

impl Spoke<'_> {
    /// One scheduling round; see `crate::multi::par::Spoke::pump` — exact
    /// bound stores and bump-after-store op release, same protocol.
    fn pump(&mut self, lookahead: Duration, ch: &Channels) -> bool {
        if self.finished {
            return false;
        }
        let mut progressed = false;
        let gate = ch.hub_bound.read();
        ch.down.drain_into(&mut self.inbound);
        for (key, op) in self.inbound.drain(..) {
            progressed = true;
            self.queue.schedule(key, SpokeEv::Op(op));
        }
        while let Some((key, ev)) = self.queue.pop_below(&gate) {
            progressed = true;
            self.handle(key, ev, ch);
        }
        if ch.done.load(Ordering::Acquire) {
            ch.down.drain_into(&mut self.inbound);
            for (key, op) in self.inbound.drain(..) {
                self.queue.schedule(key, SpokeEv::Op(op));
            }
            while let Some((key, ev)) = self.queue.pop_any() {
                self.handle(key, ev, ch);
            }
            self.finished = true;
            self.flush_applied();
            ch.monitor.bump();
            return true;
        }
        let mut bound = Key::MAX;
        for (key, _) in self.queue.iter() {
            bound = bound.min(Key::time_bound(key.time + lookahead));
        }
        let moved = bound != self.last_bound;
        if moved {
            self.last_bound = bound;
            ch.spoke_bound.store(bound);
        }
        self.flush_applied();
        if moved || progressed {
            ch.monitor.bump();
        }
        progressed
    }

    fn flush_applied(&mut self) {
        for _ in 0..self.applied_pending {
            bump_applied(&self.applied);
        }
        self.applied_pending = 0;
    }

    fn handle(&mut self, key: Key, ev: SpokeEv, ch: &Channels) {
        match ev {
            SpokeEv::Client(input) => {
                self.events_processed += 1;
                self.client.handle_into(key.time, input, &mut self.actions);
                for action in self.actions.drain(..) {
                    match action {
                        ClientAction::Send { at, call } => {
                            let size = call.wire_size();
                            let fragments = self.medium.params().fragments_for(size);
                            if let TransmitOutcome::Delivered { arrives_at } =
                                self.medium.transmit(at, size, Direction::ToServer)
                            {
                                let seq = mint(&mut self.ctr);
                                ch.up.post(
                                    key.child(arrives_at, SPOKE_SRC, seq),
                                    UpMsg::Datagram {
                                        call,
                                        wire_size: size,
                                        fragments,
                                    },
                                );
                            }
                        }
                        ClientAction::Wakeup { at, token } => {
                            let seq = mint(&mut self.ctr);
                            self.queue.schedule(
                                key.child(at, SPOKE_SRC, seq),
                                SpokeEv::Client(ClientInput::Wakeup { token }),
                            );
                        }
                        ClientAction::Completed { at } => {
                            self.completed_at = Some(at);
                        }
                    }
                }
            }
            SpokeEv::Op(DownOp::Reply { at, reply }) => {
                let size = reply.wire_size();
                if let TransmitOutcome::Delivered { arrives_at } =
                    self.medium.transmit(at, size, Direction::ToClient)
                {
                    let seq = mint(&mut self.ctr);
                    self.queue.schedule(
                        key.child(arrives_at, SPOKE_SRC, seq),
                        SpokeEv::Client(ClientInput::Reply(reply)),
                    );
                }
                self.applied_pending += 1;
            }
            SpokeEv::Op(DownOp::Loss {
                from,
                until,
                probability,
            }) => {
                self.medium.inject_loss_window(from, until, probability);
                self.applied_pending += 1;
            }
        }
        assert!(
            self.events_processed < FileCopySystem::MAX_EVENTS,
            "runaway simulation"
        );
    }
}

/// The server/disk island.
struct Hub<'a> {
    server: &'a mut NfsServer,
    queue: KeyedQueue<HubEv>,
    ctr: u64,
    window: OpWindow,
    actions: Vec<ServerAction>,
    inbound: Vec<(Key, UpMsg)>,
    events_processed: u64,
}

impl Hub<'_> {
    /// Mail one op to the spoke and hold the window open until it is applied
    /// and covered by the spoke's bound.  Every op is noted — a loss window
    /// provokes nothing, but noting it keeps the applied count aligned with
    /// the sent queue (ops are pruned strictly in post order).
    fn post_op(&mut self, key: Key, op: DownOp, ch: &Channels) {
        let seq = mint(&mut self.ctr);
        self.window.note_sent(key.time);
        ch.down.post(key.op(HUB_SRC, seq), op);
    }

    fn handle(&mut self, key: Key, ev: HubEv, ch: &Channels) {
        match ev {
            HubEv::Server(input) => {
                self.events_processed += 1;
                self.server.handle_into(key.time, input, &mut self.actions);
                let mut actions = std::mem::take(&mut self.actions);
                for action in actions.drain(..) {
                    match action {
                        ServerAction::Wakeup { at, token } => {
                            let seq = mint(&mut self.ctr);
                            self.queue.schedule(
                                key.child(at, HUB_SRC, seq),
                                HubEv::Server(ServerInput::Wakeup { token }),
                            );
                        }
                        ServerAction::Reply { at, reply, .. } => {
                            self.post_op(key, DownOp::Reply { at, reply }, ch);
                        }
                    }
                }
                self.actions = actions;
            }
            HubEv::Fault(kind) => {
                self.events_processed += 1;
                match kind {
                    FaultKind::ServerCrash => {
                        self.server.crash(key.time);
                    }
                    FaultKind::BatteryFailure { repair_after } => {
                        self.server.set_battery(false, key.time);
                        let seq = mint(&mut self.ctr);
                        self.queue.schedule(
                            key.child(key.time + repair_after, HUB_SRC, seq),
                            HubEv::BatteryRepair,
                        );
                    }
                    FaultKind::DiskDegrade {
                        duration,
                        stall,
                        retries,
                    } => {
                        self.server
                            .inject_disk_fault(key.time, duration, stall, retries);
                    }
                    // One segment: a burst aimed anywhere lands on it, same
                    // as the serial loop.
                    FaultKind::LossBurst {
                        duration,
                        probability,
                        segment: _,
                    } => {
                        self.post_op(
                            key,
                            DownOp::Loss {
                                from: key.time,
                                until: key.time + duration,
                                probability,
                            },
                            ch,
                        );
                    }
                }
            }
            HubEv::BatteryRepair => {
                self.events_processed += 1;
                self.server.set_battery(true, key.time);
            }
        }
        assert!(
            self.events_processed < FileCopySystem::MAX_EVENTS,
            "runaway simulation"
        );
    }
}

/// [`HubPartition`] view of the hub for the shared
/// [`wg_simcore::parallel::run_hub`] driver: one op window, one spoke bound
/// cell, one up-mailbox, and every datagram addressed to client 0.
struct HubLoop<'h, 'a, 'c> {
    hub: &'h mut Hub<'a>,
    ch: &'c Channels,
}

impl HubPartition for HubLoop<'_, '_, '_> {
    type Ev = HubEv;

    fn window_gate(&mut self, lookahead: Duration) -> Key {
        self.hub.window.bound(lookahead)
    }

    fn spoke_gate(&self) -> Key {
        self.ch.spoke_bound.read()
    }

    fn drain_mail(&mut self) -> bool {
        self.ch.up.drain_into(&mut self.hub.inbound);
        let mut progressed = false;
        for (key, msg) in self.hub.inbound.drain(..) {
            progressed = true;
            let UpMsg::Datagram {
                call,
                wire_size,
                fragments,
            } = msg;
            self.hub.queue.schedule(
                key,
                HubEv::Server(ServerInput::Datagram {
                    client: 0,
                    call,
                    wire_size,
                    fragments,
                }),
            );
        }
        progressed
    }

    fn pop_below(&mut self, limit: &Key) -> Option<(Key, HubEv)> {
        self.hub.queue.pop_below(limit)
    }

    fn handle(&mut self, key: Key, ev: HubEv) {
        self.hub.handle(key, ev, self.ch);
    }

    fn queue_is_empty(&self) -> bool {
        self.hub.queue.is_empty()
    }

    fn peek_key(&self) -> Option<Key> {
        self.hub.queue.peek_key()
    }
}

/// Run `system` as two cooperating event loops (any `sim_threads ≥ 2` maps
/// to hub + one spoke).  Bit-identical to the serial loop.
pub(super) fn run_partitioned(system: &mut FileCopySystem) -> FileCopyResult {
    system.events_processed = 0;
    system.par_now = SimTime::ZERO;
    system.completed_at = None;
    let lookahead = system.config.network.params().lookahead();

    let channels = Channels {
        up: Mailbox::new(),
        down: Mailbox::new(),
        spoke_bound: BoundCell::new(),
        hub_bound: BoundCell::new(),
        monitor: Monitor::new(),
        done: AtomicBool::new(false),
    };
    let applied = applied_counter();
    let mut spoke = Spoke {
        client: &mut system.client,
        medium: &mut system.medium,
        queue: KeyedQueue::new(),
        ctr: 0,
        last_bound: Key::MIN,
        actions: Vec::new(),
        inbound: Vec::new(),
        applied: applied.clone(),
        applied_pending: 0,
        completed_at: None,
        events_processed: 0,
        finished: false,
    };
    let mut hub = Hub {
        server: &mut system.server,
        queue: KeyedQueue::new(),
        ctr: 0,
        window: OpWindow::new(applied),
        actions: Vec::new(),
        inbound: Vec::new(),
        events_processed: 0,
    };
    // Same seeds in the same order as the serial loop: the client's Start
    // first, then the fault plan (hub-minted keys rank after spoke keys on
    // time ties, preserving the serial insertion order).
    {
        let seq = mint(&mut spoke.ctr);
        spoke.queue.schedule(
            Key::initial(SimTime::ZERO, SPOKE_SRC, seq),
            SpokeEv::Client(ClientInput::Start),
        );
    }
    for event in system.config.fault_plan.events() {
        let seq = mint(&mut hub.ctr);
        hub.queue.schedule(
            Key::initial(event.at, HUB_SRC, seq),
            HubEv::Fault(event.kind),
        );
    }

    let ch = &channels;
    std::thread::scope(|scope| {
        let spoke = &mut spoke;
        scope.spawn(move || loop {
            let epoch = ch.monitor.epoch();
            let progressed = spoke.pump(lookahead, ch);
            if spoke.finished {
                return;
            }
            if !progressed {
                ch.monitor.wait_if(epoch);
            }
        });
        run_hub(
            &mut HubLoop { hub: &mut hub, ch },
            lookahead,
            HUB_SRC,
            &ch.hub_bound,
            &ch.monitor,
            &ch.done,
        );
    });
    debug_assert!(hub.window.is_drained(), "hub exited with unapplied ops");
    debug_assert!(spoke.queue.is_empty(), "spoke exited with queued events");

    system.events_processed = hub.events_processed + spoke.events_processed;
    system.par_scheduled_total += hub.queue.scheduled_total() + spoke.queue.scheduled_total();
    system.par_clamped_past += hub.queue.clamped_past() + spoke.queue.clamped_past();
    system.par_sched.absorb(&hub.queue.sched_stats());
    system.par_sched.absorb(&spoke.queue.sched_stats());
    system.par_now = hub.queue.now().time.max(spoke.queue.now().time);
    system.completed_at = spoke.completed_at;
    system.result()
}

#[cfg(test)]
mod tests {
    use wg_server::{StabilityMode, WritePolicy};
    use wg_simcore::{Duration, FaultKind, FaultPlan, SimTime};

    use super::super::{ExperimentConfig, FileCopySystem, NetworkKind};

    /// Run `config` serially and partitioned, asserting the table cell, the
    /// counters and the recovery oracle are bit-identical.
    fn assert_parity(config: ExperimentConfig, threads: &[usize]) {
        let mut serial = FileCopySystem::new(config.clone().with_sim_threads(0));
        let want = serial.run();
        for &n in threads {
            let mut par = FileCopySystem::new(config.clone().with_sim_threads(n));
            let got = par.run();
            let ctx = format!("sim_threads = {n}");
            assert_eq!(
                want.client_write_kb_per_sec, got.client_write_kb_per_sec,
                "{ctx}"
            );
            assert_eq!(want.server_cpu_percent, got.server_cpu_percent, "{ctx}");
            assert_eq!(want.disk_kb_per_sec, got.disk_kb_per_sec, "{ctx}");
            assert_eq!(want.disk_trans_per_sec, got.disk_trans_per_sec, "{ctx}");
            assert_eq!(want.elapsed_secs, got.elapsed_secs, "{ctx}");
            assert_eq!(want.mean_batch_size, got.mean_batch_size, "{ctx}");
            assert_eq!(want.retransmissions, got.retransmissions, "{ctx}");
            assert_eq!(want.gave_up, got.gave_up, "{ctx}");
            assert_eq!(want.completed, got.completed, "{ctx}");
            assert_eq!(serial.events_processed(), par.events_processed(), "{ctx}");
            // `scheduled_total` is intentionally not compared: the
            // partitioned executor schedules mailed ops as queue events
            // that the serial loop executes inline.
            assert_eq!(par.clamped_past(), 0, "{ctx}");
            assert_eq!(
                serial.lost_acked_bytes_on_disk(),
                par.lost_acked_bytes_on_disk(),
                "{ctx}"
            );
        }
    }

    #[test]
    fn partitioned_copy_matches_serial() {
        assert_parity(
            ExperimentConfig::new(NetworkKind::Fddi, 4, WritePolicy::Gathering)
                .with_file_size(512 * 1024),
            &[2, 4],
        );
        assert_parity(
            ExperimentConfig::new(NetworkKind::Ethernet, 2, WritePolicy::Standard)
                .with_file_size(256 * 1024),
            &[2],
        );
    }

    #[test]
    fn partitioned_copy_matches_serial_under_faults() {
        // A crash, a battery failure and a loss burst mid-copy: the faulted
        // (possibly incomplete) cell must replay identically, including the
        // elapsed-time fallback for a client that never completes.
        let plan = FaultPlan::new()
            .at(SimTime::from_millis(200), FaultKind::ServerCrash)
            .at(
                SimTime::from_millis(500),
                FaultKind::BatteryFailure {
                    repair_after: Duration::from_millis(300),
                },
            )
            .at(
                SimTime::from_millis(900),
                FaultKind::LossBurst {
                    duration: Duration::from_millis(400),
                    probability: 0.7,
                    segment: None,
                },
            )
            .at(
                SimTime::from_millis(1500),
                FaultKind::DiskDegrade {
                    duration: Duration::from_millis(200),
                    stall: Duration::from_millis(3),
                    retries: 2,
                },
            );
        assert_parity(
            ExperimentConfig::new(NetworkKind::Fddi, 4, WritePolicy::Gathering)
                .with_file_size(512 * 1024)
                .with_fault_plan(plan)
                .with_client_retry(Duration::from_millis(150), 3),
            &[2, 3],
        );
    }

    #[test]
    fn partitioned_copy_matches_serial_with_unstable_cache_and_crash() {
        // The unified-cache write path under the partitioned core: bounded
        // cache armed, WRITE(UNSTABLE) + COMMIT, and a crash mid-writeback
        // that voids the boot verifier.  The whole recovery dance —
        // discarded dirty pages, the COMMIT verifier mismatch, the re-send
        // of voided ranges and the second COMMIT — must replay
        // bit-identically on 2, 4 and 8 cooperating loops.
        let config = ExperimentConfig::new(NetworkKind::Fddi, 4, WritePolicy::Gathering)
            .with_file_size(512 * 1024)
            .with_unified_cache(1024)
            .with_stability(StabilityMode::Unstable)
            .with_fault_plan(FaultPlan::new().at(SimTime::from_millis(50), FaultKind::ServerCrash));
        // The schedule must really exercise the recovery dance on this
        // config, or the parity below proves nothing.
        let mut probe = FileCopySystem::new(config.clone().with_sim_threads(0));
        probe.run();
        assert!(
            probe.server().stats().lost_unstable_bytes > 0,
            "the crash missed the writeback window"
        );
        assert!(
            probe.client().stats().verifier_mismatches > 0,
            "the client never noticed the reboot"
        );
        assert_parity(config, &[2, 4, 8]);
    }
}
