//! The single-client file-copy system (Tables 1–6, Figure 1).

use wg_client::{ClientAction, ClientConfig, ClientInput, FileWriterClient};
use wg_net::medium::Direction;
use wg_net::{Medium, MediumParams, TransmitOutcome};
use wg_nfsproto::StableHow;
use wg_server::{NfsServer, ServerAction, ServerConfig, ServerInput, StabilityMode, WritePolicy};
use wg_simcore::{CalStats, Duration, EventQueue, FaultKind, FaultPlan, SimTime, Trace};

use crate::results::FileCopyResult;

mod par;

/// Which network the experiment runs over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum NetworkKind {
    /// Private 10 Mb/s Ethernet (Tables 1 and 2).
    Ethernet,
    /// Private 100 Mb/s FDDI (Tables 3–6, Figures 1–3).
    Fddi,
}

impl NetworkKind {
    /// The medium calibration for this network.
    pub fn params(self) -> MediumParams {
        match self {
            NetworkKind::Ethernet => MediumParams::ethernet(),
            NetworkKind::Fddi => MediumParams::fddi(),
        }
    }
}

/// Configuration of one file-copy experiment cell.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Network medium.
    pub network: NetworkKind,
    /// Client biod count (the column of the tables).
    pub biods: usize,
    /// Server write policy (Standard vs Gathering is the with/without split of
    /// every table).
    pub policy: WritePolicy,
    /// Prestoserve acceleration on the server.
    pub prestoserve: bool,
    /// Number of server disk spindles (1 or 3).
    pub spindles: usize,
    /// Bytes the client writes (10 MB in the paper).
    pub file_size: u64,
    /// Number of server nfsds (8 in the paper's file-copy experiments).
    pub nfsds: usize,
    /// Server request-path shards (1 = the paper's monolithic dispatch).
    pub shards: usize,
    /// Server CPU cores (1 = the paper's serial CPU).
    pub cores: usize,
    /// Pipelined storage-stack execution (see
    /// [`wg_server::ServerConfig::io_overlap`]).  `false` is the paper's
    /// serial driver.
    pub io_overlap: bool,
    /// Record a Figure-1 style event trace on the server.
    pub trace: bool,
    /// Fault-injection schedule.  Empty (the default) means the fault layer
    /// is completely inert: no events are scheduled and the run is
    /// bit-identical to one built before the layer existed.
    pub fault_plan: FaultPlan,
    /// Override of the client's `(initial_timeout, max_retransmits)` retry
    /// knobs, used by fault tests to force a give-up quickly.  `None` keeps
    /// [`wg_client::ClientConfig::default`].
    pub client_retry: Option<(Duration, u32)>,
    /// Number of cooperating event loops the run executes on (`0` or `1`
    /// keeps the serial loop).  Results are bit-identical either way; see
    /// [`wg_simcore::parallel`].
    pub sim_threads: usize,
    /// Pages of the server's bounded unified buffer cache (`0`, the default,
    /// keeps the paper's unbounded delayed-write pool — every table cell is
    /// byte-identical to a build without the cache).
    pub cache_pages: u64,
    /// Fraction of the unified cache allowed to sit dirty before writers are
    /// throttled (only meaningful with [`ExperimentConfig::cache_pages`] set).
    pub dirty_ratio: f64,
    /// The write-stability regime of the cell: [`StabilityMode::Stable`] is
    /// the paper's world (every WRITE durable before its reply);
    /// [`StabilityMode::Unstable`] issues NFSv3-style `WRITE(UNSTABLE)` from
    /// the client and `COMMIT` at close.
    pub stability: StabilityMode,
}

impl ExperimentConfig {
    /// The paper's default 10 MB copy cell.
    pub fn new(network: NetworkKind, biods: usize, policy: WritePolicy) -> Self {
        ExperimentConfig {
            network,
            biods,
            policy,
            prestoserve: false,
            spindles: 1,
            file_size: 10 * 1024 * 1024,
            nfsds: 8,
            shards: 1,
            cores: 1,
            io_overlap: false,
            trace: false,
            fault_plan: FaultPlan::new(),
            client_retry: None,
            sim_threads: 0,
            cache_pages: 0,
            dirty_ratio: 0.5,
            stability: StabilityMode::Stable,
        }
    }

    /// Enable Prestoserve.
    pub fn with_presto(mut self, on: bool) -> Self {
        self.prestoserve = on;
        self
    }

    /// Use a stripe set of `n` disks.
    pub fn with_spindles(mut self, n: usize) -> Self {
        self.spindles = n;
        self
    }

    /// Use a smaller file (keeps unit tests fast).
    pub fn with_file_size(mut self, bytes: u64) -> Self {
        self.file_size = bytes;
        self
    }

    /// Record a server event trace.
    pub fn with_trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Shard the server's request path `n` ways.
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Give the server `n` CPU cores.
    pub fn with_cores(mut self, n: usize) -> Self {
        self.cores = n;
        self
    }

    /// Enable pipelined storage-stack execution on the server.
    pub fn with_io_overlap(mut self, on: bool) -> Self {
        self.io_overlap = on;
        self
    }

    /// Attach a fault-injection schedule to the run.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Override the client's retry knobs (initial retransmit timeout and the
    /// attempt cap after which it gives up).
    pub fn with_client_retry(mut self, initial_timeout: Duration, max_retransmits: u32) -> Self {
        self.client_retry = Some((initial_timeout, max_retransmits));
        self
    }

    /// Run on `n` cooperating event loops (`0` or `1` keeps the serial loop).
    pub fn with_sim_threads(mut self, n: usize) -> Self {
        self.sim_threads = n;
        self
    }

    /// Arm the server's bounded unified buffer cache with `pages` pages
    /// (`0` disarms it and restores the paper's unbounded pool).
    pub fn with_unified_cache(mut self, pages: u64) -> Self {
        self.cache_pages = pages;
        self
    }

    /// Set the dirty-page throttle fraction of the unified cache.
    pub fn with_dirty_ratio(mut self, ratio: f64) -> Self {
        self.dirty_ratio = ratio;
        self
    }

    /// Select the write-stability regime of the cell.
    pub fn with_stability(mut self, mode: StabilityMode) -> Self {
        self.stability = mode;
        self
    }
}

/// Events flowing through the combined system.
enum Ev {
    Client(ClientInput),
    Server(ServerInput),
    /// An injected fault fires (scheduled only when the plan is non-empty).
    Fault(FaultKind),
    /// The NVRAM battery comes back after a `BatteryFailure`.
    BatteryRepair,
}

/// The assembled single-client system.
pub struct FileCopySystem {
    config: ExperimentConfig,
    client: FileWriterClient,
    server: NfsServer,
    medium: Medium,
    queue: EventQueue<Ev>,
    completed_at: Option<SimTime>,
    started_at: SimTime,
    events_processed: u64,
    /// Time of the last event a partitioned run processed; stands in for the
    /// serial queue's clock when a faulted cell never completes.
    par_now: SimTime,
    /// Events scheduled / clamped by the partitioned executor's keyed queues
    /// (the serial queue keeps its own counters).
    par_scheduled_total: u64,
    par_clamped_past: u64,
    /// Scheduler-health counters banked from partitioned runs' queues.
    par_sched: CalStats,
}

impl FileCopySystem {
    /// Build the system: the server exports a fresh filesystem containing the
    /// target file, the client is parameterised by the biod count.
    pub fn new(config: ExperimentConfig) -> Self {
        Self::new_customized(config, |_| {})
    }

    /// Build the system with a final hook over the derived [`ServerConfig`],
    /// used by the ablation harness to vary knobs (procrastination interval,
    /// reply order, mbuf hunter) that the paper discusses but the tables do
    /// not sweep.
    pub fn new_customized(
        config: ExperimentConfig,
        customize: impl FnOnce(&mut ServerConfig),
    ) -> Self {
        let medium_params = config.network.params();
        let mut server_config = ServerConfig {
            policy: config.policy,
            nfsds: config.nfsds,
            ..ServerConfig::standard()
        };
        server_config.storage.prestoserve = config.prestoserve;
        server_config.storage.spindles = config.spindles;
        server_config.procrastination = medium_params.procrastination;
        server_config.shards = config.shards;
        server_config.cores = config.cores;
        server_config.io_overlap = config.io_overlap;
        server_config = server_config
            .with_unified_cache(config.cache_pages)
            .with_dirty_ratio(config.dirty_ratio)
            .with_stability(config.stability);
        customize(&mut server_config);
        let mut server = NfsServer::new(server_config);
        if config.trace {
            server.enable_trace();
        }
        // The target file is created outside the measured window (the paper
        // measures the data transfer of an established copy).
        let root = server.fs().root();
        let ino = server
            .fs_mut()
            .create(root, "copy-target", 0o644, 0)
            .expect("fresh filesystem");
        let handle = server.handle_for_ino(ino).expect("live inode");

        let mut client_config = ClientConfig {
            biods: config.biods,
            file_size: config.file_size,
            stability: match config.stability {
                StabilityMode::Stable => StableHow::FileSync,
                StabilityMode::Unstable => StableHow::Unstable,
            },
            ..ClientConfig::default()
        };
        if let Some((initial_timeout, max_retransmits)) = config.client_retry {
            client_config.initial_timeout = initial_timeout;
            client_config.max_retransmits = max_retransmits;
        }
        let client = FileWriterClient::new(client_config, handle);
        FileCopySystem {
            medium: Medium::new(medium_params),
            queue: EventQueue::new(),
            completed_at: None,
            started_at: SimTime::ZERO,
            events_processed: 0,
            par_now: SimTime::ZERO,
            par_scheduled_total: 0,
            par_clamped_past: 0,
            par_sched: CalStats::default(),
            client,
            server,
            config,
        }
    }

    /// Number of events processed by the most recent [`FileCopySystem::run`].
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Total events ever scheduled, across the serial queue and any
    /// partitioned run's keyed queues.
    pub fn scheduled_total(&self) -> u64 {
        self.queue.scheduled_total() + self.par_scheduled_total
    }

    /// Events scheduled into the simulated past (must stay zero; see
    /// [`EventQueue::clamped_past`]).
    pub fn clamped_past(&self) -> u64 {
        self.queue.clamped_past() + self.par_clamped_past
    }

    /// Scheduler-health counters of the pending-event set: the serial
    /// queue's calendar geometry folded with any partitioned run's queues
    /// (counts add, high-water marks take the maximum).
    pub fn sched_stats(&self) -> CalStats {
        let mut stats = self.queue.sched_stats();
        stats.absorb(&self.par_sched);
        stats
    }

    /// Upper bound on events one copy may process before the run is declared
    /// runaway.  A 10 MB copy needs ~13 k events, so this is four orders of
    /// magnitude of headroom; hitting it means the system is re-scheduling
    /// work without making progress (e.g. a retransmission storm that never
    /// converges), not that the experiment is merely large.
    const MAX_EVENTS: u64 = 50_000_000;

    /// Run the copy to completion and return the table-cell result.
    ///
    /// The loop drains the queue fully: after the client completes, the only
    /// remaining events are bounded housekeeping wake-ups (nfsd-free timers,
    /// gather continuations), and letting them run keeps the server's final
    /// statistics consistent.  Action buffers are allocated once and reused
    /// for every event, so the steady-state loop performs no per-event
    /// allocation.
    pub fn run(&mut self) -> FileCopyResult {
        if self.config.sim_threads >= 2 {
            return par::run_partitioned(self);
        }
        self.run_serial()
    }

    fn run_serial(&mut self) -> FileCopyResult {
        self.events_processed = 0;
        self.queue
            .schedule_at(SimTime::ZERO, Ev::Client(ClientInput::Start));
        // An empty plan schedules nothing: the queue contents — and therefore
        // the whole run — are identical to a build without the fault layer.
        if !self.config.fault_plan.is_empty() {
            let events: Vec<_> = self.config.fault_plan.events().to_vec();
            for event in events {
                self.queue.schedule_at(event.at, Ev::Fault(event.kind));
            }
        }
        let mut client_actions: Vec<ClientAction> = Vec::new();
        let mut server_actions: Vec<ServerAction> = Vec::new();
        while let Some((t, ev)) = self.queue.pop() {
            self.events_processed += 1;
            if self.events_processed >= Self::MAX_EVENTS {
                panic!(
                    "runaway simulation: {} events without draining \
                     (simulated time {t:?}, client done: {}, {} events still queued, \
                     {} scheduled in total)",
                    self.events_processed,
                    self.completed_at.is_some(),
                    self.queue.len(),
                    self.queue.scheduled_total(),
                );
            }
            match ev {
                Ev::Client(input) => {
                    self.client.handle_into(t, input, &mut client_actions);
                    self.apply_client_actions(&mut client_actions);
                }
                Ev::Server(input) => {
                    self.server.handle_into(t, input, &mut server_actions);
                    self.apply_server_actions(&mut server_actions);
                }
                Ev::Fault(kind) => self.apply_fault(t, kind),
                Ev::BatteryRepair => {
                    self.server.set_battery(true, t);
                }
            }
        }
        self.result()
    }

    fn apply_fault(&mut self, t: SimTime, kind: FaultKind) {
        match kind {
            FaultKind::ServerCrash => {
                self.server.crash(t);
            }
            FaultKind::BatteryFailure { repair_after } => {
                self.server.set_battery(false, t);
                self.queue.schedule_at(t + repair_after, Ev::BatteryRepair);
            }
            FaultKind::DiskDegrade {
                duration,
                stall,
                retries,
            } => {
                self.server.inject_disk_fault(t, duration, stall, retries);
            }
            // The single-client system has one network segment; a burst aimed
            // at a specific segment index still lands on it.
            FaultKind::LossBurst {
                duration,
                probability,
                segment: _,
            } => {
                self.medium.inject_loss_window(t, t + duration, probability);
            }
        }
    }

    fn apply_client_actions(&mut self, actions: &mut Vec<ClientAction>) {
        for action in actions.drain(..) {
            match action {
                ClientAction::Send { at, call } => {
                    let size = call.wire_size();
                    let fragments = self.medium.params().fragments_for(size);
                    match self.medium.transmit(at, size, Direction::ToServer) {
                        TransmitOutcome::Delivered { arrives_at } => {
                            self.queue.schedule_at(
                                arrives_at,
                                Ev::Server(ServerInput::Datagram {
                                    client: 0,
                                    call,
                                    wire_size: size,
                                    fragments,
                                }),
                            );
                        }
                        TransmitOutcome::Lost => {}
                    }
                }
                ClientAction::Wakeup { at, token } => {
                    self.queue
                        .schedule_at(at, Ev::Client(ClientInput::Wakeup { token }));
                }
                ClientAction::Completed { at } => {
                    self.completed_at = Some(at);
                }
            }
        }
    }

    fn apply_server_actions(&mut self, actions: &mut Vec<ServerAction>) {
        for action in actions.drain(..) {
            match action {
                ServerAction::Wakeup { at, token } => {
                    self.queue
                        .schedule_at(at, Ev::Server(ServerInput::Wakeup { token }));
                }
                ServerAction::Reply { at, reply, .. } => {
                    let size = reply.wire_size();
                    match self.medium.transmit(at, size, Direction::ToClient) {
                        TransmitOutcome::Delivered { arrives_at } => {
                            self.queue
                                .schedule_at(arrives_at, Ev::Client(ClientInput::Reply(reply)));
                        }
                        TransmitOutcome::Lost => {}
                    }
                }
            }
        }
    }

    fn result(&self) -> FileCopyResult {
        let gave_up = self.client.stats().gave_up;
        // A copy only counts as completed when every byte was acknowledged:
        // a client that abandoned writes after exhausting its retransmits
        // reports a counted failure, never a silent success.
        let completed = self.completed_at.is_some() && gave_up == 0;
        // A drained event queue with the client still unfinished means the
        // simulation lost work (a dropped wake-up, an orphaned write): surface
        // it immediately in debug builds, and flag it in the result so sweeps
        // can't mistake a dead cell for a slow one.  Under an injected fault
        // schedule an incomplete cell is a legitimate outcome (that is what
        // the chaos sweep measures), so the assert only covers fault-free
        // runs.
        debug_assert!(
            completed || !self.config.fault_plan.is_empty(),
            "file copy did not complete: {} bytes acked of {}, {gave_up} writes given up",
            self.client.stats().bytes_acked,
            self.config.file_size
        );
        let completed_at = self
            .completed_at
            .unwrap_or_else(|| self.queue.now().max(self.par_now));
        let elapsed = completed_at.since(self.started_at);
        let elapsed = if elapsed.is_zero() {
            Duration::from_nanos(1)
        } else {
            elapsed
        };
        let device = self.server.device_stats();
        FileCopyResult {
            biods: self.config.biods,
            client_write_kb_per_sec: self.client.stats().write_kb_per_sec(),
            server_cpu_percent: self.server.cpu_utilization_percent(elapsed),
            disk_kb_per_sec: device.kb_per_sec(elapsed),
            disk_trans_per_sec: device.transfers_per_sec(elapsed),
            elapsed_secs: elapsed.as_secs_f64(),
            mean_batch_size: self.server.stats().mean_batch_size(),
            retransmissions: self.client.stats().retransmissions,
            gave_up,
            completed,
        }
    }

    /// Recovery oracle: re-read every byte range the client saw acknowledged
    /// and count the bytes whose content no longer matches the fill pattern
    /// that was written.  Zero for every policy that honours the NFS
    /// stable-storage rule, no matter what the fault plan did; positive only
    /// when an acknowledged write was lost (the
    /// [`wg_server::WritePolicy::DangerousAsync`] failure mode).
    pub fn lost_acked_bytes_on_disk(&self) -> u64 {
        let mut fs = self.server.fs().clone();
        let root = fs.root();
        let ino = fs.lookup(root, "copy-target").expect("target file exists");
        let mut lost = 0u64;
        for &(offset, len) in self.client.acked_writes() {
            let fill = self.client.fill_byte_for(offset);
            let data = fs.read(ino, offset, len).expect("acked range readable");
            lost += data.to_vec().iter().filter(|&&b| b != fill).count() as u64;
        }
        lost
    }

    /// The server's event trace (enable with [`ExperimentConfig::with_trace`]).
    pub fn trace(&self) -> &Trace {
        self.server.trace()
    }

    /// The server, for post-run inspection (data integrity checks, stats).
    pub fn server(&self) -> &NfsServer {
        &self.server
    }

    /// The client, for post-run inspection.
    pub fn client(&self) -> &FileWriterClient {
        &self.client
    }

    /// The experiment configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }
}

/// Run one cell: convenience wrapper used by the benches and examples.
pub fn run_cell(config: ExperimentConfig) -> FileCopyResult {
    FileCopySystem::new(config).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pin the driver event's footprint.  Every schedule moves one `Ev` by
    /// value into the calendar queue and every pop moves it back out, so a
    /// grown variant taxes the whole event loop.  The size is set by the
    /// largest payload (a `ServerInput` carrying an `NfsCall`); box a new
    /// large variant instead of raising this pin.
    #[test]
    fn driver_event_stays_within_its_pinned_footprint() {
        assert!(
            std::mem::size_of::<Ev>() <= 104,
            "Ev grew to {} bytes; box the large variant",
            std::mem::size_of::<Ev>()
        );
    }

    const SMALL: u64 = 1024 * 1024; // 1 MB keeps unit tests quick

    fn run(
        network: NetworkKind,
        biods: usize,
        policy: WritePolicy,
        presto: bool,
    ) -> FileCopyResult {
        run_cell(
            ExperimentConfig::new(network, biods, policy)
                .with_presto(presto)
                .with_file_size(SMALL),
        )
    }

    #[test]
    fn copy_completes_and_data_is_intact() {
        let mut system = FileCopySystem::new(
            ExperimentConfig::new(NetworkKind::Fddi, 4, WritePolicy::Gathering)
                .with_file_size(SMALL),
        );
        let result = system.run();
        assert!(result.client_write_kb_per_sec > 0.0);
        assert!(result.completed);
        assert_eq!(result.retransmissions, 0);
        // Every byte the client acknowledged is present and committed.
        assert_eq!(system.client().stats().bytes_acked, SMALL);
        assert_eq!(system.server().uncommitted_bytes(), 0);
        let mut fs = system.server().fs().clone();
        let root = fs.root();
        let ino = fs.lookup(root, "copy-target").unwrap();
        assert_eq!(fs.getattr(ino).unwrap().size, SMALL);
        // Spot-check the block fill pattern written by the client.
        let block7 = fs.read(ino, 7 * 8192, 8192).unwrap().to_vec();
        assert!(block7.iter().all(|&b| b == 7));
    }

    #[test]
    fn unstable_copy_commits_at_close_and_lands_the_same_file() {
        let mut system = FileCopySystem::new(
            ExperimentConfig::new(NetworkKind::Fddi, 4, WritePolicy::Gathering)
                .with_file_size(SMALL)
                .with_unified_cache(4096)
                .with_stability(StabilityMode::Unstable),
        );
        let result = system.run();
        assert!(result.completed);
        let stats = system.server().stats();
        assert!(stats.unstable_writes > 0, "no WRITE(UNSTABLE) reached disk");
        assert!(stats.commits > 0, "the close never issued a COMMIT");
        assert_eq!(stats.forced_file_sync, 0);
        // COMMIT made everything durable before close(2) returned...
        assert_eq!(system.server().uncommitted_bytes(), 0);
        assert_eq!(system.client().uncommitted_ranges().len(), 0);
        assert_eq!(system.client().stats().verifier_mismatches, 0);
        // ...and the bytes on disk are the bytes the client wrote.
        assert_eq!(system.lost_acked_bytes_on_disk(), 0);
        let mut fs = system.server().fs().clone();
        let root = fs.root();
        let ino = fs.lookup(root, "copy-target").unwrap();
        assert_eq!(fs.getattr(ino).unwrap().size, SMALL);
    }

    #[test]
    fn unstable_copy_is_never_slower_than_file_sync() {
        let run = |stability| {
            FileCopySystem::new(
                ExperimentConfig::new(NetworkKind::Fddi, 4, WritePolicy::Standard)
                    .with_file_size(SMALL)
                    .with_unified_cache(4096)
                    .with_stability(stability),
            )
            .run()
        };
        let stable = run(StabilityMode::Stable);
        let unstable = run(StabilityMode::Unstable);
        assert!(stable.completed && unstable.completed);
        // Acking from the cache and batching durability into one COMMIT must
        // beat per-write synchronous commits on a standard-policy server.
        assert!(
            unstable.client_write_kb_per_sec > stable.client_write_kb_per_sec,
            "unstable {:.0} KB/s vs stable {:.0} KB/s",
            unstable.client_write_kb_per_sec,
            stable.client_write_kb_per_sec
        );
    }

    #[test]
    fn gathering_beats_standard_with_many_biods_on_fddi() {
        let standard = run(NetworkKind::Fddi, 15, WritePolicy::Standard, false);
        let gathering = run(NetworkKind::Fddi, 15, WritePolicy::Gathering, false);
        assert!(
            gathering.client_write_kb_per_sec > standard.client_write_kb_per_sec * 1.8,
            "gathering {:.0} KB/s vs standard {:.0} KB/s",
            gathering.client_write_kb_per_sec,
            standard.client_write_kb_per_sec
        );
        // And it does so with far fewer disk transactions per second relative
        // to the data rate.
        let std_tx_per_kb = standard.disk_trans_per_sec / standard.disk_kb_per_sec;
        let gat_tx_per_kb = gathering.disk_trans_per_sec / gathering.disk_kb_per_sec;
        assert!(gat_tx_per_kb < std_tx_per_kb * 0.6);
    }

    #[test]
    fn gathering_costs_a_little_with_zero_biods() {
        let standard = run(NetworkKind::Ethernet, 0, WritePolicy::Standard, false);
        let gathering = run(NetworkKind::Ethernet, 0, WritePolicy::Gathering, false);
        // §6.10: the single-threaded client loses, but not catastrophically.
        assert!(gathering.client_write_kb_per_sec < standard.client_write_kb_per_sec);
        assert!(
            gathering.client_write_kb_per_sec > standard.client_write_kb_per_sec * 0.6,
            "loss too large: {:.0} vs {:.0}",
            gathering.client_write_kb_per_sec,
            standard.client_write_kb_per_sec
        );
    }

    #[test]
    fn standard_throughput_is_flat_in_biods_without_presto() {
        let few = run(NetworkKind::Fddi, 3, WritePolicy::Standard, false);
        let many = run(NetworkKind::Fddi, 15, WritePolicy::Standard, false);
        // The vnode lock serialises everything; extra biods barely help.
        assert!(many.client_write_kb_per_sec < few.client_write_kb_per_sec * 1.3);
    }

    #[test]
    fn presto_lifts_standard_server_throughput() {
        let plain = run(NetworkKind::Ethernet, 7, WritePolicy::Standard, false);
        let presto = run(NetworkKind::Ethernet, 7, WritePolicy::Standard, true);
        assert!(
            presto.client_write_kb_per_sec > plain.client_write_kb_per_sec * 2.0,
            "presto {:.0} vs plain {:.0}",
            presto.client_write_kb_per_sec,
            plain.client_write_kb_per_sec
        );
    }

    #[test]
    fn presto_gathering_trades_throughput_for_cpu() {
        let without = run(NetworkKind::Ethernet, 7, WritePolicy::Standard, true);
        let with = run(NetworkKind::Ethernet, 7, WritePolicy::Gathering, true);
        // Table 2's shape: some client throughput is given up...
        assert!(with.client_write_kb_per_sec <= without.client_write_kb_per_sec * 1.05);
        // ...but server CPU per byte moved drops.
        let cpu_per_kb_without = without.server_cpu_percent / without.client_write_kb_per_sec;
        let cpu_per_kb_with = with.server_cpu_percent / with.client_write_kb_per_sec;
        assert!(
            cpu_per_kb_with < cpu_per_kb_without,
            "cpu/KB with {cpu_per_kb_with:.5} vs without {cpu_per_kb_without:.5}"
        );
    }

    #[test]
    fn overlapped_stripe_copy_is_never_slower_and_lands_the_same_file() {
        let run = |overlap: bool| {
            let mut system = FileCopySystem::new(
                ExperimentConfig::new(NetworkKind::Fddi, 8, WritePolicy::Gathering)
                    .with_spindles(3)
                    .with_io_overlap(overlap)
                    .with_file_size(SMALL),
            );
            let result = system.run();
            assert!(result.completed);
            let device = system.server().device_stats();
            (result, device.transfers.bytes(), system)
        };
        let (serial, serial_bytes, _s1) = run(false);
        let (overlapped, ov_bytes, system) = run(true);
        // Same bytes reach the platters; the copy never slows down.
        assert_eq!(serial_bytes, ov_bytes);
        assert!(
            overlapped.elapsed_secs <= serial.elapsed_secs * 1.0001,
            "overlap {:.4}s vs serial {:.4}s",
            overlapped.elapsed_secs,
            serial.elapsed_secs
        );
        // And the file is intact.
        let mut fs = system.server().fs().clone();
        let root = fs.root();
        let ino = fs.lookup(root, "copy-target").unwrap();
        assert_eq!(fs.getattr(ino).unwrap().size, SMALL);
        assert_eq!(system.server().uncommitted_bytes(), 0);
    }

    #[test]
    fn trace_records_the_figure1_story() {
        let mut system = FileCopySystem::new(
            ExperimentConfig::new(NetworkKind::Fddi, 4, WritePolicy::Gathering)
                .with_file_size(256 * 1024)
                .with_trace(true),
        );
        system.run();
        let trace = system.trace();
        use wg_simcore::TraceKind;
        assert!(trace.count_of(TraceKind::RequestArrived) >= 32);
        assert!(trace.count_of(TraceKind::ReplySent) >= 32);
        assert!(trace.count_of(TraceKind::Procrastinate) >= 1);
        assert!(trace.count_of(TraceKind::MetadataToDisk) >= 1);
    }
}
