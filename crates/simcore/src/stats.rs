//! Run statistics.
//!
//! The paper's tables report four quantities per configuration: client write
//! speed (KB/s), server CPU utilisation (%), server disk throughput (KB/s) and
//! server disk transactions per second.  Figures 2 and 3 additionally report
//! average NFS response latency.  The types in this module collect exactly
//! those kinds of measurements:
//!
//! * [`Counter`] — monotone event/byte counters with rate helpers,
//! * [`Utilization`] — time-weighted busy-fraction tracking (CPU, disk, link),
//! * [`LatencyStat`] — mean / min / max / percentile latency accumulation.

use crate::time::{Duration, SimTime};

/// A monotone counter of events and bytes, with rate helpers.
#[derive(Clone, Debug, Default, serde::Serialize)]
pub struct Counter {
    events: u64,
    bytes: u64,
}

impl Counter {
    /// Create a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a counter directly from totals already accumulated elsewhere.
    ///
    /// Aggregators that combine many counters (the stripe driver merging its
    /// member disks' statistics) use this to stay O(1) per merge instead of
    /// replaying one synthetic event per recorded transfer.
    pub fn from_totals(events: u64, bytes: u64) -> Self {
        Counter { events, bytes }
    }

    /// Record one event carrying `bytes` bytes.
    pub fn record(&mut self, bytes: u64) {
        self.events += 1;
        self.bytes += bytes;
    }

    /// Record one event with no byte payload.
    pub fn tick(&mut self) {
        self.events += 1;
    }

    /// Number of recorded events.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Events per second over an elapsed span (0 if the span is zero).
    pub fn events_per_sec(&self, elapsed: Duration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.events as f64 / secs
        }
    }

    /// Kilobytes (1024 bytes) per second over an elapsed span.
    pub fn kb_per_sec(&self, elapsed: Duration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / 1024.0 / secs
        }
    }
}

/// Time-weighted utilisation of a single resource (CPU, disk arm, link).
///
/// Callers mark busy intervals with [`Utilization::add_busy`]; utilisation is
/// busy time divided by observed wall-clock span.
#[derive(Clone, Debug, Default, serde::Serialize)]
pub struct Utilization {
    busy: Duration,
}

impl Utilization {
    /// Create a zeroed tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a busy interval of the given length.
    pub fn add_busy(&mut self, span: Duration) {
        self.busy += span;
    }

    /// Total accumulated busy time.
    pub fn busy_time(&self) -> Duration {
        self.busy
    }

    /// Busy fraction in `[0, 1]` over the observed span (0 if span is zero).
    /// Values above 1 are clamped; they can only arise from caller bugs where
    /// overlapping busy intervals are reported for a serial resource.
    pub fn fraction(&self, observed: Duration) -> f64 {
        let secs = observed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        (self.busy.as_secs_f64() / secs).min(1.0)
    }

    /// Busy percentage in `[0, 100]` over the observed span.
    pub fn percent(&self, observed: Duration) -> f64 {
        self.fraction(observed) * 100.0
    }
}

/// Accumulates request latencies and reports summary statistics.
///
/// Samples are stored so exact percentiles can be computed; runs in this
/// repository are small enough (at most a few hundred thousand operations) that
/// storing raw samples is simpler and more accurate than a histogram sketch.
#[derive(Clone, Debug, Default, serde::Serialize)]
pub struct LatencyStat {
    samples: Vec<Duration>,
    sum: Duration,
}

impl LatencyStat {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the latency of one completed operation.
    pub fn record(&mut self, latency: Duration) {
        self.sum += latency;
        self.samples.push(latency);
    }

    /// Record the latency of an operation given its start time and completion
    /// time.
    pub fn record_span(&mut self, start: SimTime, end: SimTime) {
        self.record(end.since(start));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean latency (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum.as_nanos() / self.samples.len() as u64)
    }

    /// Minimum latency (zero when empty).
    pub fn min(&self) -> Duration {
        self.samples.iter().copied().min().unwrap_or(Duration::ZERO)
    }

    /// Maximum latency (zero when empty).
    pub fn max(&self) -> Duration {
        self.samples.iter().copied().max().unwrap_or(Duration::ZERO)
    }

    /// The `p`-th percentile (0 ≤ p ≤ 100) using nearest-rank on the sorted
    /// sample set.  Returns zero when empty.
    pub fn percentile(&self, p: f64) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &LatencyStat) {
        self.sum += other.sum;
        self.samples.extend_from_slice(&other.samples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_from_totals_matches_replayed_events() {
        let mut replayed = Counter::new();
        replayed.record(1000);
        replayed.record(2000);
        replayed.tick();
        let direct = Counter::from_totals(3, 3000);
        assert_eq!(direct.events(), replayed.events());
        assert_eq!(direct.bytes(), replayed.bytes());
        let empty = Counter::from_totals(0, 0);
        assert_eq!(empty.events(), 0);
        assert_eq!(empty.bytes(), 0);
    }

    #[test]
    fn counter_rates() {
        let mut c = Counter::new();
        for _ in 0..10 {
            c.record(1024);
        }
        c.tick();
        assert_eq!(c.events(), 11);
        assert_eq!(c.bytes(), 10 * 1024);
        let elapsed = Duration::from_secs(2);
        assert!((c.kb_per_sec(elapsed) - 5.0).abs() < 1e-9);
        assert!((c.events_per_sec(elapsed) - 5.5).abs() < 1e-9);
        assert_eq!(c.kb_per_sec(Duration::ZERO), 0.0);
    }

    #[test]
    fn utilization_fraction() {
        let mut u = Utilization::new();
        u.add_busy(Duration::from_millis(250));
        u.add_busy(Duration::from_millis(250));
        assert!((u.fraction(Duration::from_secs(1)) - 0.5).abs() < 1e-9);
        assert!((u.percent(Duration::from_secs(1)) - 50.0).abs() < 1e-9);
        assert_eq!(u.fraction(Duration::ZERO), 0.0);
        // Over-reporting clamps to 1.
        u.add_busy(Duration::from_secs(10));
        assert_eq!(u.fraction(Duration::from_secs(1)), 1.0);
    }

    #[test]
    fn latency_summary() {
        let mut l = LatencyStat::new();
        assert!(l.is_empty());
        assert_eq!(l.mean(), Duration::ZERO);
        assert_eq!(l.percentile(99.0), Duration::ZERO);
        for ms in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            l.record(Duration::from_millis(ms));
        }
        assert_eq!(l.count(), 10);
        assert_eq!(l.min(), Duration::from_millis(1));
        assert_eq!(l.max(), Duration::from_millis(10));
        assert_eq!(l.mean(), Duration::from_nanos(5_500_000));
        assert_eq!(l.percentile(0.0), Duration::from_millis(1));
        assert_eq!(l.percentile(100.0), Duration::from_millis(10));
        assert_eq!(l.percentile(50.0), Duration::from_millis(6));
    }

    #[test]
    fn latency_record_span_and_merge() {
        let mut a = LatencyStat::new();
        a.record_span(SimTime::from_millis(1), SimTime::from_millis(4));
        let mut b = LatencyStat::new();
        b.record(Duration::from_millis(7));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Duration::from_millis(7));
        assert_eq!(a.mean(), Duration::from_millis(5));
    }
}
