//! The future-event list.
//!
//! [`EventQueue`] is a priority queue of `(SimTime, E)` pairs ordered by time,
//! with ties broken by insertion order.  The tie-break matters: the whole
//! reproduction is calibrated on deterministic runs, and two events scheduled
//! for the same nanosecond (for example a reply transmission and a disk
//! completion) must always be delivered in the same order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{Duration, SimTime};

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// Events are popped in non-decreasing time order; events scheduled for the
/// same instant are popped in the order they were scheduled (FIFO), which makes
/// runs reproducible regardless of heap internals.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
    clamped_past: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
            clamped_past: 0,
        }
    }

    /// The current simulated time: the timestamp of the most recently popped
    /// event (or zero before any event has been popped).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at the absolute instant `at`.
    ///
    /// Scheduling in the past is a logic error in the caller; the event is
    /// clamped to `now` so time never goes backwards, and the clamp is visible
    /// in debug builds via a debug assertion.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        if at < self.now {
            self.clamped_past += 1;
        }
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedule `event` after a delay relative to the current time.
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Remove and return the earliest event, advancing the clock to its
    /// timestamp.  Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Peek at the timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for run statistics / debugging).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Number of events that were scheduled in the past and silently clamped
    /// to `now`.  Always zero in a healthy model: release builds skip the
    /// debug assertion in [`EventQueue::schedule_at`], so sweeps assert this
    /// counter instead (the same pattern as `evicted_in_progress`).
    pub fn clamped_past(&self) -> u64 {
        self.clamped_past
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(5), "c");
        q.schedule_at(SimTime::from_millis(1), "a");
        q.schedule_at(SimTime::from_millis(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule_at(SimTime::from_millis(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(2), ());
        q.schedule_in(Duration::from_millis(10), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop().unwrap();
        assert_eq!(q.now(), SimTime::from_millis(2));
        q.pop().unwrap();
        assert_eq!(q.now(), SimTime::from_millis(10));
        assert!(q.pop().is_none());
        assert_eq!(q.now(), SimTime::from_millis(10));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(4), 0u8);
        q.pop().unwrap();
        q.schedule_in(Duration::from_millis(6), 1u8);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        assert_eq!(t, SimTime::from_millis(10));
    }

    #[test]
    fn counts_are_tracked() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(SimTime::from_millis(1), ());
        q.schedule_at(SimTime::from_millis(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }
}
