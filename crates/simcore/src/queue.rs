//! The future-event list.
//!
//! [`EventQueue`] is a priority queue of `(SimTime, E)` pairs ordered by time,
//! with ties broken by insertion order.  The tie-break matters: the whole
//! reproduction is calibrated on deterministic runs, and two events scheduled
//! for the same nanosecond (for example a reply transmission and a disk
//! completion) must always be delivered in the same order.
//!
//! The pending set itself is an adaptive calendar queue ([`crate::calq`]),
//! which replaced the original `BinaryHeap` once the scheduler became the
//! hot path — amortised O(1) schedule and pop instead of `O(log n)` sifts
//! of full-width entries.  The pop order is bit-identical to the heap's
//! (the differential fuzz suite in `calq` pins it against the retained
//! heap oracle), so the swap is invisible to every golden table.

use crate::calq::{CalKey, CalStats, CalendarQueue};
use crate::time::{Duration, SimTime};

/// The serial scheduling key: firing time, then insertion order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct SKey(SimTime, u64);

impl CalKey for SKey {
    fn time_ns(&self) -> u64 {
        self.0.as_nanos()
    }
}

/// A deterministic future-event list.
///
/// Events are popped in non-decreasing time order; events scheduled for the
/// same instant are popped in the order they were scheduled (FIFO), which makes
/// runs reproducible regardless of the pending set's internal geometry.
pub struct EventQueue<E> {
    cal: CalendarQueue<SKey, E>,
    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
    clamped_past: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            cal: CalendarQueue::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
            clamped_past: 0,
        }
    }

    /// The current simulated time: the timestamp of the most recently popped
    /// event (or zero before any event has been popped).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at the absolute instant `at`.
    ///
    /// Scheduling in the past is a logic error in the caller; the event is
    /// clamped to `now` so time never goes backwards, and the clamp is visible
    /// in debug builds via a debug assertion.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        if at < self.now {
            self.clamped_past += 1;
        }
        let at = at.max(self.now);
        // Tie-break invariant: `seq` is strictly monotone over the queue's
        // lifetime — same-instant events pop in schedule order *because*
        // later schedules mint larger sequence numbers.  A u64 cannot wrap
        // in practice (5.8e11 years at a billion events per second), but a
        // future "reset the counter" refactor would silently reorder ties,
        // so the mint is asserted monotone in debug builds.
        let seq = self.next_seq;
        self.next_seq = seq.wrapping_add(1);
        debug_assert!(self.next_seq > seq, "event sequence counter wrapped");
        self.scheduled_total += 1;
        self.cal.schedule(SKey(at, seq), event);
    }

    /// Schedule `event` after a delay relative to the current time.
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Remove and return the earliest event, advancing the clock to its
    /// timestamp.  Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (SKey(at, _), event) = self.cal.pop()?;
        debug_assert!(at >= self.now);
        self.now = at;
        Some((at, event))
    }

    /// Peek at the timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.cal.peek_key().map(|SKey(at, _)| at)
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.cal.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.cal.is_empty()
    }

    /// Total number of events ever scheduled (for run statistics / debugging).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Number of events that were scheduled in the past and silently clamped
    /// to `now`.  Always zero in a healthy model: release builds skip the
    /// debug assertion in [`EventQueue::schedule_at`], so sweeps assert this
    /// counter instead (the same pattern as `evicted_in_progress`).
    pub fn clamped_past(&self) -> u64 {
        self.clamped_past
    }

    /// The pending set's scheduler-health counters (bucket count, resizes,
    /// depth high-water, direct-search fallbacks).
    pub fn sched_stats(&self) -> CalStats {
        self.cal.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calq::heap_oracle::HeapQueue;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(5), "c");
        q.schedule_at(SimTime::from_millis(1), "a");
        q.schedule_at(SimTime::from_millis(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule_at(SimTime::from_millis(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(2), ());
        q.schedule_in(Duration::from_millis(10), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop().unwrap();
        assert_eq!(q.now(), SimTime::from_millis(2));
        q.pop().unwrap();
        assert_eq!(q.now(), SimTime::from_millis(10));
        assert!(q.pop().is_none());
        assert_eq!(q.now(), SimTime::from_millis(10));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(4), 0u8);
        q.pop().unwrap();
        q.schedule_in(Duration::from_millis(6), 1u8);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        assert_eq!(t, SimTime::from_millis(10));
    }

    #[test]
    fn counts_are_tracked() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(SimTime::from_millis(1), ());
        q.schedule_at(SimTime::from_millis(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn differential_fuzz_matches_the_heap_oracle() {
        // The full EventQueue surface (clock advance, relative schedules,
        // peeks between pops) against the retained BinaryHeap oracle keyed
        // exactly like the old implementation.
        for seed in 1..=10u64 {
            let mut rng = crate::calq::tests::Rng::new(seed * 0xA24B_1DE5);
            let mut q = EventQueue::new();
            let mut oracle: HeapQueue<(SimTime, u64), u64> = HeapQueue::new();
            let mut seq = 0u64;
            for _ in 0..4_000 {
                match rng.below(10) {
                    0..=5 => {
                        // Schedule at or after `now` (a past-time schedule
                        // would trip the debug assertion by design; its
                        // post-clamp shape is `at == now`, exercised here).
                        let at = match rng.below(8) {
                            0 => q.now(),
                            1..=5 => q.now() + Duration::from_nanos(rng.below(1 << 18)),
                            _ => q.now() + Duration::from_nanos(rng.below(1 << 34)),
                        };
                        q.schedule_at(at, seq);
                        oracle.schedule((at, seq), seq);
                        seq += 1;
                    }
                    6 => {
                        assert_eq!(q.peek_time(), oracle.peek_key().map(|(t, _)| *t));
                    }
                    _ => {
                        let got = q.pop();
                        let want = oracle.pop().map(|((t, _), e)| (t, e));
                        assert_eq!(got, want, "seed {seed} diverged");
                    }
                }
            }
            while let Some(got) = q.pop() {
                assert_eq!(Some(got), oracle.pop().map(|((t, _), e)| (t, e)));
            }
            assert_eq!(oracle.len(), 0);
        }
    }
}
