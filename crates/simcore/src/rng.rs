//! Deterministic pseudo-random numbers for the simulation.
//!
//! The reproduction must be bit-for-bit repeatable across runs and platforms,
//! so all stochastic behaviour (SFS operation mix draws, Poisson inter-arrival
//! times, packet-loss injection, file selection) goes through [`SimRng`], a
//! small xoshiro256**-based generator seeded explicitly by the experiment
//! harness.

/// A deterministic pseudo-random number generator (xoshiro256**).
///
/// The generator is seeded from a single `u64` via splitmix64, which is the
/// construction recommended by the xoshiro authors for expanding small seeds.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits -> [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniformly distributed integer in `[0, bound)`. `bound` must be > 0.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        // Lemire's multiply-shift rejection-free mapping is fine here; the tiny
        // modulo bias of a plain multiply-high is acceptable for workload
        // generation, but we keep it unbiased with widening multiply + retry.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }

    /// An exponentially distributed value with the given mean.
    ///
    /// Used for Poisson arrival processes in the SFS-style workload generator.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean >= 0.0, "negative mean");
        if mean == 0.0 {
            return 0.0;
        }
        let u = 1.0 - self.next_f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Pick an index according to a table of non-negative weights.
    ///
    /// Panics if the weights are empty or all zero.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "pick_weighted: weights sum to zero");
        let mut x = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

impl SimRng {
    /// Fill `dest` with pseudo-random bytes (used by the randomized test
    /// drivers that replaced the external property-testing dependency).
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from(1234);
        let mut b = SimRng::seed_from(1234);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 5);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::seed_from(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SimRng::seed_from(9);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..1000 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::seed_from(11);
        let n = 50_000;
        let mean_target = 4.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean_target)).sum();
        let mean = sum / n as f64;
        assert!((mean - mean_target).abs() < 0.15, "mean {mean}");
        assert_eq!(r.exponential(0.0), 0.0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(13);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn pick_weighted_follows_weights() {
        let mut r = SimRng::seed_from(17);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[r.pick_weighted(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((2.6..3.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn rng_core_fill_bytes_covers_remainder() {
        let mut r = SimRng::seed_from(23);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
