//! Deterministic fault injection plans.
//!
//! A [`FaultPlan`] is a replayable schedule of fault events that a workload
//! orchestrator delivers to its components as first-class simulation inputs:
//! server crashes (volatile state lost, NVRAM survives and is replayed during
//! a boot-recovery window), NVRAM battery failures (the accelerator degrades
//! to write-through until repaired), transient disk degradation (stalls with
//! bounded retry in the I/O plan executor) and packet-loss bursts or outright
//! partitions on network segments.
//!
//! Plans are either built explicitly from a schedule
//! ([`FaultPlan::at`], [`FaultPlan::crash_every`]) or drawn from a seeded
//! probability process ([`FaultPlan::seeded_crashes`]); both forms are plain
//! data, so the same plan replays identically run after run.  An empty plan
//! schedules nothing at all — a system handed `FaultPlan::default()` is
//! bit-identical to one with no plan wired in, which is what keeps every
//! fault knob default-off.

use crate::rng::SimRng;
use crate::time::{Duration, SimTime};

/// One kind of injected fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The server loses all volatile state (socket buffers, duplicate request
    /// cache, in-flight gathers, nfsd state) and reboots.  Battery-backed
    /// NVRAM survives and is replayed to disk during the recovery window;
    /// traffic arriving before recovery completes is dropped.
    ServerCrash,
    /// The NVRAM battery fails: the accelerator drains what it holds and
    /// degrades to write-through until the battery is repaired
    /// `repair_after` later.
    BatteryFailure {
        /// How long after the failure the battery is repaired and the
        /// accelerator re-arms.
        repair_after: Duration,
    },
    /// The disk subsystem degrades for `duration`: every transfer submitted
    /// inside the window first fails `retries` times, each attempt stalling
    /// the request by `stall` before the final attempt succeeds.
    DiskDegrade {
        /// How long the degradation window lasts.
        duration: Duration,
        /// Extra latency each failed attempt costs.
        stall: Duration,
        /// Number of failed attempts before the transfer goes through.
        retries: u32,
    },
    /// A packet-loss burst on a network segment: for `duration`, datagrams
    /// are additionally dropped with `probability` (a probability of 1.0 or
    /// more is a clean partition — nothing gets through).
    LossBurst {
        /// How long the burst lasts.
        duration: Duration,
        /// Per-datagram drop probability inside the window.
        probability: f64,
        /// Which LAN segment the burst hits (`None` = every segment).
        segment: Option<usize>,
    },
}

/// One scheduled fault: a kind and the instant it fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A replayable schedule of fault events, ordered by firing time (ties keep
/// insertion order, matching the event queue's determinism rule).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan: injects nothing and leaves runs bit-identical to
    /// plan-free ones.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// `true` if the plan schedules no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The scheduled events, ordered by firing time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Add one fault at an explicit instant (builder style).
    pub fn at(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        // Stable sort: same-instant events keep their insertion order.
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// Crash the server every `interval` until `horizon` (the first crash is
    /// at `interval`, not at time zero).
    pub fn crash_every(interval: Duration, horizon: Duration) -> Self {
        assert!(!interval.is_zero(), "crash_every needs a non-zero interval");
        let mut plan = FaultPlan::new();
        let mut t = SimTime::ZERO + interval;
        while t <= SimTime::ZERO + horizon {
            plan = plan.at(t, FaultKind::ServerCrash);
            t += interval;
        }
        plan
    }

    /// A seeded Poisson crash process: crash instants drawn with
    /// exponentially distributed gaps of the given mean, up to `horizon`.
    /// The same seed always yields the same plan.
    pub fn seeded_crashes(seed: u64, mean_interval: Duration, horizon: Duration) -> Self {
        let mut rng = SimRng::seed_from(seed);
        let mut plan = FaultPlan::new();
        let mut t = SimTime::ZERO;
        loop {
            let gap = Duration::from_secs_f64(rng.exponential(mean_interval.as_secs_f64()));
            // A zero gap would schedule two crashes at one instant; nudge.
            t += gap.max(Duration::from_nanos(1));
            if t > SimTime::ZERO + horizon {
                return plan;
            }
            plan = plan.at(t, FaultKind::ServerCrash);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_default_and_inert() {
        assert!(FaultPlan::new().is_empty());
        assert_eq!(FaultPlan::new(), FaultPlan::default());
        assert_eq!(FaultPlan::new().len(), 0);
        assert!(FaultPlan::new().events().is_empty());
    }

    #[test]
    fn builder_keeps_events_time_ordered() {
        let plan = FaultPlan::new()
            .at(SimTime::from_secs(9), FaultKind::ServerCrash)
            .at(
                SimTime::from_secs(3),
                FaultKind::BatteryFailure {
                    repair_after: Duration::from_secs(1),
                },
            )
            .at(
                SimTime::from_secs(6),
                FaultKind::LossBurst {
                    duration: Duration::from_secs(1),
                    probability: 0.5,
                    segment: None,
                },
            );
        let times: Vec<u64> = plan.events().iter().map(|e| e.at.as_nanos()).collect();
        assert_eq!(
            times,
            vec![
                SimTime::from_secs(3).as_nanos(),
                SimTime::from_secs(6).as_nanos(),
                SimTime::from_secs(9).as_nanos()
            ]
        );
    }

    #[test]
    fn crash_every_covers_the_horizon() {
        let plan = FaultPlan::crash_every(Duration::from_secs(30), Duration::from_secs(100));
        assert_eq!(plan.len(), 3); // 30s, 60s, 90s
        assert!(plan
            .events()
            .iter()
            .all(|e| e.kind == FaultKind::ServerCrash));
        assert_eq!(plan.events()[0].at, SimTime::from_secs(30));
    }

    #[test]
    fn seeded_crashes_replay_identically() {
        let a = FaultPlan::seeded_crashes(42, Duration::from_secs(10), Duration::from_secs(120));
        let b = FaultPlan::seeded_crashes(42, Duration::from_secs(10), Duration::from_secs(120));
        assert_eq!(a, b);
        assert!(!a.is_empty(), "a 12x-mean horizon should draw some crashes");
        let c = FaultPlan::seeded_crashes(43, Duration::from_secs(10), Duration::from_secs(120));
        assert_ne!(a, c, "different seeds should draw different schedules");
        // Events are in firing order.
        assert!(a.events().windows(2).all(|w| w[0].at <= w[1].at));
    }
}
