//! Shared processor resources.
//!
//! The paper's tables report *server CPU utilisation*; the gathering result on
//! Prestoserve configurations (Tables 2, 4, 6) is a CPU-efficiency result, so
//! the CPU must be modelled as a real contended resource rather than a free
//! cost annotation.
//!
//! [`Cpu`] is a non-preemptive serial resource: a caller that wants `cost`
//! seconds of processing starting no earlier than `ready` gets the interval
//! `[max(ready, busy_until), max(ready, busy_until) + cost)`, and the busy time
//! is accumulated for utilisation reporting.  This matches how nfsd processing
//! steps occupy a 1993-era single-CPU server.
//!
//! [`MultiCpu`] generalises the same contract to N cores: each processing step
//! runs to completion on whichever core can start it earliest, and utilisation
//! is reported as aggregate busy time over `cores × observed`.  A one-core
//! [`MultiCpu`] performs exactly the arithmetic of [`Cpu`], so single-CPU
//! configurations are bit-identical whichever type models them.

use crate::stats::Utilization;
use crate::time::{Duration, SimTime};

/// A serially shared processor with busy-time accounting.
#[derive(Clone, Debug)]
pub struct Cpu {
    busy_until: SimTime,
    util: Utilization,
    /// Processing costs are divided by this factor; `1.0` models a single
    /// processor identical to the cost-table reference machine.
    speed_factor: f64,
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Cpu {
    /// A unit-speed processor.
    pub fn new() -> Self {
        Cpu {
            busy_until: SimTime::ZERO,
            util: Utilization::new(),
            speed_factor: 1.0,
        }
    }

    /// A processor `factor`× faster than the reference cost table.
    ///
    /// Panics if `factor` is not strictly positive and finite.
    pub fn with_speed(factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "invalid CPU speed factor"
        );
        Cpu {
            busy_until: SimTime::ZERO,
            util: Utilization::new(),
            speed_factor: factor,
        }
    }

    /// Run a processing step of length `cost` (at reference speed) that cannot
    /// begin before `ready`.  Returns the completion time.
    pub fn run(&mut self, ready: SimTime, cost: Duration) -> SimTime {
        let scaled = Duration::from_secs_f64(cost.as_secs_f64() / self.speed_factor);
        let start = ready.max(self.busy_until);
        let end = start + scaled;
        self.busy_until = end;
        self.util.add_busy(scaled);
        end
    }

    /// Account CPU work without serialising on the processor (used for costs
    /// that overlap with other work in reality, such as DMA completion
    /// handling spread across many devices).  Returns `ready + cost` scaled.
    pub fn run_overlapped(&mut self, ready: SimTime, cost: Duration) -> SimTime {
        let scaled = Duration::from_secs_f64(cost.as_secs_f64() / self.speed_factor);
        self.util.add_busy(scaled);
        ready + scaled
    }

    /// The earliest time at which a new processing step could start.
    pub fn free_at(&self) -> SimTime {
        self.busy_until
    }

    /// Total accumulated busy time.
    pub fn busy_time(&self) -> Duration {
        self.util.busy_time()
    }

    /// Utilisation percentage over an observed span.
    pub fn utilization_percent(&self, observed: Duration) -> f64 {
        self.util.percent(observed)
    }
}

/// A pool of identical cores with aggregate busy-time accounting.
///
/// Each processing step is non-preemptive and runs on the core that can start
/// it earliest (lowest index on ties, so runs stay deterministic).  With one
/// core the arithmetic — start time, completion time, accumulated busy time,
/// utilisation — is bit-identical to [`Cpu`], which is what lets the sharded
/// server keep the paper's single-CPU numbers unchanged at `cores = 1`.
#[derive(Clone, Debug)]
pub struct MultiCpu {
    /// Per-core `busy_until` times.
    cores: Vec<SimTime>,
    util: Utilization,
    speed_factor: f64,
}

impl MultiCpu {
    /// A pool of `cores` unit-speed cores (at least one).
    pub fn new(cores: usize) -> Self {
        Self::with_speed(cores, 1.0)
    }

    /// A pool of `cores` cores, each `factor`× faster than the reference cost
    /// table.
    ///
    /// Panics if `factor` is not strictly positive and finite.
    pub fn with_speed(cores: usize, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "invalid CPU speed factor"
        );
        MultiCpu {
            cores: vec![SimTime::ZERO; cores.max(1)],
            util: Utilization::new(),
            speed_factor: factor,
        }
    }

    /// Number of cores in the pool.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Run a processing step of length `cost` (at reference speed) that cannot
    /// begin before `ready`, on the core that can start it earliest.  Returns
    /// the completion time.
    pub fn run(&mut self, ready: SimTime, cost: Duration) -> SimTime {
        let scaled = Duration::from_secs_f64(cost.as_secs_f64() / self.speed_factor);
        let idx = self
            .cores
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, _)| i)
            .expect("at least one core");
        let start = ready.max(self.cores[idx]);
        let end = start + scaled;
        self.cores[idx] = end;
        self.util.add_busy(scaled);
        end
    }

    /// Account CPU work without serialising on any core (see
    /// [`Cpu::run_overlapped`]).  Returns `ready + cost` scaled.
    pub fn run_overlapped(&mut self, ready: SimTime, cost: Duration) -> SimTime {
        let scaled = Duration::from_secs_f64(cost.as_secs_f64() / self.speed_factor);
        self.util.add_busy(scaled);
        ready + scaled
    }

    /// The earliest time at which a new processing step could start on some
    /// core.
    pub fn free_at(&self) -> SimTime {
        self.cores.iter().copied().min().expect("at least one core")
    }

    /// Total accumulated busy time across all cores.
    pub fn busy_time(&self) -> Duration {
        self.util.busy_time()
    }

    /// Aggregate utilisation percentage over an observed span: busy time
    /// divided by `cores × observed`, so a fully loaded 4-core pool reads
    /// 100 %, not 400 %.
    pub fn utilization_percent(&self, observed: Duration) -> f64 {
        self.util
            .percent(observed.saturating_mul(self.cores.len() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialises_back_to_back_work() {
        let mut cpu = Cpu::new();
        let t1 = cpu.run(SimTime::ZERO, Duration::from_millis(2));
        assert_eq!(t1, SimTime::from_millis(2));
        // Second request arrives at 1 ms but must wait until 2 ms.
        let t2 = cpu.run(SimTime::from_millis(1), Duration::from_millis(3));
        assert_eq!(t2, SimTime::from_millis(5));
        assert_eq!(cpu.free_at(), SimTime::from_millis(5));
        assert_eq!(cpu.busy_time(), Duration::from_millis(5));
    }

    #[test]
    fn idle_gaps_do_not_count_as_busy() {
        let mut cpu = Cpu::new();
        cpu.run(SimTime::ZERO, Duration::from_millis(1));
        cpu.run(SimTime::from_millis(9), Duration::from_millis(1));
        assert_eq!(cpu.busy_time(), Duration::from_millis(2));
        assert!((cpu.utilization_percent(Duration::from_millis(10)) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn speed_factor_scales_cost() {
        let mut fast = Cpu::with_speed(2.0);
        let end = fast.run(SimTime::ZERO, Duration::from_millis(4));
        assert_eq!(end, SimTime::from_millis(2));
        assert_eq!(fast.busy_time(), Duration::from_millis(2));
    }

    #[test]
    fn overlapped_work_does_not_push_busy_until() {
        let mut cpu = Cpu::new();
        let end = cpu.run_overlapped(SimTime::from_millis(5), Duration::from_millis(1));
        assert_eq!(end, SimTime::from_millis(6));
        assert_eq!(cpu.free_at(), SimTime::ZERO);
        assert_eq!(cpu.busy_time(), Duration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "invalid CPU speed factor")]
    fn zero_speed_panics() {
        let _ = Cpu::with_speed(0.0);
    }

    #[test]
    fn one_core_multicpu_matches_cpu_exactly() {
        let mut serial = Cpu::with_speed(1.3);
        let mut multi = MultiCpu::with_speed(1, 1.3);
        // An irregular schedule: arrivals both before and after the busy edge.
        let steps = [
            (0u64, 1700u64),
            (500, 2300),
            (9000, 400),
            (9100, 800),
            (9100, 50),
        ];
        for (ready_us, cost_us) in steps {
            let a = serial.run(
                SimTime::from_micros(ready_us),
                Duration::from_micros(cost_us),
            );
            let b = multi.run(
                SimTime::from_micros(ready_us),
                Duration::from_micros(cost_us),
            );
            assert_eq!(a, b);
        }
        assert_eq!(serial.free_at(), multi.free_at());
        assert_eq!(serial.busy_time(), multi.busy_time());
        let span = Duration::from_millis(20);
        assert_eq!(
            serial.utilization_percent(span).to_bits(),
            multi.utilization_percent(span).to_bits()
        );
    }

    #[test]
    fn extra_cores_run_steps_in_parallel() {
        let mut multi = MultiCpu::new(2);
        let t1 = multi.run(SimTime::ZERO, Duration::from_millis(4));
        let t2 = multi.run(SimTime::ZERO, Duration::from_millis(4));
        // Both steps start immediately on distinct cores.
        assert_eq!(t1, SimTime::from_millis(4));
        assert_eq!(t2, SimTime::from_millis(4));
        // A third step waits for the earliest core.
        let t3 = multi.run(SimTime::ZERO, Duration::from_millis(1));
        assert_eq!(t3, SimTime::from_millis(5));
        assert_eq!(multi.busy_time(), Duration::from_millis(9));
        assert_eq!(multi.cores(), 2);
    }

    #[test]
    fn multicore_utilisation_is_aggregate() {
        let mut multi = MultiCpu::new(4);
        // One core busy for the whole 10 ms span: 25 % of the pool.
        multi.run(SimTime::ZERO, Duration::from_millis(10));
        let pct = multi.utilization_percent(Duration::from_millis(10));
        assert!((pct - 25.0).abs() < 1e-9, "pct {pct}");
    }

    #[test]
    fn zero_cores_is_clamped_to_one() {
        let mut multi = MultiCpu::new(0);
        assert_eq!(multi.cores(), 1);
        let t = multi.run(SimTime::ZERO, Duration::from_millis(1));
        assert_eq!(t, SimTime::from_millis(1));
    }
}
