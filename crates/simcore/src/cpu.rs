//! A single shared processor resource.
//!
//! The paper's tables report *server CPU utilisation*; the gathering result on
//! Prestoserve configurations (Tables 2, 4, 6) is a CPU-efficiency result, so
//! the CPU must be modelled as a real contended resource rather than a free
//! cost annotation.
//!
//! [`Cpu`] is a non-preemptive serial resource: a caller that wants `cost`
//! seconds of processing starting no earlier than `ready` gets the interval
//! `[max(ready, busy_until), max(ready, busy_until) + cost)`, and the busy time
//! is accumulated for utilisation reporting.  This matches how nfsd processing
//! steps occupy a 1993-era single-CPU server.  Multi-CPU servers can be
//! approximated by constructing the [`Cpu`] with a speedup factor.

use crate::stats::Utilization;
use crate::time::{Duration, SimTime};

/// A serially shared processor with busy-time accounting.
#[derive(Clone, Debug)]
pub struct Cpu {
    busy_until: SimTime,
    util: Utilization,
    /// Processing costs are divided by this factor; `1.0` models a single
    /// processor identical to the cost-table reference machine.
    speed_factor: f64,
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Cpu {
    /// A unit-speed processor.
    pub fn new() -> Self {
        Cpu {
            busy_until: SimTime::ZERO,
            util: Utilization::new(),
            speed_factor: 1.0,
        }
    }

    /// A processor `factor`× faster than the reference cost table.
    ///
    /// Panics if `factor` is not strictly positive and finite.
    pub fn with_speed(factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "invalid CPU speed factor"
        );
        Cpu {
            busy_until: SimTime::ZERO,
            util: Utilization::new(),
            speed_factor: factor,
        }
    }

    /// Run a processing step of length `cost` (at reference speed) that cannot
    /// begin before `ready`.  Returns the completion time.
    pub fn run(&mut self, ready: SimTime, cost: Duration) -> SimTime {
        let scaled = Duration::from_secs_f64(cost.as_secs_f64() / self.speed_factor);
        let start = ready.max(self.busy_until);
        let end = start + scaled;
        self.busy_until = end;
        self.util.add_busy(scaled);
        end
    }

    /// Account CPU work without serialising on the processor (used for costs
    /// that overlap with other work in reality, such as DMA completion
    /// handling spread across many devices).  Returns `ready + cost` scaled.
    pub fn run_overlapped(&mut self, ready: SimTime, cost: Duration) -> SimTime {
        let scaled = Duration::from_secs_f64(cost.as_secs_f64() / self.speed_factor);
        self.util.add_busy(scaled);
        ready + scaled
    }

    /// The earliest time at which a new processing step could start.
    pub fn free_at(&self) -> SimTime {
        self.busy_until
    }

    /// Total accumulated busy time.
    pub fn busy_time(&self) -> Duration {
        self.util.busy_time()
    }

    /// Utilisation percentage over an observed span.
    pub fn utilization_percent(&self, observed: Duration) -> f64 {
        self.util.percent(observed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialises_back_to_back_work() {
        let mut cpu = Cpu::new();
        let t1 = cpu.run(SimTime::ZERO, Duration::from_millis(2));
        assert_eq!(t1, SimTime::from_millis(2));
        // Second request arrives at 1 ms but must wait until 2 ms.
        let t2 = cpu.run(SimTime::from_millis(1), Duration::from_millis(3));
        assert_eq!(t2, SimTime::from_millis(5));
        assert_eq!(cpu.free_at(), SimTime::from_millis(5));
        assert_eq!(cpu.busy_time(), Duration::from_millis(5));
    }

    #[test]
    fn idle_gaps_do_not_count_as_busy() {
        let mut cpu = Cpu::new();
        cpu.run(SimTime::ZERO, Duration::from_millis(1));
        cpu.run(SimTime::from_millis(9), Duration::from_millis(1));
        assert_eq!(cpu.busy_time(), Duration::from_millis(2));
        assert!((cpu.utilization_percent(Duration::from_millis(10)) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn speed_factor_scales_cost() {
        let mut fast = Cpu::with_speed(2.0);
        let end = fast.run(SimTime::ZERO, Duration::from_millis(4));
        assert_eq!(end, SimTime::from_millis(2));
        assert_eq!(fast.busy_time(), Duration::from_millis(2));
    }

    #[test]
    fn overlapped_work_does_not_push_busy_until() {
        let mut cpu = Cpu::new();
        let end = cpu.run_overlapped(SimTime::from_millis(5), Duration::from_millis(1));
        assert_eq!(end, SimTime::from_millis(6));
        assert_eq!(cpu.free_at(), SimTime::ZERO);
        assert_eq!(cpu.busy_time(), Duration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "invalid CPU speed factor")]
    fn zero_speed_panics() {
        let _ = Cpu::with_speed(0.0);
    }
}
