//! An adaptive calendar-queue pending-event set.
//!
//! Both simulator cores — the serial [`crate::EventQueue`] and the
//! partitioned [`crate::parallel::KeyedQueue`] — used to sit on a
//! `BinaryHeap`.  At millions of events per second the heap itself becomes
//! the hot path: every push and pop sifts ~128-byte entries across
//! `O(log n)` levels, and the sift traffic (not the comparisons) dominates.
//! A calendar queue (Brown, CACM 1988) replaces the heap with a
//! power-of-two array of *buckets* indexed by event time, giving amortised
//! O(1) schedule and pop: an event moves exactly once on the way in and
//! once on the way out.
//!
//! # Layout
//!
//! ```text
//!             width = 1 << shift nanoseconds per bucket
//!   bucket =  (time >> shift) & (nbuckets - 1)      nbuckets = power of two
//!
//!   [ b0 ] [ b1 ] [ b2 ] [ b3 ] ... [ bN-1 ]        one "year" = N buckets
//!     |      |
//!     |      +-- events whose virtual slot ≡ 1 (mod N), any year
//!     +--------- sorted ascending by full key: minimum at the front, so
//!                pop is `pop_front` and an in-order insert is `push_back`
//! ```
//!
//! A dequeue scans forward from the current *virtual slot* (`time >>
//! shift`, not wrapped) and takes the front of the first bucket whose
//! minimum actually belongs to the slot under the cursor; a bucket whose
//! minimum lives in a later year is skipped.  If a whole year of slots is
//! fruitless (the pending set is sparse relative to the bucket span) the
//! queue falls back to a direct O(nbuckets) scan for the global minimum —
//! counted in [`CalStats::rotations`] so the bench cells expose how often
//! the calendar degraded to a linear search.
//!
//! # Determinism
//!
//! Pop order is the whole contract: the golden tables and every
//! partitioned parity suite pin it bit-for-bit.  The queue therefore
//! never orders by bucket position alone — buckets are kept sorted by the
//! **full key** (`(time, seq)` for the serial queue, the five-field
//! lineage key for the partitioned one), and two events can only collide
//! into the same slot when their times are close, so "earliest virtual
//! slot, then smallest key within the bucket" reproduces the global key
//! order exactly.  Because the scan always returns the true global
//! minimum, bucket count and width are *pure performance knobs*: a resize
//! can never change pop order, which is what makes the adaptive part safe.
//!
//! # Adaptivity
//!
//! The queue resizes when occupancy drifts out of band (more than two
//! events per bucket on average, or fewer than one per four buckets) and
//! re-derives the bucket width from the observed mean inter-pop gap at
//! that moment.  Rebuilds recycle the old bucket storage through a spare
//! pool, so a steady-state run settles into a fixed geometry and performs
//! no further allocations — the same hot-loop contract the op generators
//! honour (`tests/sfs_scale.rs`).

use std::cell::Cell;
use std::collections::VecDeque;

/// A totally ordered scheduling key that exposes its firing time.
///
/// The ordering must be *time-major*: `a < b` whenever
/// `a.time_ns() < b.time_ns()`.  Ties at the same instant may be broken by
/// any further fields (insertion sequence, lineage) — the calendar only
/// relies on "smaller key never fires later".
pub trait CalKey: Copy + Ord {
    /// The absolute firing time, in nanoseconds.
    fn time_ns(&self) -> u64;
}

/// Scheduler-health counters of one [`CalendarQueue`].
///
/// Surfaced through the drivers' run statistics and stamped into bench
/// cells next to `host_parallelism`, so a perf regression in the pending
/// -event set is visible in the recorded trajectory, not just in wall
/// clock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CalStats {
    /// Current number of buckets (always a power of two).
    pub buckets: u64,
    /// Geometry rebuilds: occupancy left the `[nbuckets/4, 2*nbuckets]`
    /// band and the bucket array was resized / the width re-derived.
    pub resizes: u64,
    /// High-water mark of events in a single bucket.
    pub max_depth: u64,
    /// Dequeues that scanned a full year without a hit and fell back to a
    /// direct minimum search (the calendar's O(n) degradation path).
    pub rotations: u64,
}

impl CalStats {
    /// Fold a partition queue's counters into an accumulated view: counts
    /// add, high-water marks take the maximum.
    pub fn absorb(&mut self, other: &CalStats) {
        self.buckets = self.buckets.max(other.buckets);
        self.resizes += other.resizes;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.rotations += other.rotations;
    }
}

/// Initial bucket count; also the floor the shrink path never goes below.
const MIN_BUCKETS: usize = 64;

/// Initial `log2` of the bucket width in nanoseconds (64 µs) — replaced by
/// the measured inter-pop gap at the first resize.
const INITIAL_SHIFT: u32 = 16;

/// Widest bucket the adaptation will pick (2^40 ns ≈ 18 minutes): beyond
/// this the calendar is effectively one bucket per run and a wider slot
/// buys nothing.
const MAX_SHIFT: u32 = 40;

/// Pops between width recalibrations when occupancy stays in band.
const RECAL_POPS: u64 = 256;

/// An adaptive calendar queue over keys `K` and payloads `E`.
///
/// See the [module docs](self) for the structure; the public surface is
/// deliberately minimal — the simulator-facing API (clamping, sequence
/// minting, `clamped_past` accounting) lives in the wrappers
/// ([`crate::EventQueue`], [`crate::parallel::KeyedQueue`]).
pub struct CalendarQueue<K, E> {
    /// `buckets[(t >> shift) & mask]`, each sorted ascending by key.
    buckets: Vec<VecDeque<(K, E)>>,
    mask: usize,
    shift: u32,
    len: usize,
    /// One bit per bucket, set iff the bucket is non-empty, so the slot
    /// scan skips runs of empty buckets with `trailing_zeros` instead of
    /// probing them one by one.
    occupied: Vec<u64>,
    /// Scan cursor: no pending event has a virtual slot below this.
    /// Interior-mutable so `peek` (used by `&self` accessors upstream) can
    /// persist its scan progress and a following pop is O(1).
    scan_vslot: Cell<u64>,
    /// Bucket index whose front is the known global minimum, when a peek
    /// has located it and nothing smaller has been scheduled since.
    cursor: Cell<Option<u32>>,
    /// Recycled bucket storage for resizes (geometry rebuilds move the
    /// old deques here instead of freeing them).
    spare: Vec<VecDeque<(K, E)>>,
    /// The previous bucket array's spine, kept so a rebuild reuses its
    /// capacity instead of allocating a fresh one.
    spare_spine: Vec<VecDeque<(K, E)>>,
    /// Pop-gap sampling since the last resize, for width re-derivation.
    pops_since_resize: u64,
    first_pop_ns: u64,
    last_pop_ns: u64,
    resizes: u64,
    max_depth: u64,
    rotations: Cell<u64>,
}

impl<K: CalKey, E> Default for CalendarQueue<K, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: CalKey, E> CalendarQueue<K, E> {
    /// An empty queue with the default geometry (adapted after use).
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(MIN_BUCKETS);
        buckets.resize_with(MIN_BUCKETS, VecDeque::new);
        CalendarQueue {
            buckets,
            occupied: vec![0; MIN_BUCKETS >> 6],
            mask: MIN_BUCKETS - 1,
            shift: INITIAL_SHIFT,
            len: 0,
            scan_vslot: Cell::new(0),
            cursor: Cell::new(None),
            spare: Vec::new(),
            spare_spine: Vec::new(),
            pops_since_resize: 0,
            first_pop_ns: 0,
            last_pop_ns: 0,
            resizes: 0,
            max_depth: 0,
            rotations: Cell::new(0),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The current health counters.
    pub fn stats(&self) -> CalStats {
        CalStats {
            buckets: (self.mask + 1) as u64,
            resizes: self.resizes,
            max_depth: self.max_depth,
            rotations: self.rotations.get(),
        }
    }

    #[inline]
    fn vslot(&self, k: &K) -> u64 {
        k.time_ns() >> self.shift
    }

    /// Insert into the right bucket, keeping it sorted ascending so the
    /// minimum stays at the front.  The fast path is an O(1) append: same
    /// -instant bursts (a gathered batch's replies) and chronological
    /// child schedules both arrive in increasing key order, so the new
    /// key usually sorts after everything already in the bucket.  Keys
    /// are unique (every caller mints a distinguishing sequence number),
    /// so the partition point is exact.
    #[inline]
    fn place(&mut self, key: K, event: E) {
        let idx = (self.vslot(&key) as usize) & self.mask;
        let bucket = &mut self.buckets[idx];
        match bucket.back() {
            Some((back, _)) if key < *back => {
                let pos = bucket.partition_point(|(k, _)| *k < key);
                bucket.insert(pos, (key, event));
            }
            _ => bucket.push_back((key, event)),
        }
        self.occupied[idx >> 6] |= 1 << (idx & 63);
        let depth = bucket.len() as u64;
        if depth > self.max_depth {
            self.max_depth = depth;
        }
    }

    /// Schedule one event.  O(1) amortised; the caller guarantees `key` is
    /// unique (distinct sequence field).
    pub fn schedule(&mut self, key: K, event: E) {
        let vs = self.vslot(&key);
        // Rewind the scan cursor if the new event lands below it — a peek
        // may have advanced the cursor past this slot while it was empty.
        if vs < self.scan_vslot.get() {
            self.scan_vslot.set(vs);
        }
        // Keep the cached minimum coherent without a rescan: a smaller key
        // than the cached one relocates the cursor to its bucket; anything
        // larger leaves the cached minimum the minimum.
        if let Some(b) = self.cursor.get() {
            let cached = &self.buckets[b as usize]
                .front()
                .expect("cursor points at an empty bucket")
                .0;
            if key < *cached {
                self.cursor.set(Some(((vs as usize) & self.mask) as u32));
            }
        }
        self.place(key, event);
        self.len += 1;
        self.maybe_resize();
    }

    /// Offset in slots from ring position `pos` to the next occupied
    /// bucket, looking at most `span` slots forward (wrapping around the
    /// bucket array).  `None` when every bucket in that window is empty.
    #[inline]
    fn next_occupied(&self, pos: usize, span: usize) -> Option<usize> {
        let nb = self.mask + 1;
        if nb == 64 {
            let w = self.occupied[0].rotate_right(pos as u32);
            let tz = w.trailing_zeros() as usize;
            return (tz < span).then_some(tz);
        }
        let mut off = 0usize;
        let mut i = pos;
        while off < span {
            let bit = i & 63;
            let w = self.occupied[i >> 6] >> bit;
            if w != 0 {
                let total = off + w.trailing_zeros() as usize;
                return (total < span).then_some(total);
            }
            let step = 64 - bit;
            off += step;
            i += step;
            if i >= nb {
                i -= nb;
            }
        }
        None
    }

    /// Key of the earliest pending event, locating it if necessary.
    ///
    /// Takes `&self`: scan progress and the located minimum persist in
    /// interior-mutable cells so the following [`CalendarQueue::pop`] (or
    /// the next peek) is O(1).
    pub fn peek_key(&self) -> Option<K> {
        if self.len == 0 {
            return None;
        }
        if let Some(b) = self.cursor.get() {
            return self.buckets[b as usize].front().map(|(k, _)| *k);
        }
        let nb = self.mask + 1;
        let start = self.scan_vslot.get();
        let mut off = 0usize;
        while off < nb {
            // Jump straight to the next non-empty bucket; empty runs cost
            // one `trailing_zeros`, not one probe per slot.
            let pos = ((start + off as u64) as usize) & self.mask;
            let Some(d) = self.next_occupied(pos, nb - off) else {
                break;
            };
            let vs = start + (off + d) as u64;
            let idx = (vs as usize) & self.mask;
            let (k, _) = self.buckets[idx]
                .front()
                .expect("occupied bit set on an empty bucket");
            if self.vslot(k) == vs {
                self.scan_vslot.set(vs);
                self.cursor.set(Some(idx as u32));
                return Some(*k);
            }
            // Occupied, but its minimum lives in a later year: skip it.
            off += d + 1;
        }
        // A whole year was fruitless: the pending set is sparse relative
        // to the calendar span.  Fall back to a direct minimum search
        // over the occupied buckets.
        self.rotations.set(self.rotations.get() + 1);
        let mut best: Option<(usize, K)> = None;
        for (wi, &word) in self.occupied.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let idx = (wi << 6) + w.trailing_zeros() as usize;
                w &= w - 1;
                let (k, _) = self.buckets[idx]
                    .front()
                    .expect("occupied bit set on an empty bucket");
                if best.map(|(_, bk)| *k < bk).unwrap_or(true) {
                    best = Some((idx, *k));
                }
            }
        }
        let (idx, k) = best.expect("len > 0 but every bucket is empty");
        self.scan_vslot.set(self.vslot(&k));
        self.cursor.set(Some(idx as u32));
        Some(k)
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<(K, E)> {
        let key = self.peek_key()?;
        let b = self.cursor.get().expect("peek located the minimum") as usize;
        let (k, e) = self.buckets[b].pop_front().expect("cursor bucket is empty");
        debug_assert!(k == key);
        self.len -= 1;
        if self.buckets[b].is_empty() {
            self.occupied[b >> 6] &= !(1 << (b & 63));
        }
        // The next event in the same bucket at the same slot stays the
        // global minimum — the common case in tie bursts; otherwise the
        // next peek rescans from the popped slot.
        let same_slot = self.buckets[b]
            .front()
            .is_some_and(|(k2, _)| self.vslot(k2) == self.scan_vslot.get());
        if !same_slot {
            self.cursor.set(None);
        }
        let t = k.time_ns();
        if self.pops_since_resize == 0 {
            self.first_pop_ns = t;
        }
        self.last_pop_ns = t;
        self.pops_since_resize += 1;
        self.maybe_resize();
        Some((k, e))
    }

    /// Visit every pending event in no particular order (bound scans).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &E)> {
        self.buckets
            .iter()
            .flat_map(|b| b.iter().map(|(k, e)| (k, e)))
    }

    /// Resize when occupancy leaves the `[nb/4, 2*nb]` band, and
    /// recalibrate the bucket width from the observed mean inter-pop gap
    /// both then and periodically (every [`RECAL_POPS`] pops) — a run
    /// whose event density never trips the occupancy band still settles
    /// onto a fitted width after its first few hundred events.
    fn maybe_resize(&mut self) {
        let nb = self.mask + 1;
        let grow = self.len > nb * 2;
        let shrink = nb > MIN_BUCKETS && self.len < nb / 4;
        let recalibrate = self.pops_since_resize >= RECAL_POPS;
        if !(grow || shrink || recalibrate) {
            return;
        }
        let new_nb = if grow || shrink {
            self.len.next_power_of_two().max(MIN_BUCKETS)
        } else {
            nb
        };
        let new_shift = self.derived_shift();
        let close_enough = new_shift.abs_diff(self.shift) <= 1;
        if new_nb == nb && (new_shift == self.shift || (recalibrate && close_enough)) {
            // The geometry already fits (a one-step width disagreement is
            // within the heuristic's noise — rebuilding on it would thrash
            // every recalibration window); restart the sampling window.
            self.pops_since_resize = 0;
            return;
        }
        self.rebuild(new_nb, new_shift);
    }

    /// The bucket-width exponent suggested by the pop gaps observed since
    /// the last resize: width ≈ the mean gap, rounded down to a power of
    /// two.  Narrow buckets keep depth (and therefore mid-bucket insert
    /// shifting) low; the occupancy bitmap makes the longer empty-slot
    /// runs they produce free to skip.  With too few samples (or an
    /// all-ties stream) the current width is kept — there is nothing to
    /// adapt to yet.
    fn derived_shift(&self) -> u32 {
        if self.pops_since_resize < 16 {
            return self.shift;
        }
        let span = self.last_pop_ns.saturating_sub(self.first_pop_ns);
        let gap = span / self.pops_since_resize;
        if gap == 0 {
            return self.shift;
        }
        (63 - gap.leading_zeros()).min(MAX_SHIFT)
    }

    /// Move every pending event into a fresh geometry, recycling bucket
    /// storage through the spare pool so steady state stays allocation
    /// -free once capacities have warmed up.
    fn rebuild(&mut self, new_nb: usize, new_shift: u32) {
        self.resizes += 1;
        let mut old = std::mem::take(&mut self.buckets);
        let mut spine = std::mem::take(&mut self.spare_spine);
        spine.reserve(new_nb);
        for _ in 0..new_nb {
            spine.push(self.spare.pop().unwrap_or_default());
        }
        self.buckets = spine;
        self.occupied.clear();
        self.occupied.resize(new_nb >> 6, 0);
        self.shift = new_shift;
        self.mask = new_nb - 1;
        self.cursor.set(None);
        let mut min_vslot = u64::MAX;
        for bucket in old.iter_mut() {
            // Drain front-to-back: keys come out ascending, so each lands
            // at the back of its new bucket through the O(1) fast path.
            for (k, e) in bucket.drain(..) {
                min_vslot = min_vslot.min(k.time_ns() >> new_shift);
                self.place(k, e);
            }
        }
        // Old bucket storage (emptied, capacity warmed) and the old spine
        // go back into the spare pools for the next rebuild.
        self.spare.append(&mut old);
        self.spare_spine = old;
        self.scan_vslot.set(if min_vslot == u64::MAX {
            self.last_pop_ns >> new_shift
        } else {
            min_vslot
        });
        self.pops_since_resize = 0;
    }
}

#[cfg(test)]
pub(crate) mod heap_oracle {
    //! The previous `BinaryHeap` pending-event set, kept as the reference
    //! oracle for the differential fuzz suites: it is exactly the
    //! implementation `EventQueue`/`KeyedQueue` shipped with before the
    //! calendar queue, made generic over the key.

    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    struct Entry<K, E> {
        key: K,
        event: E,
    }

    impl<K: Ord, E> PartialEq for Entry<K, E> {
        fn eq(&self, other: &Self) -> bool {
            self.key == other.key
        }
    }
    impl<K: Ord, E> Eq for Entry<K, E> {}
    impl<K: Ord, E> PartialOrd for Entry<K, E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<K: Ord, E> Ord for Entry<K, E> {
        fn cmp(&self, other: &Self) -> Ordering {
            // Max-heap inverted: the smallest key pops first.
            other.key.cmp(&self.key)
        }
    }

    /// A min-queue on `BinaryHeap`, ordered by the full key.
    pub struct HeapQueue<K, E> {
        heap: BinaryHeap<Entry<K, E>>,
    }

    impl<K: Ord, E> HeapQueue<K, E> {
        pub fn new() -> Self {
            HeapQueue {
                heap: BinaryHeap::new(),
            }
        }

        pub fn schedule(&mut self, key: K, event: E) {
            self.heap.push(Entry { key, event });
        }

        pub fn pop(&mut self) -> Option<(K, E)> {
            self.heap.pop().map(|e| (e.key, e.event))
        }

        pub fn peek_key(&self) -> Option<&K> {
            self.heap.peek().map(|e| &e.key)
        }

        pub fn len(&self) -> usize {
            self.heap.len()
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::heap_oracle::HeapQueue;
    use super::*;

    impl CalKey for (u64, u64) {
        fn time_ns(&self) -> u64 {
            self.0
        }
    }

    /// A tiny deterministic RNG (xorshift64*) so the fuzz streams are
    /// reproducible without any external crate.
    pub(crate) struct Rng(u64);

    impl Rng {
        pub fn new(seed: u64) -> Self {
            Rng(seed.max(1))
        }

        pub fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        pub fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    #[test]
    fn pops_in_key_order_across_slots_and_years() {
        let mut q = CalendarQueue::new();
        // Times chosen to straddle bucket widths and whole years of the
        // initial geometry.
        let times = [
            0u64,
            1,
            65_535,
            65_536,
            1 << 22,
            (1 << 22) + 3,
            u64::from(u32::MAX),
            1 << 40,
        ];
        for (i, &t) in times.iter().enumerate() {
            q.schedule((t, i as u64), i);
        }
        let mut got = Vec::new();
        while let Some(((t, _), _)) = q.pop() {
            got.push(t);
        }
        let mut want = times.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn ties_pop_in_seq_order() {
        let mut q = CalendarQueue::new();
        for seq in 0..1000u64 {
            q.schedule((42, seq), seq);
        }
        for want in 0..1000u64 {
            let ((_, seq), _) = q.pop().unwrap();
            assert_eq!(seq, want);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_below_the_scan_cursor_is_still_popped_first() {
        let mut q = CalendarQueue::new();
        // Park the scan far out by draining an early event, then peeking
        // at a distant one (the peek advances the persistent cursor).
        q.schedule((100, 0), "early");
        q.schedule((1 << 30, 1), "far");
        assert_eq!(q.pop().unwrap().1, "early");
        assert_eq!(q.peek_key().unwrap().0, 1 << 30);
        // Now schedule between the popped slot and the far event: the
        // rewind rule must bring the cursor back or this pops out of
        // order.
        q.schedule((200, 2), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "far");
    }

    #[test]
    fn resize_preserves_order_and_recycles_storage() {
        let mut q = CalendarQueue::new();
        // Push far past the grow threshold, then drain past the shrink
        // threshold: both rebuilds must keep the pop order exact.
        let mut rng = Rng::new(7);
        let mut oracle = HeapQueue::new();
        for seq in 0..4096u64 {
            let t = rng.below(1 << 34);
            q.schedule((t, seq), seq);
            oracle.schedule((t, seq), seq);
        }
        assert!(q.stats().resizes > 0, "grow path never triggered");
        while let Some(got) = q.pop() {
            assert_eq!(Some(got), oracle.pop());
        }
        assert_eq!(oracle.len(), 0);
        let stats = q.stats();
        assert!(
            stats.resizes >= 2,
            "drain never shrank the calendar: {stats:?}"
        );
    }

    #[test]
    fn differential_fuzz_matches_the_heap_oracle() {
        // The satellite contract: seeded random schedule streams with
        // duplicate timestamps, interleaved pop/schedule and long idle
        // jumps produce pop sequences identical to the old BinaryHeap
        // implementation.
        for seed in 1..=20u64 {
            let mut rng = Rng::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut q = CalendarQueue::new();
            let mut oracle = HeapQueue::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            let mut popped = 0u64;
            for _ in 0..5_000 {
                match rng.below(100) {
                    // Schedule: mostly near-future, sometimes at `now`
                    // exactly (the post-clamp shape of a past-time
                    // schedule), sometimes far out.
                    0..=59 => {
                        let t = match rng.below(10) {
                            0 => now,
                            1..=7 => now + rng.below(1 << 20),
                            _ => now + rng.below(1 << 36),
                        };
                        q.schedule((t, seq), seq);
                        oracle.schedule((t, seq), seq);
                        seq += 1;
                    }
                    // Duplicate-timestamp burst at one instant.
                    60..=69 => {
                        let t = now + rng.below(1 << 14);
                        for _ in 0..rng.below(8) + 2 {
                            q.schedule((t, seq), seq);
                            oracle.schedule((t, seq), seq);
                            seq += 1;
                        }
                    }
                    // Interleaved pops (with occasional peeks, which
                    // advance the calendar's persistent scan state).
                    _ => {
                        if rng.below(4) == 0 {
                            assert_eq!(q.peek_key(), oracle.peek_key().copied());
                        }
                        let got = q.pop();
                        let want = oracle.pop();
                        assert_eq!(got, want, "seed {seed} diverged after {popped} pops");
                        if let Some(((t, _), _)) = got {
                            now = t;
                            popped += 1;
                        }
                    }
                }
            }
            // Full drain must agree too.
            loop {
                let got = q.pop();
                let want = oracle.pop();
                assert_eq!(got, want, "seed {seed} diverged during drain");
                if got.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn sparse_far_future_events_fall_back_to_direct_search() {
        let mut q = CalendarQueue::new();
        // A handful of events spread over an enormous span: every year
        // scan is fruitless and the direct-search path must find the
        // minimum (and count the rotation).
        for (seq, t) in [1u64 << 50, 1 << 45, 1 << 55, 1 << 41].iter().enumerate() {
            q.schedule((*t, seq as u64), seq);
        }
        assert_eq!(q.peek_key().unwrap().0, 1 << 41);
        assert!(q.stats().rotations >= 1);
        let mut last = 0;
        while let Some(((t, _), _)) = q.pop() {
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn stats_track_geometry_and_depth() {
        let mut q = CalendarQueue::new();
        let s = q.stats();
        assert_eq!(s.buckets, MIN_BUCKETS as u64);
        assert_eq!(s.max_depth, 0);
        for seq in 0..10u64 {
            q.schedule((7, seq), ());
        }
        assert_eq!(q.stats().max_depth, 10);
        let mut acc = CalStats::default();
        acc.absorb(&q.stats());
        let more = CalStats {
            buckets: 32,
            resizes: 2,
            max_depth: 4,
            rotations: 1,
        };
        acc.absorb(&more);
        assert_eq!(acc.buckets, MIN_BUCKETS as u64);
        assert_eq!(acc.resizes, 2);
        assert_eq!(acc.max_depth, 10);
        assert_eq!(acc.rotations, 1);
    }
}
