//! Virtual time.
//!
//! The simulation clock is a monotonically non-decreasing count of nanoseconds
//! since the start of the run.  [`SimTime`] is an absolute instant and
//! [`Duration`] is a span between instants; both are thin wrappers over `u64`
//! nanoseconds so they are `Copy`, hashable, and totally ordered.
//!
//! All hardware models in this repository (disk seek/rotation/transfer times,
//! network serialisation delays, the paper's 5/8 ms procrastination intervals)
//! are expressed as [`Duration`]s.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// An absolute instant on the simulated clock, in nanoseconds from run start.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct Duration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far away"
    /// sentinel (e.g. "no pending timer").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since run start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since run start as a floating point value (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since run start as a floating point value (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`; saturates to zero if `earlier` is in
    /// the future (never panics, which keeps statistics code simple).
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Duration {
    /// A zero-length span.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable span.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds.  Negative and non-finite inputs are
    /// clamped to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return Duration(0);
        }
        Duration((s * 1e9).round() as u64)
    }

    /// Construct from fractional microseconds.  Negative and non-finite inputs
    /// are clamped to zero.
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us / 1e6)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// `true` if this span is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The longer of two spans.
    pub fn max(self, other: Duration) -> Duration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The shorter of two spans.
    pub fn min(self, other: Duration) -> Duration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Multiply the span by an integer factor (saturating).
    pub fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_millis(8).as_nanos(), 8_000_000);
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(Duration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(Duration::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(Duration::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_millis(10);
        let d = Duration::from_millis(5);
        assert_eq!((t + d).as_nanos(), 15_000_000);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(t + d), Duration::ZERO);
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn float_conversions() {
        let d = Duration::from_secs_f64(0.001);
        assert_eq!(d, Duration::from_millis(1));
        assert!((d.as_millis_f64() - 1.0).abs() < 1e-9);
        assert_eq!(Duration::from_secs_f64(-3.0), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::NAN), Duration::ZERO);
        assert_eq!(Duration::from_micros_f64(250.0), Duration::from_micros(250));
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = Duration::from_millis(1);
        let y = Duration::from_millis(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(SimTime::ZERO - SimTime::from_millis(1), Duration::ZERO);
        assert_eq!(
            Duration::from_millis(1).saturating_sub(Duration::from_millis(2)),
            Duration::ZERO
        );
        assert_eq!(
            SimTime::MAX.saturating_add(Duration::from_millis(1)),
            SimTime::MAX
        );
        assert_eq!(Duration::MAX.saturating_mul(2), Duration::MAX);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Duration::from_millis(8)), "8.000ms");
        assert_eq!(format!("{}", SimTime::from_millis(1)), "1.000ms");
        assert_eq!(format!("{:?}", SimTime::from_secs(1)), "t=1.000000s");
    }
}
