//! Primitives for conservative parallel discrete-event simulation.
//!
//! One topology is executed by N cooperating event loops — *partitions* —
//! instead of one serial [`crate::EventQueue`].  The drive loops in
//! `wg-workload` split a run into one partition per client LAN segment (the
//! *spokes*) plus one for the server/disk island (the *hub*), and synchronise
//! them with conservative lookahead: a partition only executes an event when
//! every neighbour has promised, via a published [`Key`] bound, that it will
//! never send anything that sorts earlier.  Idle partitions publish
//! [`Key::MAX`] — the null-message-style horizon advance that keeps an idle
//! segment from stalling the others.
//!
//! # Deterministic cross-partition ordering
//!
//! Bit-identity with the serial loop is the whole contract, so the execution
//! order cannot depend on thread scheduling.  Every event and every
//! cross-partition message carries a [`Key`] and all partitions process work
//! in global `Key` order.  A key is `(time, b1, b2, src_partition, seq)`:
//!
//! * `time` — when the event fires;
//! * `b1` — when its *parent* (the event whose handler scheduled it) fired;
//! * `b2` — when its grandparent fired;
//! * `src` — the partition that minted the key (hub ranks last);
//! * `seq` — the minting partition's monotone counter.
//!
//! The serial `EventQueue` breaks time ties by global insertion order, and
//! insertion order is exactly "parent pop order" — which pops are themselves
//! time-ordered.  Carrying two generations of parent pop times therefore
//! reproduces the serial tie-break for every single and double tie without
//! any global counter; only a *triple* tie (same `time`, `b1` and `b2` from
//! different sources — a measure-zero coincidence of independent arrival
//! processes) falls through to the `src` rank.  The parity suites in
//! `wg-workload` pin that the shipped configurations replay the serial runs
//! bit-for-bit.
//!
//! # Horizon protocol
//!
//! Each partition publishes a [`BoundCell`]: a `Key` strictly below every
//! message it may still send.  A partition pops its next event only while its
//! key is at or below all neighbour bounds ([`KeyedQueue::pop_below`]) — the
//! bound itself is already safe because future sends are promised *strictly*
//! greater; anything above the horizon stays queued until the bound moves.
//! Bounds are monotone, so the protocol never deadlocks as long as every
//! client→server path has a positive lookahead (datagram serialisation plus
//! propagation — exposed by `wg_net::MediumParams::lookahead`) and the hub
//! re-publishes after each batch.  For inbound-triggered sends (a reply that
//! makes a client issue its next write) the hub tracks an [`OpWindow`] per
//! spoke: the ops it has mailed but the spoke has not yet applied, whose
//! times plus lookahead lower-bound anything those ops can provoke.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::calq::{CalKey, CalStats, CalendarQueue};
use crate::time::{Duration, SimTime};

/// Totally ordered identity of one unit of simulated work (an event or a
/// cross-partition message).  See the module docs for the field semantics.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Key {
    /// Instant the event fires.
    pub time: SimTime,
    /// Instant the scheduling (parent) event fired.
    pub b1: SimTime,
    /// Instant the grandparent event fired.
    pub b2: SimTime,
    /// Minting partition (spokes `0..n`, hub `n` — the hub ranks last).
    pub src: u32,
    /// Monotone per-partition mint counter (starts at 1).
    pub seq: u64,
}

impl Key {
    /// Sorts before every real key.
    pub const MIN: Key = Key {
        time: SimTime::ZERO,
        b1: SimTime::ZERO,
        b2: SimTime::ZERO,
        src: 0,
        seq: 0,
    };

    /// Sorts after every real key; the published bound of a partition that
    /// can never send again.
    pub const MAX: Key = Key {
        time: SimTime::MAX,
        b1: SimTime::MAX,
        b2: SimTime::MAX,
        src: u32::MAX,
        seq: u64::MAX,
    };

    /// Key of an event scheduled at build time (no parent).
    pub fn initial(at: SimTime, src: u32, seq: u64) -> Key {
        Key {
            time: at,
            b1: SimTime::ZERO,
            b2: SimTime::ZERO,
            src,
            seq,
        }
    }

    /// Key of an event scheduled at `at` from the handler of `self`.
    pub fn child(&self, at: SimTime, src: u32, seq: u64) -> Key {
        Key {
            time: at,
            b1: self.time,
            b2: self.b1,
            src,
            seq,
        }
    }

    /// Key of an operation executed *inline* by the handler of `self` but
    /// shipped to another partition (a reply transmission, a loss-window
    /// injection).  It shares the generating event's position, so the
    /// receiver interleaves it with its own events exactly where the serial
    /// loop ran it.
    pub fn op(&self, src: u32, seq: u64) -> Key {
        Key {
            time: self.time,
            b1: self.b1,
            b2: self.b2,
            src,
            seq,
        }
    }

    /// The largest key with `time <= t`: a published bound of this form
    /// promises "nothing I ever send will fire at or before `t`".
    pub fn time_bound(t: SimTime) -> Key {
        Key {
            time: t,
            b1: SimTime::MAX,
            b2: SimTime::MAX,
            src: u32::MAX,
            seq: u64::MAX,
        }
    }

    /// The bound the hub derives from `self` being its next possible unit of
    /// work: every op the hub may still emit shares a processed event's
    /// `(time, b1, b2)` and carries the hub's rank, so anything it sends
    /// sorts strictly after this.
    pub fn lift(&self, hub_src: u32) -> Key {
        Key {
            time: self.time,
            b1: self.b1,
            b2: self.b2,
            src: hub_src,
            seq: 0,
        }
    }
}

impl CalKey for Key {
    fn time_ns(&self) -> u64 {
        self.time.as_nanos()
    }
}

/// Mint the next value of a per-partition sequence counter.
///
/// Tie-break invariant: within one partition the minted `seq` is strictly
/// monotone over the whole run — a key's lineage fields separate events
/// from different parents, and `seq` separates same-parent siblings *by
/// mint order*.  A u64 cannot wrap in practice, but a counter reset would
/// silently reorder siblings, so the mint is asserted monotone in debug
/// builds.  Every partitioned driver mints through this helper.
pub fn mint_seq(counter: &mut u64) -> u64 {
    *counter = counter.wrapping_add(1);
    debug_assert!(*counter != 0, "partition sequence counter wrapped");
    *counter
}

/// One partition's future-event list, ordered by [`Key`].
///
/// The pending set is the same adaptive calendar queue as the serial
/// [`crate::EventQueue`] ([`crate::calq`]); the full five-field lineage
/// key orders the buckets, so partitioned pop order is bit-identical to
/// the old `BinaryHeap` implementation (pinned by the differential fuzz
/// suite below).
pub struct KeyedQueue<E> {
    cal: CalendarQueue<Key, E>,
    now: Key,
    scheduled_total: u64,
    clamped_past: u64,
}

impl<E> Default for KeyedQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> KeyedQueue<E> {
    /// An empty queue with the clock at [`Key::MIN`].
    pub fn new() -> Self {
        KeyedQueue {
            cal: CalendarQueue::new(),
            now: Key::MIN,
            scheduled_total: 0,
            clamped_past: 0,
        }
    }

    /// Key of the most recently popped event.
    pub fn now(&self) -> Key {
        self.now
    }

    /// Schedule `event` at `key`.  Scheduling below the partition clock is a
    /// caller logic error, counted in [`KeyedQueue::clamped_past`] (and a
    /// debug assertion) exactly like the serial queue.
    pub fn schedule(&mut self, key: Key, event: E) {
        debug_assert!(
            key.time >= self.now.time,
            "scheduling into the past: {:?} < {:?}",
            key.time,
            self.now.time
        );
        if key.time < self.now.time {
            self.clamped_past += 1;
        }
        self.scheduled_total += 1;
        self.cal.schedule(key, event);
    }

    /// Pop the earliest event if its key is at or below `limit`.  Published
    /// bounds promise *strictly greater* future sends, so an event exactly at
    /// the horizon is already safe; everything above it stays queued — that
    /// is the conservative side of the boundary.
    pub fn pop_below(&mut self, limit: &Key) -> Option<(Key, E)> {
        if self.cal.peek_key()? <= *limit {
            let (key, event) = self.cal.pop()?;
            self.now = key;
            Some((key, event))
        } else {
            None
        }
    }

    /// Pop unconditionally (used for the final drain once the run is done and
    /// no partition can send anything anymore).
    pub fn pop_any(&mut self) -> Option<(Key, E)> {
        self.pop_below(&Key::MAX)
    }

    /// Key of the earliest queued event.
    pub fn peek_key(&self) -> Option<Key> {
        self.cal.peek_key()
    }

    /// Iterate over the queued events in no particular order (bound scans).
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &E)> {
        self.cal.iter()
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.cal.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.cal.is_empty()
    }

    /// Total events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Events scheduled below the partition clock (must stay zero).
    pub fn clamped_past(&self) -> u64 {
        self.clamped_past
    }

    /// The pending set's scheduler-health counters (bucket count, resizes,
    /// depth high-water, direct-search fallbacks).
    pub fn sched_stats(&self) -> CalStats {
        self.cal.stats()
    }
}

/// A keyed cross-partition mailbox (single producer, single consumer).
///
/// The producer posts messages in its own key order; the consumer drains them
/// into its [`KeyedQueue`], which restores the global order against its local
/// events.
pub struct Mailbox<M> {
    queue: Mutex<Vec<(Key, M)>>,
}

impl<M> Default for Mailbox<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Mailbox<M> {
    /// An empty mailbox.
    pub fn new() -> Self {
        Mailbox {
            queue: Mutex::new(Vec::new()),
        }
    }

    /// Post one message.
    pub fn post(&self, key: Key, message: M) {
        self.queue
            .lock()
            .expect("mailbox poisoned")
            .push((key, message));
    }

    /// Move every pending message into `into`, preserving post order.
    pub fn drain_into(&self, into: &mut Vec<(Key, M)>) {
        let mut q = self.queue.lock().expect("mailbox poisoned");
        into.append(&mut q);
    }
}

/// A partition's published send bound: a [`Key`] strictly below everything it
/// may still send.  Monotone non-decreasing over the run.
pub struct BoundCell {
    bound: Mutex<Key>,
}

impl Default for BoundCell {
    fn default() -> Self {
        Self::new()
    }
}

impl BoundCell {
    /// A fresh cell at [`Key::MIN`] (no promise yet).
    pub fn new() -> Self {
        BoundCell {
            bound: Mutex::new(Key::MIN),
        }
    }

    /// Publish a new bound.  Bounds never move backwards — the neighbours may
    /// already have advanced on the strength of the previous promise — so an
    /// older key is a no-op, not a regression.
    pub fn publish(&self, key: Key) {
        let mut bound = self.bound.lock().expect("bound poisoned");
        if key > *bound {
            *bound = key;
        }
    }

    /// The currently promised bound.
    pub fn read(&self) -> Key {
        *self.bound.lock().expect("bound poisoned")
    }

    /// Store the exact computed bound, even if it sorts below the previous
    /// one.  Only sound when the reader combines this cell with an
    /// [`OpWindow`] *and observes the window before the bound*: a regression
    /// can only happen because an op materialised new local work, and until
    /// that op's applied count moves the window still caps the reader's
    /// effective horizon below anything the new work can send — so the extra
    /// promise being withdrawn was never usable.  The storer must make the
    /// regressed bound visible *before* bumping the applied count, and the
    /// reader must discard any cached bound once it observes the window
    /// prune (the bump un-caps the horizon, so a bound read before the
    /// prune is no longer trustworthy).  Partitions without window tracking
    /// must use [`BoundCell::publish`].
    pub fn store(&self, key: Key) {
        *self.bound.lock().expect("bound poisoned") = key;
    }
}

/// Wakeup fan-out for parked partitions.
///
/// Publishing a bound or posting a message bumps the epoch and wakes every
/// waiter; a partition that finds no admissible work re-checks under the
/// epoch so a wakeup between "look" and "sleep" is never lost.
pub struct Monitor {
    epoch: Mutex<u64>,
    cv: Condvar,
}

impl Default for Monitor {
    fn default() -> Self {
        Self::new()
    }
}

impl Monitor {
    /// A fresh monitor.
    pub fn new() -> Self {
        Monitor {
            epoch: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// The current epoch; pass it to [`Monitor::wait_if`] after finding no
    /// admissible work.
    pub fn epoch(&self) -> u64 {
        *self.epoch.lock().expect("monitor poisoned")
    }

    /// Advance the epoch and wake all waiters (call after publishing a bound
    /// or posting messages).
    pub fn bump(&self) {
        *self.epoch.lock().expect("monitor poisoned") += 1;
        self.cv.notify_all();
    }

    /// Block until the epoch moves past `seen`.  Returns immediately if it
    /// already has.
    pub fn wait_if(&self, seen: u64) {
        let mut epoch = self.epoch.lock().expect("monitor poisoned");
        while *epoch == seen {
            epoch = self.cv.wait(epoch).expect("monitor poisoned");
        }
    }
}

/// Hub-side tracking of ops mailed to one spoke but not yet applied there.
///
/// An op the spoke has not executed can still provoke a send (a reply makes a
/// writer client issue its next write), so until it is applied the hub's
/// horizon may not pass `op time + lookahead`.  The spoke publishes a count
/// of applied ops; ops are applied in post order, so the count prunes this
/// window exactly.
pub struct OpWindow {
    sent: VecDeque<SimTime>,
    applied: Arc<AtomicU64>,
    pruned: u64,
}

impl OpWindow {
    /// A fresh window; `applied` is the counter the spoke bumps after each op.
    pub fn new(applied: Arc<AtomicU64>) -> Self {
        OpWindow {
            sent: VecDeque::new(),
            applied,
            pruned: 0,
        }
    }

    /// Record an op posted at key time `t` (call in post order).
    pub fn note_sent(&mut self, t: SimTime) {
        self.sent.push_back(t);
    }

    /// The bound contribution of this window: strictly below anything the
    /// pending ops can provoke, or [`Key::MAX`] when all ops were applied.
    pub fn bound(&mut self, lookahead: Duration) -> Key {
        let applied = self.applied.load(Ordering::Acquire);
        while self.pruned < applied {
            self.sent
                .pop_front()
                .expect("spoke applied more ops than were sent");
            self.pruned += 1;
        }
        match self.sent.front() {
            Some(&t) => Key::time_bound(t + lookahead),
            None => Key::MAX,
        }
    }

    /// `true` when every mailed op has been applied.
    pub fn is_drained(&mut self) -> bool {
        self.bound(Duration::ZERO) == Key::MAX
    }
}

/// One drive loop's view of its hub partition, consumed by [`run_hub`].
///
/// The hub's scheduling round is the same for every partitioned driver —
/// only the shape of its state differs (one op window or a `Vec` of them,
/// one up-mailbox or many, how a datagram becomes a queue event, what an
/// event does).  Implementations supply those pieces; [`run_hub`] supplies
/// the round protocol and its ordering rules.
pub trait HubPartition {
    /// Event type of the hub's [`KeyedQueue`].
    type Ev;

    /// The least key any mailed-but-unapplied op can still provoke traffic
    /// at; [`Key::MAX`] when every window is drained (or when the driver
    /// tracks no op windows at all — open-loop arrivals never provoke
    /// sends, so the gate never binds).
    fn window_gate(&mut self, lookahead: Duration) -> Key;

    /// The combined spoke promise: the minimum over every spoke's published
    /// bound cell.
    fn spoke_gate(&self) -> Key;

    /// Drain every up-mailbox into the hub's queue, converting messages to
    /// events.  Returns whether anything arrived.
    fn drain_mail(&mut self) -> bool;

    /// Pop the earliest queued event at or below `limit`
    /// ([`KeyedQueue::pop_below`]).
    fn pop_below(&mut self, limit: &Key) -> Option<(Key, Self::Ev)>;

    /// Execute one event (and mail whatever it provokes).
    fn handle(&mut self, key: Key, ev: Self::Ev);

    /// `true` when the hub's queue is empty.
    fn queue_is_empty(&self) -> bool;

    /// Key of the earliest queued event, if any.
    fn peek_key(&self) -> Option<Key>;
}

/// The hub's scheduling loop: gate on spoke bounds *and* op windows, drain
/// mail, process, publish — shared by every partitioned driver.
///
/// Observation order is the heart of the protocol.  A spoke that applies a
/// mailed op posts its provoked sends, stores the (possibly *regressed*)
/// covering bound, and only then bumps the applied count — so the hub looks
/// at the op windows *before* the spoke bounds: a window seen unpruned still
/// caps the effective gate below anything its op can provoke, and a window
/// seen pruned guarantees the regressed bound and the posted mail are
/// visible to the reads that follow.  The window gate is re-derived per pop
/// (mailing a reply immediately caps how much further the batch may run),
/// and whenever it *rises* — a spoke pruned mid-round — the cached `sgate`
/// and the mail drain are both potentially stale, so the round restarts to
/// re-read them before popping anything else or publishing a horizon.
///
/// Returns once the run is drained everywhere: hub queue empty, every spoke
/// bound at [`Key::MAX`] and every window drained.  `done` is flipped (and
/// [`Key::MAX`] published) before returning so the spokes run their final
/// unconditional drains.
pub fn run_hub<P: HubPartition>(
    hub: &mut P,
    lookahead: Duration,
    hub_src: u32,
    hub_bound: &BoundCell,
    monitor: &Monitor,
    done: &AtomicBool,
) {
    let mut last_bound = Key::MIN;
    loop {
        let epoch = monitor.epoch();
        let mut progressed = false;
        // Windows first, then bounds, then mail (see above): any message with
        // a key at or below the gates we read here is already visible to the
        // drain below.
        let mut wgate = hub.window_gate(lookahead);
        let sgate = hub.spoke_gate();
        progressed |= hub.drain_mail();
        let mut stale = false;
        loop {
            let fresh = hub.window_gate(lookahead);
            if fresh > wgate {
                stale = true;
                break;
            }
            wgate = fresh;
            let limit = sgate.min(wgate);
            let Some((key, ev)) = hub.pop_below(&limit) else {
                break;
            };
            progressed = true;
            hub.handle(key, ev);
        }
        if !stale {
            // One last look before trusting the pair for the done check and
            // the published horizon: a prune after the final pop invalidates
            // `sgate` just the same.
            let fresh = hub.window_gate(lookahead);
            if fresh > wgate {
                stale = true;
            } else {
                wgate = fresh;
            }
        }
        if stale {
            // A spoke applied a mailed op mid-round: its bound may have
            // regressed below `sgate` and its provoked mail may be undrained.
            // Wake anyone waiting on ops we mailed, then start the round over.
            if progressed {
                monitor.bump();
            }
            continue;
        }
        // Every spoke's queue is empty (exact bounds at MAX), every mailed op
        // was applied and covered, and our own queue and mail are drained:
        // nothing is in flight anywhere — the run is done.
        if hub.queue_is_empty() && sgate == Key::MAX && wgate == Key::MAX {
            hub_bound.publish(Key::MAX);
            done.store(true, Ordering::Release);
            monitor.bump();
            return;
        }
        let horizon = sgate.min(wgate).min(hub.peek_key().unwrap_or(Key::MAX));
        let bound = horizon.lift(hub_src);
        if bound > last_bound {
            last_bound = bound;
            hub_bound.publish(bound);
            monitor.bump();
            progressed = true;
        } else if progressed {
            monitor.bump();
        }
        if !progressed {
            monitor.wait_if(epoch);
        }
    }
}

/// A monotone counter of applied ops, shared spoke→hub (see [`OpWindow`]).
pub fn applied_counter() -> Arc<AtomicU64> {
    Arc::new(AtomicU64::new(0))
}

/// Bump an applied-ops counter (release ordering pairs with
/// [`OpWindow::bound`]'s acquire load).
pub fn bump_applied(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn child_and_op_keys_sort_like_the_serial_insertion_order() {
        // Parent pops at 5ms (itself scheduled at build time by partition 0).
        let parent = Key::initial(t(5), 0, 1);
        // Its handler runs an inline op and schedules two children at 9ms.
        let op = parent.op(2, 7);
        let c1 = parent.child(t(9), 0, 2);
        let c2 = parent.child(t(9), 0, 3);
        // The op shares the parent's position; children fire later.
        assert!(op < c1 && c1 < c2);
        // A 9ms event whose parent popped earlier (at 3ms) beats both
        // children — serial scheduled it first.
        let rival = Key::initial(t(3), 1, 1).child(t(9), 1, 1);
        assert!(rival < c1);
        // Same time and parent time: the grandparent decides.
        let deep_a = Key::initial(t(2), 0, 1).child(t(5), 0, 4).child(t(9), 0, 5);
        let deep_b = Key::initial(t(4), 1, 1).child(t(5), 1, 2).child(t(9), 1, 3);
        assert!(deep_a < deep_b);
    }

    #[test]
    fn horizon_boundary_event_is_not_popped() {
        let mut q = KeyedQueue::new();
        let key = Key::initial(t(10), 0, 1);
        q.schedule(key, "boundary");
        // "Nothing at or before 9ms" holds an event at 10ms back.
        assert!(q.pop_below(&Key::time_bound(t(9))).is_none());
        // A smaller key at the same instant also holds it: the neighbour may
        // still send at 10ms with a larger lineage.
        assert!(q.pop_below(&Key::initial(t(10), 0, 0)).is_none());
        // A bound exactly at the event's key releases it — the promise is
        // that future sends are *strictly* greater than the bound.
        assert_eq!(q.pop_below(&key), Some((key, "boundary")));
        assert_eq!(q.now(), key);
    }

    #[test]
    fn pop_below_merges_mailbox_and_local_keys_deterministically() {
        let mut q = KeyedQueue::new();
        let local = Key::initial(t(7), 0, 1);
        let inbound = Key::initial(t(7), 2, 1); // hub-minted, ranks after
        q.schedule(inbound, "inbound");
        q.schedule(local, "local");
        assert_eq!(q.pop_below(&Key::MAX).unwrap().1, "local");
        assert_eq!(q.pop_below(&Key::MAX).unwrap().1, "inbound");
    }

    #[test]
    fn idle_partition_bound_is_max_and_never_stalls() {
        // An idle spoke promises Key::MAX; a hub gated on min(bounds) with
        // one idle and one active spoke only waits for the active one.
        let idle = BoundCell::new();
        idle.publish(Key::MAX);
        let active = BoundCell::new();
        active.publish(Key::time_bound(t(3)));
        let gate = idle.read().min(active.read());
        let mut hub = KeyedQueue::new();
        hub.schedule(Key::initial(t(3), 2, 1), "early");
        hub.schedule(Key::initial(t(4), 2, 2), "beyond");
        assert_eq!(hub.pop_below(&gate).unwrap().1, "early");
        assert!(hub.pop_below(&gate).is_none());
        // The active spoke drains: everything is admissible.
        active.publish(Key::MAX);
        assert_eq!(
            hub.pop_below(&idle.read().min(active.read())).unwrap().1,
            "beyond"
        );
    }

    #[test]
    fn zero_lookahead_window_degenerates_to_lockstep_but_stays_ordered() {
        // With zero lookahead the op-window bound sits exactly at the op
        // time: the hub may finish everything strictly earlier, and the
        // boundary stays conservative (nothing at the op time itself runs
        // until the spoke applies the op).
        let applied = applied_counter();
        let mut win = OpWindow::new(applied.clone());
        win.note_sent(t(6));
        let bound = win.bound(Duration::ZERO);
        assert_eq!(bound, Key::time_bound(t(6)));
        let mut hub = KeyedQueue::new();
        hub.schedule(Key::initial(t(7), 1, 1), "after-op");
        // Zero lookahead promises nothing beyond the op instant: the very
        // next millisecond is off limits until the spoke applies the op.
        assert!(hub.pop_below(&bound).is_none());
        bump_applied(&applied);
        assert_eq!(win.bound(Duration::ZERO), Key::MAX);
        assert!(win.is_drained());
        assert_eq!(
            hub.pop_below(&win.bound(Duration::ZERO)).unwrap().1,
            "after-op"
        );
    }

    #[test]
    fn op_window_prunes_by_applied_count_in_order() {
        let applied = applied_counter();
        let mut win = OpWindow::new(applied.clone());
        win.note_sent(t(1));
        win.note_sent(t(2));
        let l = Duration::from_millis(10);
        assert_eq!(win.bound(l), Key::time_bound(t(11)));
        bump_applied(&applied);
        assert_eq!(win.bound(l), Key::time_bound(t(12)));
        bump_applied(&applied);
        assert_eq!(win.bound(l), Key::MAX);
    }

    #[test]
    fn bounds_are_monotone_and_monitor_wakes_waiters() {
        let cell = BoundCell::new();
        cell.publish(Key::time_bound(t(5)));
        // Re-publishing an older bound is a no-op, not a regression.
        cell.publish(Key::time_bound(t(3)));
        assert_eq!(cell.read(), Key::time_bound(t(5)));
        let monitor = Arc::new(Monitor::new());
        let seen = monitor.epoch();
        let m2 = monitor.clone();
        let h = std::thread::spawn(move || m2.wait_if(seen));
        monitor.bump();
        h.join().unwrap();
        assert!(monitor.epoch() > seen);
    }

    #[test]
    fn differential_fuzz_matches_the_heap_oracle_on_lineage_keys() {
        // Seeded random lineage streams — duplicate times, identical
        // (time, b1, b2) triples separated only by src/seq, interleaved
        // pop_below/schedule with moving horizons — must pop identically
        // to the retained BinaryHeap oracle (the old implementation).
        use crate::calq::heap_oracle::HeapQueue;
        use crate::calq::tests::Rng;
        for seed in 1..=10u64 {
            let mut rng = Rng::new(seed * 0xC0FF_EE11);
            let mut q = KeyedQueue::new();
            let mut oracle: HeapQueue<Key, u64> = HeapQueue::new();
            let mut seq = 0u64;
            let mut payload = 0u64;
            let mut parents: Vec<Key> = Vec::new();
            for _ in 0..4_000 {
                match rng.below(10) {
                    0..=5 => {
                        let at = q.now().time + Duration::from_nanos(rng.below(1 << 20));
                        let src = rng.below(4) as u32;
                        // Mix initial, child and inline-op keys so ties
                        // exercise every lineage field.
                        let key = match parents.last() {
                            Some(p) if rng.below(3) > 0 => {
                                if rng.below(4) == 0 {
                                    p.op(src, mint_seq(&mut seq))
                                } else {
                                    p.child(at.max(p.time), src, mint_seq(&mut seq))
                                }
                            }
                            _ => Key::initial(at, src, mint_seq(&mut seq)),
                        };
                        if key.time >= q.now().time {
                            q.schedule(key, payload);
                            oracle.schedule(key, payload);
                            payload += 1;
                        }
                    }
                    6 => {
                        assert_eq!(q.peek_key(), oracle.peek_key().copied());
                    }
                    _ => {
                        // A horizon a little past the oracle's head: some
                        // pops admit, some hold at the boundary.
                        let limit = match oracle.peek_key() {
                            Some(k) if rng.below(4) == 0 => {
                                Key::time_bound(k.time + Duration::from_nanos(rng.below(1 << 12)))
                            }
                            _ => Key::MAX,
                        };
                        let want = match oracle.peek_key() {
                            Some(k) if *k <= limit => oracle.pop(),
                            _ => None,
                        };
                        let got = q.pop_below(&limit);
                        assert_eq!(got, want, "seed {seed} diverged");
                        if let Some((k, _)) = got {
                            parents.push(k);
                            if parents.len() > 8 {
                                parents.remove(0);
                            }
                        }
                    }
                }
            }
            while let Some(got) = q.pop_any() {
                assert_eq!(Some(got), oracle.pop(), "seed {seed} diverged on drain");
            }
            assert_eq!(oracle.len(), 0);
        }
    }

    #[test]
    fn mint_seq_is_strictly_monotone() {
        let mut ctr = 0u64;
        let a = mint_seq(&mut ctr);
        let b = mint_seq(&mut ctr);
        let c = mint_seq(&mut ctr);
        assert!(a < b && b < c);
        assert_eq!(a, 1, "mint counters start at 1 (0 is reserved for MIN)");
    }

    #[test]
    fn clamped_past_is_counted_on_keyed_queues() {
        let mut q = KeyedQueue::new();
        q.schedule(Key::initial(t(5), 0, 1), ());
        q.pop_any();
        assert_eq!(q.clamped_past(), 0);
        let stale = Key::initial(t(2), 0, 2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            q.schedule(stale, ());
        }));
        if cfg!(debug_assertions) {
            assert!(result.is_err());
        } else {
            assert!(result.is_ok());
            assert_eq!(q.clamped_past(), 1);
        }
    }
}
