//! # wg-simcore — deterministic discrete-event simulation engine
//!
//! This crate provides the small, reusable simulation substrate that the rest of
//! the NFS write-gathering reproduction is built on:
//!
//! * [`SimTime`] / [`Duration`] — a nanosecond-resolution virtual clock,
//! * [`EventQueue`] — a deterministic future-event list (ties broken by
//!   insertion order, so identical inputs always produce identical runs),
//! * [`Cpu`] / [`MultiCpu`] — shared processor resources with busy-time
//!   accounting, used to model server (and client) CPU utilisation; a one-core
//!   [`MultiCpu`] is bit-identical to [`Cpu`],
//! * [`stats`] — counters, time-weighted utilisation trackers and latency
//!   histograms used by every table in the paper,
//! * [`trace`] — an event trace recorder used to regenerate Figure 1,
//! * [`rng`] — a tiny deterministic PRNG so that the models that need
//!   randomness (SFS workload inter-arrivals, loss injection) do not depend on
//!   platform entropy.
//!
//! The engine is intentionally *passive*: component models (disk, NVRAM,
//! network, filesystem, client, server) are plain state machines that take the
//! current [`SimTime`] and return either completion times or action lists.  A
//! top-level orchestrator (see the `wg-workload` crate) owns the event queue
//! and routes events between components.  This keeps each model independently
//! unit-testable and keeps the whole simulation single-threaded and
//! reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calq;
pub mod cpu;
pub mod fault;
pub mod fxmap;
pub mod parallel;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use calq::{CalKey, CalStats, CalendarQueue};
pub use cpu::{Cpu, MultiCpu};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use fxmap::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use parallel::{BoundCell, Key, KeyedQueue, Mailbox, Monitor, OpWindow};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use stats::{Counter, LatencyStat, Utilization};
pub use time::{Duration, SimTime};
pub use trace::{Trace, TraceEvent, TraceKind};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_are_usable() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule_at(SimTime::ZERO, 1);
        assert_eq!(
            q.pop().map(|(_, e)| e),
            Some((SimTime::ZERO, 1)).map(|(_, e)| e)
        );
        let _ = Cpu::new();
        let _ = SimRng::seed_from(42);
    }
}
