//! Event trace recording.
//!
//! Figure 1 of the paper is a `tcpdump`-style timeline comparing a standard
//! server against a gathering server for a 4-biod sequential writer: write
//! requests arriving, data and metadata going to disk, and replies leaving.
//! [`Trace`] records exactly that information from the simulation so the
//! `figure1` harness (and the `timeline_trace` example) can print the same
//! picture.

use crate::time::SimTime;

/// The category of a traced event, mirroring the annotations in Figure 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize)]
pub enum TraceKind {
    /// A client application write entered the client kernel (hand-off to biod
    /// or blocking send).
    ClientWriteIssued,
    /// The client application process blocked because no biod was available.
    ClientBlocked,
    /// The client application process resumed after a reply freed a biod.
    ClientUnblocked,
    /// A write request datagram arrived at the server socket buffer.
    RequestArrived,
    /// A request was dropped because the server socket buffer was full.
    RequestDropped,
    /// An nfsd began processing a request.
    NfsdStart,
    /// An nfsd queued its reply on the active-write queue (gathering).
    ReplyDeferred,
    /// An nfsd began procrastinating, waiting for a follow-on write.
    Procrastinate,
    /// File data was written to disk or NVRAM (one transfer).
    DataToDisk,
    /// Metadata (inode / indirect blocks) was written to disk or NVRAM.
    MetadataToDisk,
    /// A reply left the server.
    ReplySent,
    /// A reply arrived back at the client.
    ReplyReceived,
    /// A client retransmitted a request after a timeout.
    Retransmit,
}

/// One traced event.
#[derive(Clone, Debug, serde::Serialize)]
pub struct TraceEvent {
    /// When the event happened.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
    /// Which entity it happened to (request sequence number, nfsd id, ...).
    pub subject: u64,
    /// Free-form detail (byte counts, offsets, block numbers).
    pub detail: String,
}

/// An append-only event trace.
///
/// Recording can be disabled (the default for large benchmark runs) so that
/// the per-event allocation cost does not perturb timing-independent results
/// or bloat memory.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// A disabled trace: `record` calls are cheap no-ops.
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            events: Vec::new(),
        }
    }

    /// An enabled trace that stores every recorded event.
    pub fn enabled() -> Self {
        Trace {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled).
    pub fn record(
        &mut self,
        at: SimTime,
        kind: TraceKind,
        subject: u64,
        detail: impl Into<String>,
    ) {
        if self.enabled {
            self.events.push(TraceEvent {
                at,
                kind,
                subject,
                detail: detail.into(),
            });
        }
    }

    /// All recorded events in chronological (insertion) order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of one kind, in order.
    pub fn events_of(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Number of recorded events of one kind.
    pub fn count_of(&self, kind: TraceKind) -> usize {
        self.events_of(kind).count()
    }

    /// Render the trace as a human-readable timeline, one line per event.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "{:>12.3} ms  {:<18} #{:<6} {}\n",
                e.at.as_millis_f64(),
                format!("{:?}", e.kind),
                e.subject,
                e.detail
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, TraceKind::RequestArrived, 1, "w0");
        assert!(!t.is_enabled());
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_keeps_order_and_counts() {
        let mut t = Trace::enabled();
        t.record(
            SimTime::from_millis(1),
            TraceKind::RequestArrived,
            1,
            "8K write",
        );
        t.record(SimTime::from_millis(2), TraceKind::DataToDisk, 1, "8K");
        t.record(
            SimTime::from_millis(3),
            TraceKind::MetadataToDisk,
            1,
            "inode",
        );
        t.record(SimTime::from_millis(4), TraceKind::ReplySent, 1, "");
        assert_eq!(t.events().len(), 4);
        assert_eq!(t.count_of(TraceKind::DataToDisk), 1);
        assert_eq!(t.count_of(TraceKind::Retransmit), 0);
        assert_eq!(
            t.events_of(TraceKind::RequestArrived)
                .next()
                .unwrap()
                .detail,
            "8K write"
        );
    }

    #[test]
    fn render_contains_one_line_per_event() {
        let mut t = Trace::enabled();
        t.record(SimTime::from_millis(1), TraceKind::ReplySent, 7, "fifo");
        t.record(SimTime::from_millis(2), TraceKind::ReplyReceived, 7, "");
        let text = t.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("ReplySent"));
        assert!(text.contains("#7"));
    }
}
