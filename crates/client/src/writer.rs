//! The sequential / random file-writer client.

use wg_simcore::FxHashMap;

use wg_nfsproto::{
    CommitArgs, FileHandle, NfsCall, NfsCallBody, NfsReply, NfsReplyBody, StableHow, StatusReply,
    WriteArgs, Xid,
};
use wg_simcore::{Duration, SimRng, SimTime};

/// In what order the client writes the file's blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessPattern {
    /// Block 0, 1, 2, ... — the common file-transfer case the paper optimises.
    Sequential,
    /// A deterministic pseudo-random permutation of the blocks (§6.11: random
    /// access gathers metadata just as well; data clustering is up to the
    /// filesystem).
    Random {
        /// Seed for the permutation.
        seed: u64,
    },
}

/// Client configuration.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Number of biod write-behind daemons (0 models the single-threaded
    /// "dumb PC" worst case of §6.10).
    pub biods: usize,
    /// Total bytes to write (the paper copies a 10 MB file).
    pub file_size: u64,
    /// Bytes per write request (8 KB, the NFS v2 maximum).
    pub chunk_size: u64,
    /// Client-side CPU time to produce one chunk and traverse the client NFS
    /// code ("a reasonably quick single threaded client" spends little here).
    pub generate_cost: Duration,
    /// Initial retransmission timeout (the paper quotes 1.1 s).
    pub initial_timeout: Duration,
    /// Multiplier applied to the timeout after each retransmission.
    pub backoff_factor: f64,
    /// Give up after this many retransmissions of one request.
    pub max_retransmits: u32,
    /// Access pattern.
    pub pattern: AccessPattern,
    /// Base value for generated transaction ids (lets multiple clients share
    /// a server without xid collisions).
    pub xid_base: u32,
    /// Added (wrapping) to the per-block fill byte of every write payload.
    /// Multi-client runs give each client a distinct salt so integrity checks
    /// can tell whose data landed in a block; 0 preserves the single-client
    /// pattern (block index modulo 256).
    pub fill_salt: u8,
    /// Stability the client requests on every WRITE.  The default
    /// [`StableHow::FileSync`] is the v2 behaviour of the paper's clients.
    /// With [`StableHow::Unstable`] the client runs the NFSv3-style
    /// async-write protocol: replies marked `UNSTABLE` are tracked as
    /// uncommitted alongside their write verifier, a COMMIT is issued at
    /// close, and a verifier mismatch in the COMMIT reply (the server
    /// rebooted and lost the cache) makes the client re-send the affected
    /// ranges and commit again.
    pub stability: StableHow,
    /// Periodic COMMIT pacing for unstable mode: once this many bytes have
    /// been acknowledged `UNSTABLE` since the last COMMIT, issue one
    /// immediately (without blocking the application) instead of letting the
    /// whole file pile up until close.  `0` (the default) keeps the
    /// close-only behaviour; v2-mode clients never commit either way.
    pub commit_interval: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            biods: 4,
            file_size: 10 * 1024 * 1024,
            chunk_size: 8192,
            generate_cost: Duration::from_micros(300),
            initial_timeout: Duration::from_millis(1100),
            backoff_factor: 2.0,
            max_retransmits: 10,
            pattern: AccessPattern::Sequential,
            xid_base: 0x0001_0000,
            fill_salt: 0,
            stability: StableHow::FileSync,
            commit_interval: 0,
        }
    }
}

impl ClientConfig {
    /// The paper's 10 MB copy with a given number of biods.
    pub fn ten_megabyte_copy(biods: usize) -> Self {
        ClientConfig {
            biods,
            ..ClientConfig::default()
        }
    }
}

/// Inputs delivered to the client by the orchestrator.
#[derive(Clone, Debug)]
pub enum ClientInput {
    /// Begin the transfer.
    Start,
    /// A reply arrived from the server.
    Reply(NfsReply),
    /// A timer requested via [`ClientAction::Wakeup`] fired.
    Wakeup {
        /// Token identifying the timer.
        token: u64,
    },
}

/// Outputs the orchestrator must act on.
#[derive(Clone, Debug)]
pub enum ClientAction {
    /// Transmit a call to the server starting at the given time.
    Send {
        /// When the datagram is handed to the network.
        at: SimTime,
        /// The call to send.
        call: NfsCall,
    },
    /// Schedule a [`ClientInput::Wakeup`].
    Wakeup {
        /// When to wake the client.
        at: SimTime,
        /// Token to echo back.
        token: u64,
    },
    /// The transfer finished (all data written and acknowledged, i.e. the
    /// `close(2)` returned).
    Completed {
        /// Completion time.
        at: SimTime,
    },
}

/// Measured results of one client run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientStats {
    /// Bytes acknowledged by the server.
    pub bytes_acked: u64,
    /// Write requests sent, excluding retransmissions.
    pub requests_sent: u64,
    /// Retransmissions sent.
    pub retransmissions: u64,
    /// Requests abandoned after `max_retransmits` went unanswered.  Any
    /// non-zero value means the copy did NOT complete: the bytes were never
    /// acknowledged and must not be reported as silently written.
    pub gave_up: u64,
    /// When the transfer started.
    pub started_at: SimTime,
    /// When the close completed.
    pub completed_at: SimTime,
    /// Total time the application process spent blocked waiting for a reply
    /// (directly or in close).
    pub blocked_time: Duration,
    /// COMMIT requests sent (unstable mode only; excludes retransmissions).
    pub commits_sent: u64,
    /// COMMIT replies whose verifier did not match the one some uncommitted
    /// write was acknowledged under — each one means the server rebooted with
    /// the client's data in its cache.
    pub verifier_mismatches: u64,
    /// Bytes re-sent because a verifier mismatch voided their acknowledgement.
    pub resent_bytes: u64,
    /// COMMITs issued by interval pacing (a subset of `commits_sent`).
    pub paced_commits: u64,
}

impl ClientStats {
    /// Client write speed in KB/s, the first row of every table.
    pub fn write_kb_per_sec(&self) -> f64 {
        let elapsed = self.completed_at.since(self.started_at).as_secs_f64();
        if elapsed <= 0.0 {
            return 0.0;
        }
        self.bytes_acked as f64 / 1024.0 / elapsed
    }
}

/// What a timer token means.
#[derive(Clone, Copy, Debug)]
enum TimerKind {
    /// The application finished generating a chunk.
    GenerateDone,
    /// A retransmission timer for the given xid (and the attempt number it
    /// was armed for, so stale timers can be ignored).
    Retransmit { xid: Xid, attempt: u32 },
}

/// What an outstanding request is (drives reply handling and retransmission).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ReqKind {
    Write,
    Commit,
}

#[derive(Clone, Debug)]
struct Outstanding {
    kind: ReqKind,
    offset: u64,
    len: u64,
    attempt: u32,
    /// `true` if the application process itself is blocked on this request
    /// (it could not be handed to a biod).
    app_blocking: bool,
    /// Index of the biod carrying it, if any.
    biod: Option<usize>,
    first_sent: SimTime,
}

/// Where the application process is in its run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AppState {
    /// Not started yet.
    Idle,
    /// Generating the next chunk (a timer is pending).
    Generating,
    /// Blocked waiting for the reply to the request it sent itself.
    BlockedOnRequest(Xid),
    /// All chunks issued; waiting for outstanding replies (sync-on-close).
    Closing,
    /// Finished.
    Done,
}

/// The file-writer client state machine.
#[derive(Clone, Debug)]
pub struct FileWriterClient {
    config: ClientConfig,
    handle: FileHandle,
    /// Block indices still to be issued, in issue order (front = next).
    remaining: Vec<u64>,
    next_block_cursor: usize,
    biod_busy: Vec<bool>,
    outstanding: FxHashMap<Xid, Outstanding>,
    app: AppState,
    next_xid: u32,
    timers: FxHashMap<u64, TimerKind>,
    next_token: u64,
    stats: ClientStats,
    blocked_since: Option<SimTime>,
    /// Every `(offset, len)` the server acknowledged, in acknowledgement
    /// order.  The fault-injection recovery oracle walks this after a crash:
    /// each acknowledged range must still be readable from stable storage.
    /// In unstable mode a range only lands here once a COMMIT whose verifier
    /// matches its write verifier succeeds (or the server promoted the write
    /// to FILE_SYNC) — so the oracle's promise stays exactly "this data is
    /// on stable storage".
    acked_writes: Vec<(u64, u64)>,
    /// Unstable-acknowledged ranges not yet covered by a matching COMMIT:
    /// `(offset, len, verifier the WRITE reply carried)`.
    uncommitted: Vec<(u64, u64, u64)>,
    /// Set when a COMMIT exhausted its retransmissions: stop trying (the
    /// uncommitted data stays un-acked, a counted failure).
    commit_gave_up: bool,
    /// A paced (interval-triggered) COMMIT is outstanding; pacing never
    /// stacks a second one behind it.
    paced_commit_inflight: bool,
}

impl FileWriterClient {
    /// Create a client that will write `config.file_size` bytes to the file
    /// identified by `handle`.
    pub fn new(config: ClientConfig, handle: FileHandle) -> Self {
        let blocks = config.file_size.div_ceil(config.chunk_size);
        let mut order: Vec<u64> = (0..blocks).collect();
        if let AccessPattern::Random { seed } = config.pattern {
            let mut rng = SimRng::seed_from(seed);
            // Fisher-Yates shuffle.
            for i in (1..order.len()).rev() {
                let j = rng.next_below(i as u64 + 1) as usize;
                order.swap(i, j);
            }
        }
        FileWriterClient {
            biod_busy: vec![false; config.biods],
            remaining: order,
            next_block_cursor: 0,
            outstanding: FxHashMap::default(),
            app: AppState::Idle,
            next_xid: config.xid_base,
            timers: FxHashMap::default(),
            next_token: 0,
            stats: ClientStats::default(),
            blocked_since: None,
            acked_writes: Vec::with_capacity(blocks as usize),
            uncommitted: Vec::new(),
            commit_gave_up: false,
            paced_commit_inflight: false,
            handle,
            config,
        }
    }

    /// Measured statistics (final once [`ClientAction::Completed`] has been
    /// emitted).
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// `true` once the transfer (including sync-on-close) has finished.
    pub fn is_done(&self) -> bool {
        self.app == AppState::Done
    }

    /// The client's configuration.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// Every `(offset, len)` range the server has acknowledged so far, in
    /// acknowledgement order.  Used by the fault-injection recovery oracle.
    /// In unstable mode, only ranges a successful COMMIT covered.
    pub fn acked_writes(&self) -> &[(u64, u64)] {
        &self.acked_writes
    }

    /// Ranges acknowledged with `UNSTABLE` semantics and not yet covered by a
    /// matching COMMIT (empty for v2-mode clients and after a clean close).
    pub fn uncommitted_ranges(&self) -> &[(u64, u64, u64)] {
        &self.uncommitted
    }

    /// The fill byte this client writes into the block at `offset` (see
    /// [`FileWriterClient::send_write`]'s payload construction).
    pub fn fill_byte_for(&self, offset: u64) -> u8 {
        ((offset / self.config.chunk_size) as u8).wrapping_add(self.config.fill_salt)
    }

    /// Process one input, producing actions for the orchestrator.
    pub fn handle(&mut self, now: SimTime, input: ClientInput) -> Vec<ClientAction> {
        let mut actions = Vec::new();
        self.handle_into(now, input, &mut actions);
        actions
    }

    /// Process one input, appending actions to a caller-owned buffer.
    ///
    /// Orchestrators driving millions of events reuse one scratch vector
    /// across the whole run instead of allocating a fresh `Vec` per event —
    /// see `FileCopySystem::run`.
    pub fn handle_into(
        &mut self,
        now: SimTime,
        input: ClientInput,
        actions: &mut Vec<ClientAction>,
    ) {
        match input {
            ClientInput::Start => {
                self.stats.started_at = now;
                self.start_generating(now, actions);
            }
            ClientInput::Reply(reply) => self.on_reply(now, reply, actions),
            ClientInput::Wakeup { token } => {
                if let Some(kind) = self.timers.remove(&token) {
                    match kind {
                        TimerKind::GenerateDone => self.on_chunk_ready(now, actions),
                        TimerKind::Retransmit { xid, attempt } => {
                            self.on_retransmit_timer(now, xid, attempt, actions)
                        }
                    }
                }
            }
        }
    }

    fn schedule(&mut self, at: SimTime, kind: TimerKind, actions: &mut Vec<ClientAction>) {
        let token = self.next_token;
        self.next_token += 1;
        self.timers.insert(token, kind);
        actions.push(ClientAction::Wakeup { at, token });
    }

    fn start_generating(&mut self, now: SimTime, actions: &mut Vec<ClientAction>) {
        if self.next_block_cursor >= self.remaining.len() {
            self.enter_close(now, actions);
            return;
        }
        self.app = AppState::Generating;
        self.schedule(
            now + self.config.generate_cost,
            TimerKind::GenerateDone,
            actions,
        );
    }

    /// The application produced a chunk that must go to the wire.
    fn on_chunk_ready(&mut self, now: SimTime, actions: &mut Vec<ClientAction>) {
        let block = self.remaining[self.next_block_cursor];
        self.next_block_cursor += 1;
        let offset = block * self.config.chunk_size;
        let len = self
            .config
            .chunk_size
            .min(self.config.file_size - offset.min(self.config.file_size));
        let xid = Xid(self.next_xid);
        self.next_xid += 1;

        // Hand off to an idle biod, or send it ourselves and block.
        let idle_biod = self.biod_busy.iter().position(|b| !b);
        let app_blocking = idle_biod.is_none();
        if let Some(b) = idle_biod {
            self.biod_busy[b] = true;
        }
        self.outstanding.insert(
            xid,
            Outstanding {
                kind: ReqKind::Write,
                offset,
                len,
                attempt: 0,
                app_blocking,
                biod: idle_biod,
                first_sent: now,
            },
        );
        self.stats.requests_sent += 1;
        self.send_request(now, xid, actions);

        if app_blocking {
            self.app = AppState::BlockedOnRequest(xid);
            self.blocked_since = Some(now);
        } else {
            // Keep generating in parallel with the biod's request.
            self.start_generating(now, actions);
        }
    }

    /// (Re-)send the request `xid`.  Its [`Outstanding`] entry must already
    /// be in the table: the entry's kind/offset/len drive the wire body and
    /// its current `attempt` drives the retransmission backoff.
    fn send_request(&mut self, now: SimTime, xid: Xid, actions: &mut Vec<ClientAction>) {
        let out = self.outstanding[&xid].clone();
        let body = match out.kind {
            ReqKind::Write => {
                // Deterministic, recognisable payload: the low byte of the
                // block index (salted per client in multi-client runs), so
                // end-to-end tests can verify data integrity at the server.
                // Carried as a fill pattern — no payload bytes are allocated
                // anywhere on the simulated datapath.
                let fill = ((out.offset / self.config.chunk_size) as u8)
                    .wrapping_add(self.config.fill_salt);
                NfsCallBody::Write(
                    WriteArgs::fill(self.handle, out.offset as u32, fill, out.len as u32)
                        .with_stability(self.config.stability),
                )
            }
            // Commit the whole file (count = 0 = to EOF): this client's close
            // wants everything stable, not a range.
            ReqKind::Commit => NfsCallBody::Commit(CommitArgs {
                file: self.handle,
                offset: 0,
                count: 0,
            }),
        };
        let call = NfsCall::new(xid, body);
        actions.push(ClientAction::Send { at: now, call });
        // Arm the retransmission timer for this attempt.
        let mut timeout = self.config.initial_timeout.as_secs_f64();
        for _ in 0..out.attempt {
            timeout *= self.config.backoff_factor;
        }
        self.schedule(
            now + Duration::from_secs_f64(timeout),
            TimerKind::Retransmit {
                xid,
                attempt: out.attempt,
            },
            actions,
        );
    }

    fn on_reply(&mut self, now: SimTime, reply: NfsReply, actions: &mut Vec<ClientAction>) {
        let Some(out) = self.outstanding.remove(&reply.xid) else {
            // A reply for something already answered (e.g. the reply to a
            // retransmission we had given up on): ignore.
            return;
        };
        match out.kind {
            ReqKind::Write => {
                self.stats.bytes_acked += out.len;
                match &reply.body {
                    // Acknowledged volatile: remember the range and the
                    // verifier; only a matching COMMIT makes it "acked".
                    NfsReplyBody::WriteVerf(StatusReply::Ok(ok))
                        if ok.committed == StableHow::Unstable =>
                    {
                        self.uncommitted.push((out.offset, out.len, ok.verf));
                        self.maybe_paced_commit(now, actions);
                    }
                    // FILE_SYNC semantics (v2 reply, or a promoted unstable
                    // write whose WriteVerf says FILE_SYNC): stable now.
                    _ => self.acked_writes.push((out.offset, out.len)),
                }
            }
            ReqKind::Commit => {
                self.paced_commit_inflight = false;
                if let NfsReplyBody::Commit(StatusReply::Ok(ok)) = &reply.body {
                    self.on_commit_ok(ok.verf);
                }
                // An error reply leaves everything uncommitted (never acked);
                // the close path below decides whether to try again.
            }
        }
        if let Some(b) = out.biod {
            self.biod_busy[b] = false;
        }
        if out.app_blocking {
            if let Some(since) = self.blocked_since.take() {
                self.stats.blocked_time += now.since(since);
            }
        }
        match self.app {
            AppState::BlockedOnRequest(xid) if xid == reply.xid => {
                // The application wakes up and keeps writing (after a
                // verifier mismatch, `start_generating` picks up the
                // re-queued blocks; after a clean commit it falls through to
                // the close path and finishes).
                self.start_generating(now, actions);
            }
            AppState::Closing if self.outstanding.is_empty() => {
                self.enter_close(now, actions);
            }
            _ => {}
        }
        let _ = out.first_sent;
    }

    /// Interval pacing: once `commit_interval` bytes sit uncommitted, issue
    /// a COMMIT now — carried by nobody (no biod, no blocked application),
    /// just an outstanding request the close path will wait on like any
    /// other.  At most one paced COMMIT is in flight at a time.
    fn maybe_paced_commit(&mut self, now: SimTime, actions: &mut Vec<ClientAction>) {
        if self.config.commit_interval == 0 || self.paced_commit_inflight || self.commit_gave_up {
            return;
        }
        let pending: u64 = self.uncommitted.iter().map(|&(_, len, _)| len).sum();
        if pending < self.config.commit_interval {
            return;
        }
        let xid = Xid(self.next_xid);
        self.next_xid += 1;
        self.outstanding.insert(
            xid,
            Outstanding {
                kind: ReqKind::Commit,
                offset: 0,
                len: 0,
                attempt: 0,
                app_blocking: false,
                biod: None,
                first_sent: now,
            },
        );
        self.stats.commits_sent += 1;
        self.stats.paced_commits += 1;
        self.paced_commit_inflight = true;
        self.send_request(now, xid, actions);
    }

    /// A COMMIT succeeded with verifier `verf`: uncommitted ranges whose
    /// write verifier matches are stable now; ranges acknowledged under a
    /// different boot's verifier were lost to a reboot and must be re-sent.
    fn on_commit_ok(&mut self, verf: u64) {
        let mut mismatched = false;
        let mut requeue: Vec<u64> = Vec::new();
        for &(offset, len, wverf) in &self.uncommitted {
            if wverf == verf {
                self.acked_writes.push((offset, len));
            } else {
                mismatched = true;
                // The acknowledgement was voided along with the data; the
                // re-sent write will count these bytes again.
                self.stats.bytes_acked -= len;
                self.stats.resent_bytes += len;
                requeue.push(offset / self.config.chunk_size);
            }
        }
        self.uncommitted.clear();
        if mismatched {
            self.stats.verifier_mismatches += 1;
            self.remaining.extend(requeue);
        }
    }

    fn on_retransmit_timer(
        &mut self,
        now: SimTime,
        xid: Xid,
        attempt: u32,
        actions: &mut Vec<ClientAction>,
    ) {
        let Some(out) = self.outstanding.get_mut(&xid) else {
            return; // already answered
        };
        if out.attempt != attempt {
            return; // stale timer from an earlier attempt
        }
        if out.attempt >= self.config.max_retransmits {
            // Give up: in a real client this surfaces as a hard error or a
            // "server not responding" console message.  Treat the data as
            // unacknowledged — counted, never silently absorbed — and carry
            // on so the run terminates.
            self.stats.gave_up += 1;
            let out = self.outstanding.remove(&xid).expect("present");
            if out.kind == ReqKind::Commit {
                self.commit_gave_up = true;
                self.paced_commit_inflight = false;
            }
            if let Some(b) = out.biod {
                self.biod_busy[b] = false;
            }
            if self.app == AppState::BlockedOnRequest(xid) {
                self.start_generating(now, actions);
            } else if self.app == AppState::Closing && self.outstanding.is_empty() {
                self.finish(now, actions);
            }
            return;
        }
        out.attempt += 1;
        self.stats.retransmissions += 1;
        self.send_request(now, xid, actions);
    }

    fn enter_close(&mut self, now: SimTime, actions: &mut Vec<ClientAction>) {
        if !self.outstanding.is_empty() {
            // sync-on-close: block until every outstanding request is
            // answered (the blocked clock may already be running if we got
            // here from a reply in the Closing state).
            self.app = AppState::Closing;
            self.blocked_since.get_or_insert(now);
            return;
        }
        // Everything answered.  An unstable-mode close owes the server a
        // COMMIT for whatever is still volatile; the application blocks on
        // it like on any request it sends itself.
        if !self.uncommitted.is_empty() && !self.commit_gave_up {
            let xid = Xid(self.next_xid);
            self.next_xid += 1;
            self.outstanding.insert(
                xid,
                Outstanding {
                    kind: ReqKind::Commit,
                    offset: 0,
                    len: 0,
                    attempt: 0,
                    app_blocking: true,
                    biod: None,
                    first_sent: now,
                },
            );
            self.stats.commits_sent += 1;
            self.app = AppState::BlockedOnRequest(xid);
            self.blocked_since.get_or_insert(now);
            self.send_request(now, xid, actions);
            return;
        }
        self.finish(now, actions);
    }

    fn finish(&mut self, now: SimTime, actions: &mut Vec<ClientAction>) {
        if let Some(since) = self.blocked_since.take() {
            self.stats.blocked_time += now.since(since);
        }
        self.app = AppState::Done;
        self.stats.completed_at = now;
        actions.push(ClientAction::Completed { at: now });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_nfsproto::{Fattr, NfsReplyBody, StatusReply};

    fn handle() -> FileHandle {
        FileHandle::new(1, 10, 1)
    }

    fn ok_reply(xid: Xid) -> NfsReply {
        NfsReply::new(xid, NfsReplyBody::Attr(StatusReply::Ok(Fattr::default())))
    }

    /// Drive a client against a perfect zero-latency server that answers each
    /// write after `service` time.
    fn run_against_ideal_server(mut client: FileWriterClient, service: Duration) -> ClientStats {
        let mut queue = wg_simcore::EventQueue::new();
        queue.schedule_at(SimTime::ZERO, ClientInput::Start);
        let mut guard = 0u64;
        while let Some((t, input)) = queue.pop() {
            guard += 1;
            assert!(guard < 2_000_000, "runaway client simulation");
            for action in client.handle(t, input) {
                match action {
                    ClientAction::Send { at, call } => {
                        queue.schedule_at(at + service, ClientInput::Reply(ok_reply(call.xid)));
                    }
                    ClientAction::Wakeup { at, token } => {
                        queue.schedule_at(at, ClientInput::Wakeup { token });
                    }
                    ClientAction::Completed { .. } => {}
                }
            }
            if client.is_done() {
                break;
            }
        }
        assert!(client.is_done());
        client.stats()
    }

    #[test]
    fn writes_whole_file_and_completes() {
        let cfg = ClientConfig {
            file_size: 256 * 1024,
            biods: 4,
            ..ClientConfig::default()
        };
        let client = FileWriterClient::new(cfg, handle());
        let stats = run_against_ideal_server(client, Duration::from_millis(5));
        assert_eq!(stats.bytes_acked, 256 * 1024);
        assert_eq!(stats.requests_sent, 32);
        assert_eq!(stats.retransmissions, 0);
        assert!(stats.completed_at > stats.started_at);
        assert!(stats.write_kb_per_sec() > 0.0);
    }

    #[test]
    fn zero_biods_fully_serialises_requests() {
        let service = Duration::from_millis(10);
        let cfg = ClientConfig {
            file_size: 80 * 1024, // 10 chunks
            biods: 0,
            generate_cost: Duration::from_micros(100),
            ..ClientConfig::default()
        };
        let stats = run_against_ideal_server(FileWriterClient::new(cfg, handle()), service);
        // Each write waits for its own reply: at least 10 * 10 ms.
        let elapsed = stats.completed_at.since(stats.started_at);
        assert!(elapsed >= Duration::from_millis(100));
        assert!(stats.blocked_time >= Duration::from_millis(95));
    }

    #[test]
    fn more_biods_means_more_overlap_and_higher_throughput() {
        let service = Duration::from_millis(10);
        let make = |biods| {
            let cfg = ClientConfig {
                file_size: 400 * 1024,
                biods,
                generate_cost: Duration::from_micros(100),
                ..ClientConfig::default()
            };
            run_against_ideal_server(FileWriterClient::new(cfg, handle()), service)
                .write_kb_per_sec()
        };
        let none = make(0);
        let four = make(4);
        let fifteen = make(15);
        assert!(
            four > none * 2.0,
            "0 biods {none:.0} KB/s vs 4 biods {four:.0} KB/s"
        );
        assert!(
            fifteen >= four,
            "4 biods {four:.0} vs 15 biods {fifteen:.0}"
        );
    }

    #[test]
    fn window_never_exceeds_biods_plus_one() {
        let cfg = ClientConfig {
            file_size: 800 * 1024,
            biods: 3,
            generate_cost: Duration::from_micros(50),
            ..ClientConfig::default()
        };
        let mut client = FileWriterClient::new(cfg, handle());
        let mut queue = wg_simcore::EventQueue::new();
        queue.schedule_at(SimTime::ZERO, ClientInput::Start);
        let mut in_flight = 0usize;
        let mut max_in_flight = 0usize;
        while let Some((t, input)) = queue.pop() {
            // A reply being delivered takes one request out of flight.
            if matches!(input, ClientInput::Reply(_)) {
                in_flight = in_flight.saturating_sub(1);
            }
            for action in client.handle(t, input) {
                match action {
                    ClientAction::Send { at, call } => {
                        in_flight += 1;
                        max_in_flight = max_in_flight.max(in_flight);
                        queue.schedule_at(
                            at + Duration::from_millis(20),
                            ClientInput::Reply(ok_reply(call.xid)),
                        );
                    }
                    ClientAction::Wakeup { at, token } => {
                        queue.schedule_at(at, ClientInput::Wakeup { token })
                    }
                    ClientAction::Completed { .. } => {}
                }
            }
            if client.is_done() {
                break;
            }
        }
        assert!(client.is_done());
        // 3 biods plus the blocked application process itself.
        assert!(max_in_flight <= 4, "window grew to {max_in_flight}");
    }

    #[test]
    fn random_pattern_covers_every_block_exactly_once() {
        let cfg = ClientConfig {
            file_size: 160 * 1024, // 20 blocks
            biods: 4,
            pattern: AccessPattern::Random { seed: 42 },
            ..ClientConfig::default()
        };
        let mut client = FileWriterClient::new(cfg, handle());
        let mut offsets = Vec::new();
        let mut queue = wg_simcore::EventQueue::new();
        queue.schedule_at(SimTime::ZERO, ClientInput::Start);
        while let Some((t, input)) = queue.pop() {
            for action in client.handle(t, input) {
                match action {
                    ClientAction::Send { at, call } => {
                        if let NfsCallBody::Write(w) = &call.body {
                            offsets.push(w.offset as u64);
                        }
                        queue.schedule_at(
                            at + Duration::from_millis(1),
                            ClientInput::Reply(ok_reply(call.xid)),
                        );
                    }
                    ClientAction::Wakeup { at, token } => {
                        queue.schedule_at(at, ClientInput::Wakeup { token })
                    }
                    ClientAction::Completed { .. } => {}
                }
            }
            if client.is_done() {
                break;
            }
        }
        offsets.sort_unstable();
        let expected: Vec<u64> = (0..20u64).map(|b| b * 8192).collect();
        assert_eq!(offsets, expected);
        // But the issue order was not sequential.
        let cfg2 = ClientConfig {
            file_size: 160 * 1024,
            pattern: AccessPattern::Random { seed: 42 },
            ..ClientConfig::default()
        };
        let c2 = FileWriterClient::new(cfg2, handle());
        assert_ne!(c2.remaining, (0..20u64).collect::<Vec<_>>());
    }

    #[test]
    fn lost_requests_are_retransmitted_with_backoff() {
        let cfg = ClientConfig {
            file_size: 16 * 1024, // 2 chunks
            biods: 0,
            initial_timeout: Duration::from_millis(100),
            backoff_factor: 2.0,
            ..ClientConfig::default()
        };
        let mut client = FileWriterClient::new(cfg, handle());
        let mut queue = wg_simcore::EventQueue::new();
        queue.schedule_at(SimTime::ZERO, ClientInput::Start);
        let mut sends: Vec<(SimTime, Xid)> = Vec::new();
        while let Some((t, input)) = queue.pop() {
            for action in client.handle(t, input) {
                match action {
                    ClientAction::Send { at, call } => {
                        sends.push((at, call.xid));
                        // Drop the first two transmissions of the first xid;
                        // answer everything else promptly.
                        let drops_for_this_xid =
                            sends.iter().filter(|(_, x)| *x == call.xid).count();
                        let is_first_xid = call.xid == sends[0].1;
                        if !(is_first_xid && drops_for_this_xid <= 2) {
                            queue.schedule_at(
                                at + Duration::from_millis(5),
                                ClientInput::Reply(ok_reply(call.xid)),
                            );
                        }
                    }
                    ClientAction::Wakeup { at, token } => {
                        queue.schedule_at(at, ClientInput::Wakeup { token })
                    }
                    ClientAction::Completed { .. } => {}
                }
            }
            if client.is_done() {
                break;
            }
        }
        assert!(client.is_done());
        let stats = client.stats();
        assert_eq!(stats.retransmissions, 2);
        assert_eq!(stats.bytes_acked, 16 * 1024);
        // Backoff: the second retransmission waited twice as long as the first.
        let first_xid = sends[0].1;
        let times: Vec<SimTime> = sends
            .iter()
            .filter(|(_, x)| *x == first_xid)
            .map(|(t, _)| *t)
            .collect();
        assert_eq!(times.len(), 3);
        let gap1 = times[1].since(times[0]);
        let gap2 = times[2].since(times[1]);
        assert!(gap2 > gap1, "expected backoff: {gap1} then {gap2}");
    }

    #[test]
    fn gives_up_after_max_retransmits() {
        let cfg = ClientConfig {
            file_size: 8 * 1024,
            biods: 0,
            initial_timeout: Duration::from_millis(10),
            max_retransmits: 3,
            ..ClientConfig::default()
        };
        let mut client = FileWriterClient::new(cfg, handle());
        let mut queue = wg_simcore::EventQueue::new();
        queue.schedule_at(SimTime::ZERO, ClientInput::Start);
        // Never answer anything.
        while let Some((t, input)) = queue.pop() {
            for action in client.handle(t, input) {
                if let ClientAction::Wakeup { at, token } = action {
                    queue.schedule_at(at, ClientInput::Wakeup { token });
                }
            }
            if client.is_done() {
                break;
            }
        }
        assert!(client.is_done());
        let stats = client.stats();
        assert_eq!(stats.retransmissions, 3);
        assert_eq!(stats.bytes_acked, 0);
        // The abandoned request is a *counted* failure, never silent success.
        assert_eq!(stats.gave_up, 1);
        assert!(client.acked_writes().is_empty());
    }

    /// A toy unstable-mode server: acknowledges writes `UNSTABLE` under the
    /// current verifier, answers COMMIT with the current verifier, and can be
    /// "crashed" (verifier bump) at a scheduled time.
    fn run_unstable_client(
        mut client: FileWriterClient,
        crash_after_writes: Option<u64>,
    ) -> FileWriterClient {
        let mut queue = wg_simcore::EventQueue::new();
        queue.schedule_at(SimTime::ZERO, ClientInput::Start);
        let mut verf = 100u64;
        let mut writes_seen = 0u64;
        let mut guard = 0u64;
        while let Some((t, input)) = queue.pop() {
            guard += 1;
            assert!(guard < 100_000, "runaway unstable client simulation");
            for action in client.handle(t, input) {
                match action {
                    ClientAction::Send { at, call } => {
                        let body = match &call.body {
                            NfsCallBody::Write(_) => {
                                writes_seen += 1;
                                if Some(writes_seen) == crash_after_writes {
                                    // The server reboots: cached data dies,
                                    // the next boot mints a new verifier.
                                    verf += 1;
                                }
                                NfsReplyBody::WriteVerf(StatusReply::Ok(wg_nfsproto::WriteVerfOk {
                                    attributes: Fattr::default(),
                                    committed: StableHow::Unstable,
                                    verf,
                                }))
                            }
                            NfsCallBody::Commit(_) => {
                                NfsReplyBody::Commit(StatusReply::Ok(wg_nfsproto::CommitOk {
                                    attributes: Fattr::default(),
                                    verf,
                                }))
                            }
                            other => panic!("unexpected call {other:?}"),
                        };
                        queue.schedule_at(
                            at + Duration::from_millis(1),
                            ClientInput::Reply(NfsReply::new(call.xid, body)),
                        );
                    }
                    ClientAction::Wakeup { at, token } => {
                        queue.schedule_at(at, ClientInput::Wakeup { token });
                    }
                    ClientAction::Completed { .. } => {}
                }
            }
            if client.is_done() {
                break;
            }
        }
        assert!(client.is_done());
        client
    }

    #[test]
    fn unstable_close_commits_and_only_then_reports_acked() {
        let cfg = ClientConfig {
            file_size: 64 * 1024, // 8 chunks
            biods: 4,
            stability: StableHow::Unstable,
            ..ClientConfig::default()
        };
        let client = run_unstable_client(FileWriterClient::new(cfg, handle()), None);
        let stats = client.stats();
        assert_eq!(stats.commits_sent, 1);
        assert_eq!(stats.verifier_mismatches, 0);
        assert_eq!(stats.bytes_acked, 64 * 1024);
        // Every range moved from uncommitted to acked via the COMMIT.
        assert!(client.uncommitted_ranges().is_empty());
        let total: u64 = client.acked_writes().iter().map(|(_, l)| l).sum();
        assert_eq!(total, 64 * 1024);
    }

    #[test]
    fn commit_interval_paces_commits_through_the_transfer() {
        // 64 KB file, COMMIT every 16 KB: pacing fires repeatedly instead of
        // one close-time COMMIT over the whole file.
        let cfg = ClientConfig {
            file_size: 64 * 1024,
            biods: 0, // serialise so the pacing points are exact
            stability: StableHow::Unstable,
            commit_interval: 16 * 1024,
            ..ClientConfig::default()
        };
        let client = run_unstable_client(FileWriterClient::new(cfg, handle()), None);
        let stats = client.stats();
        assert!(
            stats.paced_commits >= 3,
            "expected repeated paced COMMITs, got {}",
            stats.paced_commits
        );
        assert!(stats.commits_sent >= stats.paced_commits);
        assert_eq!(stats.verifier_mismatches, 0);
        assert_eq!(stats.bytes_acked, 64 * 1024);
        assert!(client.uncommitted_ranges().is_empty());
        // Pacing off: exactly the single close-time COMMIT as before.
        let cfg_off = ClientConfig {
            file_size: 64 * 1024,
            biods: 0,
            stability: StableHow::Unstable,
            ..ClientConfig::default()
        };
        let baseline = run_unstable_client(FileWriterClient::new(cfg_off, handle()), None);
        assert_eq!(baseline.stats().commits_sent, 1);
        assert_eq!(baseline.stats().paced_commits, 0);
    }

    #[test]
    fn verifier_mismatch_resends_lost_ranges_and_recommits() {
        let cfg = ClientConfig {
            file_size: 64 * 1024, // 8 chunks
            biods: 0,             // serialise so "crash after 5 writes" is exact
            stability: StableHow::Unstable,
            ..ClientConfig::default()
        };
        // The server "reboots" before acknowledging the 6th write: writes
        // 1–5 carry the old verifier, 6–8 the new one.  The close-time
        // COMMIT returns the new verifier, voiding writes 1–5.
        let client = run_unstable_client(FileWriterClient::new(cfg, handle()), Some(6));
        let stats = client.stats();
        assert_eq!(stats.verifier_mismatches, 1);
        assert_eq!(stats.resent_bytes, 5 * 8192);
        assert_eq!(stats.commits_sent, 2, "a second COMMIT covers the re-send");
        // After recovery everything is acked exactly once.
        assert_eq!(stats.bytes_acked, 64 * 1024);
        assert!(client.uncommitted_ranges().is_empty());
        let mut offsets: Vec<u64> = client.acked_writes().iter().map(|(o, _)| *o).collect();
        offsets.sort_unstable();
        assert_eq!(offsets, (0..8u64).map(|b| b * 8192).collect::<Vec<_>>());
    }

    #[test]
    fn promoted_file_sync_replies_need_no_commit() {
        // A server with no stable lazy destination answers UNSTABLE requests
        // with committed = FILE_SYNC; the client must not track them as
        // uncommitted nor send a COMMIT.
        let cfg = ClientConfig {
            file_size: 32 * 1024,
            biods: 4,
            stability: StableHow::Unstable,
            ..ClientConfig::default()
        };
        let mut client = FileWriterClient::new(cfg, handle());
        let mut queue = wg_simcore::EventQueue::new();
        queue.schedule_at(SimTime::ZERO, ClientInput::Start);
        while let Some((t, input)) = queue.pop() {
            for action in client.handle(t, input) {
                match action {
                    ClientAction::Send { at, call } => {
                        let body = match &call.body {
                            NfsCallBody::Write(_) => {
                                NfsReplyBody::WriteVerf(StatusReply::Ok(wg_nfsproto::WriteVerfOk {
                                    attributes: Fattr::default(),
                                    committed: StableHow::FileSync,
                                    verf: 7,
                                }))
                            }
                            other => panic!("no COMMIT expected, got {other:?}"),
                        };
                        queue.schedule_at(
                            at + Duration::from_millis(1),
                            ClientInput::Reply(NfsReply::new(call.xid, body)),
                        );
                    }
                    ClientAction::Wakeup { at, token } => {
                        queue.schedule_at(at, ClientInput::Wakeup { token });
                    }
                    ClientAction::Completed { .. } => {}
                }
            }
            if client.is_done() {
                break;
            }
        }
        assert!(client.is_done());
        assert_eq!(client.stats().commits_sent, 0);
        assert_eq!(client.stats().bytes_acked, 32 * 1024);
        assert_eq!(client.acked_writes().len(), 4);
    }

    #[test]
    fn empty_file_completes_immediately() {
        let cfg = ClientConfig {
            file_size: 0,
            ..ClientConfig::default()
        };
        let mut client = FileWriterClient::new(cfg, handle());
        let actions = client.handle(SimTime::ZERO, ClientInput::Start);
        assert!(matches!(
            actions.as_slice(),
            [ClientAction::Completed { .. }]
        ));
        assert!(client.is_done());
    }
}
