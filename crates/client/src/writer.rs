//! The sequential / random file-writer client.

use std::collections::HashMap;

use wg_nfsproto::{FileHandle, NfsCall, NfsCallBody, NfsReply, WriteArgs, Xid};
use wg_simcore::{Duration, SimRng, SimTime};

/// In what order the client writes the file's blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessPattern {
    /// Block 0, 1, 2, ... — the common file-transfer case the paper optimises.
    Sequential,
    /// A deterministic pseudo-random permutation of the blocks (§6.11: random
    /// access gathers metadata just as well; data clustering is up to the
    /// filesystem).
    Random {
        /// Seed for the permutation.
        seed: u64,
    },
}

/// Client configuration.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Number of biod write-behind daemons (0 models the single-threaded
    /// "dumb PC" worst case of §6.10).
    pub biods: usize,
    /// Total bytes to write (the paper copies a 10 MB file).
    pub file_size: u64,
    /// Bytes per write request (8 KB, the NFS v2 maximum).
    pub chunk_size: u64,
    /// Client-side CPU time to produce one chunk and traverse the client NFS
    /// code ("a reasonably quick single threaded client" spends little here).
    pub generate_cost: Duration,
    /// Initial retransmission timeout (the paper quotes 1.1 s).
    pub initial_timeout: Duration,
    /// Multiplier applied to the timeout after each retransmission.
    pub backoff_factor: f64,
    /// Give up after this many retransmissions of one request.
    pub max_retransmits: u32,
    /// Access pattern.
    pub pattern: AccessPattern,
    /// Base value for generated transaction ids (lets multiple clients share
    /// a server without xid collisions).
    pub xid_base: u32,
    /// Added (wrapping) to the per-block fill byte of every write payload.
    /// Multi-client runs give each client a distinct salt so integrity checks
    /// can tell whose data landed in a block; 0 preserves the single-client
    /// pattern (block index modulo 256).
    pub fill_salt: u8,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            biods: 4,
            file_size: 10 * 1024 * 1024,
            chunk_size: 8192,
            generate_cost: Duration::from_micros(300),
            initial_timeout: Duration::from_millis(1100),
            backoff_factor: 2.0,
            max_retransmits: 10,
            pattern: AccessPattern::Sequential,
            xid_base: 0x0001_0000,
            fill_salt: 0,
        }
    }
}

impl ClientConfig {
    /// The paper's 10 MB copy with a given number of biods.
    pub fn ten_megabyte_copy(biods: usize) -> Self {
        ClientConfig {
            biods,
            ..ClientConfig::default()
        }
    }
}

/// Inputs delivered to the client by the orchestrator.
#[derive(Clone, Debug)]
pub enum ClientInput {
    /// Begin the transfer.
    Start,
    /// A reply arrived from the server.
    Reply(NfsReply),
    /// A timer requested via [`ClientAction::Wakeup`] fired.
    Wakeup {
        /// Token identifying the timer.
        token: u64,
    },
}

/// Outputs the orchestrator must act on.
#[derive(Clone, Debug)]
pub enum ClientAction {
    /// Transmit a call to the server starting at the given time.
    Send {
        /// When the datagram is handed to the network.
        at: SimTime,
        /// The call to send.
        call: NfsCall,
    },
    /// Schedule a [`ClientInput::Wakeup`].
    Wakeup {
        /// When to wake the client.
        at: SimTime,
        /// Token to echo back.
        token: u64,
    },
    /// The transfer finished (all data written and acknowledged, i.e. the
    /// `close(2)` returned).
    Completed {
        /// Completion time.
        at: SimTime,
    },
}

/// Measured results of one client run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientStats {
    /// Bytes acknowledged by the server.
    pub bytes_acked: u64,
    /// Write requests sent, excluding retransmissions.
    pub requests_sent: u64,
    /// Retransmissions sent.
    pub retransmissions: u64,
    /// Requests abandoned after `max_retransmits` went unanswered.  Any
    /// non-zero value means the copy did NOT complete: the bytes were never
    /// acknowledged and must not be reported as silently written.
    pub gave_up: u64,
    /// When the transfer started.
    pub started_at: SimTime,
    /// When the close completed.
    pub completed_at: SimTime,
    /// Total time the application process spent blocked waiting for a reply
    /// (directly or in close).
    pub blocked_time: Duration,
}

impl ClientStats {
    /// Client write speed in KB/s, the first row of every table.
    pub fn write_kb_per_sec(&self) -> f64 {
        let elapsed = self.completed_at.since(self.started_at).as_secs_f64();
        if elapsed <= 0.0 {
            return 0.0;
        }
        self.bytes_acked as f64 / 1024.0 / elapsed
    }
}

/// What a timer token means.
#[derive(Clone, Copy, Debug)]
enum TimerKind {
    /// The application finished generating a chunk.
    GenerateDone,
    /// A retransmission timer for the given xid (and the attempt number it
    /// was armed for, so stale timers can be ignored).
    Retransmit { xid: Xid, attempt: u32 },
}

#[derive(Clone, Debug)]
struct Outstanding {
    offset: u64,
    len: u64,
    attempt: u32,
    /// `true` if the application process itself is blocked on this request
    /// (it could not be handed to a biod).
    app_blocking: bool,
    /// Index of the biod carrying it, if any.
    biod: Option<usize>,
    first_sent: SimTime,
}

/// Where the application process is in its run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AppState {
    /// Not started yet.
    Idle,
    /// Generating the next chunk (a timer is pending).
    Generating,
    /// Blocked waiting for the reply to the request it sent itself.
    BlockedOnRequest(Xid),
    /// All chunks issued; waiting for outstanding replies (sync-on-close).
    Closing,
    /// Finished.
    Done,
}

/// The file-writer client state machine.
#[derive(Clone, Debug)]
pub struct FileWriterClient {
    config: ClientConfig,
    handle: FileHandle,
    /// Block indices still to be issued, in issue order (front = next).
    remaining: Vec<u64>,
    next_block_cursor: usize,
    biod_busy: Vec<bool>,
    outstanding: HashMap<Xid, Outstanding>,
    app: AppState,
    next_xid: u32,
    timers: HashMap<u64, TimerKind>,
    next_token: u64,
    stats: ClientStats,
    blocked_since: Option<SimTime>,
    /// Every `(offset, len)` the server acknowledged, in acknowledgement
    /// order.  The fault-injection recovery oracle walks this after a crash:
    /// each acknowledged range must still be readable from stable storage.
    acked_writes: Vec<(u64, u64)>,
}

impl FileWriterClient {
    /// Create a client that will write `config.file_size` bytes to the file
    /// identified by `handle`.
    pub fn new(config: ClientConfig, handle: FileHandle) -> Self {
        let blocks = config.file_size.div_ceil(config.chunk_size);
        let mut order: Vec<u64> = (0..blocks).collect();
        if let AccessPattern::Random { seed } = config.pattern {
            let mut rng = SimRng::seed_from(seed);
            // Fisher-Yates shuffle.
            for i in (1..order.len()).rev() {
                let j = rng.next_below(i as u64 + 1) as usize;
                order.swap(i, j);
            }
        }
        FileWriterClient {
            biod_busy: vec![false; config.biods],
            remaining: order,
            next_block_cursor: 0,
            outstanding: HashMap::new(),
            app: AppState::Idle,
            next_xid: config.xid_base,
            timers: HashMap::new(),
            next_token: 0,
            stats: ClientStats::default(),
            blocked_since: None,
            acked_writes: Vec::with_capacity(blocks as usize),
            handle,
            config,
        }
    }

    /// Measured statistics (final once [`ClientAction::Completed`] has been
    /// emitted).
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// `true` once the transfer (including sync-on-close) has finished.
    pub fn is_done(&self) -> bool {
        self.app == AppState::Done
    }

    /// The client's configuration.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// Every `(offset, len)` range the server has acknowledged so far, in
    /// acknowledgement order.  Used by the fault-injection recovery oracle.
    pub fn acked_writes(&self) -> &[(u64, u64)] {
        &self.acked_writes
    }

    /// The fill byte this client writes into the block at `offset` (see
    /// [`FileWriterClient::send_write`]'s payload construction).
    pub fn fill_byte_for(&self, offset: u64) -> u8 {
        ((offset / self.config.chunk_size) as u8).wrapping_add(self.config.fill_salt)
    }

    /// Process one input, producing actions for the orchestrator.
    pub fn handle(&mut self, now: SimTime, input: ClientInput) -> Vec<ClientAction> {
        let mut actions = Vec::new();
        self.handle_into(now, input, &mut actions);
        actions
    }

    /// Process one input, appending actions to a caller-owned buffer.
    ///
    /// Orchestrators driving millions of events reuse one scratch vector
    /// across the whole run instead of allocating a fresh `Vec` per event —
    /// see `FileCopySystem::run`.
    pub fn handle_into(
        &mut self,
        now: SimTime,
        input: ClientInput,
        actions: &mut Vec<ClientAction>,
    ) {
        match input {
            ClientInput::Start => {
                self.stats.started_at = now;
                self.start_generating(now, actions);
            }
            ClientInput::Reply(reply) => self.on_reply(now, reply, actions),
            ClientInput::Wakeup { token } => {
                if let Some(kind) = self.timers.remove(&token) {
                    match kind {
                        TimerKind::GenerateDone => self.on_chunk_ready(now, actions),
                        TimerKind::Retransmit { xid, attempt } => {
                            self.on_retransmit_timer(now, xid, attempt, actions)
                        }
                    }
                }
            }
        }
    }

    fn schedule(&mut self, at: SimTime, kind: TimerKind, actions: &mut Vec<ClientAction>) {
        let token = self.next_token;
        self.next_token += 1;
        self.timers.insert(token, kind);
        actions.push(ClientAction::Wakeup { at, token });
    }

    fn start_generating(&mut self, now: SimTime, actions: &mut Vec<ClientAction>) {
        if self.next_block_cursor >= self.remaining.len() {
            self.enter_close(now, actions);
            return;
        }
        self.app = AppState::Generating;
        self.schedule(
            now + self.config.generate_cost,
            TimerKind::GenerateDone,
            actions,
        );
    }

    /// The application produced a chunk that must go to the wire.
    fn on_chunk_ready(&mut self, now: SimTime, actions: &mut Vec<ClientAction>) {
        let block = self.remaining[self.next_block_cursor];
        self.next_block_cursor += 1;
        let offset = block * self.config.chunk_size;
        let len = self
            .config
            .chunk_size
            .min(self.config.file_size - offset.min(self.config.file_size));
        let xid = Xid(self.next_xid);
        self.next_xid += 1;

        // Hand off to an idle biod, or send it ourselves and block.
        let idle_biod = self.biod_busy.iter().position(|b| !b);
        let app_blocking = idle_biod.is_none();
        if let Some(b) = idle_biod {
            self.biod_busy[b] = true;
        }
        self.outstanding.insert(
            xid,
            Outstanding {
                offset,
                len,
                attempt: 0,
                app_blocking,
                biod: idle_biod,
                first_sent: now,
            },
        );
        self.stats.requests_sent += 1;
        self.send_write(now, xid, offset, len, 0, actions);

        if app_blocking {
            self.app = AppState::BlockedOnRequest(xid);
            self.blocked_since = Some(now);
        } else {
            // Keep generating in parallel with the biod's request.
            self.start_generating(now, actions);
        }
    }

    fn send_write(
        &mut self,
        now: SimTime,
        xid: Xid,
        offset: u64,
        len: u64,
        attempt: u32,
        actions: &mut Vec<ClientAction>,
    ) {
        // Deterministic, recognisable payload: the low byte of the block
        // index (salted per client in multi-client runs), so end-to-end tests
        // can verify data integrity at the server.  Carried as a fill pattern
        // — no payload bytes are allocated anywhere on the simulated datapath.
        let fill = ((offset / self.config.chunk_size) as u8).wrapping_add(self.config.fill_salt);
        let call = NfsCall::new(
            xid,
            NfsCallBody::Write(WriteArgs::fill(
                self.handle,
                offset as u32,
                fill,
                len as u32,
            )),
        );
        actions.push(ClientAction::Send { at: now, call });
        // Arm the retransmission timer for this attempt.
        let mut timeout = self.config.initial_timeout.as_secs_f64();
        for _ in 0..attempt {
            timeout *= self.config.backoff_factor;
        }
        self.schedule(
            now + Duration::from_secs_f64(timeout),
            TimerKind::Retransmit { xid, attempt },
            actions,
        );
    }

    fn on_reply(&mut self, now: SimTime, reply: NfsReply, actions: &mut Vec<ClientAction>) {
        let Some(out) = self.outstanding.remove(&reply.xid) else {
            // A reply for something already answered (e.g. the reply to a
            // retransmission we had given up on): ignore.
            return;
        };
        self.stats.bytes_acked += out.len;
        self.acked_writes.push((out.offset, out.len));
        if let Some(b) = out.biod {
            self.biod_busy[b] = false;
        }
        if out.app_blocking {
            if let Some(since) = self.blocked_since.take() {
                self.stats.blocked_time += now.since(since);
            }
        }
        match self.app {
            AppState::BlockedOnRequest(xid) if xid == reply.xid => {
                // The application wakes up and keeps writing.
                self.start_generating(now, actions);
            }
            AppState::Closing if self.outstanding.is_empty() => {
                self.finish(now, actions);
            }
            _ => {}
        }
        let _ = out.first_sent;
    }

    fn on_retransmit_timer(
        &mut self,
        now: SimTime,
        xid: Xid,
        attempt: u32,
        actions: &mut Vec<ClientAction>,
    ) {
        let Some(out) = self.outstanding.get_mut(&xid) else {
            return; // already answered
        };
        if out.attempt != attempt {
            return; // stale timer from an earlier attempt
        }
        if out.attempt >= self.config.max_retransmits {
            // Give up: in a real client this surfaces as a hard error or a
            // "server not responding" console message.  Treat the data as
            // unacknowledged — counted, never silently absorbed — and carry
            // on so the run terminates.
            self.stats.gave_up += 1;
            let out = self.outstanding.remove(&xid).expect("present");
            if let Some(b) = out.biod {
                self.biod_busy[b] = false;
            }
            if self.app == AppState::BlockedOnRequest(xid) {
                self.start_generating(now, actions);
            } else if self.app == AppState::Closing && self.outstanding.is_empty() {
                self.finish(now, actions);
            }
            return;
        }
        out.attempt += 1;
        let (offset, len, attempt) = (out.offset, out.len, out.attempt);
        self.stats.retransmissions += 1;
        self.send_write(now, xid, offset, len, attempt, actions);
    }

    fn enter_close(&mut self, now: SimTime, actions: &mut Vec<ClientAction>) {
        if self.outstanding.is_empty() {
            self.finish(now, actions);
        } else {
            // sync-on-close: block until every outstanding write is answered.
            self.app = AppState::Closing;
            self.blocked_since = Some(now);
        }
    }

    fn finish(&mut self, now: SimTime, actions: &mut Vec<ClientAction>) {
        if let Some(since) = self.blocked_since.take() {
            self.stats.blocked_time += now.since(since);
        }
        self.app = AppState::Done;
        self.stats.completed_at = now;
        actions.push(ClientAction::Completed { at: now });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_nfsproto::{Fattr, NfsReplyBody, StatusReply};

    fn handle() -> FileHandle {
        FileHandle::new(1, 10, 1)
    }

    fn ok_reply(xid: Xid) -> NfsReply {
        NfsReply::new(xid, NfsReplyBody::Attr(StatusReply::Ok(Fattr::default())))
    }

    /// Drive a client against a perfect zero-latency server that answers each
    /// write after `service` time.
    fn run_against_ideal_server(mut client: FileWriterClient, service: Duration) -> ClientStats {
        let mut queue = wg_simcore::EventQueue::new();
        queue.schedule_at(SimTime::ZERO, ClientInput::Start);
        let mut guard = 0u64;
        while let Some((t, input)) = queue.pop() {
            guard += 1;
            assert!(guard < 2_000_000, "runaway client simulation");
            for action in client.handle(t, input) {
                match action {
                    ClientAction::Send { at, call } => {
                        queue.schedule_at(at + service, ClientInput::Reply(ok_reply(call.xid)));
                    }
                    ClientAction::Wakeup { at, token } => {
                        queue.schedule_at(at, ClientInput::Wakeup { token });
                    }
                    ClientAction::Completed { .. } => {}
                }
            }
            if client.is_done() {
                break;
            }
        }
        assert!(client.is_done());
        client.stats()
    }

    #[test]
    fn writes_whole_file_and_completes() {
        let cfg = ClientConfig {
            file_size: 256 * 1024,
            biods: 4,
            ..ClientConfig::default()
        };
        let client = FileWriterClient::new(cfg, handle());
        let stats = run_against_ideal_server(client, Duration::from_millis(5));
        assert_eq!(stats.bytes_acked, 256 * 1024);
        assert_eq!(stats.requests_sent, 32);
        assert_eq!(stats.retransmissions, 0);
        assert!(stats.completed_at > stats.started_at);
        assert!(stats.write_kb_per_sec() > 0.0);
    }

    #[test]
    fn zero_biods_fully_serialises_requests() {
        let service = Duration::from_millis(10);
        let cfg = ClientConfig {
            file_size: 80 * 1024, // 10 chunks
            biods: 0,
            generate_cost: Duration::from_micros(100),
            ..ClientConfig::default()
        };
        let stats = run_against_ideal_server(FileWriterClient::new(cfg, handle()), service);
        // Each write waits for its own reply: at least 10 * 10 ms.
        let elapsed = stats.completed_at.since(stats.started_at);
        assert!(elapsed >= Duration::from_millis(100));
        assert!(stats.blocked_time >= Duration::from_millis(95));
    }

    #[test]
    fn more_biods_means_more_overlap_and_higher_throughput() {
        let service = Duration::from_millis(10);
        let make = |biods| {
            let cfg = ClientConfig {
                file_size: 400 * 1024,
                biods,
                generate_cost: Duration::from_micros(100),
                ..ClientConfig::default()
            };
            run_against_ideal_server(FileWriterClient::new(cfg, handle()), service)
                .write_kb_per_sec()
        };
        let none = make(0);
        let four = make(4);
        let fifteen = make(15);
        assert!(
            four > none * 2.0,
            "0 biods {none:.0} KB/s vs 4 biods {four:.0} KB/s"
        );
        assert!(
            fifteen >= four,
            "4 biods {four:.0} vs 15 biods {fifteen:.0}"
        );
    }

    #[test]
    fn window_never_exceeds_biods_plus_one() {
        let cfg = ClientConfig {
            file_size: 800 * 1024,
            biods: 3,
            generate_cost: Duration::from_micros(50),
            ..ClientConfig::default()
        };
        let mut client = FileWriterClient::new(cfg, handle());
        let mut queue = wg_simcore::EventQueue::new();
        queue.schedule_at(SimTime::ZERO, ClientInput::Start);
        let mut in_flight = 0usize;
        let mut max_in_flight = 0usize;
        while let Some((t, input)) = queue.pop() {
            // A reply being delivered takes one request out of flight.
            if matches!(input, ClientInput::Reply(_)) {
                in_flight = in_flight.saturating_sub(1);
            }
            for action in client.handle(t, input) {
                match action {
                    ClientAction::Send { at, call } => {
                        in_flight += 1;
                        max_in_flight = max_in_flight.max(in_flight);
                        queue.schedule_at(
                            at + Duration::from_millis(20),
                            ClientInput::Reply(ok_reply(call.xid)),
                        );
                    }
                    ClientAction::Wakeup { at, token } => {
                        queue.schedule_at(at, ClientInput::Wakeup { token })
                    }
                    ClientAction::Completed { .. } => {}
                }
            }
            if client.is_done() {
                break;
            }
        }
        assert!(client.is_done());
        // 3 biods plus the blocked application process itself.
        assert!(max_in_flight <= 4, "window grew to {max_in_flight}");
    }

    #[test]
    fn random_pattern_covers_every_block_exactly_once() {
        let cfg = ClientConfig {
            file_size: 160 * 1024, // 20 blocks
            biods: 4,
            pattern: AccessPattern::Random { seed: 42 },
            ..ClientConfig::default()
        };
        let mut client = FileWriterClient::new(cfg, handle());
        let mut offsets = Vec::new();
        let mut queue = wg_simcore::EventQueue::new();
        queue.schedule_at(SimTime::ZERO, ClientInput::Start);
        while let Some((t, input)) = queue.pop() {
            for action in client.handle(t, input) {
                match action {
                    ClientAction::Send { at, call } => {
                        if let NfsCallBody::Write(w) = &call.body {
                            offsets.push(w.offset as u64);
                        }
                        queue.schedule_at(
                            at + Duration::from_millis(1),
                            ClientInput::Reply(ok_reply(call.xid)),
                        );
                    }
                    ClientAction::Wakeup { at, token } => {
                        queue.schedule_at(at, ClientInput::Wakeup { token })
                    }
                    ClientAction::Completed { .. } => {}
                }
            }
            if client.is_done() {
                break;
            }
        }
        offsets.sort_unstable();
        let expected: Vec<u64> = (0..20u64).map(|b| b * 8192).collect();
        assert_eq!(offsets, expected);
        // But the issue order was not sequential.
        let cfg2 = ClientConfig {
            file_size: 160 * 1024,
            pattern: AccessPattern::Random { seed: 42 },
            ..ClientConfig::default()
        };
        let c2 = FileWriterClient::new(cfg2, handle());
        assert_ne!(c2.remaining, (0..20u64).collect::<Vec<_>>());
    }

    #[test]
    fn lost_requests_are_retransmitted_with_backoff() {
        let cfg = ClientConfig {
            file_size: 16 * 1024, // 2 chunks
            biods: 0,
            initial_timeout: Duration::from_millis(100),
            backoff_factor: 2.0,
            ..ClientConfig::default()
        };
        let mut client = FileWriterClient::new(cfg, handle());
        let mut queue = wg_simcore::EventQueue::new();
        queue.schedule_at(SimTime::ZERO, ClientInput::Start);
        let mut sends: Vec<(SimTime, Xid)> = Vec::new();
        while let Some((t, input)) = queue.pop() {
            for action in client.handle(t, input) {
                match action {
                    ClientAction::Send { at, call } => {
                        sends.push((at, call.xid));
                        // Drop the first two transmissions of the first xid;
                        // answer everything else promptly.
                        let drops_for_this_xid =
                            sends.iter().filter(|(_, x)| *x == call.xid).count();
                        let is_first_xid = call.xid == sends[0].1;
                        if !(is_first_xid && drops_for_this_xid <= 2) {
                            queue.schedule_at(
                                at + Duration::from_millis(5),
                                ClientInput::Reply(ok_reply(call.xid)),
                            );
                        }
                    }
                    ClientAction::Wakeup { at, token } => {
                        queue.schedule_at(at, ClientInput::Wakeup { token })
                    }
                    ClientAction::Completed { .. } => {}
                }
            }
            if client.is_done() {
                break;
            }
        }
        assert!(client.is_done());
        let stats = client.stats();
        assert_eq!(stats.retransmissions, 2);
        assert_eq!(stats.bytes_acked, 16 * 1024);
        // Backoff: the second retransmission waited twice as long as the first.
        let first_xid = sends[0].1;
        let times: Vec<SimTime> = sends
            .iter()
            .filter(|(_, x)| *x == first_xid)
            .map(|(t, _)| *t)
            .collect();
        assert_eq!(times.len(), 3);
        let gap1 = times[1].since(times[0]);
        let gap2 = times[2].since(times[1]);
        assert!(gap2 > gap1, "expected backoff: {gap1} then {gap2}");
    }

    #[test]
    fn gives_up_after_max_retransmits() {
        let cfg = ClientConfig {
            file_size: 8 * 1024,
            biods: 0,
            initial_timeout: Duration::from_millis(10),
            max_retransmits: 3,
            ..ClientConfig::default()
        };
        let mut client = FileWriterClient::new(cfg, handle());
        let mut queue = wg_simcore::EventQueue::new();
        queue.schedule_at(SimTime::ZERO, ClientInput::Start);
        // Never answer anything.
        while let Some((t, input)) = queue.pop() {
            for action in client.handle(t, input) {
                if let ClientAction::Wakeup { at, token } = action {
                    queue.schedule_at(at, ClientInput::Wakeup { token });
                }
            }
            if client.is_done() {
                break;
            }
        }
        assert!(client.is_done());
        let stats = client.stats();
        assert_eq!(stats.retransmissions, 3);
        assert_eq!(stats.bytes_acked, 0);
        // The abandoned request is a *counted* failure, never silent success.
        assert_eq!(stats.gave_up, 1);
        assert!(client.acked_writes().is_empty());
    }

    #[test]
    fn empty_file_completes_immediately() {
        let cfg = ClientConfig {
            file_size: 0,
            ..ClientConfig::default()
        };
        let mut client = FileWriterClient::new(cfg, handle());
        let actions = client.handle(SimTime::ZERO, ClientInput::Start);
        assert!(matches!(
            actions.as_slice(),
            [ClientAction::Completed { .. }]
        ));
        assert!(client.is_done());
    }
}
