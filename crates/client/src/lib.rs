//! # wg-client — the NFS client model
//!
//! The paper's case study (§5) and every file-copy table is driven by one
//! workstation-class client writing a large file through the NFS client
//! kernel code: the application process writes into the client's cache, and
//! whenever a full 8 KB block "needs to go to the wire" the request is handed
//! to a `biod` write-behind daemon if one is idle; if all biods are busy the
//! application sends the request itself and *blocks until that particular
//! request is answered*.  `close(2)` blocks until every outstanding write has
//! been answered (sync-on-close).  The number of biods therefore bounds the
//! client's outstanding-request window at `biods + 1`, which is precisely the
//! parameter swept across the columns of Tables 1–6 (0, 3, 7, 11, 15, 19, 23
//! biods).
//!
//! [`FileWriterClient`] reproduces that state machine, including the
//! retransmission timer with exponential backoff that kicks in when the
//! server drops a request (socket-buffer overrun) or a datagram is lost.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod writer;

pub use writer::{
    AccessPattern, ClientAction, ClientConfig, ClientInput, ClientStats, FileWriterClient,
};
