//! Property-based tests for the filesystem: data integrity and transaction
//! accounting invariants that the write-gathering result relies on.

use proptest::prelude::*;
use wg_ufs::{FsyncFlags, Ufs, WriteFlags};

const BS: u64 = 8192;

/// A reference model: the file is just a growable byte vector.
fn apply_reference(reference: &mut Vec<u8>, offset: u64, data: &[u8]) {
    let end = offset as usize + data.len();
    if reference.len() < end {
        reference.resize(end, 0);
    }
    reference[offset as usize..end].copy_from_slice(data);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever sequence of writes is applied, reading the file back returns
    /// exactly what a plain byte-vector model says it should contain.
    #[test]
    fn write_read_matches_reference_model(
        ops in proptest::collection::vec(
            (0u64..200u64, 1usize..3000usize, any::<u8>(), any::<bool>()),
            1..25,
        )
    ) {
        let mut fs = Ufs::with_defaults(1);
        let root = fs.root();
        let ino = fs.create(root, "file", 0o644, 0).unwrap();
        let mut reference: Vec<u8> = Vec::new();

        for (i, (off_blocks, len, fill, delayed)) in ops.iter().enumerate() {
            // Keep offsets within the single-indirect limit.
            let offset = (off_blocks % 100) * 1024;
            let data = vec![*fill; *len];
            let flags = if *delayed { WriteFlags::DelayData } else { WriteFlags::Sync };
            fs.write(ino, offset, &data, flags, i as u64).unwrap();
            apply_reference(&mut reference, offset, &data);
        }

        let attrs = fs.getattr(ino).unwrap();
        prop_assert_eq!(attrs.size, reference.len() as u64);
        let read = fs.read(ino, 0, reference.len() as u64).unwrap();
        prop_assert_eq!(read.data, reference);
    }

    /// After fsync(All), no dirty state remains and a second fsync issues no
    /// further I/O (flush is idempotent).
    #[test]
    fn fsync_is_idempotent(
        writes in proptest::collection::vec((0u64..64u64, any::<u8>()), 1..20)
    ) {
        let mut fs = Ufs::with_defaults(1);
        let root = fs.root();
        let ino = fs.create(root, "file", 0o644, 0).unwrap();
        for (i, (block, fill)) in writes.iter().enumerate() {
            fs.write(ino, block * BS, &vec![*fill; BS as usize], WriteFlags::DelayData, i as u64)
                .unwrap();
        }
        let first = fs.fsync(ino, FsyncFlags::All).unwrap();
        prop_assert!(!first.is_empty());
        prop_assert!(!fs.is_dirty(ino).unwrap());
        let second = fs.fsync(ino, FsyncFlags::All).unwrap();
        prop_assert!(second.is_empty(), "second fsync still issued {} transactions", second.transactions());
    }

    /// The delayed-then-flush path never issues more data transactions than
    /// the per-write synchronous path, and both write identical bytes.
    #[test]
    fn gathering_never_issues_more_transactions(
        blocks in proptest::collection::vec(0u64..80u64, 1..30)
    ) {
        let mut sync_fs = Ufs::with_defaults(1);
        let root = sync_fs.root();
        let a = sync_fs.create(root, "a", 0o644, 0).unwrap();
        let mut sync_ops = 0usize;
        for (i, b) in blocks.iter().enumerate() {
            let out = sync_fs
                .write(a, b * BS, &vec![1u8; BS as usize], WriteFlags::Sync, i as u64)
                .unwrap();
            sync_ops += out.io.transactions();
        }

        let mut delay_fs = Ufs::with_defaults(1);
        let root = delay_fs.root();
        let b_ino = delay_fs.create(root, "b", 0o644, 0).unwrap();
        for (i, b) in blocks.iter().enumerate() {
            delay_fs
                .write(b_ino, b * BS, &vec![1u8; BS as usize], WriteFlags::DelayData, i as u64)
                .unwrap();
        }
        let mut delay_ops = delay_fs.sync_data(b_ino, 0, u64::MAX).unwrap().transactions();
        delay_ops += delay_fs.fsync(b_ino, FsyncFlags::MetadataOnly).unwrap().transactions();

        prop_assert!(delay_ops <= sync_ops, "delayed {delay_ops} > sync {sync_ops}");

        let size = sync_fs.getattr(a).unwrap().size;
        prop_assert_eq!(size, delay_fs.getattr(b_ino).unwrap().size);
        let left = sync_fs.read(a, 0, size).unwrap().data;
        let right = delay_fs.read(b_ino, 0, size).unwrap().data;
        prop_assert_eq!(left, right);
    }

    /// Clustered flush transfers never exceed the configured cluster size and
    /// cover exactly the dirty bytes.
    #[test]
    fn clustered_transfers_respect_cluster_size(
        start in 0u64..50u64,
        count in 1u64..40u64,
    ) {
        let mut fs = Ufs::with_defaults(1);
        let root = fs.root();
        let ino = fs.create(root, "file", 0o644, 0).unwrap();
        for i in 0..count {
            fs.write(ino, (start + i) * BS, &vec![7u8; BS as usize], WriteFlags::DelayData, i)
                .unwrap();
        }
        let plan = fs.sync_data(ino, 0, u64::MAX).unwrap();
        let cluster = fs.params().cluster_size;
        for req in &plan.data {
            prop_assert!(req.len <= cluster);
            prop_assert!(req.len % BS == 0);
        }
        let total: u64 = plan.data.iter().map(|r| r.len).sum();
        prop_assert_eq!(total, count * BS);
    }
}
