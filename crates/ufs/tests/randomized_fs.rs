//! Randomized tests for the filesystem: data integrity and transaction
//! accounting invariants that the write-gathering result relies on.
//!
//! Deterministic seeded drivers (via [`wg_simcore::SimRng`]) replace the
//! original `proptest` strategies because the build environment is offline;
//! the invariants checked are unchanged.

use wg_simcore::SimRng;
use wg_ufs::{FsyncFlags, Ufs, WriteFlags};

const BS: u64 = 8192;

/// A reference model: the file is just a growable byte vector.
fn apply_reference(reference: &mut Vec<u8>, offset: u64, data: &[u8]) {
    let end = offset as usize + data.len();
    if reference.len() < end {
        reference.resize(end, 0);
    }
    reference[offset as usize..end].copy_from_slice(data);
}

/// Whatever sequence of writes is applied, reading the file back returns
/// exactly what a plain byte-vector model says it should contain.
#[test]
fn write_read_matches_reference_model() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from(seed);
        let mut fs = Ufs::with_defaults(1);
        let root = fs.root();
        let ino = fs.create(root, "file", 0o644, 0).unwrap();
        let mut reference: Vec<u8> = Vec::new();

        let ops = 1 + rng.next_below(24);
        for i in 0..ops {
            // Keep offsets within the single-indirect limit.
            let offset = rng.next_below(100) * 1024;
            let len = 1 + rng.next_below(2999) as usize;
            let fill = rng.next_below(256) as u8;
            let flags = if rng.chance(0.5) {
                WriteFlags::DelayData
            } else {
                WriteFlags::Sync
            };
            let data = vec![fill; len];
            fs.write(ino, offset, &data, flags, i).unwrap();
            apply_reference(&mut reference, offset, &data);
        }

        let attrs = fs.getattr(ino).unwrap();
        assert_eq!(attrs.size, reference.len() as u64, "seed {seed}");
        let read = fs.read(ino, 0, reference.len() as u64).unwrap();
        assert_eq!(read.to_vec(), reference, "seed {seed}");
    }
}

/// After fsync(All), no dirty state remains and a second fsync issues no
/// further I/O (flush is idempotent).
#[test]
fn fsync_is_idempotent() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from(1000 + seed);
        let mut fs = Ufs::with_defaults(1);
        let root = fs.root();
        let ino = fs.create(root, "file", 0o644, 0).unwrap();
        let writes = 1 + rng.next_below(19);
        for i in 0..writes {
            let block = rng.next_below(64);
            let fill = rng.next_below(256) as u8;
            fs.write(
                ino,
                block * BS,
                &vec![fill; BS as usize],
                WriteFlags::DelayData,
                i,
            )
            .unwrap();
        }
        let first = fs.fsync(ino, FsyncFlags::All).unwrap();
        assert!(!first.is_empty(), "seed {seed}");
        assert!(!fs.is_dirty(ino).unwrap(), "seed {seed}");
        let second = fs.fsync(ino, FsyncFlags::All).unwrap();
        assert!(
            second.is_empty(),
            "seed {seed}: second fsync still issued {} transactions",
            second.transactions()
        );
    }
}

/// The delayed-then-flush path never issues more data transactions than the
/// per-write synchronous path, and both write identical bytes.
#[test]
fn gathering_never_issues_more_transactions() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from(2000 + seed);
        let count = 1 + rng.next_below(29);
        let blocks: Vec<u64> = (0..count).map(|_| rng.next_below(80)).collect();

        let mut sync_fs = Ufs::with_defaults(1);
        let root = sync_fs.root();
        let a = sync_fs.create(root, "a", 0o644, 0).unwrap();
        let mut sync_ops = 0usize;
        for (i, b) in blocks.iter().enumerate() {
            let out = sync_fs
                .write(
                    a,
                    b * BS,
                    &vec![1u8; BS as usize],
                    WriteFlags::Sync,
                    i as u64,
                )
                .unwrap();
            sync_ops += out.io.transactions();
        }

        let mut delay_fs = Ufs::with_defaults(1);
        let root = delay_fs.root();
        let b_ino = delay_fs.create(root, "b", 0o644, 0).unwrap();
        for (i, b) in blocks.iter().enumerate() {
            delay_fs
                .write(
                    b_ino,
                    b * BS,
                    &vec![1u8; BS as usize],
                    WriteFlags::DelayData,
                    i as u64,
                )
                .unwrap();
        }
        let mut delay_ops = delay_fs
            .sync_data(b_ino, 0, u64::MAX)
            .unwrap()
            .transactions();
        delay_ops += delay_fs
            .fsync(b_ino, FsyncFlags::MetadataOnly)
            .unwrap()
            .transactions();

        assert!(
            delay_ops <= sync_ops,
            "seed {seed}: delayed {delay_ops} > sync {sync_ops}"
        );

        let size = sync_fs.getattr(a).unwrap().size;
        assert_eq!(size, delay_fs.getattr(b_ino).unwrap().size, "seed {seed}");
        let left = sync_fs.read(a, 0, size).unwrap().to_vec();
        let right = delay_fs.read(b_ino, 0, size).unwrap().to_vec();
        assert_eq!(left, right, "seed {seed}");
    }
}

/// Clustered flush transfers never exceed the configured cluster size and
/// cover exactly the dirty bytes.
#[test]
fn clustered_transfers_respect_cluster_size() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from(3000 + seed);
        let start = rng.next_below(50);
        let count = 1 + rng.next_below(39);
        let mut fs = Ufs::with_defaults(1);
        let root = fs.root();
        let ino = fs.create(root, "file", 0o644, 0).unwrap();
        for i in 0..count {
            fs.write(
                ino,
                (start + i) * BS,
                &vec![7u8; BS as usize],
                WriteFlags::DelayData,
                i,
            )
            .unwrap();
        }
        let plan = fs.sync_data(ino, 0, u64::MAX).unwrap();
        let cluster = fs.params().cluster_size;
        for req in &plan.data {
            assert!(req.len <= cluster, "seed {seed}");
            assert!(req.len % BS == 0, "seed {seed}");
        }
        let total: u64 = plan.data.iter().map(|r| r.len).sum();
        assert_eq!(total, count * BS, "seed {seed}");
    }
}
