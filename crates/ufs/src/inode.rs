//! In-memory inodes.
//!
//! The quantities that matter to the paper are which *disk blocks* a write
//! dirties: the data block itself, the block holding the inode, and possibly
//! an indirect block.  [`Inode`] therefore tracks the FFS block map (12 direct
//! pointers plus one single-indirect block) together with dirty flags for the
//! inode and the indirect block, which is exactly the metadata a
//! `VOP_FSYNC(FWRITE_METADATA)` must flush.

use crate::params::FsParams;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Number of direct block pointers in an FFS inode.
pub const NDADDR: usize = 12;

/// An inode number.
pub type InodeNumber = u64;

/// Whether an inode is a regular file or a directory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FileKind {
    /// A regular file.
    Regular,
    /// A directory.
    Directory,
}

/// Contents of one cached file block.
///
/// The zero-copy write datapath stores whole-block fill-pattern writes (the
/// synthetic-workload case) as a single byte instead of materialising an 8 KB
/// buffer per block; reads and partial overwrites expand the pattern lazily.
///
/// Materialised contents sit behind an [`Arc`] so the read datapath can hand
/// out refcounted views of a block ([`BlockData::shared_bytes`]) instead of
/// copying it into a fresh buffer per READ.  Writes that land on a block
/// whose bytes are still shared with an outstanding reply un-share it first
/// (copy-on-write in [`BlockData::make_bytes`]), so readers always keep the
/// snapshot they were given.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlockData {
    /// Every byte of the block has this value (no backing allocation).
    Fill(u8),
    /// Materialised contents, always exactly one filesystem block long.
    Bytes(Arc<[u8]>),
}

impl BlockData {
    /// Copy `out.len()` bytes starting at `from` into `out`.
    pub fn copy_range(&self, from: usize, out: &mut [u8]) {
        match self {
            BlockData::Fill(byte) => out.fill(*byte),
            BlockData::Bytes(bytes) => out.copy_from_slice(&bytes[from..from + out.len()]),
        }
    }

    /// A refcounted view of materialised contents, if the block has any.
    /// Cloning the returned [`Arc`] is how a READ shares the block without
    /// copying it.
    pub fn shared_bytes(&self) -> Option<&Arc<[u8]>> {
        match self {
            BlockData::Fill(_) => None,
            BlockData::Bytes(bytes) => Some(bytes),
        }
    }

    /// Mutable access to materialised contents, expanding a fill pattern into
    /// a real `block_size`-byte buffer first if needed.
    ///
    /// If the bytes are currently shared with a reader (refcount > 1), the
    /// block is un-shared by copying it once — the copy-on-write half of the
    /// zero-copy read contract.
    pub fn make_bytes(&mut self, block_size: usize) -> &mut [u8] {
        match self {
            BlockData::Fill(byte) => {
                *self = BlockData::Bytes(vec![*byte; block_size].into());
            }
            BlockData::Bytes(bytes) => {
                if Arc::get_mut(bytes).is_none() {
                    let unshared: Arc<[u8]> = Arc::from(&bytes[..]);
                    *self = BlockData::Bytes(unshared);
                }
            }
        }
        match self {
            BlockData::Bytes(bytes) => Arc::get_mut(bytes).expect("uniquely owned"),
            BlockData::Fill(_) => unreachable!("just materialised"),
        }
    }
}

/// One cached file block: its physical disk address, its contents, and
/// whether it is dirty (written but not yet flushed to the disk).
#[derive(Clone, Debug)]
pub struct CachedBlock {
    /// Physical byte address of the block on the device.
    pub phys: u64,
    /// Block contents.
    pub data: BlockData,
    /// `true` if the cached contents have not been written to the device.
    pub dirty: bool,
}

/// Cached data blocks keyed by logical block index.
///
/// A file addressable through one single-indirect block spans at most
/// `NDADDR + pointers_per_block` logical blocks (~2060 under the default
/// geometry), so the cache is a dense slot vector indexed by lbn: every
/// lookup on the write datapath is one bounds check and one `Option`
/// discriminant away from the block, where a `BTreeMap` costs a pointer
/// chase per tree level.  Iteration walks the slots in index order, so
/// every traversal is ascending-lbn exactly like the map it replaced —
/// flush ordering, and with it the simulated event order, is unchanged.
#[derive(Clone, Debug, Default)]
pub struct BlockMap {
    slots: Vec<Option<CachedBlock>>,
    present: usize,
}

impl BlockMap {
    /// An empty map (no slots allocated until the first insert).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.present
    }

    /// `true` if no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.present == 0
    }

    /// The cached block at `lbn`, if any.
    pub fn get(&self, lbn: u64) -> Option<&CachedBlock> {
        self.slots.get(lbn as usize)?.as_ref()
    }

    /// Mutable access to the cached block at `lbn`, if any.
    pub fn get_mut(&mut self, lbn: u64) -> Option<&mut CachedBlock> {
        self.slots.get_mut(lbn as usize)?.as_mut()
    }

    /// Insert a block at `lbn`, returning the one it displaced.
    pub fn insert(&mut self, lbn: u64, block: CachedBlock) -> Option<CachedBlock> {
        let slot = self.slot_mut(lbn);
        let old = slot.replace(block);
        if old.is_none() {
            self.present += 1;
        }
        old
    }

    /// The block at `lbn`, inserting `make()` first if the slot is empty.
    pub fn get_or_insert_with(
        &mut self,
        lbn: u64,
        make: impl FnOnce() -> CachedBlock,
    ) -> &mut CachedBlock {
        if self.get(lbn).is_none() {
            self.insert(lbn, make());
        }
        self.get_mut(lbn).expect("just filled")
    }

    /// Remove and return the block at `lbn`.
    pub fn remove(&mut self, lbn: u64) -> Option<CachedBlock> {
        let old = self.slots.get_mut(lbn as usize)?.take();
        if old.is_some() {
            self.present -= 1;
        }
        old
    }

    /// Drop every block for which `keep` returns `false`.
    pub fn retain(&mut self, mut keep: impl FnMut(u64, &mut CachedBlock) -> bool) {
        for (lbn, slot) in self.slots.iter_mut().enumerate() {
            if let Some(block) = slot {
                if !keep(lbn as u64, block) {
                    *slot = None;
                    self.present -= 1;
                }
            }
        }
    }

    /// Iterate `(lbn, block)` in ascending lbn order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &CachedBlock)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(lbn, slot)| slot.as_ref().map(|b| (lbn as u64, b)))
    }

    /// Iterate `(lbn, block)` mutably over `first..=last`, ascending.
    pub fn range_mut(
        &mut self,
        first: u64,
        last: u64,
    ) -> impl Iterator<Item = (u64, &mut CachedBlock)> {
        let lo = (first as usize).min(self.slots.len());
        let hi = ((last as usize).saturating_add(1)).min(self.slots.len());
        self.slots[lo..hi]
            .iter_mut()
            .enumerate()
            .filter_map(move |(off, slot)| slot.as_mut().map(|b| ((lo + off) as u64, b)))
    }

    /// Iterate the cached lbns in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(lbn, _)| lbn)
    }

    /// Iterate the cached blocks in ascending lbn order.
    pub fn values(&self) -> impl Iterator<Item = &CachedBlock> {
        self.iter().map(|(_, b)| b)
    }

    fn slot_mut(&mut self, lbn: u64) -> &mut Option<CachedBlock> {
        let at = lbn as usize;
        if at >= self.slots.len() {
            self.slots.resize_with(at + 1, || None);
        }
        &mut self.slots[at]
    }
}

/// Pointers held by the single indirect block (logical index -> physical
/// address).  Slot `i` holds the pointer for lbn `NDADDR + i`, densely, so
/// the per-write `block_addr` probe is an array load and `sectors()` stays
/// O(1) off the maintained count.
#[derive(Clone, Debug, Default)]
pub struct IndirectMap {
    slots: Vec<Option<u64>>,
    present: usize,
}

impl IndirectMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of mapped indirect pointers.
    pub fn len(&self) -> usize {
        self.present
    }

    /// `true` if no indirect pointers are mapped.
    pub fn is_empty(&self) -> bool {
        self.present == 0
    }

    /// The physical address mapped at `lbn`, if any.
    pub fn get(&self, lbn: u64) -> Option<u64> {
        debug_assert!(lbn as usize >= NDADDR);
        *self.slots.get(lbn as usize - NDADDR)?
    }

    /// Map `lbn` to `phys`.
    pub fn insert(&mut self, lbn: u64, phys: u64) {
        debug_assert!(lbn as usize >= NDADDR);
        let at = lbn as usize - NDADDR;
        if at >= self.slots.len() {
            self.slots.resize(at + 1, None);
        }
        if self.slots[at].replace(phys).is_none() {
            self.present += 1;
        }
    }

    /// Unmap `lbn`, returning the physical address it pointed at.
    pub fn remove(&mut self, lbn: u64) -> Option<u64> {
        debug_assert!(lbn as usize >= NDADDR);
        let old = self.slots.get_mut(lbn as usize - NDADDR)?.take();
        if old.is_some() {
            self.present -= 1;
        }
        old
    }

    /// Iterate the mapped physical addresses in ascending lbn order.
    pub fn values(&self) -> impl Iterator<Item = u64> + '_ {
        self.slots.iter().filter_map(|slot| *slot)
    }
}

/// An in-memory inode with its block map and cached blocks.
#[derive(Clone, Debug)]
pub struct Inode {
    /// The inode number.
    pub ino: InodeNumber,
    /// Generation number; bumped each time the inode is reused so old file
    /// handles become stale.
    pub generation: u32,
    /// Regular file or directory.
    pub kind: FileKind,
    /// File size in bytes.
    pub size: u64,
    /// Permission bits.
    pub mode: u32,
    /// Owner uid.
    pub uid: u32,
    /// Owner gid.
    pub gid: u32,
    /// Link count.
    pub nlink: u32,
    /// Last-modification time in simulation nanoseconds.
    pub mtime_nanos: u64,
    /// Last-access time in simulation nanoseconds.
    pub atime_nanos: u64,
    /// Inode-change time in simulation nanoseconds.
    pub ctime_nanos: u64,
    /// Direct block pointers (physical addresses).
    pub direct: [Option<u64>; NDADDR],
    /// Physical address of the single indirect block, if allocated.
    pub indirect: Option<u64>,
    /// Pointers held by the indirect block (logical index -> physical
    /// address), stored densely by `lbn - NDADDR`.
    pub indirect_map: IndirectMap,
    /// Directory entries (name -> inode), present only for directories.
    /// Names are refcounted so rebuilding the memoised listing clones
    /// pointers, not string bytes.
    pub entries: BTreeMap<Arc<str>, InodeNumber>,
    /// Memoised READDIR listing, shared with every reply that carries it and
    /// invalidated whenever `entries` changes.  `None` until the first
    /// readdir after a change.
    pub listing: Option<Arc<Vec<Arc<str>>>>,
    /// Cached data blocks keyed by logical block index.
    pub blocks: BlockMap,
    /// `true` if the on-disk inode no longer matches this in-memory copy
    /// (size, block pointers or times changed).
    pub inode_dirty: bool,
    /// `true` if only the modification time differs from the on-disk inode —
    /// the case the reference port flushes asynchronously (§4.4).
    pub mtime_only_dirty: bool,
    /// `true` if the indirect block contents changed and must be rewritten.
    pub indirect_dirty: bool,
}

impl Inode {
    /// Create a fresh inode.
    pub fn new(
        ino: InodeNumber,
        generation: u32,
        kind: FileKind,
        mode: u32,
        now_nanos: u64,
    ) -> Self {
        Inode {
            ino,
            generation,
            kind,
            size: 0,
            mode,
            uid: 0,
            gid: 0,
            nlink: 1,
            mtime_nanos: now_nanos,
            atime_nanos: now_nanos,
            ctime_nanos: now_nanos,
            direct: [None; NDADDR],
            indirect: None,
            indirect_map: IndirectMap::new(),
            entries: BTreeMap::new(),
            listing: None,
            blocks: BlockMap::new(),
            inode_dirty: true,
            mtime_only_dirty: false,
            indirect_dirty: false,
        }
    }

    /// Look up the physical address of logical block `lbn`, if mapped.
    pub fn block_addr(&self, lbn: u64) -> Option<u64> {
        if (lbn as usize) < NDADDR {
            self.direct[lbn as usize]
        } else {
            self.indirect_map.get(lbn)
        }
    }

    /// Record a mapping from logical block `lbn` to physical address `phys`,
    /// returning `true` if the mapping lives in the indirect block (and thus
    /// dirties it) rather than in the inode proper.
    pub fn map_block(&mut self, lbn: u64, phys: u64) -> bool {
        if (lbn as usize) < NDADDR {
            self.direct[lbn as usize] = Some(phys);
            false
        } else {
            self.indirect_map.insert(lbn, phys);
            true
        }
    }

    /// Whether a logical block index requires the indirect block.
    pub fn needs_indirect(lbn: u64) -> bool {
        lbn as usize >= NDADDR
    }

    /// The highest logical block index representable with a single indirect
    /// block under the given geometry.
    pub fn max_lbn(params: &FsParams) -> u64 {
        NDADDR as u64 + params.pointers_per_block() - 1
    }

    /// Number of 512-byte sectors the file occupies (the `blocks` field of
    /// NFS attributes).
    pub fn sectors(&self) -> u64 {
        let mapped = self.direct.iter().filter(|b| b.is_some()).count() as u64
            + self.indirect_map.len() as u64
            + u64::from(self.indirect.is_some());
        mapped * 16 // 8 KB block = 16 sectors
    }

    /// Iterate over the logical indices of dirty cached blocks, in order.
    pub fn dirty_block_indices(&self) -> Vec<u64> {
        self.blocks
            .iter()
            .filter(|(_, b)| b.dirty)
            .map(|(lbn, _)| lbn)
            .collect()
    }

    /// `true` if any metadata (inode or indirect block) is dirty beyond a
    /// bare mtime update.
    pub fn has_dirty_metadata(&self) -> bool {
        (self.inode_dirty && !self.mtime_only_dirty) || self.indirect_dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_and_indirect_mapping() {
        let mut ino = Inode::new(5, 1, FileKind::Regular, 0o644, 0);
        assert_eq!(ino.block_addr(0), None);
        assert!(!ino.map_block(0, 64 * 1024 * 1024));
        assert_eq!(ino.block_addr(0), Some(64 * 1024 * 1024));
        // Block 12 is the first indirect-mapped block.
        assert!(Inode::needs_indirect(12));
        assert!(!Inode::needs_indirect(11));
        assert!(ino.map_block(12, 65 * 1024 * 1024));
        assert_eq!(ino.block_addr(12), Some(65 * 1024 * 1024));
    }

    #[test]
    fn max_file_size_with_single_indirect() {
        let p = FsParams::default();
        // 12 direct + 2048 indirect pointers of 8 KB blocks ≈ 16.1 MB.
        assert_eq!(Inode::max_lbn(&p), 12 + 2048 - 1);
        let max_bytes = (Inode::max_lbn(&p) + 1) * p.block_size;
        assert!(max_bytes > 16 * 1024 * 1024);
    }

    #[test]
    fn sectors_counts_mapped_blocks_and_indirect() {
        let mut ino = Inode::new(7, 1, FileKind::Regular, 0o644, 0);
        assert_eq!(ino.sectors(), 0);
        ino.map_block(0, 1000);
        ino.map_block(1, 2000);
        assert_eq!(ino.sectors(), 32);
        ino.indirect = Some(3000);
        ino.map_block(12, 4000);
        assert_eq!(ino.sectors(), 64);
    }

    #[test]
    fn dirty_tracking_helpers() {
        let mut ino = Inode::new(9, 1, FileKind::Regular, 0o644, 0);
        assert!(ino.has_dirty_metadata()); // freshly created inode is dirty
        ino.inode_dirty = false;
        assert!(!ino.has_dirty_metadata());
        ino.inode_dirty = true;
        ino.mtime_only_dirty = true;
        assert!(!ino.has_dirty_metadata()); // mtime-only changes may be async
        ino.indirect_dirty = true;
        assert!(ino.has_dirty_metadata());

        ino.blocks.insert(
            3,
            CachedBlock {
                phys: 100,
                data: BlockData::Fill(0),
                dirty: true,
            },
        );
        ino.blocks.insert(
            1,
            CachedBlock {
                phys: 200,
                data: BlockData::Bytes(vec![0; 8192].into()),
                dirty: false,
            },
        );
        assert_eq!(ino.dirty_block_indices(), vec![3]);
    }

    #[test]
    fn block_data_fill_materialises_lazily() {
        let mut data = BlockData::Fill(7);
        let mut out = [0u8; 4];
        data.copy_range(100, &mut out);
        assert_eq!(out, [7u8; 4]);
        // Still a fill: copy_range must not materialise.
        assert_eq!(data, BlockData::Fill(7));
        let bytes = data.make_bytes(8192);
        assert_eq!(bytes.len(), 8192);
        bytes[0] = 1;
        let mut out = [0u8; 2];
        data.copy_range(0, &mut out);
        assert_eq!(out, [1, 7]);
    }

    #[test]
    fn make_bytes_unshares_a_block_held_by_a_reader() {
        let mut data = BlockData::Bytes(vec![5u8; 16].into());
        // A reader takes a refcounted view of the block.
        let reader = Arc::clone(data.shared_bytes().expect("materialised"));
        // A writer then mutates the block: the reader's snapshot must survive.
        let bytes = data.make_bytes(16);
        bytes[0] = 9;
        assert_eq!(reader[0], 5, "reader's shared view was mutated in place");
        match &data {
            BlockData::Bytes(now) => {
                assert!(!Arc::ptr_eq(now, &reader), "write did not un-share");
                assert_eq!(now[0], 9);
            }
            other => panic!("unexpected {other:?}"),
        }
        // With no outstanding reader the next write mutates in place.
        let before = match &data {
            BlockData::Bytes(arc) => Arc::as_ptr(arc),
            _ => unreachable!(),
        };
        data.make_bytes(16)[1] = 8;
        match &data {
            BlockData::Bytes(now) => assert_eq!(Arc::as_ptr(now), before),
            other => panic!("unexpected {other:?}"),
        }
        assert!(BlockData::Fill(3).shared_bytes().is_none());
    }

    #[test]
    fn new_directory_has_empty_entries() {
        let d = Inode::new(2, 1, FileKind::Directory, 0o755, 42);
        assert_eq!(d.kind, FileKind::Directory);
        assert!(d.entries.is_empty());
        assert_eq!(d.mtime_nanos, 42);
    }
}
