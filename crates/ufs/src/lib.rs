//! # wg-ufs — a UFS-like filesystem model with write clustering
//!
//! The paper's server sits on top of "a BSD 4.3 filesystem (UFS) with
//! extensions that cluster reads and writes into larger device request sizes
//! (up to 64K)" in the style of McVoy & Kleiman ([MCVO91]).  Write gathering
//! is entirely about how many *disk transactions* that filesystem issues for a
//! burst of NFS writes, so this crate reproduces the parts of UFS that
//! determine the transaction count and layout:
//!
//! * the FFS-style on-disk structure — inodes with 12 direct block pointers
//!   and a single indirect block of 2048 pointers, 8 KB blocks ([`inode`]),
//! * block allocation with an inode region and a data region so that data and
//!   metadata writes land at different disk addresses (and therefore cost
//!   seeks) ([`fs`]),
//! * a per-file buffer cache with dirty tracking, so delayed writes
//!   (`IO_DELAYDATA`) accumulate in memory until a flush clusters them into
//!   contiguous transfers of up to 64 KB ([`fs`], [`cluster`]),
//! * the vnode-operation surface the paper extends: `VOP_WRITE` with the new
//!   `IO_DATAONLY`/`IO_DELAYDATA` flags, `VOP_FSYNC` with `FWRITE_METADATA`,
//!   and the new `VOP_SYNCDATA` ([`vnode`]).
//!
//! The filesystem stores real bytes (reads return what was written) but is
//! *passive with respect to time*: operations return [`vnode::IoPlan`]s — the
//! disk requests that a real UFS would have issued synchronously — and the
//! caller (the NFS server model) submits them to a [`wg_disk::BlockDevice`]
//! and deals with the resulting latencies.  This separation keeps the block
//! accounting testable in isolation, which is where the paper's 3N → N claim
//! lives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod error;
pub mod fs;
pub mod inode;
pub mod params;
pub mod vnode;

pub use cluster::cluster_requests;
pub use error::FsError;
pub use fs::{FileAttributes, Ufs};
pub use inode::{BlockData, FileKind, Inode, InodeNumber};
pub use params::FsParams;
pub use vnode::{FsyncFlags, IoPlan, ReadOutcome, WriteFlags, WriteOutcome, WriteSource};
