//! The vnode-operation surface: flags, I/O plans and operation outcomes.
//!
//! Section 6.4 of the paper describes the hints the NFS server layer passes
//! down through VFS:
//!
//! * accelerated filesystems get `VOP_WRITE(IO_SYNC | IO_DATAONLY)` — push the
//!   data to Presto now, touch no metadata;
//! * non-accelerated filesystems get `VOP_WRITE(IO_DELAYDATA)` — let UFS keep
//!   the data dirty in the cache and pick its own clustering;
//! * metadata is flushed with `VOP_FSYNC(FWRITE | FWRITE_METADATA)`;
//! * gathered data is flushed with the new `VOP_SYNCDATA(from, to)`.
//!
//! The types here encode those flags and the *I/O plans* that operations
//! return: ordered lists of disk requests a real kernel would have issued
//! synchronously, which the server model then plays against a
//! [`wg_disk::BlockDevice`].

use std::sync::Arc;

use wg_disk::DiskRequest;
use wg_nfsproto::Payload;

/// How `VOP_WRITE` should treat data and metadata.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum WriteFlags {
    /// Fully synchronous: write the data block(s) and any changed metadata
    /// before returning.  This is the standard-server (baseline) path.
    Sync,
    /// `IO_SYNC | IO_DATAONLY`: write the data now but leave metadata dirty in
    /// memory (the accelerated-filesystem path of §6.4).
    SyncDataOnly,
    /// `IO_DELAYDATA`: leave the data dirty in the buffer cache so a later
    /// flush can cluster it (the non-accelerated gathering path of §6.4).
    DelayData,
}

/// What `VOP_FSYNC` should flush.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FsyncFlags {
    /// Flush dirty data and metadata.
    All,
    /// `FWRITE_METADATA`: flush only the inode and indirect blocks.
    MetadataOnly,
}

/// An ordered list of device requests produced by a filesystem operation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IoPlan {
    /// Data-block transfers (already clustered where possible).
    pub data: Vec<DiskRequest>,
    /// Metadata transfers: the inode block and any dirty indirect blocks.
    pub metadata: Vec<DiskRequest>,
}

impl IoPlan {
    /// An empty plan (nothing needs to touch the device).
    pub fn empty() -> Self {
        IoPlan::default()
    }

    /// Total number of device transactions in the plan.
    pub fn transactions(&self) -> usize {
        self.data.len() + self.metadata.len()
    }

    /// Total bytes moved by the plan.
    pub fn bytes(&self) -> u64 {
        self.data.iter().map(|r| r.len).sum::<u64>()
            + self.metadata.iter().map(|r| r.len).sum::<u64>()
    }

    /// `true` if the plan issues no I/O at all.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty() && self.metadata.is_empty()
    }

    /// Append another plan after this one.
    pub fn extend(&mut self, other: IoPlan) {
        self.data.extend(other.data);
        self.metadata.extend(other.metadata);
    }
}

/// The data handed to `VOP_WRITE`, without forcing the caller to materialise
/// synthetic payloads.
///
/// The NFS server converts a `wg_nfsproto` payload into a `WriteSource`; the
/// filesystem stores whole-block fill writes as
/// [`BlockData::Fill`](crate::inode::BlockData::Fill) so the hot path of a
/// simulated file copy allocates no payload bytes at all.
#[derive(Clone, Copy, Debug)]
pub enum WriteSource<'a> {
    /// Real bytes to copy into the cache.
    Bytes(&'a [u8]),
    /// `len` repetitions of `byte`.
    Fill {
        /// The repeated byte value.
        byte: u8,
        /// Number of repetitions.
        len: u64,
    },
}

impl WriteSource<'_> {
    /// Number of bytes the write carries.
    pub fn len(&self) -> usize {
        match self {
            WriteSource::Bytes(b) => b.len(),
            WriteSource::Fill { len, .. } => *len as usize,
        }
    }

    /// `true` if the write carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<'a> From<&'a [u8]> for WriteSource<'a> {
    fn from(bytes: &'a [u8]) -> Self {
        WriteSource::Bytes(bytes)
    }
}

impl<'a> From<&'a Vec<u8>> for WriteSource<'a> {
    fn from(bytes: &'a Vec<u8>) -> Self {
        WriteSource::Bytes(bytes)
    }
}

impl<'a, const N: usize> From<&'a [u8; N]> for WriteSource<'a> {
    fn from(bytes: &'a [u8; N]) -> Self {
        WriteSource::Bytes(bytes)
    }
}

/// The result of a `VOP_WRITE`.
#[derive(Clone, Debug)]
pub struct WriteOutcome {
    /// Device requests the write requires before it is stable, given the
    /// flags it was issued with (empty for `DelayData`).
    pub io: IoPlan,
    /// File size after the write.
    pub new_size: u64,
    /// `true` if the only inode change was the modification time — the case
    /// the reference port lets slide with an asynchronous inode update
    /// (§4.4), i.e. no synchronous metadata write is required even on the
    /// standard path.
    pub mtime_only: bool,
    /// `true` if this write grew the file or allocated blocks (and therefore
    /// changed the inode beyond mtime).
    pub allocated: bool,
}

/// The result of a read.
///
/// The data comes back as a [`Payload`], not a freshly filled `Vec<u8>`:
/// fill-pattern blocks stay the 8-byte `Payload::Fill` form, materialised
/// blocks are handed out as refcounted `Payload::Shared` views of the buffer
/// cache, and holes or uncached blocks read as a zero fill.  On the
/// steady-state path of the simulated workloads (block-aligned reads of
/// fill-pattern files) a read therefore allocates nothing at all — the read
/// side of the zero-copy discipline PR 1 established for writes.
#[derive(Clone, Debug)]
pub struct ReadOutcome {
    /// The bytes read (shorter than requested at end of file), as a zero-copy
    /// payload.
    pub data: Payload,
    /// Device reads needed for blocks that were not in the cache.  The caller
    /// charges their latency before completing the read.
    pub misses: Vec<DiskRequest>,
}

impl ReadOutcome {
    /// A read that returned nothing (offset at or past end of file).
    pub fn empty() -> Self {
        ReadOutcome {
            data: Payload::empty(),
            misses: Vec::new(),
        }
    }

    /// Number of bytes read.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the read returned no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flatten the payload into a plain byte vector.
    ///
    /// Verification helper for tests and post-run integrity checks; it walks
    /// the payload without touching the materialisation probe, so checking a
    /// result never masks (or fakes) a datapath regression.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.iter_bytes().collect()
    }
}

/// Builds the payload of one read from per-block segments without copying on
/// the common paths.
///
/// The accumulator tracks the cheapest representation that still describes
/// everything pushed so far and only degrades when it must:
///
/// * nothing yet → `Empty`;
/// * fill segments of one byte value (fill blocks, holes, uncached blocks)
///   coalesce into a single `Fill` — the steady-state case for synthetic
///   workloads, zero allocation;
/// * a single contiguous range of one materialised block stays a refcounted
///   `Shared` view — an aligned read of a real-bytes block, zero copy;
/// * anything mixed falls back to a flat buffer, counting any fill expansion
///   toward [`wg_nfsproto::payload::materialize_count`] so the probe tests
///   catch hot paths that degenerate into copies.
#[derive(Debug, Default)]
pub struct ReadAccumulator {
    state: AccState,
}

#[derive(Debug, Default)]
enum AccState {
    #[default]
    Empty,
    Fill {
        byte: u8,
        len: u64,
    },
    Shared {
        buf: Arc<[u8]>,
        from: usize,
        len: usize,
    },
    Mixed(Vec<u8>),
}

impl ReadAccumulator {
    /// An accumulator with nothing pushed yet.
    pub fn new() -> Self {
        ReadAccumulator::default()
    }

    /// Append `len` repetitions of `byte` (a fill block, a hole, or an
    /// uncached block reading as zeros).
    pub fn push_fill(&mut self, byte: u8, len: u64) {
        if len == 0 {
            return;
        }
        match &mut self.state {
            AccState::Empty => self.state = AccState::Fill { byte, len },
            AccState::Fill {
                byte: have,
                len: have_len,
            } if *have == byte => *have_len += len,
            _ => {
                let mixed = self.spill();
                Payload::fill(byte, len as u32).append_to(mixed);
            }
        }
    }

    /// Append `len` bytes starting at `from` within a materialised block.
    pub fn push_shared(&mut self, buf: &Arc<[u8]>, from: usize, len: usize) {
        if len == 0 {
            return;
        }
        match &mut self.state {
            AccState::Empty => {
                self.state = AccState::Shared {
                    buf: Arc::clone(buf),
                    from,
                    len,
                }
            }
            AccState::Shared {
                buf: have,
                from: have_from,
                len: have_len,
            } if Arc::ptr_eq(have, buf) && *have_from + *have_len == from => *have_len += len,
            _ => {
                let mixed = self.spill();
                mixed.extend_from_slice(&buf[from..from + len]);
            }
        }
    }

    /// Degrade the current state to a flat buffer and return it for appending.
    fn spill(&mut self) -> &mut Vec<u8> {
        if !matches!(self.state, AccState::Mixed(_)) {
            let mut mixed = Vec::new();
            match std::mem::take(&mut self.state) {
                AccState::Empty | AccState::Mixed(_) => {}
                AccState::Fill { byte, len } => {
                    Payload::fill(byte, len as u32).append_to(&mut mixed)
                }
                AccState::Shared { buf, from, len } => {
                    mixed.extend_from_slice(&buf[from..from + len])
                }
            }
            self.state = AccState::Mixed(mixed);
        }
        match &mut self.state {
            AccState::Mixed(v) => v,
            _ => unreachable!("just degraded to Mixed"),
        }
    }

    /// The accumulated payload.
    pub fn finish(self) -> Payload {
        match self.state {
            AccState::Empty => Payload::empty(),
            AccState::Fill { byte, len } => Payload::fill(byte, len as u32),
            AccState::Shared { buf, from, len } => {
                if from == 0 && len == buf.len() {
                    // A whole-block read: the reply aliases the cache buffer.
                    Payload::Shared(buf)
                } else {
                    // A sub-range of real bytes: Arc slices cannot be
                    // sub-sliced without a copy, so pay it here (partial reads
                    // of materialised blocks are off the steady-state path).
                    Payload::Shared(buf[from..from + len].into())
                }
            }
            AccState::Mixed(bytes) => Payload::from_vec(bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_plan_accounting() {
        let mut plan = IoPlan::empty();
        assert!(plan.is_empty());
        assert_eq!(plan.transactions(), 0);
        plan.data.push(DiskRequest::write(0, 65536));
        plan.metadata.push(DiskRequest::write(16_000_000, 8192));
        assert_eq!(plan.transactions(), 2);
        assert_eq!(plan.bytes(), 65536 + 8192);
        assert!(!plan.is_empty());

        let mut other = IoPlan::empty();
        other.data.push(DiskRequest::write(65536, 8192));
        plan.extend(other);
        assert_eq!(plan.transactions(), 3);
        assert_eq!(plan.data.len(), 2);
    }

    #[test]
    fn accumulator_coalesces_same_byte_fills_without_alloc() {
        let mut acc = ReadAccumulator::new();
        acc.push_fill(7, 4096);
        acc.push_fill(7, 4096);
        acc.push_fill(9, 0); // empty segments are ignored
        assert_eq!(acc.finish(), Payload::fill(7, 8192));
    }

    #[test]
    fn accumulator_passes_whole_block_shared_views_through() {
        let buf: Arc<[u8]> = vec![1u8, 2, 3, 4].into();
        let mut acc = ReadAccumulator::new();
        acc.push_shared(&buf, 0, 4);
        match acc.finish() {
            Payload::Shared(out) => assert!(Arc::ptr_eq(&out, &buf), "copied a whole-block read"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn accumulator_extends_contiguous_ranges_of_one_buffer() {
        let buf: Arc<[u8]> = (0u8..16).collect();
        let mut acc = ReadAccumulator::new();
        acc.push_shared(&buf, 2, 4);
        acc.push_shared(&buf, 6, 4);
        assert_eq!(acc.finish(), Payload::Shared((2u8..10).collect()));
    }

    #[test]
    fn accumulator_mixes_fills_and_bytes_into_one_payload() {
        let buf: Arc<[u8]> = vec![9u8; 4].into();
        let mut acc = ReadAccumulator::new();
        acc.push_fill(1, 2);
        acc.push_shared(&buf, 0, 4);
        acc.push_fill(2, 2);
        let flat: Vec<u8> = acc.finish().iter_bytes().collect();
        assert_eq!(flat, vec![1, 1, 9, 9, 9, 9, 2, 2]);
        assert_eq!(ReadAccumulator::new().finish(), Payload::empty());
    }

    #[test]
    fn read_outcome_helpers() {
        let out = ReadOutcome::empty();
        assert!(out.is_empty());
        assert_eq!(out.len(), 0);
        let out = ReadOutcome {
            data: Payload::fill(3, 5),
            misses: Vec::new(),
        };
        assert_eq!(out.len(), 5);
        assert_eq!(out.to_vec(), vec![3u8; 5]);
    }

    #[test]
    fn flags_are_distinct() {
        assert_ne!(WriteFlags::Sync, WriteFlags::DelayData);
        assert_ne!(WriteFlags::Sync, WriteFlags::SyncDataOnly);
        assert_ne!(FsyncFlags::All, FsyncFlags::MetadataOnly);
    }
}
