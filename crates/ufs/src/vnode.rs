//! The vnode-operation surface: flags, I/O plans and operation outcomes.
//!
//! Section 6.4 of the paper describes the hints the NFS server layer passes
//! down through VFS:
//!
//! * accelerated filesystems get `VOP_WRITE(IO_SYNC | IO_DATAONLY)` — push the
//!   data to Presto now, touch no metadata;
//! * non-accelerated filesystems get `VOP_WRITE(IO_DELAYDATA)` — let UFS keep
//!   the data dirty in the cache and pick its own clustering;
//! * metadata is flushed with `VOP_FSYNC(FWRITE | FWRITE_METADATA)`;
//! * gathered data is flushed with the new `VOP_SYNCDATA(from, to)`.
//!
//! The types here encode those flags and the *I/O plans* that operations
//! return: ordered lists of disk requests a real kernel would have issued
//! synchronously, which the server model then plays against a
//! [`wg_disk::BlockDevice`].

use wg_disk::DiskRequest;

/// How `VOP_WRITE` should treat data and metadata.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum WriteFlags {
    /// Fully synchronous: write the data block(s) and any changed metadata
    /// before returning.  This is the standard-server (baseline) path.
    Sync,
    /// `IO_SYNC | IO_DATAONLY`: write the data now but leave metadata dirty in
    /// memory (the accelerated-filesystem path of §6.4).
    SyncDataOnly,
    /// `IO_DELAYDATA`: leave the data dirty in the buffer cache so a later
    /// flush can cluster it (the non-accelerated gathering path of §6.4).
    DelayData,
}

/// What `VOP_FSYNC` should flush.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FsyncFlags {
    /// Flush dirty data and metadata.
    All,
    /// `FWRITE_METADATA`: flush only the inode and indirect blocks.
    MetadataOnly,
}

/// An ordered list of device requests produced by a filesystem operation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IoPlan {
    /// Data-block transfers (already clustered where possible).
    pub data: Vec<DiskRequest>,
    /// Metadata transfers: the inode block and any dirty indirect blocks.
    pub metadata: Vec<DiskRequest>,
}

impl IoPlan {
    /// An empty plan (nothing needs to touch the device).
    pub fn empty() -> Self {
        IoPlan::default()
    }

    /// Total number of device transactions in the plan.
    pub fn transactions(&self) -> usize {
        self.data.len() + self.metadata.len()
    }

    /// Total bytes moved by the plan.
    pub fn bytes(&self) -> u64 {
        self.data.iter().map(|r| r.len).sum::<u64>()
            + self.metadata.iter().map(|r| r.len).sum::<u64>()
    }

    /// `true` if the plan issues no I/O at all.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty() && self.metadata.is_empty()
    }

    /// Append another plan after this one.
    pub fn extend(&mut self, other: IoPlan) {
        self.data.extend(other.data);
        self.metadata.extend(other.metadata);
    }
}

/// The data handed to `VOP_WRITE`, without forcing the caller to materialise
/// synthetic payloads.
///
/// The NFS server converts a `wg_nfsproto` payload into a `WriteSource`; the
/// filesystem stores whole-block fill writes as
/// [`BlockData::Fill`](crate::inode::BlockData::Fill) so the hot path of a
/// simulated file copy allocates no payload bytes at all.
#[derive(Clone, Copy, Debug)]
pub enum WriteSource<'a> {
    /// Real bytes to copy into the cache.
    Bytes(&'a [u8]),
    /// `len` repetitions of `byte`.
    Fill {
        /// The repeated byte value.
        byte: u8,
        /// Number of repetitions.
        len: u64,
    },
}

impl WriteSource<'_> {
    /// Number of bytes the write carries.
    pub fn len(&self) -> usize {
        match self {
            WriteSource::Bytes(b) => b.len(),
            WriteSource::Fill { len, .. } => *len as usize,
        }
    }

    /// `true` if the write carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<'a> From<&'a [u8]> for WriteSource<'a> {
    fn from(bytes: &'a [u8]) -> Self {
        WriteSource::Bytes(bytes)
    }
}

impl<'a> From<&'a Vec<u8>> for WriteSource<'a> {
    fn from(bytes: &'a Vec<u8>) -> Self {
        WriteSource::Bytes(bytes)
    }
}

impl<'a, const N: usize> From<&'a [u8; N]> for WriteSource<'a> {
    fn from(bytes: &'a [u8; N]) -> Self {
        WriteSource::Bytes(bytes)
    }
}

/// The result of a `VOP_WRITE`.
#[derive(Clone, Debug)]
pub struct WriteOutcome {
    /// Device requests the write requires before it is stable, given the
    /// flags it was issued with (empty for `DelayData`).
    pub io: IoPlan,
    /// File size after the write.
    pub new_size: u64,
    /// `true` if the only inode change was the modification time — the case
    /// the reference port lets slide with an asynchronous inode update
    /// (§4.4), i.e. no synchronous metadata write is required even on the
    /// standard path.
    pub mtime_only: bool,
    /// `true` if this write grew the file or allocated blocks (and therefore
    /// changed the inode beyond mtime).
    pub allocated: bool,
}

/// The result of a read.
#[derive(Clone, Debug)]
pub struct ReadOutcome {
    /// The bytes read (shorter than requested at end of file).
    pub data: Vec<u8>,
    /// Device reads needed for blocks that were not in the cache.  The caller
    /// charges their latency before completing the read.
    pub misses: Vec<DiskRequest>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_plan_accounting() {
        let mut plan = IoPlan::empty();
        assert!(plan.is_empty());
        assert_eq!(plan.transactions(), 0);
        plan.data.push(DiskRequest::write(0, 65536));
        plan.metadata.push(DiskRequest::write(16_000_000, 8192));
        assert_eq!(plan.transactions(), 2);
        assert_eq!(plan.bytes(), 65536 + 8192);
        assert!(!plan.is_empty());

        let mut other = IoPlan::empty();
        other.data.push(DiskRequest::write(65536, 8192));
        plan.extend(other);
        assert_eq!(plan.transactions(), 3);
        assert_eq!(plan.data.len(), 2);
    }

    #[test]
    fn flags_are_distinct() {
        assert_ne!(WriteFlags::Sync, WriteFlags::DelayData);
        assert_ne!(WriteFlags::Sync, WriteFlags::SyncDataOnly);
        assert_ne!(FsyncFlags::All, FsyncFlags::MetadataOnly);
    }
}
