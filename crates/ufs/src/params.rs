//! Filesystem geometry and policy parameters.

/// Geometry and policy of one filesystem instance.
///
/// The defaults match the configuration the paper's experiments assume: 8 KB
/// blocks, clustering of contiguous writes into transfers of up to 64 KB, an
/// inode region separated from the data region so metadata updates pay a seek.
#[derive(Clone, Debug, serde::Serialize)]
pub struct FsParams {
    /// Filesystem block size in bytes (the unit of allocation and of client
    /// writes; NFS v2 clients emit one write per 8 KB block).
    pub block_size: u64,
    /// Largest clustered transfer the filesystem will build (the McVoy/Kleiman
    /// extension; 64 KB in the paper).
    pub cluster_size: u64,
    /// Usable capacity of the data region in bytes.
    pub data_capacity: u64,
    /// Disk byte address where the inode region starts.
    pub inode_region_start: u64,
    /// Disk byte address where the data region starts.
    pub data_region_start: u64,
    /// Bytes each on-disk inode occupies (128 in FFS).
    pub inode_size: u64,
}

impl Default for FsParams {
    fn default() -> Self {
        FsParams {
            block_size: 8192,
            cluster_size: 64 * 1024,
            // Leave room for ~900 MB of data on the 1.05 GB RZ26.
            data_capacity: 900 * 1024 * 1024,
            inode_region_start: 16 * 1024 * 1024,
            data_region_start: 64 * 1024 * 1024,
            inode_size: 128,
        }
    }
}

impl FsParams {
    /// Number of inodes that share one filesystem block (and therefore one
    /// inode-block disk write).
    pub fn inodes_per_block(&self) -> u64 {
        self.block_size / self.inode_size
    }

    /// Number of block pointers an indirect block holds (4-byte pointers).
    pub fn pointers_per_block(&self) -> u64 {
        self.block_size / 4
    }

    /// The disk address of the block containing inode `ino`.
    pub fn inode_block_addr(&self, ino: u64) -> u64 {
        self.inode_region_start + (ino / self.inodes_per_block()) * self.block_size
    }

    /// Number of whole blocks needed to hold `bytes` bytes.
    pub fn blocks_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.block_size)
    }

    /// A small-geometry configuration used by tests that want to hit ENOSPC
    /// and indirect-block boundaries quickly.
    pub fn tiny_for_tests() -> Self {
        FsParams {
            block_size: 8192,
            cluster_size: 64 * 1024,
            data_capacity: 8192 * 64, // 64 data blocks
            inode_region_start: 1024 * 1024,
            data_region_start: 2 * 1024 * 1024,
            inode_size: 128,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let p = FsParams::default();
        assert_eq!(p.inodes_per_block(), 64);
        assert_eq!(p.pointers_per_block(), 2048);
        assert_eq!(p.blocks_for(0), 0);
        assert_eq!(p.blocks_for(1), 1);
        assert_eq!(p.blocks_for(8192), 1);
        assert_eq!(p.blocks_for(8193), 2);
        assert_eq!(p.blocks_for(10 * 1024 * 1024), 1280);
    }

    #[test]
    fn inode_blocks_are_shared_between_adjacent_inodes() {
        let p = FsParams::default();
        assert_eq!(p.inode_block_addr(0), p.inode_block_addr(63));
        assert_ne!(p.inode_block_addr(63), p.inode_block_addr(64));
        assert_eq!(p.inode_block_addr(64) - p.inode_block_addr(0), p.block_size);
    }

    #[test]
    fn regions_do_not_overlap() {
        let p = FsParams::default();
        assert!(p.inode_region_start < p.data_region_start);
        let t = FsParams::tiny_for_tests();
        assert!(t.inode_region_start < t.data_region_start);
        assert_eq!(t.data_capacity / t.block_size, 64);
    }
}
