//! Filesystem geometry and policy parameters.

/// Geometry and policy of one filesystem instance.
///
/// The defaults match the configuration the paper's experiments assume: 8 KB
/// blocks, clustering of contiguous writes into transfers of up to 64 KB, an
/// inode region separated from the data region so metadata updates pay a seek.
#[derive(Clone, Debug, serde::Serialize)]
pub struct FsParams {
    /// Filesystem block size in bytes (the unit of allocation and of client
    /// writes; NFS v2 clients emit one write per 8 KB block).
    pub block_size: u64,
    /// Largest clustered transfer the filesystem will build (the McVoy/Kleiman
    /// extension; 64 KB in the paper).
    pub cluster_size: u64,
    /// Usable capacity of the data region in bytes.
    pub data_capacity: u64,
    /// Disk byte address where the inode region starts.
    pub inode_region_start: u64,
    /// Disk byte address where the data region starts.
    pub data_region_start: u64,
    /// Bytes each on-disk inode occupies (128 in FFS).
    pub inode_size: u64,
    /// Whether blocks fetched from disk by reads stay resident in the buffer
    /// cache.
    ///
    /// `false` (the default) reproduces the cold-cache behaviour the paper's
    /// figures measure: every read of an uncached block pays a disk trip,
    /// even if the same block was read a nanosecond earlier.  Real UFS keeps
    /// read blocks in the buffer cache; scaled-out configurations turn this
    /// on so a bounded working set stops re-reading the same blocks from a
    /// saturated disk farm.
    pub read_caching: bool,
    /// Capacity of the unified buffer cache in pages (filesystem blocks).
    ///
    /// `0` (the default) leaves the cache unbounded — the paper-identical
    /// behaviour every golden table pins: blocks stay resident forever and no
    /// accounting is done at all.  A non-zero value arms the bounded unified
    /// cache: resident pages are tracked in LRU order, clean pages are
    /// evicted when residency exceeds the capacity, and dirty pages are
    /// subject to the [`FsParams::dirty_ratio`] writeback throttle.
    pub cache_pages: u64,
    /// Fraction of [`FsParams::cache_pages`] that may be dirty before a
    /// writer is throttled into a forced inline writeback (CAWL-style
    /// dirty-ratio control).  Only meaningful when `cache_pages > 0`.
    pub dirty_ratio: f64,
    /// Number of FFS-style inode groups the inode region is divided into.
    ///
    /// `1` (the default) is the flat layout the paper's single-disk server
    /// implies: consecutive inodes share consecutive inode blocks, so a
    /// working set of a few hundred files keeps all its inode writes inside
    /// one or two 8 KB blocks — which, behind a striping driver, all map to
    /// *one* stripe unit on *one* member spindle.  Real UFS spreads inodes
    /// across cylinder groups; with `inode_groups > 1` consecutive inodes
    /// rotate across groups spaced [`FsParams::INODE_GROUP_SPAN`] apart, so a
    /// hot working set's metadata writes spread across every member of a
    /// stripe set instead of hammering one.
    pub inode_groups: u64,
}

impl Default for FsParams {
    fn default() -> Self {
        FsParams {
            block_size: 8192,
            cluster_size: 64 * 1024,
            // Leave room for ~900 MB of data on the 1.05 GB RZ26.
            data_capacity: 900 * 1024 * 1024,
            inode_region_start: 16 * 1024 * 1024,
            data_region_start: 64 * 1024 * 1024,
            inode_size: 128,
            read_caching: false,
            cache_pages: 0,
            dirty_ratio: 0.5,
            inode_groups: 1,
        }
    }
}

impl FsParams {
    /// Number of inodes that share one filesystem block (and therefore one
    /// inode-block disk write).
    pub fn inodes_per_block(&self) -> u64 {
        self.block_size / self.inode_size
    }

    /// Number of block pointers an indirect block holds (4-byte pointers).
    pub fn pointers_per_block(&self) -> u64 {
        self.block_size / 4
    }

    /// Distance between the starts of two consecutive inode groups: seven
    /// 64 KB stripe units.  Being coprime to every stripe width up to 13
    /// (other than 7), consecutive groups walk all members of a stripe set
    /// instead of aliasing onto a subset.
    pub const INODE_GROUP_SPAN: u64 = 7 * 64 * 1024;

    /// The disk address of the block containing inode `ino`.
    ///
    /// With a single inode group this is the flat layout
    /// `region_start + (ino / inodes_per_block) * block_size`; with more,
    /// inode `ino` lives in group `ino % inode_groups` at span-sized strides
    /// (see [`FsParams::inode_groups`]).
    pub fn inode_block_addr(&self, ino: u64) -> u64 {
        let groups = self.inode_groups.max(1);
        let group = ino % groups;
        let slot = ino / groups;
        let block_offset = (slot / self.inodes_per_block()) * self.block_size;
        // A group's slots must stay inside its span: letting them run into
        // the next group's range would silently alias two different inodes
        // onto one disk address, defeating the spreading this layout models.
        assert!(
            groups == 1 || block_offset < Self::INODE_GROUP_SPAN,
            "inode {ino} overflows its group: {groups} groups hold {} inodes \
             each; raise inode_groups or shrink the working set",
            (Self::INODE_GROUP_SPAN / self.block_size) * self.inodes_per_block()
        );
        let addr = self.inode_region_start + group * Self::INODE_GROUP_SPAN + block_offset;
        // Hard assert (the group count comes straight from CLI flags and
        // release builds strip debug_asserts): an inode block past the data
        // region start would alias onto addresses the data allocator hands
        // out, silently corrupting every seek-distance result.
        assert!(
            addr < self.data_region_start || groups == 1,
            "inode {ino} overflows the inode region: {groups} groups need \
             {} bytes but only {} are reserved; lower inode_groups",
            groups * Self::INODE_GROUP_SPAN,
            self.data_region_start - self.inode_region_start
        );
        addr
    }

    /// Number of whole blocks needed to hold `bytes` bytes.
    pub fn blocks_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.block_size)
    }

    /// A small-geometry configuration used by tests that want to hit ENOSPC
    /// and indirect-block boundaries quickly.
    pub fn tiny_for_tests() -> Self {
        FsParams {
            block_size: 8192,
            cluster_size: 64 * 1024,
            data_capacity: 8192 * 64, // 64 data blocks
            inode_region_start: 1024 * 1024,
            data_region_start: 2 * 1024 * 1024,
            inode_size: 128,
            read_caching: false,
            cache_pages: 0,
            dirty_ratio: 0.5,
            inode_groups: 1,
        }
    }

    /// The number of dirty pages the cache tolerates before throttling
    /// writers, derived from `cache_pages * dirty_ratio` and clamped to
    /// `[1, cache_pages]`.  Meaningless (returns `u64::MAX`) when the cache
    /// is unbounded.
    pub fn dirty_page_threshold(&self) -> u64 {
        if self.cache_pages == 0 {
            return u64::MAX;
        }
        let raw = (self.cache_pages as f64 * self.dirty_ratio) as u64;
        raw.clamp(1, self.cache_pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let p = FsParams::default();
        assert_eq!(p.inodes_per_block(), 64);
        assert_eq!(p.pointers_per_block(), 2048);
        assert_eq!(p.blocks_for(0), 0);
        assert_eq!(p.blocks_for(1), 1);
        assert_eq!(p.blocks_for(8192), 1);
        assert_eq!(p.blocks_for(8193), 2);
        assert_eq!(p.blocks_for(10 * 1024 * 1024), 1280);
    }

    #[test]
    fn inode_blocks_are_shared_between_adjacent_inodes() {
        let p = FsParams::default();
        assert_eq!(p.inode_block_addr(0), p.inode_block_addr(63));
        assert_ne!(p.inode_block_addr(63), p.inode_block_addr(64));
        assert_eq!(p.inode_block_addr(64) - p.inode_block_addr(0), p.block_size);
    }

    #[test]
    fn inode_groups_spread_consecutive_inodes_across_stripe_members() {
        let flat = FsParams::default();
        let grouped = FsParams {
            inode_groups: 64,
            ..FsParams::default()
        };
        // Group 0 keeps the flat layout's first block.
        assert_eq!(grouped.inode_block_addr(0), flat.inode_block_addr(0));
        // Consecutive inodes land one group span apart instead of sharing a
        // block...
        assert_eq!(
            grouped.inode_block_addr(1) - grouped.inode_block_addr(0),
            FsParams::INODE_GROUP_SPAN
        );
        // ...and therefore on different members of any stripe (6-wide here).
        let stripe_unit = 64 * 1024;
        let member = |ino: u64| (grouped.inode_block_addr(ino) / stripe_unit) % 6;
        let members: std::collections::BTreeSet<u64> = (0..64).map(member).collect();
        assert_eq!(members.len(), 6, "all six members carry inode blocks");
        // The flat layout pins a whole working set onto one member.
        let flat_member = |ino: u64| (flat.inode_block_addr(ino) / stripe_unit) % 6;
        let flat_members: std::collections::BTreeSet<u64> = (0..64).map(flat_member).collect();
        assert_eq!(flat_members.len(), 1);
        // A group's slots stay inside the inode region.
        assert!(grouped.inode_block_addr(64 * 63 + 63) < grouped.data_region_start);
    }

    #[test]
    fn dirty_threshold_clamps_and_defaults_unbounded() {
        let p = FsParams::default();
        assert_eq!(p.cache_pages, 0, "default cache is unbounded");
        assert_eq!(p.dirty_page_threshold(), u64::MAX);
        let bounded = FsParams {
            cache_pages: 100,
            dirty_ratio: 0.5,
            ..FsParams::default()
        };
        assert_eq!(bounded.dirty_page_threshold(), 50);
        let tiny = FsParams {
            cache_pages: 4,
            dirty_ratio: 0.0,
            ..FsParams::default()
        };
        assert_eq!(tiny.dirty_page_threshold(), 1, "threshold floors at 1");
        let over = FsParams {
            cache_pages: 4,
            dirty_ratio: 9.0,
            ..FsParams::default()
        };
        assert_eq!(over.dirty_page_threshold(), 4, "threshold caps at capacity");
    }

    #[test]
    fn regions_do_not_overlap() {
        let p = FsParams::default();
        assert!(p.inode_region_start < p.data_region_start);
        let t = FsParams::tiny_for_tests();
        assert!(t.inode_region_start < t.data_region_start);
        assert_eq!(t.data_capacity / t.block_size, 64);
    }
}
