//! Write clustering.
//!
//! [MCVO91] extended SunOS UFS so that physically contiguous dirty blocks are
//! written with one large transfer instead of one per block; the paper's UFS
//! had the equivalent extension with 64 KB maximum transfers.  Gathered NFS
//! writes only pay off fully if the data flush is clustered: eight gathered
//! 8 KB writes should become one 64 KB disk transaction, not eight.

use wg_disk::DiskRequest;

/// Coalesce `(physical_address, length)` extents into clustered write
/// requests.
///
/// Extents are sorted by address; runs that are physically contiguous are
/// merged, and merged runs are split so no single transfer exceeds
/// `max_transfer` bytes.  Extents that are not contiguous with their
/// neighbours become individual transfers, exactly as UFS would issue them.
pub fn cluster_requests(mut extents: Vec<(u64, u64)>, max_transfer: u64) -> Vec<DiskRequest> {
    assert!(max_transfer > 0, "cluster size must be non-zero");
    if extents.is_empty() {
        return Vec::new();
    }
    extents.sort_unstable_by_key(|&(addr, _)| addr);

    // Merge contiguous extents.
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(extents.len());
    for (addr, len) in extents {
        if len == 0 {
            continue;
        }
        match merged.last_mut() {
            Some((last_addr, last_len)) if *last_addr + *last_len == addr => {
                *last_len += len;
            }
            _ => merged.push((addr, len)),
        }
    }

    // Split merged runs at the maximum transfer size.
    let mut out = Vec::new();
    for (mut addr, mut len) in merged {
        while len > max_transfer {
            out.push(DiskRequest::write(addr, max_transfer));
            addr += max_transfer;
            len -= max_transfer;
        }
        if len > 0 {
            out.push(DiskRequest::write(addr, len));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const K8: u64 = 8192;
    const K64: u64 = 64 * 1024;

    #[test]
    fn eight_contiguous_blocks_become_one_transfer() {
        let extents: Vec<_> = (0..8).map(|i| (i * K8, K8)).collect();
        let reqs = cluster_requests(extents, K64);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].addr, 0);
        assert_eq!(reqs[0].len, K64);
    }

    #[test]
    fn large_runs_split_at_cluster_size() {
        // 20 contiguous blocks = 160 KB -> 64 + 64 + 32 KB.
        let extents: Vec<_> = (0..20).map(|i| (i * K8, K8)).collect();
        let reqs = cluster_requests(extents, K64);
        assert_eq!(reqs.len(), 3);
        assert_eq!(reqs[0].len, K64);
        assert_eq!(reqs[1].len, K64);
        assert_eq!(reqs[2].len, 4 * K8);
        assert_eq!(reqs[1].addr, K64);
        assert_eq!(reqs[2].addr, 2 * K64);
    }

    #[test]
    fn non_contiguous_blocks_stay_separate() {
        let extents = vec![(0, K8), (3 * K8, K8), (10 * K8, K8)];
        let reqs = cluster_requests(extents, K64);
        assert_eq!(reqs.len(), 3);
        assert!(reqs.iter().all(|r| r.len == K8));
    }

    #[test]
    fn unsorted_input_is_handled() {
        let extents = vec![(2 * K8, K8), (0, K8), (K8, K8)];
        let reqs = cluster_requests(extents, K64);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].len, 3 * K8);
    }

    #[test]
    fn empty_and_zero_length_extents() {
        assert!(cluster_requests(vec![], K64).is_empty());
        let reqs = cluster_requests(vec![(0, 0), (K8, K8)], K64);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].addr, K8);
    }

    #[test]
    fn random_access_pattern_still_amortises_partially() {
        // Two separate contiguous runs.
        let mut extents: Vec<_> = (0..4).map(|i| (i * K8, K8)).collect();
        extents.extend((100..104).map(|i| (i * K8, K8)));
        let reqs = cluster_requests(extents, K64);
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].len, 4 * K8);
        assert_eq!(reqs[1].len, 4 * K8);
    }

    #[test]
    #[should_panic(expected = "cluster size must be non-zero")]
    fn zero_cluster_size_panics() {
        cluster_requests(vec![(0, K8)], 0);
    }
}
