//! Filesystem errors.

use std::fmt;

/// Errors returned by filesystem operations.
///
/// These map one-to-one onto the NFS status codes the server returns to
/// clients (the mapping lives in the server crate so this crate stays
/// protocol-agnostic).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsError {
    /// The inode number does not name a live file (e.g. it was removed); the
    /// NFS-visible consequence is a stale file handle.
    StaleInode,
    /// A directory entry was not found.
    NotFound,
    /// An entry with that name already exists.
    Exists,
    /// The operation requires a directory but the inode is a regular file.
    NotADirectory,
    /// The operation requires a regular file but the inode is a directory.
    IsADirectory,
    /// The data region is exhausted.
    NoSpace,
    /// The file would exceed what a single indirect block can map.
    FileTooLarge,
    /// A directory being removed still has entries.
    NotEmpty,
    /// A name exceeded the protocol's length limit.
    NameTooLong,
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            FsError::StaleInode => "stale inode (file no longer exists)",
            FsError::NotFound => "no such file or directory",
            FsError::Exists => "file exists",
            FsError::NotADirectory => "not a directory",
            FsError::IsADirectory => "is a directory",
            FsError::NoSpace => "no space left on device",
            FsError::FileTooLarge => "file too large",
            FsError::NotEmpty => "directory not empty",
            FsError::NameTooLong => "file name too long",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for FsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        assert_eq!(FsError::NoSpace.to_string(), "no space left on device");
        assert!(FsError::StaleInode.to_string().contains("stale"));
        assert!(FsError::FileTooLarge.to_string().contains("large"));
    }
}
