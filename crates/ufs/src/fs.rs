//! The filesystem proper: allocation, namespace, buffer cache and the
//! vnode operations.

use std::collections::BTreeMap;
use std::sync::Arc;
use wg_simcore::FxHashMap;

use wg_disk::DiskRequest;

use crate::cluster::cluster_requests;
use crate::error::FsError;
use crate::inode::{BlockData, CachedBlock, FileKind, Inode, InodeNumber};
use crate::params::FsParams;
use crate::vnode::{
    FsyncFlags, IoPlan, ReadAccumulator, ReadOutcome, WriteFlags, WriteOutcome, WriteSource,
};

/// Maximum file-name length accepted (the NFS v2 limit).
pub const MAX_NAME_LEN: usize = 255;

/// The inode number of the root directory (2, as in FFS).
pub const ROOT_INO: InodeNumber = 2;

/// A snapshot of an inode's externally visible attributes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FileAttributes {
    /// Inode number.
    pub ino: InodeNumber,
    /// Generation (for stale-handle detection).
    pub generation: u32,
    /// File or directory.
    pub kind: FileKind,
    /// Size in bytes.
    pub size: u64,
    /// Mode bits.
    pub mode: u32,
    /// Owner uid.
    pub uid: u32,
    /// Owner gid.
    pub gid: u32,
    /// Link count.
    pub nlink: u32,
    /// 512-byte sectors occupied.
    pub sectors: u64,
    /// Modification time (simulation nanoseconds).
    pub mtime_nanos: u64,
    /// Access time (simulation nanoseconds).
    pub atime_nanos: u64,
    /// Change time (simulation nanoseconds).
    pub ctime_nanos: u64,
}

/// Cumulative operation counters, used by the server to charge CPU costs per
/// filesystem trip and by tests to verify call patterns.
#[derive(Clone, Copy, Debug, Default, serde::Serialize)]
pub struct UfsCounters {
    /// `VOP_WRITE` calls.
    pub writes: u64,
    /// `VOP_READ` calls.
    pub reads: u64,
    /// `VOP_FSYNC` calls.
    pub fsyncs: u64,
    /// `VOP_SYNCDATA` calls.
    pub syncdatas: u64,
    /// Namespace operations (create/lookup/remove/mkdir/readdir/setattr).
    pub namespace_ops: u64,
    /// Clean pages evicted by the bounded unified cache (0 while the cache is
    /// unbounded).
    pub cache_evictions: u64,
    /// Times a writer was forced into an inline writeback because the dirty
    /// ratio crossed the configured threshold.
    pub throttle_stalls: u64,
    /// Dirty pages cleaned through [`Ufs::writeback_batch`] — the unified
    /// cache's write-behind path (both background and throttle-forced).
    pub writeback_blocks: u64,
}

/// A UFS-like filesystem instance.
#[derive(Clone, Debug)]
pub struct Ufs {
    params: FsParams,
    fsid: u32,
    inodes: FxHashMap<InodeNumber, Inode>,
    next_ino: InodeNumber,
    generation_counter: u32,
    /// Next unallocated offset within the data region, in bytes.
    alloc_cursor: u64,
    /// Physical addresses of freed blocks available for reuse.
    free_blocks: Vec<u64>,
    counters: UfsCounters,
    /// Unified-cache LRU order: monotone tick -> resident page.  Empty (and
    /// never touched) while `params.cache_pages == 0`, so the unbounded
    /// default pays no bookkeeping at all.
    lru: BTreeMap<u64, (InodeNumber, u64)>,
    /// Reverse index of `lru`: resident page -> its current tick.
    lru_index: FxHashMap<(InodeNumber, u64), u64>,
    /// Next LRU tick (deterministic recency stamp; no wall clock involved).
    lru_tick: u64,
    /// Number of resident pages currently dirty (tracked incrementally so the
    /// dirty-ratio throttle is O(1) per write).
    cache_dirty: u64,
}

impl Ufs {
    /// Create a filesystem with the given geometry; the root directory exists
    /// as inode [`ROOT_INO`].
    pub fn new(fsid: u32, params: FsParams) -> Self {
        let mut fs = Ufs {
            params,
            fsid,
            inodes: FxHashMap::default(),
            next_ino: ROOT_INO + 1,
            generation_counter: 1,
            alloc_cursor: 0,
            free_blocks: Vec::new(),
            counters: UfsCounters::default(),
            lru: BTreeMap::new(),
            lru_index: FxHashMap::default(),
            lru_tick: 0,
            cache_dirty: 0,
        };
        let root = Inode::new(ROOT_INO, 1, FileKind::Directory, 0o755, 0);
        fs.inodes.insert(ROOT_INO, root);
        fs
    }

    /// A filesystem with default geometry.
    pub fn with_defaults(fsid: u32) -> Self {
        Ufs::new(fsid, FsParams::default())
    }

    /// The filesystem id used in file handles and attributes.
    pub fn fsid(&self) -> u32 {
        self.fsid
    }

    /// The geometry/policy parameters.
    pub fn params(&self) -> &FsParams {
        &self.params
    }

    /// The root directory inode number.
    pub fn root(&self) -> InodeNumber {
        ROOT_INO
    }

    /// Operation counters.
    pub fn counters(&self) -> UfsCounters {
        self.counters
    }

    /// Free data blocks remaining (approximate, for STATFS).
    pub fn free_block_count(&self) -> u64 {
        let used = self.alloc_cursor / self.params.block_size - self.free_blocks.len() as u64;
        (self.params.data_capacity / self.params.block_size).saturating_sub(used)
    }

    /// Total data blocks in the filesystem (for STATFS).
    pub fn total_block_count(&self) -> u64 {
        self.params.data_capacity / self.params.block_size
    }

    fn inode(&self, ino: InodeNumber) -> Result<&Inode, FsError> {
        self.inodes.get(&ino).ok_or(FsError::StaleInode)
    }

    fn inode_mut(&mut self, ino: InodeNumber) -> Result<&mut Inode, FsError> {
        self.inodes.get_mut(&ino).ok_or(FsError::StaleInode)
    }

    /// The generation number of a live inode (stale-handle checks compare
    /// against the generation packed in the client's file handle).
    pub fn generation_of(&self, ino: InodeNumber) -> Result<u32, FsError> {
        Ok(self.inode(ino)?.generation)
    }

    fn allocate_block(&mut self) -> Result<u64, FsError> {
        if let Some(addr) = self.free_blocks.pop() {
            return Ok(addr);
        }
        if self.alloc_cursor + self.params.block_size > self.params.data_capacity {
            return Err(FsError::NoSpace);
        }
        let addr = self.params.data_region_start + self.alloc_cursor;
        self.alloc_cursor += self.params.block_size;
        Ok(addr)
    }

    // ------------------------------------------------------------------
    // Unified buffer cache
    //
    // One bounded pool accounts for every resident file page — pages made
    // resident by writes and pages kept resident by read caching alike.
    // Armed by `params.cache_pages > 0`; the unbounded default (the paper's
    // configuration) skips every hook below.
    // ------------------------------------------------------------------

    fn cache_armed(&self) -> bool {
        self.params.cache_pages > 0
    }

    /// Move `(ino, lbn)` to the most-recently-used end of the LRU order,
    /// inserting it if it was not yet tracked.
    fn cache_touch(&mut self, ino: InodeNumber, lbn: u64) {
        let key = (ino, lbn);
        if let Some(old) = self.lru_index.get(&key).copied() {
            self.lru.remove(&old);
        }
        self.lru_tick += 1;
        self.lru.insert(self.lru_tick, key);
        self.lru_index.insert(key, self.lru_tick);
    }

    /// Drop `(ino, lbn)` from the accounting (the page is no longer
    /// resident).  `was_dirty` keeps the incremental dirty count honest.
    fn cache_forget(&mut self, ino: InodeNumber, lbn: u64, was_dirty: bool) {
        if let Some(tick) = self.lru_index.remove(&(ino, lbn)) {
            self.lru.remove(&tick);
            if was_dirty {
                self.cache_dirty -= 1;
            }
        }
    }

    /// Evict clean pages in LRU order until residency fits `cache_pages`.
    /// Dirty pages are skipped — they are cleaned by writeback, never
    /// discarded.
    fn cache_evict_clean(&mut self) {
        let capacity = self.params.cache_pages;
        if self.lru_index.len() as u64 <= capacity {
            return;
        }
        let mut over = self.lru_index.len() as u64 - capacity;
        let mut to_evict = Vec::new();
        for (&tick, &(ino, lbn)) in self.lru.iter() {
            if over == 0 {
                break;
            }
            let dirty = self
                .inodes
                .get(&ino)
                .and_then(|n| n.blocks.get(lbn))
                .map(|b| b.dirty)
                .unwrap_or(false);
            if !dirty {
                to_evict.push((tick, ino, lbn));
                over -= 1;
            }
        }
        for (tick, ino, lbn) in to_evict {
            if let Some(n) = self.inodes.get_mut(&ino) {
                n.blocks.remove(lbn);
            }
            self.lru.remove(&tick);
            self.lru_index.remove(&(ino, lbn));
            self.counters.cache_evictions += 1;
        }
    }

    /// Clean up to `max_blocks` of the oldest dirty resident pages and return
    /// the clustered disk writes that make them stable.  This is the unified
    /// cache's write-behind path: the server's background writeback events
    /// and the dirty-ratio throttle both drain through here.  The pages stay
    /// resident (now clean, hence evictable).
    pub fn writeback_batch(&mut self, max_blocks: u64) -> Vec<DiskRequest> {
        if !self.cache_armed() || max_blocks == 0 {
            return Vec::new();
        }
        let mut picked: Vec<(InodeNumber, u64)> = Vec::new();
        for &(ino, lbn) in self.lru.values() {
            if picked.len() as u64 >= max_blocks {
                break;
            }
            let dirty = self
                .inodes
                .get(&ino)
                .and_then(|n| n.blocks.get(lbn))
                .map(|b| b.dirty)
                .unwrap_or(false);
            if dirty {
                picked.push((ino, lbn));
            }
        }
        let block_size = self.params.block_size;
        let mut extents = Vec::new();
        for (ino, lbn) in picked {
            if let Some(block) = self
                .inodes
                .get_mut(&ino)
                .and_then(|n| n.blocks.get_mut(lbn))
            {
                block.dirty = false;
                extents.push((block.phys, block_size));
                self.cache_dirty -= 1;
                self.counters.writeback_blocks += 1;
            }
        }
        extents.sort_unstable();
        cluster_requests(extents, self.params.cluster_size)
    }

    /// Enforce the dirty-ratio throttle and the residency bound after a
    /// mutation.  Returns the forced-writeback requests the caller must issue
    /// synchronously (empty unless the dirty threshold was crossed).
    fn cache_enforce(&mut self) -> Vec<DiskRequest> {
        let mut forced = Vec::new();
        let threshold = self.params.dirty_page_threshold();
        if self.cache_dirty > threshold {
            forced = self.writeback_batch(self.cache_dirty - threshold);
            self.counters.throttle_stalls += 1;
        }
        self.cache_evict_clean();
        forced
    }

    /// Resident pages currently tracked by the unified cache (0 while
    /// unbounded — the default does no accounting).
    pub fn resident_pages(&self) -> u64 {
        self.lru_index.len() as u64
    }

    /// Dirty resident pages as tracked by the unified cache accounting.
    pub fn dirty_resident_pages(&self) -> u64 {
        self.cache_dirty
    }

    // ------------------------------------------------------------------
    // Namespace operations
    // ------------------------------------------------------------------

    /// Look up `name` in directory `dir`.
    pub fn lookup(&mut self, dir: InodeNumber, name: &str) -> Result<InodeNumber, FsError> {
        self.counters.namespace_ops += 1;
        let d = self.inode(dir)?;
        if d.kind != FileKind::Directory {
            return Err(FsError::NotADirectory);
        }
        d.entries.get(name).copied().ok_or(FsError::NotFound)
    }

    /// Create a regular file.  Returns the new inode number.
    pub fn create(
        &mut self,
        dir: InodeNumber,
        name: &str,
        mode: u32,
        now_nanos: u64,
    ) -> Result<InodeNumber, FsError> {
        self.create_node(dir, name, mode, FileKind::Regular, now_nanos)
    }

    /// Create a directory.  Returns the new inode number.
    pub fn mkdir(
        &mut self,
        dir: InodeNumber,
        name: &str,
        mode: u32,
        now_nanos: u64,
    ) -> Result<InodeNumber, FsError> {
        self.create_node(dir, name, mode, FileKind::Directory, now_nanos)
    }

    fn create_node(
        &mut self,
        dir: InodeNumber,
        name: &str,
        mode: u32,
        kind: FileKind,
        now_nanos: u64,
    ) -> Result<InodeNumber, FsError> {
        self.counters.namespace_ops += 1;
        if name.is_empty() || name.len() > MAX_NAME_LEN {
            return Err(FsError::NameTooLong);
        }
        {
            let d = self.inode(dir)?;
            if d.kind != FileKind::Directory {
                return Err(FsError::NotADirectory);
            }
            if d.entries.contains_key(name) {
                return Err(FsError::Exists);
            }
        }
        let ino = self.next_ino;
        self.next_ino += 1;
        self.generation_counter += 1;
        let generation = self.generation_counter;
        let node = Inode::new(ino, generation, kind, mode, now_nanos);
        self.inodes.insert(ino, node);
        let d = self.inode_mut(dir)?;
        d.entries.insert(Arc::from(name), ino);
        d.listing = None;
        d.mtime_nanos = now_nanos;
        d.inode_dirty = true;
        d.mtime_only_dirty = false;
        Ok(ino)
    }

    /// Remove a file or an empty directory.  The freed inode's blocks return
    /// to the allocator and later handles to it become stale.
    pub fn remove(&mut self, dir: InodeNumber, name: &str, now_nanos: u64) -> Result<(), FsError> {
        self.counters.namespace_ops += 1;
        let target = {
            let d = self.inode(dir)?;
            if d.kind != FileKind::Directory {
                return Err(FsError::NotADirectory);
            }
            *d.entries.get(name).ok_or(FsError::NotFound)?
        };
        {
            let t = self.inode(target)?;
            if t.kind == FileKind::Directory && !t.entries.is_empty() {
                return Err(FsError::NotEmpty);
            }
        }
        // Free the target's blocks.
        if let Some(t) = self.inodes.remove(&target) {
            for addr in t.direct.iter().flatten() {
                self.free_blocks.push(*addr);
            }
            for addr in t.indirect_map.values() {
                self.free_blocks.push(addr);
            }
            if let Some(addr) = t.indirect {
                self.free_blocks.push(addr);
            }
            if self.cache_armed() {
                for (lbn, b) in t.blocks.iter() {
                    self.cache_forget(target, lbn, b.dirty);
                }
            }
        }
        let d = self.inode_mut(dir)?;
        d.entries.remove(name);
        d.listing = None;
        d.mtime_nanos = now_nanos;
        d.inode_dirty = true;
        d.mtime_only_dirty = false;
        Ok(())
    }

    /// List the names in a directory.
    ///
    /// The listing is memoised per directory and shared by reference count:
    /// repeated READDIRs of an unchanged directory (the common SFS-mix case)
    /// return the same `Arc` instead of cloning every name, and the proto
    /// layer's READDIR reply carries it onward without another copy.  Any
    /// entry change invalidates the cache.  Names are `Arc<str>` end to end,
    /// so even a rebuild after an invalidation only bumps refcounts.
    pub fn readdir(&mut self, dir: InodeNumber) -> Result<Arc<Vec<Arc<str>>>, FsError> {
        self.counters.namespace_ops += 1;
        let d = self.inode_mut(dir)?;
        if d.kind != FileKind::Directory {
            return Err(FsError::NotADirectory);
        }
        if let Some(listing) = &d.listing {
            return Ok(Arc::clone(listing));
        }
        let listing = Arc::new(d.entries.keys().cloned().collect::<Vec<Arc<str>>>());
        d.listing = Some(Arc::clone(&listing));
        Ok(listing)
    }

    /// Attributes of an inode.
    pub fn getattr(&self, ino: InodeNumber) -> Result<FileAttributes, FsError> {
        let n = self.inode(ino)?;
        Ok(FileAttributes {
            ino: n.ino,
            generation: n.generation,
            kind: n.kind,
            size: n.size,
            mode: n.mode,
            uid: n.uid,
            gid: n.gid,
            nlink: n.nlink,
            sectors: n.sectors(),
            mtime_nanos: n.mtime_nanos,
            atime_nanos: n.atime_nanos,
            ctime_nanos: n.ctime_nanos,
        })
    }

    /// Change attributes: mode and/or truncation to a new size.  Returns the
    /// new attributes plus the metadata I/O needed to make the change stable.
    pub fn setattr(
        &mut self,
        ino: InodeNumber,
        new_mode: Option<u32>,
        new_size: Option<u64>,
        now_nanos: u64,
    ) -> Result<(FileAttributes, IoPlan), FsError> {
        self.counters.namespace_ops += 1;
        let params_block = self.params.block_size;
        let max_lbn = Inode::max_lbn(&self.params);
        let mut freed: Vec<u64> = Vec::new();
        let mut dropped: Vec<(u64, bool)> = Vec::new();
        {
            let n = self.inode_mut(ino)?;
            if let Some(mode) = new_mode {
                n.mode = mode;
                n.inode_dirty = true;
                n.mtime_only_dirty = false;
            }
            if let Some(size) = new_size {
                if size < n.size {
                    // Truncate: drop blocks wholly beyond the new size.
                    let keep_blocks = size.div_ceil(params_block);
                    let drop_from = keep_blocks;
                    for lbn in drop_from..=max_lbn {
                        if let Some(addr) = n.block_addr(lbn) {
                            freed.push(addr);
                            if (lbn as usize) < crate::inode::NDADDR {
                                n.direct[lbn as usize] = None;
                            } else {
                                n.indirect_map.remove(lbn);
                                n.indirect_dirty = true;
                            }
                            if let Some(b) = n.blocks.remove(lbn) {
                                dropped.push((lbn, b.dirty));
                            }
                        }
                    }
                }
                n.size = size;
                n.inode_dirty = true;
                n.mtime_only_dirty = false;
                n.mtime_nanos = now_nanos;
            }
            n.ctime_nanos = now_nanos;
        }
        self.free_blocks.extend(freed);
        if self.cache_armed() {
            for (lbn, was_dirty) in dropped {
                self.cache_forget(ino, lbn, was_dirty);
            }
        }
        let plan = self.fsync(ino, FsyncFlags::MetadataOnly)?;
        Ok((self.getattr(ino)?, plan))
    }

    // ------------------------------------------------------------------
    // Data path
    // ------------------------------------------------------------------

    /// `VOP_WRITE`: copy the source bytes into the file at `offset`,
    /// allocating blocks as needed, and return the I/O the chosen flags
    /// require.
    ///
    /// The source is anything convertible to a [`WriteSource`]: a byte slice,
    /// or a fill pattern ([`WriteSource::Fill`]) which is stored per block
    /// without materialising payload bytes — the zero-copy path the simulated
    /// file-copy workloads take for every whole-block write.
    pub fn write<'a>(
        &mut self,
        ino: InodeNumber,
        offset: u64,
        data: impl Into<WriteSource<'a>>,
        flags: WriteFlags,
        now_nanos: u64,
    ) -> Result<WriteOutcome, FsError> {
        let source = data.into();
        self.counters.writes += 1;
        let cache_armed = self.cache_armed();
        let block_size = self.params.block_size;
        let max_lbn = Inode::max_lbn(&self.params);
        let data_len = source.len() as u64;

        // Validate and plan allocations first (so ENOSPC leaves no partial
        // allocation behind for the common whole-block case).
        {
            let n = self.inode(ino)?;
            if n.kind != FileKind::Regular {
                return Err(FsError::IsADirectory);
            }
            if source.is_empty() {
                return Ok(WriteOutcome {
                    io: IoPlan::empty(),
                    new_size: n.size,
                    mtime_only: true,
                    allocated: false,
                });
            }
            let last_lbn = (offset + data_len - 1) / block_size;
            if last_lbn > max_lbn {
                return Err(FsError::FileTooLarge);
            }
        }

        let first_lbn = offset / block_size;
        let last_lbn = (offset + data_len - 1) / block_size;

        let mut allocated = false;

        // Allocate the indirect block first if this write is the first to
        // need it.
        let needs_indirect = Inode::needs_indirect(last_lbn);
        if needs_indirect && self.inode(ino)?.indirect.is_none() {
            let addr = self.allocate_block()?;
            let n = self.inode_mut(ino)?;
            n.indirect = Some(addr);
            n.indirect_dirty = true;
            allocated = true;
        }

        for lbn in first_lbn..=last_lbn {
            // Ensure the block is mapped.
            let phys = match self.inode(ino)?.block_addr(lbn) {
                Some(p) => p,
                None => {
                    let p = self.allocate_block()?;
                    let n = self.inode_mut(ino)?;
                    if n.map_block(lbn, p) {
                        n.indirect_dirty = true;
                    }
                    allocated = true;
                    p
                }
            };

            // Copy the relevant byte range into the cached block.
            let block_start = lbn * block_size;
            let from = offset.max(block_start);
            let to = (offset + data_len).min(block_start + block_size);
            let src_from = (from - offset) as usize;
            let src_to = (to - offset) as usize;
            let dst_from = (from - block_start) as usize;
            let dst_to = (to - block_start) as usize;
            let whole_block = dst_from == 0 && dst_to == block_size as usize;

            let n = self.inode_mut(ino)?;
            let was_dirty = n.blocks.get(lbn).map(|b| b.dirty).unwrap_or(false);
            match (source, whole_block) {
                (WriteSource::Fill { byte, .. }, true) => {
                    // A fill pattern covering the whole block: store the
                    // pattern itself — no allocation, no copy.
                    n.blocks.insert(
                        lbn,
                        CachedBlock {
                            phys,
                            data: BlockData::Fill(byte),
                            dirty: true,
                        },
                    );
                }
                _ => {
                    let block = n.blocks.get_or_insert_with(lbn, || CachedBlock {
                        phys,
                        data: BlockData::Fill(0),
                        dirty: false,
                    });
                    block.phys = phys;
                    let bytes = block.data.make_bytes(block_size as usize);
                    match source {
                        WriteSource::Bytes(src) => {
                            bytes[dst_from..dst_to].copy_from_slice(&src[src_from..src_to])
                        }
                        WriteSource::Fill { byte, .. } => bytes[dst_from..dst_to].fill(byte),
                    }
                    block.dirty = true;
                }
            }
            if cache_armed {
                if !was_dirty {
                    self.cache_dirty += 1;
                }
                self.cache_touch(ino, lbn);
            }
        }

        // Update size and times.
        let (new_size, mtime_only) = {
            let n = self.inode_mut(ino)?;
            let end = offset + data_len;
            let grew = end > n.size;
            if grew {
                n.size = end;
            }
            n.mtime_nanos = now_nanos;
            n.ctime_nanos = now_nanos;
            let structural_change = allocated || grew;
            if structural_change {
                n.inode_dirty = true;
                n.mtime_only_dirty = false;
            } else if !n.inode_dirty {
                // Only the timestamps changed; the reference port flushes this
                // asynchronously (§4.4).
                n.inode_dirty = true;
                n.mtime_only_dirty = true;
            }
            (n.size, !structural_change)
        };

        // Build the I/O plan the flags require.
        let mut io = match flags {
            WriteFlags::DelayData => IoPlan::empty(),
            WriteFlags::SyncDataOnly => {
                let data_reqs = self.flush_extents(ino, first_lbn, last_lbn)?;
                IoPlan {
                    data: data_reqs,
                    metadata: Vec::new(),
                }
            }
            WriteFlags::Sync => {
                let data_reqs = self.flush_extents(ino, first_lbn, last_lbn)?;
                let metadata = if self.inode(ino)?.has_dirty_metadata() {
                    self.metadata_requests(ino, true)?
                } else {
                    Vec::new()
                };
                IoPlan {
                    data: data_reqs,
                    metadata,
                }
            }
        };

        // Bounded-cache enforcement: a writer that pushes the dirty count
        // over the threshold pays for the forced writeback inline (the
        // throttle stall), and clean pages beyond capacity are evicted.
        if cache_armed {
            let forced = self.cache_enforce();
            io.data.extend(forced);
        }

        Ok(WriteOutcome {
            io,
            new_size,
            mtime_only,
            allocated,
        })
    }

    /// Mark the blocks in `[first_lbn, last_lbn]` clean and return the
    /// clustered write requests covering the ones that were dirty.
    fn flush_extents(
        &mut self,
        ino: InodeNumber,
        first_lbn: u64,
        last_lbn: u64,
    ) -> Result<Vec<DiskRequest>, FsError> {
        let block_size = self.params.block_size;
        let cluster = self.params.cluster_size;
        let n = self.inode_mut(ino)?;
        let mut extents = Vec::new();
        let mut cleaned = 0u64;
        for lbn in first_lbn..=last_lbn {
            if let Some(block) = n.blocks.get_mut(lbn) {
                if block.dirty {
                    block.dirty = false;
                    cleaned += 1;
                    extents.push((block.phys, block_size));
                }
            }
        }
        if self.cache_armed() {
            self.cache_dirty -= cleaned;
        }
        Ok(cluster_requests(extents, cluster))
    }

    /// `VOP_SYNCDATA`: flush all dirty data blocks whose byte range intersects
    /// `[from, to)`, clustered into large transfers.  The paper's gathering
    /// server calls this with beginning/ending offsets as hints once it
    /// becomes the metadata writer.
    pub fn sync_data(&mut self, ino: InodeNumber, from: u64, to: u64) -> Result<IoPlan, FsError> {
        self.counters.syncdatas += 1;
        let block_size = self.params.block_size;
        let cluster = self.params.cluster_size;
        let n = self.inode_mut(ino)?;
        let mut extents = Vec::new();
        let mut cleaned = 0u64;
        // Only blocks whose [start, end) span overlaps [from, to) can match,
        // i.e. lbns in [from/bs, (to-1)/bs]; walking just that range keeps a
        // flush of a small gathered span O(span), not O(file blocks).
        if to > from {
            let first_lbn = from / block_size;
            let last_lbn = (to - 1) / block_size;
            for (lbn, block) in n.blocks.range_mut(first_lbn, last_lbn) {
                let start = lbn * block_size;
                let end = start + block_size;
                if block.dirty && start < to && end > from {
                    block.dirty = false;
                    cleaned += 1;
                    extents.push((block.phys, block_size));
                }
            }
        }
        if self.cache_armed() {
            self.cache_dirty -= cleaned;
        }
        Ok(IoPlan {
            data: cluster_requests(extents, cluster),
            metadata: Vec::new(),
        })
    }

    /// `VOP_FSYNC`: flush metadata (and, for [`FsyncFlags::All`], any dirty
    /// data) of the file.
    pub fn fsync(&mut self, ino: InodeNumber, flags: FsyncFlags) -> Result<IoPlan, FsError> {
        self.counters.fsyncs += 1;
        let mut plan = IoPlan::empty();
        if flags == FsyncFlags::All {
            let size = self.inode(ino)?.size;
            let data_plan = self.sync_data(ino, 0, size.max(1))?;
            plan.extend(data_plan);
            // sync_data counts itself; do not double count the fsync wrapper.
            self.counters.syncdatas -= 1;
        }
        let metadata = self.metadata_requests(ino, true)?;
        plan.metadata.extend(metadata);
        Ok(plan)
    }

    /// The metadata writes currently needed for `ino`: the block holding the
    /// inode (if the inode is dirty) and the indirect block (if dirty).  When
    /// `clear` is set the dirty flags are reset, modelling the writes being
    /// issued.
    fn metadata_requests(
        &mut self,
        ino: InodeNumber,
        clear: bool,
    ) -> Result<Vec<DiskRequest>, FsError> {
        let inode_block_addr = self.params.inode_block_addr(ino);
        let block_size = self.params.block_size;
        let n = self.inode_mut(ino)?;
        let mut reqs = Vec::new();
        if n.inode_dirty {
            reqs.push(DiskRequest::write(inode_block_addr, block_size));
        }
        if n.indirect_dirty {
            if let Some(addr) = n.indirect {
                reqs.push(DiskRequest::write(addr, block_size));
            }
        }
        if clear {
            n.inode_dirty = false;
            n.mtime_only_dirty = false;
            n.indirect_dirty = false;
        }
        Ok(reqs)
    }

    /// The metadata writes that would be needed right now, without clearing
    /// dirty state (used by tests and by the server's async-mtime path).
    pub fn pending_metadata(&mut self, ino: InodeNumber) -> Result<Vec<DiskRequest>, FsError> {
        self.metadata_requests(ino, false)
    }

    /// `VOP_READ`: read up to `len` bytes at `offset`.
    ///
    /// The result carries a zero-copy [`wg_nfsproto::Payload`] instead of a
    /// freshly filled buffer: fill-pattern blocks come back as the pattern,
    /// materialised blocks as refcounted views of the cache, holes and
    /// uncached blocks as a zero fill (see [`ReadOutcome`]).  Block-aligned
    /// reads — every READ the simulated workloads issue — allocate nothing.
    pub fn read(
        &mut self,
        ino: InodeNumber,
        offset: u64,
        len: u64,
    ) -> Result<ReadOutcome, FsError> {
        self.counters.reads += 1;
        let block_size = self.params.block_size;
        let n = self.inode(ino)?;
        if n.kind != FileKind::Regular {
            return Err(FsError::IsADirectory);
        }
        if offset >= n.size {
            return Ok(ReadOutcome::empty());
        }
        let end = (offset + len).min(n.size);
        let cache_reads = self.params.read_caching;
        let cache_armed = self.params.cache_pages > 0;
        let mut acc = ReadAccumulator::new();
        let mut misses = Vec::new();
        // Only tracked when read caching is on; the default cold-cache read
        // path stays free of this bookkeeping.
        let mut missed_blocks: Vec<(u64, u64)> = Vec::new();
        // Resident blocks this read hit — with the bounded cache armed their
        // LRU recency must advance, or a scan would evict the hot set.
        let mut hits: Vec<u64> = Vec::new();
        let first_lbn = offset / block_size;
        let last_lbn = (end - 1) / block_size;
        for lbn in first_lbn..=last_lbn {
            let block_start = lbn * block_size;
            let from = offset.max(block_start);
            let to = end.min(block_start + block_size);
            let seg_len = to - from;
            if let Some(block) = n.blocks.get(lbn) {
                if cache_armed {
                    hits.push(lbn);
                }
                match &block.data {
                    BlockData::Fill(byte) => acc.push_fill(*byte, seg_len),
                    BlockData::Bytes(buf) => {
                        acc.push_shared(buf, (from - block_start) as usize, seg_len as usize)
                    }
                }
            } else if let Some(phys) = n.block_addr(lbn) {
                // Mapped on disk but not cached: a real server would read it;
                // report the miss so the caller charges disk latency.  The
                // returned bytes for such blocks are zeros (the simulation only
                // materialises contents for blocks written through the cache).
                misses.push(DiskRequest::read(phys, block_size));
                if cache_reads {
                    missed_blocks.push((lbn, phys));
                }
                acc.push_fill(0, seg_len);
            } else {
                // Unmapped blocks are holes: zeros, no I/O.
                acc.push_fill(0, seg_len);
            }
        }
        // With read caching on, the blocks this read fetched from disk stay
        // resident (clean, as the zero fill the caller was handed), so the
        // next read of the same block is a cache hit instead of another disk
        // trip.  Off by default: the paper's cold-cache behaviour — every
        // read of an uncached block pays the disk — is what the original
        // figures measure.
        //
        // Known simplification: the block becomes resident at read-*issue*
        // time, so a second reader arriving while the fetch is still in
        // flight gets a free hit instead of blocking on the busy buffer the
        // way a real cache would.  The optimism is bounded by one disk
        // service time per cold block (the filesystem has no clock to do
        // better with) and vanishes once the working set has been touched.
        if !missed_blocks.is_empty() {
            let n = self.inode_mut(ino)?;
            for &(lbn, phys) in &missed_blocks {
                n.blocks.insert(
                    lbn,
                    CachedBlock {
                        phys,
                        data: BlockData::Fill(0),
                        dirty: false,
                    },
                );
            }
        }
        if cache_armed {
            for lbn in hits {
                self.cache_touch(ino, lbn);
            }
            for (lbn, _) in missed_blocks {
                self.cache_touch(ino, lbn);
            }
            // Read-inserted pages count against the same bound as written
            // ones — that is the "unified" in unified buffer cache.
            self.cache_evict_clean();
        }
        Ok(ReadOutcome {
            data: acc.finish(),
            misses,
        })
    }

    /// Create a file of `size` bytes whose blocks are allocated on disk but
    /// not resident in the cache.  Used to pre-populate filesystems for
    /// read-heavy workloads (SPEC SFS-style) so that reads actually miss.
    pub fn create_prefilled(
        &mut self,
        dir: InodeNumber,
        name: &str,
        size: u64,
        now_nanos: u64,
    ) -> Result<InodeNumber, FsError> {
        let ino = self.create(dir, name, 0o644, now_nanos)?;
        let block_size = self.params.block_size;
        let blocks = size.div_ceil(block_size);
        if blocks > 0 && blocks - 1 > Inode::max_lbn(&self.params) {
            return Err(FsError::FileTooLarge);
        }
        if Inode::needs_indirect(blocks.saturating_sub(1)) && blocks > 0 {
            let addr = self.allocate_block()?;
            let n = self.inode_mut(ino)?;
            n.indirect = Some(addr);
        }
        for lbn in 0..blocks {
            let p = self.allocate_block()?;
            let n = self.inode_mut(ino)?;
            n.map_block(lbn, p);
        }
        let n = self.inode_mut(ino)?;
        n.size = size;
        n.inode_dirty = false;
        n.indirect_dirty = false;
        n.mtime_only_dirty = false;
        Ok(ino)
    }

    /// Total bytes of dirty cached data across all files (used by tests and
    /// by the crash-consistency checks).
    pub fn dirty_bytes(&self) -> u64 {
        self.inodes
            .values()
            .map(|n| n.blocks.values().filter(|b| b.dirty).count() as u64 * self.params.block_size)
            .sum()
    }

    /// `true` if the inode has any dirty data or metadata.
    pub fn is_dirty(&self, ino: InodeNumber) -> Result<bool, FsError> {
        let n = self.inode(ino)?;
        Ok(n.inode_dirty || n.indirect_dirty || n.blocks.values().any(|b| b.dirty))
    }

    /// `true` if the given logical block of the inode is cached dirty (its
    /// contents exist only in volatile memory and would not survive a crash).
    pub fn block_is_dirty(&self, ino: InodeNumber, lbn: u64) -> bool {
        self.inodes
            .get(&ino)
            .and_then(|n| n.blocks.get(lbn))
            .map(|b| b.dirty)
            .unwrap_or(false)
    }

    /// Server crash: discard every volatile (dirty) cached block and all
    /// dirty-metadata markers, keeping only what had reached stable storage.
    /// Physical block mappings survive (they model the on-disk inode as of
    /// the last metadata sync), so a post-crash read of a discarded block
    /// falls back to the disk and sees its stale contents — modeled as
    /// zero-fill plus a disk-read miss.  Returns the number of data bytes
    /// discarded.
    pub fn crash_discard_volatile(&mut self) -> u64 {
        let block_size = self.params.block_size;
        let mut discarded = 0u64;
        for n in self.inodes.values_mut() {
            let before = n.blocks.len();
            n.blocks.retain(|_, b| !b.dirty);
            discarded += (before - n.blocks.len()) as u64 * block_size;
            n.inode_dirty = false;
            n.mtime_only_dirty = false;
            n.indirect_dirty = false;
        }
        if self.cache_armed() {
            // Rebuild the cache accounting from the surviving (all clean)
            // pages.  Recency is re-seeded in (ino, lbn) order — arbitrary
            // but deterministic, so partitioned replays stay bit-identical.
            self.lru.clear();
            self.lru_index.clear();
            self.cache_dirty = 0;
            let mut inos: Vec<InodeNumber> = self.inodes.keys().copied().collect();
            inos.sort_unstable();
            for ino in inos {
                let lbns: Vec<u64> = self.inodes[&ino].blocks.keys().collect();
                for lbn in lbns {
                    self.cache_touch(ino, lbn);
                }
            }
        }
        discarded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BS: u64 = 8192;

    fn fs() -> Ufs {
        Ufs::with_defaults(1)
    }

    #[test]
    fn create_lookup_remove_cycle() {
        let mut u = fs();
        let root = u.root();
        let f = u.create(root, "a.dat", 0o644, 10).unwrap();
        assert_eq!(u.lookup(root, "a.dat").unwrap(), f);
        assert_eq!(u.create(root, "a.dat", 0o644, 10), Err(FsError::Exists));
        assert_eq!(u.lookup(root, "missing"), Err(FsError::NotFound));
        u.remove(root, "a.dat", 20).unwrap();
        assert_eq!(u.lookup(root, "a.dat"), Err(FsError::NotFound));
        assert_eq!(u.getattr(f), Err(FsError::StaleInode));
    }

    #[test]
    fn generations_differ_across_reuse() {
        let mut u = fs();
        let root = u.root();
        let a = u.create(root, "a", 0o644, 0).unwrap();
        let gen_a = u.generation_of(a).unwrap();
        u.remove(root, "a", 1).unwrap();
        let b = u.create(root, "b", 0o644, 2).unwrap();
        let gen_b = u.generation_of(b).unwrap();
        assert_ne!(gen_a, gen_b);
    }

    #[test]
    fn first_write_to_new_file_needs_data_and_inode_io() {
        let mut u = fs();
        let root = u.root();
        let f = u.create(root, "f", 0o644, 0).unwrap();
        let out = u
            .write(f, 0, &vec![7u8; BS as usize], WriteFlags::Sync, 100)
            .unwrap();
        assert!(out.allocated);
        assert!(!out.mtime_only);
        assert_eq!(out.new_size, BS);
        assert_eq!(out.io.data.len(), 1);
        // The inode block write (no indirect block needed yet).
        assert_eq!(out.io.metadata.len(), 1);
        assert_eq!(out.io.metadata[0].len, BS);
    }

    #[test]
    fn overwrite_of_allocated_block_is_mtime_only() {
        let mut u = fs();
        let root = u.root();
        let f = u.create(root, "f", 0o644, 0).unwrap();
        u.write(f, 0, &vec![1u8; BS as usize], WriteFlags::Sync, 100)
            .unwrap();
        let out = u
            .write(f, 0, &vec![2u8; BS as usize], WriteFlags::Sync, 200)
            .unwrap();
        assert!(out.mtime_only);
        assert!(!out.allocated);
        assert_eq!(out.io.data.len(), 1);
        // §4.4: the inode update for a pure mtime change is asynchronous.
        assert!(out.io.metadata.is_empty());
    }

    #[test]
    fn sequential_file_write_uses_indirect_blocks_after_96k() {
        let mut u = fs();
        let root = u.root();
        let f = u.create(root, "big", 0o644, 0).unwrap();
        // Write 13 blocks; block 12 needs the indirect block.
        for i in 0..13u64 {
            let out = u
                .write(f, i * BS, &vec![i as u8; BS as usize], WriteFlags::Sync, i)
                .unwrap();
            if i == 12 {
                // Metadata now includes the inode block and the indirect block.
                assert_eq!(out.io.metadata.len(), 2);
            }
        }
        let attrs = u.getattr(f).unwrap();
        assert_eq!(attrs.size, 13 * BS);
    }

    #[test]
    fn delayed_writes_issue_no_io_until_syncdata() {
        let mut u = fs();
        let root = u.root();
        let f = u.create(root, "g", 0o644, 0).unwrap();
        for i in 0..8u64 {
            let out = u
                .write(f, i * BS, &vec![3u8; BS as usize], WriteFlags::DelayData, i)
                .unwrap();
            assert!(out.io.is_empty());
        }
        assert!(u.is_dirty(f).unwrap());
        assert_eq!(u.dirty_bytes(), 8 * BS);
        let plan = u.sync_data(f, 0, 8 * BS).unwrap();
        // Eight contiguous dirty blocks cluster into one 64 KB transfer.
        assert_eq!(plan.data.len(), 1);
        assert_eq!(plan.data[0].len, 64 * 1024);
        assert_eq!(u.dirty_bytes(), 0);
        // Metadata is still dirty until fsync.
        let meta = u.fsync(f, FsyncFlags::MetadataOnly).unwrap();
        assert_eq!(meta.metadata.len(), 1);
        assert!(!u.is_dirty(f).unwrap());
    }

    #[test]
    fn crash_discard_drops_dirty_blocks_and_keeps_clean_ones() {
        let mut u = fs();
        let root = u.root();
        let f = u.create(root, "victim", 0o644, 0).unwrap();
        // Block 0 reaches stable storage; blocks 1..4 stay volatile.
        u.write(f, 0, &vec![7u8; BS as usize], WriteFlags::Sync, 1)
            .unwrap();
        for i in 1..4u64 {
            u.write(f, i * BS, &vec![9u8; BS as usize], WriteFlags::DelayData, i)
                .unwrap();
        }
        assert!(u.block_is_dirty(f, 1));
        assert!(!u.block_is_dirty(f, 0));
        let discarded = u.crash_discard_volatile();
        assert_eq!(discarded, 3 * BS);
        assert_eq!(u.dirty_bytes(), 0);
        assert!(!u.is_dirty(f).unwrap());
        // The durable block survives with its contents...
        let kept = u.read(f, 0, BS).unwrap().to_vec();
        assert!(kept.iter().all(|&b| b == 7));
        // ...while a discarded block reads back from the (stale) disk as a
        // zero-fill miss, not as the acknowledged-but-lost data.
        let lost = u.read(f, BS, BS).unwrap();
        assert!(lost.to_vec().iter().all(|&b| b == 0));
        // A second crash with nothing volatile discards nothing.
        assert_eq!(u.crash_discard_volatile(), 0);
    }

    #[test]
    fn gathering_reduces_transactions_three_to_one() {
        // The paper's core claim in miniature: N writes via the standard path
        // cost ~2 transactions each (data + inode, +indirect occasionally),
        // while the same N writes delayed and flushed once cost N/8 data
        // transfers + 1-2 metadata writes.
        let n_blocks = 16u64;

        let mut standard = fs();
        let root = standard.root();
        let f = standard.create(root, "std", 0o644, 0).unwrap();
        let mut standard_ops = 0usize;
        for i in 0..n_blocks {
            let out = standard
                .write(f, i * BS, &vec![0u8; BS as usize], WriteFlags::Sync, i)
                .unwrap();
            standard_ops += out.io.transactions();
        }

        let mut gathered = fs();
        let root = gathered.root();
        let g = gathered.create(root, "gth", 0o644, 0).unwrap();
        for i in 0..n_blocks {
            gathered
                .write(g, i * BS, &vec![0u8; BS as usize], WriteFlags::DelayData, i)
                .unwrap();
        }
        let mut gathered_ops = gathered
            .sync_data(g, 0, n_blocks * BS)
            .unwrap()
            .transactions();
        gathered_ops += gathered
            .fsync(g, FsyncFlags::MetadataOnly)
            .unwrap()
            .transactions();

        assert!(
            standard_ops >= (2 * n_blocks) as usize,
            "standard {standard_ops}"
        );
        // 128 KB of data clusters into 3 transfers (the indirect block breaks
        // physical contiguity once at block 12) plus inode + indirect metadata.
        assert!(gathered_ops <= 5, "gathered {gathered_ops}");
        assert!(
            gathered_ops * 6 <= standard_ops,
            "gathered {gathered_ops} vs standard {standard_ops}"
        );
    }

    #[test]
    fn sync_dataonly_leaves_metadata_dirty() {
        let mut u = fs();
        let root = u.root();
        let f = u.create(root, "p", 0o644, 0).unwrap();
        let out = u
            .write(f, 0, &vec![9u8; BS as usize], WriteFlags::SyncDataOnly, 5)
            .unwrap();
        assert_eq!(out.io.data.len(), 1);
        assert!(out.io.metadata.is_empty());
        assert!(!u.pending_metadata(f).unwrap().is_empty());
        let meta = u.fsync(f, FsyncFlags::MetadataOnly).unwrap();
        assert_eq!(meta.metadata.len(), 1);
        assert!(u.pending_metadata(f).unwrap().is_empty());
    }

    #[test]
    fn read_returns_written_bytes() {
        let mut u = fs();
        let root = u.root();
        let f = u.create(root, "r", 0o644, 0).unwrap();
        let payload: Vec<u8> = (0..BS as usize * 2).map(|i| (i % 251) as u8).collect();
        u.write(f, 0, &payload, WriteFlags::DelayData, 1).unwrap();
        let got = u.read(f, 0, payload.len() as u64).unwrap();
        assert_eq!(got.to_vec(), payload);
        assert!(got.misses.is_empty());
        // Partial read across a block boundary.
        let got = u.read(f, BS - 100, 200).unwrap();
        assert_eq!(
            got.to_vec(),
            payload[(BS - 100) as usize..(BS + 100) as usize]
        );
        // Read past EOF.
        let got = u.read(f, payload.len() as u64 + 5, 100).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn aligned_reads_share_the_cache_instead_of_copying() {
        let mut u = fs();
        let root = u.root();
        let f = u.create(root, "z", 0o644, 0).unwrap();
        // A fill-pattern block reads back as the pattern itself.
        u.write(
            f,
            0,
            WriteSource::Fill { byte: 5, len: BS },
            WriteFlags::DelayData,
            1,
        )
        .unwrap();
        let got = u.read(f, 0, BS).unwrap();
        assert_eq!(got.data, wg_nfsproto::Payload::fill(5, BS as u32));
        assert!(matches!(got.data, wg_nfsproto::Payload::Fill { .. }));
        // A materialised block reads back as a refcounted view of the cache.
        let real: Vec<u8> = (0..BS).map(|i| (i % 251) as u8).collect();
        u.write(f, BS, &real, WriteFlags::DelayData, 2).unwrap();
        let got = u.read(f, BS, BS).unwrap();
        match &got.data {
            wg_nfsproto::Payload::Shared(out) => {
                let n = u.inodes.get(&f).unwrap();
                let cached = n.blocks.get(1).unwrap().data.shared_bytes().unwrap();
                assert!(Arc::ptr_eq(out, cached), "aligned read copied the block");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Overwriting the block does not disturb the outstanding view.
        let snapshot = got.data.clone();
        u.write(f, BS, &vec![0u8; BS as usize], WriteFlags::DelayData, 3)
            .unwrap();
        assert_eq!(snapshot.materialize()[..], real[..]);
        assert_eq!(u.read(f, BS, BS).unwrap().to_vec(), vec![0u8; BS as usize]);
    }

    #[test]
    fn unaligned_writes_roundtrip() {
        let mut u = fs();
        let root = u.root();
        let f = u.create(root, "u", 0o644, 0).unwrap();
        u.write(f, 100, b"hello", WriteFlags::Sync, 1).unwrap();
        u.write(f, BS - 2, b"spanning", WriteFlags::Sync, 2)
            .unwrap();
        let got = u.read(f, 100, 5).unwrap();
        assert_eq!(got.to_vec(), b"hello");
        let got = u.read(f, BS - 2, 8).unwrap();
        assert_eq!(got.to_vec(), b"spanning");
        assert_eq!(u.getattr(f).unwrap().size, BS - 2 + 8);
    }

    #[test]
    fn prefilled_files_produce_read_misses() {
        let mut u = fs();
        let root = u.root();
        let f = u.create_prefilled(root, "cold", 64 * 1024, 0).unwrap();
        assert_eq!(u.getattr(f).unwrap().size, 64 * 1024);
        assert!(!u.is_dirty(f).unwrap());
        let got = u.read(f, 0, 8192).unwrap();
        assert_eq!(got.misses.len(), 1);
        assert_eq!(got.len(), 8192);
        // The default cache is cold for reads: the same block misses again.
        let again = u.read(f, 0, 8192).unwrap();
        assert_eq!(again.misses.len(), 1);
    }

    #[test]
    fn read_caching_keeps_fetched_blocks_resident() {
        let params = FsParams {
            read_caching: true,
            ..FsParams::default()
        };
        let mut u = Ufs::new(1, params);
        let root = u.root();
        let f = u.create_prefilled(root, "warm", 64 * 1024, 0).unwrap();
        // First read of each block pays the disk...
        let cold = u.read(f, 0, 16384).unwrap();
        assert_eq!(cold.misses.len(), 2);
        assert_eq!(cold.len(), 16384);
        // ...re-reads are cache hits with identical contents, and the cached
        // blocks are clean (a flush has nothing to write).
        let warm = u.read(f, 0, 16384).unwrap();
        assert!(warm.misses.is_empty());
        assert_eq!(warm.to_vec(), cold.to_vec());
        assert!(!u.is_dirty(f).unwrap());
        // An untouched block still misses once.
        let tail = u.read(f, 32768, 8192).unwrap();
        assert_eq!(tail.misses.len(), 1);
    }

    #[test]
    fn enospc_is_reported() {
        let mut u = Ufs::new(1, FsParams::tiny_for_tests());
        let root = u.root();
        let f = u.create(root, "fill", 0o644, 0).unwrap();
        let mut hit_enospc = false;
        for i in 0..100u64 {
            match u.write(f, i * BS, &vec![0u8; BS as usize], WriteFlags::Sync, i) {
                Ok(_) => {}
                Err(FsError::NoSpace) => {
                    hit_enospc = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(hit_enospc);
    }

    #[test]
    fn file_too_large_is_reported() {
        let mut u = fs();
        let root = u.root();
        let f = u.create(root, "huge", 0o644, 0).unwrap();
        let too_far = (Inode::max_lbn(u.params()) + 1) * BS;
        assert!(matches!(
            u.write(f, too_far, &[1u8; 1], WriteFlags::Sync, 0),
            Err(FsError::FileTooLarge)
        ));
    }

    #[test]
    fn directories_reject_data_ops_and_track_entries() {
        let mut u = fs();
        let root = u.root();
        let d = u.mkdir(root, "dir", 0o755, 0).unwrap();
        assert!(matches!(
            u.write(d, 0, b"x", WriteFlags::Sync, 0),
            Err(FsError::IsADirectory)
        ));
        assert!(matches!(u.read(d, 0, 10), Err(FsError::IsADirectory)));
        u.create(d, "inner", 0o644, 1).unwrap();
        assert_eq!(*u.readdir(d).unwrap(), vec![Arc::<str>::from("inner")]);
        assert_eq!(u.remove(root, "dir", 2), Err(FsError::NotEmpty));
        u.remove(d, "inner", 3).unwrap();
        u.remove(root, "dir", 4).unwrap();
    }

    #[test]
    fn readdir_shares_the_listing_until_the_directory_changes() {
        let mut u = fs();
        let root = u.root();
        u.create(root, "a", 0o644, 0).unwrap();
        let first = u.readdir(root).unwrap();
        let second = u.readdir(root).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "unchanged directory must share one listing"
        );
        u.create(root, "b", 0o644, 1).unwrap();
        let third = u.readdir(root).unwrap();
        assert!(!Arc::ptr_eq(&second, &third), "create must invalidate");
        assert_eq!(*third, vec![Arc::<str>::from("a"), Arc::<str>::from("b")]);
        // The old Arc still holds the snapshot the earlier reply carried.
        assert_eq!(*second, vec![Arc::<str>::from("a")]);
        u.remove(root, "a", 2).unwrap();
        let fourth = u.readdir(root).unwrap();
        assert!(!Arc::ptr_eq(&third, &fourth), "remove must invalidate");
        assert_eq!(*fourth, vec![Arc::<str>::from("b")]);
    }

    #[test]
    fn setattr_truncate_frees_blocks_and_reports_metadata_io() {
        let mut u = fs();
        let root = u.root();
        let f = u.create(root, "t", 0o644, 0).unwrap();
        for i in 0..4u64 {
            u.write(f, i * BS, &vec![1u8; BS as usize], WriteFlags::Sync, i)
                .unwrap();
        }
        let free_before = u.free_block_count();
        let (attrs, plan) = u.setattr(f, Some(0o600), Some(BS), 100).unwrap();
        assert_eq!(attrs.size, BS);
        assert_eq!(attrs.mode, 0o600);
        assert!(!plan.metadata.is_empty());
        assert!(u.free_block_count() > free_before);
        // Reading past the new size returns nothing.
        assert!(u.read(f, BS, 100).unwrap().is_empty());
    }

    #[test]
    fn statfs_counters_and_op_counters() {
        let mut u = fs();
        let root = u.root();
        assert!(u.total_block_count() > 0);
        let before_free = u.free_block_count();
        let f = u.create(root, "c", 0o644, 0).unwrap();
        u.write(f, 0, &vec![0u8; BS as usize], WriteFlags::Sync, 1)
            .unwrap();
        assert_eq!(u.free_block_count(), before_free - 1);
        let c = u.counters();
        assert_eq!(c.writes, 1);
        assert!(c.namespace_ops >= 1);
        assert_eq!(u.fsid(), 1);
        assert_eq!(u.root(), ROOT_INO);
    }

    #[test]
    fn stale_inode_errors_everywhere() {
        let mut u = fs();
        assert_eq!(u.getattr(999), Err(FsError::StaleInode));
        assert!(matches!(u.read(999, 0, 1), Err(FsError::StaleInode)));
        assert!(matches!(
            u.write(999, 0, b"x", WriteFlags::Sync, 0),
            Err(FsError::StaleInode)
        ));
        assert_eq!(u.sync_data(999, 0, 1), Err(FsError::StaleInode));
        assert_eq!(u.fsync(999, FsyncFlags::All), Err(FsError::StaleInode));
        assert_eq!(u.lookup(999, "x"), Err(FsError::StaleInode));
        assert_eq!(u.readdir(999), Err(FsError::StaleInode));
    }

    #[test]
    fn fsync_all_flushes_data_and_metadata() {
        let mut u = fs();
        let root = u.root();
        let f = u.create(root, "fa", 0o644, 0).unwrap();
        for i in 0..4u64 {
            u.write(f, i * BS, &vec![5u8; BS as usize], WriteFlags::DelayData, i)
                .unwrap();
        }
        let plan = u.fsync(f, FsyncFlags::All).unwrap();
        assert_eq!(plan.data.len(), 1); // one 32 KB clustered transfer
        assert_eq!(plan.data[0].len, 4 * BS);
        assert_eq!(plan.metadata.len(), 1);
        assert!(!u.is_dirty(f).unwrap());
    }

    fn bounded(cache_pages: u64, dirty_ratio: f64, read_caching: bool) -> Ufs {
        Ufs::new(
            1,
            FsParams {
                cache_pages,
                dirty_ratio,
                read_caching,
                ..FsParams::default()
            },
        )
    }

    #[test]
    fn unbounded_default_does_no_cache_accounting() {
        let mut u = fs();
        let root = u.root();
        let f = u.create(root, "f", 0o644, 0).unwrap();
        for i in 0..32u64 {
            u.write(f, i * BS, &vec![1u8; BS as usize], WriteFlags::DelayData, i)
                .unwrap();
        }
        assert_eq!(u.resident_pages(), 0, "unbounded cache tracks nothing");
        assert_eq!(u.dirty_resident_pages(), 0);
        let c = u.counters();
        assert_eq!(c.cache_evictions, 0);
        assert_eq!(c.throttle_stalls, 0);
        assert_eq!(c.writeback_blocks, 0);
        assert!(u.writeback_batch(100).is_empty());
    }

    #[test]
    fn bounded_cache_evicts_clean_lru_pages() {
        let mut u = bounded(4, 0.5, false);
        let root = u.root();
        let f = u.create(root, "f", 0o644, 0).unwrap();
        // Sync writes leave every block clean, so eviction alone bounds
        // residency.
        for i in 0..6u64 {
            u.write(f, i * BS, &vec![1u8; BS as usize], WriteFlags::Sync, i)
                .unwrap();
        }
        assert_eq!(u.resident_pages(), 4);
        assert_eq!(u.counters().cache_evictions, 2);
        // The two oldest blocks were dropped: reading them misses the disk.
        assert_eq!(u.read(f, 0, BS).unwrap().misses.len(), 1);
        assert_eq!(u.read(f, BS, BS).unwrap().misses.len(), 1);
        // A recent block is still resident.
        assert!(u.read(f, 5 * BS, BS).unwrap().misses.is_empty());
    }

    #[test]
    fn dirty_ratio_throttle_forces_inline_writeback() {
        let mut u = bounded(8, 0.5, false);
        let root = u.root();
        let f = u.create(root, "f", 0o644, 0).unwrap();
        // Threshold = 4 dirty pages.  The first four delayed writes issue no
        // I/O...
        for i in 0..4u64 {
            let out = u
                .write(f, i * BS, &vec![2u8; BS as usize], WriteFlags::DelayData, i)
                .unwrap();
            assert!(out.io.is_empty(), "write {i} under threshold issued I/O");
        }
        // ...the fifth crosses the threshold and pays for the forced
        // writeback of the oldest dirty page inline.
        let out = u
            .write(f, 4 * BS, &vec![2u8; BS as usize], WriteFlags::DelayData, 4)
            .unwrap();
        assert_eq!(out.io.data.len(), 1, "throttled write carries the flush");
        let c = u.counters();
        assert_eq!(c.throttle_stalls, 1);
        assert_eq!(c.writeback_blocks, 1);
        assert_eq!(u.dirty_resident_pages(), 4);
        assert_eq!(u.dirty_bytes(), 4 * BS);
        // The cleaned page is block 0 (oldest): it is now evictable but
        // still resident with its contents.
        assert!(!u.block_is_dirty(f, 0));
        assert!(u.block_is_dirty(f, 4));
    }

    #[test]
    fn writeback_batch_cleans_oldest_dirty_and_clusters() {
        let mut u = bounded(16, 1.0, false);
        let root = u.root();
        let f = u.create(root, "f", 0o644, 0).unwrap();
        for i in 0..8u64 {
            u.write(f, i * BS, &vec![3u8; BS as usize], WriteFlags::DelayData, i)
                .unwrap();
        }
        assert_eq!(u.dirty_resident_pages(), 8);
        // A partial batch drains the oldest pages first.
        let reqs = u.writeback_batch(3);
        assert_eq!(reqs.iter().map(|r| r.len).sum::<u64>(), 3 * BS);
        assert!(!u.block_is_dirty(f, 0));
        assert!(!u.block_is_dirty(f, 2));
        assert!(u.block_is_dirty(f, 3));
        assert_eq!(u.dirty_resident_pages(), 5);
        // The rest clusters into one contiguous transfer.
        let reqs = u.writeback_batch(100);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].len, 5 * BS);
        assert_eq!(u.dirty_resident_pages(), 0);
        assert_eq!(u.dirty_bytes(), 0);
        assert_eq!(u.counters().writeback_blocks, 8);
        // Pages stay resident (clean) after writeback.
        assert_eq!(u.resident_pages(), 8);
    }

    #[test]
    fn bounded_read_cache_evicts_beyond_capacity_and_tracks_recency() {
        let mut u = bounded(2, 0.5, true);
        let root = u.root();
        let f = u.create_prefilled(root, "cold", 4 * BS, 0).unwrap();
        // Fill the two slots with blocks 0 and 1.
        assert_eq!(u.read(f, 0, BS).unwrap().misses.len(), 1);
        assert_eq!(u.read(f, BS, BS).unwrap().misses.len(), 1);
        assert_eq!(u.resident_pages(), 2);
        // Touch block 0 so block 1 is the LRU victim...
        assert!(u.read(f, 0, BS).unwrap().misses.is_empty());
        // ...then pull in block 2: block 1 is evicted, block 0 survives.
        assert_eq!(u.read(f, 2 * BS, BS).unwrap().misses.len(), 1);
        assert_eq!(u.resident_pages(), 2);
        assert!(u.read(f, 0, BS).unwrap().misses.is_empty());
        assert_eq!(u.read(f, BS, BS).unwrap().misses.len(), 1, "1 was evicted");
    }

    #[test]
    fn cache_accounting_survives_truncate_remove_and_crash() {
        let mut u = bounded(32, 0.5, false);
        let root = u.root();
        let f = u.create(root, "f", 0o644, 0).unwrap();
        for i in 0..8u64 {
            let flags = if i < 4 {
                WriteFlags::Sync
            } else {
                WriteFlags::DelayData
            };
            u.write(f, i * BS, &vec![4u8; BS as usize], flags, i)
                .unwrap();
        }
        assert_eq!(u.resident_pages(), 8);
        assert_eq!(u.dirty_resident_pages(), 4);
        // Truncate away the two newest (dirty) blocks.
        u.setattr(f, None, Some(6 * BS), 100).unwrap();
        assert_eq!(u.resident_pages(), 6);
        assert_eq!(u.dirty_resident_pages(), 2);
        // Crash: dirty pages vanish, accounting is rebuilt over the clean
        // survivors.
        let discarded = u.crash_discard_volatile();
        assert_eq!(discarded, 2 * BS);
        assert_eq!(u.resident_pages(), 4);
        assert_eq!(u.dirty_resident_pages(), 0);
        // Remove drops the file's pages from the accounting entirely.
        u.remove(root, "f", 200).unwrap();
        assert_eq!(u.resident_pages(), 0);
        assert_eq!(u.dirty_resident_pages(), 0);
    }

    #[test]
    fn name_length_limit_enforced() {
        let mut u = fs();
        let root = u.root();
        let long = "x".repeat(MAX_NAME_LEN + 1);
        assert_eq!(u.create(root, &long, 0o644, 0), Err(FsError::NameTooLong));
        assert_eq!(u.create(root, "", 0o644, 0), Err(FsError::NameTooLong));
    }
}
