//! # wg-apps — runnable examples and cross-crate integration tests
//!
//! This crate carries no library code of its own; it exists to host
//!
//! * the runnable examples in the repository-level `examples/` directory
//!   (`quickstart`, `file_copy`, `sfs_mix`, `timeline_trace`,
//!   `policy_compare`), and
//! * the repository-level integration tests in `tests/` that exercise the
//!   whole stack — client, network, server, filesystem and storage — together
//!   (`end_to_end`, `crash_consistency`, `table_shapes`, `protocol_roundtrip`,
//!   `retransmission`, `multi_client`, `sfs_scale`, `io_overlap`,
//!   `zero_copy`, `golden_tables`).
//!
//! See the workspace README for a guided tour.

#![forbid(unsafe_code)]
