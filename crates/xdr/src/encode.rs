//! The XDR encoder.

/// An append-only XDR encoder.
///
/// All quantities are written big-endian; opaque data is padded with zero
/// bytes to the next 4-byte boundary as RFC 1014 requires.
#[derive(Clone, Debug, Default)]
pub struct XdrEncoder {
    buf: Vec<u8>,
}

impl XdrEncoder {
    /// Create an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an encoder with pre-allocated capacity (useful for 8 KB write
    /// payloads).
    pub fn with_capacity(cap: usize) -> Self {
        XdrEncoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the encoder and return the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// A view of the encoded bytes without consuming the encoder.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Append an unsigned 32-bit integer.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a signed 32-bit integer.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append an unsigned 64-bit integer (XDR "unsigned hyper").
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a signed 64-bit integer (XDR "hyper").
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a boolean (encoded as a 32-bit 0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u32(u32::from(v));
    }

    /// Append fixed-length opaque data (padded to a 4-byte boundary, no length
    /// prefix).  The decoder must know the length out of band.
    pub fn put_opaque_fixed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
        self.pad_to_boundary(data.len());
    }

    /// Append variable-length opaque data: a 32-bit length followed by the
    /// bytes, padded to a 4-byte boundary.
    pub fn put_opaque(&mut self, data: &[u8]) {
        self.put_u32(data.len() as u32);
        self.put_opaque_fixed(data);
    }

    /// Append variable-length opaque data consisting of `len` repetitions of
    /// one byte, without the caller having to materialise a buffer (the
    /// zero-copy write path encodes fill payloads this way).
    pub fn put_opaque_fill(&mut self, byte: u8, len: usize) {
        self.put_u32(len as u32);
        self.buf.resize(self.buf.len() + len, byte);
        self.pad_to_boundary(len);
    }

    /// Append a string (variable-length opaque holding UTF-8 bytes).
    pub fn put_string(&mut self, s: &str) {
        self.put_opaque(s.as_bytes());
    }

    fn pad_to_boundary(&mut self, payload_len: usize) {
        let pad = (4 - payload_len % 4) % 4;
        for _ in 0..pad {
            self.buf.push(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_are_big_endian() {
        let mut e = XdrEncoder::new();
        e.put_u32(0x0102_0304);
        assert_eq!(e.as_bytes(), &[1, 2, 3, 4]);
        let mut e = XdrEncoder::new();
        e.put_i32(-1);
        assert_eq!(e.as_bytes(), &[0xff, 0xff, 0xff, 0xff]);
        let mut e = XdrEncoder::new();
        e.put_u64(0x0102_0304_0506_0708);
        assert_eq!(e.as_bytes(), &[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut e = XdrEncoder::new();
        e.put_i64(-2);
        assert_eq!(
            e.as_bytes(),
            &[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xfe]
        );
    }

    #[test]
    fn opaque_is_padded_to_four_bytes() {
        let mut e = XdrEncoder::new();
        e.put_opaque(b"abcde");
        // 4 length bytes + 5 data bytes + 3 padding bytes.
        assert_eq!(e.len(), 12);
        assert_eq!(&e.as_bytes()[..4], &[0, 0, 0, 5]);
        assert_eq!(&e.as_bytes()[9..], &[0, 0, 0]);
    }

    #[test]
    fn fixed_opaque_has_no_length_prefix() {
        let mut e = XdrEncoder::new();
        e.put_opaque_fixed(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(e.len(), 8);
        let mut e = XdrEncoder::new();
        e.put_opaque_fixed(&[9]);
        assert_eq!(e.len(), 4);
    }

    #[test]
    fn string_and_bool_encoding() {
        let mut e = XdrEncoder::new();
        e.put_bool(true);
        e.put_bool(false);
        e.put_string("ok");
        assert_eq!(
            e.as_bytes(),
            &[0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2, b'o', b'k', 0, 0]
        );
    }

    #[test]
    fn opaque_fill_matches_materialised_encoding() {
        for len in [0usize, 1, 3, 4, 5, 8192] {
            let mut fill = XdrEncoder::new();
            fill.put_opaque_fill(0xAB, len);
            let mut plain = XdrEncoder::new();
            plain.put_opaque(&vec![0xAB; len]);
            assert_eq!(fill.as_bytes(), plain.as_bytes(), "len {len}");
        }
    }

    #[test]
    fn with_capacity_and_len_helpers() {
        let e = XdrEncoder::with_capacity(64);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
    }
}
