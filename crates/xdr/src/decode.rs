//! The XDR decoder.

use crate::error::XdrError;

/// A cursor over an XDR-encoded byte slice.
///
/// Every accessor validates bounds and padding so that a corrupted datagram
/// can never cause a panic or out-of-bounds read in the server.
#[derive(Clone, Debug)]
pub struct XdrDecoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> XdrDecoder<'a> {
    /// Create a decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        XdrDecoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current byte offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], XdrError> {
        if self.remaining() < n {
            return Err(XdrError::UnexpectedEof {
                wanted: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read an unsigned 32-bit integer.
    pub fn get_u32(&mut self) -> Result<u32, XdrError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a signed 32-bit integer.
    pub fn get_i32(&mut self) -> Result<i32, XdrError> {
        Ok(self.get_u32()? as i32)
    }

    /// Read an unsigned 64-bit integer.
    pub fn get_u64(&mut self) -> Result<u64, XdrError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a signed 64-bit integer.
    pub fn get_i64(&mut self) -> Result<i64, XdrError> {
        Ok(self.get_u64()? as i64)
    }

    /// Read a boolean (must be 0 or 1).
    pub fn get_bool(&mut self) -> Result<bool, XdrError> {
        match self.get_u32()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(XdrError::InvalidBool(other)),
        }
    }

    /// Read fixed-length opaque data of `len` bytes (plus padding).
    pub fn get_opaque_fixed(&mut self, len: usize) -> Result<Vec<u8>, XdrError> {
        let data = self.take(len)?.to_vec();
        self.skip_padding(len)?;
        Ok(data)
    }

    /// Read variable-length opaque data (length prefix, bytes, padding).
    pub fn get_opaque(&mut self) -> Result<Vec<u8>, XdrError> {
        let len = self.get_u32()? as usize;
        if len > self.remaining() {
            return Err(XdrError::LengthTooLarge {
                claimed: len,
                remaining: self.remaining(),
            });
        }
        self.get_opaque_fixed(len)
    }

    /// Read a string (variable-length opaque validated as UTF-8).
    pub fn get_string(&mut self) -> Result<String, XdrError> {
        let bytes = self.get_opaque()?;
        String::from_utf8(bytes).map_err(|_| XdrError::InvalidUtf8)
    }

    fn skip_padding(&mut self, payload_len: usize) -> Result<(), XdrError> {
        let pad = (4 - payload_len % 4) % 4;
        if pad == 0 {
            return Ok(());
        }
        let bytes = self.take(pad)?;
        if bytes.iter().any(|&b| b != 0) {
            return Err(XdrError::NonZeroPadding);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::XdrEncoder;

    #[test]
    fn roundtrip_all_primitives() {
        let mut e = XdrEncoder::new();
        e.put_u32(123);
        e.put_i32(-45);
        e.put_u64(1 << 40);
        e.put_i64(-(1 << 40));
        e.put_bool(true);
        e.put_opaque(b"hello world");
        e.put_opaque_fixed(&[9; 16]);
        e.put_string("filename.txt");
        let bytes = e.into_bytes();

        let mut d = XdrDecoder::new(&bytes);
        assert_eq!(d.get_u32().unwrap(), 123);
        assert_eq!(d.get_i32().unwrap(), -45);
        assert_eq!(d.get_u64().unwrap(), 1 << 40);
        assert_eq!(d.get_i64().unwrap(), -(1 << 40));
        assert!(d.get_bool().unwrap());
        assert_eq!(d.get_opaque().unwrap(), b"hello world");
        assert_eq!(d.get_opaque_fixed(16).unwrap(), vec![9; 16]);
        assert_eq!(d.get_string().unwrap(), "filename.txt");
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut d = XdrDecoder::new(&[0, 0]);
        assert!(matches!(
            d.get_u32(),
            Err(XdrError::UnexpectedEof {
                wanted: 4,
                available: 2
            })
        ));
    }

    #[test]
    fn bad_bool_is_rejected() {
        let mut e = XdrEncoder::new();
        e.put_u32(3);
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        assert_eq!(d.get_bool(), Err(XdrError::InvalidBool(3)));
    }

    #[test]
    fn oversized_opaque_length_is_rejected() {
        let mut e = XdrEncoder::new();
        e.put_u32(1000); // claims 1000 bytes follow
        e.put_u32(0);
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        assert!(matches!(
            d.get_opaque(),
            Err(XdrError::LengthTooLarge { claimed: 1000, .. })
        ));
    }

    #[test]
    fn nonzero_padding_is_rejected() {
        // length 1, payload 'a', padding deliberately corrupted.
        let bytes = [0, 0, 0, 1, b'a', 1, 0, 0];
        let mut d = XdrDecoder::new(&bytes);
        assert_eq!(d.get_opaque(), Err(XdrError::NonZeroPadding));
    }

    #[test]
    fn invalid_utf8_string_is_rejected() {
        let mut e = XdrEncoder::new();
        e.put_opaque(&[0xff, 0xfe, 0xfd]);
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        assert_eq!(d.get_string(), Err(XdrError::InvalidUtf8));
    }

    #[test]
    fn position_tracks_progress() {
        let mut e = XdrEncoder::new();
        e.put_u32(1);
        e.put_u32(2);
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        assert_eq!(d.position(), 0);
        d.get_u32().unwrap();
        assert_eq!(d.position(), 4);
        assert_eq!(d.remaining(), 4);
    }
}
