//! Decoding errors.

use std::fmt;

/// Errors produced while decoding an XDR stream.
///
/// Encoding is infallible (the encoder owns its buffer); every variant here
/// describes malformed or truncated input encountered by the decoder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum XdrError {
    /// The stream ended before the requested number of bytes was available.
    UnexpectedEof {
        /// Bytes the caller asked for.
        wanted: usize,
        /// Bytes still available.
        available: usize,
    },
    /// A boolean field held a value other than 0 or 1.
    InvalidBool(u32),
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// Non-zero bytes were found in the padding of an opaque field.
    NonZeroPadding,
    /// A length prefix claimed more items/bytes than the stream could hold.
    LengthTooLarge {
        /// The claimed number of elements or bytes.
        claimed: usize,
        /// Bytes remaining in the stream.
        remaining: usize,
    },
    /// A discriminant value did not correspond to any known enum arm.
    InvalidEnum {
        /// The name of the enum being decoded.
        type_name: &'static str,
        /// The unrecognised discriminant.
        value: u32,
    },
    /// The full message was decoded but bytes remained in the buffer.
    TrailingBytes(usize),
}

impl fmt::Display for XdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XdrError::UnexpectedEof { wanted, available } => {
                write!(
                    f,
                    "unexpected end of XDR stream: wanted {wanted} bytes, {available} available"
                )
            }
            XdrError::InvalidBool(v) => write!(f, "invalid XDR boolean value {v}"),
            XdrError::InvalidUtf8 => write!(f, "XDR string is not valid UTF-8"),
            XdrError::NonZeroPadding => write!(f, "non-zero bytes in XDR padding"),
            XdrError::LengthTooLarge { claimed, remaining } => {
                write!(
                    f,
                    "XDR length {claimed} exceeds remaining stream size {remaining}"
                )
            }
            XdrError::InvalidEnum { type_name, value } => {
                write!(f, "invalid discriminant {value} for XDR enum {type_name}")
            }
            XdrError::TrailingBytes(n) => write!(f, "{n} trailing bytes after XDR message"),
        }
    }
}

impl std::error::Error for XdrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = XdrError::UnexpectedEof {
            wanted: 8,
            available: 3,
        };
        assert!(e.to_string().contains("wanted 8"));
        assert!(XdrError::InvalidBool(7).to_string().contains('7'));
        assert!(XdrError::InvalidEnum {
            type_name: "NfsStatus",
            value: 42
        }
        .to_string()
        .contains("NfsStatus"));
        assert!(XdrError::TrailingBytes(4).to_string().contains('4'));
        assert!(XdrError::LengthTooLarge {
            claimed: 10,
            remaining: 2
        }
        .to_string()
        .contains("10"));
        assert!(XdrError::NonZeroPadding.to_string().contains("padding"));
        assert!(XdrError::InvalidUtf8.to_string().contains("UTF-8"));
    }
}
