//! # wg-xdr — External Data Representation (XDR, RFC 1014) from scratch
//!
//! NFS version 2 and the ONC RPC layer it rides on encode every message with
//! XDR.  This crate implements the subset of XDR that NFS v2 needs:
//!
//! * 32-bit signed/unsigned integers and 64-bit hyper integers, big-endian,
//! * booleans and enums (as 32-bit integers),
//! * fixed-length and variable-length opaque data (padded to 4-byte
//!   boundaries),
//! * strings (variable-length opaque with UTF-8 validation on decode),
//! * optional data ("pointer" encoding: a boolean followed by the value).
//!
//! The encoder appends to a growable byte buffer; the decoder is a cursor over
//! a byte slice.  Both are written without `unsafe` and both check bounds
//! explicitly, returning [`XdrError`] on malformed input — the server uses the
//! decoder on datagrams received "from the network", which in the simulation
//! are produced by our own client but are still validated as untrusted input.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decode;
pub mod encode;
pub mod error;

pub use decode::XdrDecoder;
pub use encode::XdrEncoder;
pub use error::XdrError;

/// Types that can be written to an XDR stream.
pub trait XdrEncode {
    /// Append this value's XDR representation to the encoder.
    fn encode(&self, enc: &mut XdrEncoder);
}

/// Types that can be read back from an XDR stream.
pub trait XdrDecode: Sized {
    /// Parse a value of this type from the decoder's current position.
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError>;
}

impl XdrEncode for u32 {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(*self);
    }
}

impl XdrDecode for u32 {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        dec.get_u32()
    }
}

impl XdrEncode for i32 {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_i32(*self);
    }
}

impl XdrDecode for i32 {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        dec.get_i32()
    }
}

impl XdrEncode for u64 {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u64(*self);
    }
}

impl XdrDecode for u64 {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        dec.get_u64()
    }
}

impl XdrEncode for bool {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_bool(*self);
    }
}

impl XdrDecode for bool {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        dec.get_bool()
    }
}

impl XdrEncode for String {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_string(self);
    }
}

impl XdrDecode for String {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        dec.get_string()
    }
}

impl<T: XdrEncode> XdrEncode for Option<T> {
    fn encode(&self, enc: &mut XdrEncoder) {
        match self {
            Some(v) => {
                enc.put_bool(true);
                v.encode(enc);
            }
            None => enc.put_bool(false),
        }
    }
}

impl<T: XdrDecode> XdrDecode for Option<T> {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        if dec.get_bool()? {
            Ok(Some(T::decode(dec)?))
        } else {
            Ok(None)
        }
    }
}

impl<T: XdrEncode> XdrEncode for Vec<T> {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(self.len() as u32);
        for item in self {
            item.encode(enc);
        }
    }
}

impl<T: XdrDecode> XdrDecode for Vec<T> {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let n = dec.get_u32()? as usize;
        // Guard against absurd lengths from corrupted input: each element
        // consumes at least 4 bytes of the remaining stream.
        if n > dec.remaining() / 4 + 1 {
            return Err(XdrError::LengthTooLarge {
                claimed: n,
                remaining: dec.remaining(),
            });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<T: XdrEncode> XdrEncode for std::sync::Arc<T> {
    fn encode(&self, enc: &mut XdrEncoder) {
        (**self).encode(enc);
    }
}

impl<T: XdrDecode> XdrDecode for std::sync::Arc<T> {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(std::sync::Arc::new(T::decode(dec)?))
    }
}

// `Arc<str>` is not covered by the blanket `Arc<T>` impls (`str` is
// unsized); on the wire it is an ordinary XDR string.
impl XdrEncode for std::sync::Arc<str> {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_string(self);
    }
}

impl XdrDecode for std::sync::Arc<str> {
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(dec.get_string()?.into())
    }
}

/// Encode any [`XdrEncode`] value into a fresh byte vector.
pub fn to_bytes<T: XdrEncode>(value: &T) -> Vec<u8> {
    let mut enc = XdrEncoder::new();
    value.encode(&mut enc);
    enc.into_bytes()
}

/// Decode an [`XdrDecode`] value from a byte slice, requiring that the whole
/// slice is consumed.
pub fn from_bytes<T: XdrDecode>(bytes: &[u8]) -> Result<T, XdrError> {
    let mut dec = XdrDecoder::new(bytes);
    let v = T::decode(&mut dec)?;
    if dec.remaining() != 0 {
        return Err(XdrError::TrailingBytes(dec.remaining()));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        assert_eq!(from_bytes::<u32>(&to_bytes(&7u32)).unwrap(), 7);
        assert_eq!(from_bytes::<i32>(&to_bytes(&-7i32)).unwrap(), -7);
        assert_eq!(from_bytes::<u64>(&to_bytes(&u64::MAX)).unwrap(), u64::MAX);
        assert!(from_bytes::<bool>(&to_bytes(&true)).unwrap());
        assert_eq!(
            from_bytes::<String>(&to_bytes(&"hello".to_string())).unwrap(),
            "hello"
        );
    }

    #[test]
    fn roundtrip_option_and_vec() {
        let v: Option<u32> = Some(99);
        assert_eq!(from_bytes::<Option<u32>>(&to_bytes(&v)).unwrap(), Some(99));
        let n: Option<u32> = None;
        assert_eq!(from_bytes::<Option<u32>>(&to_bytes(&n)).unwrap(), None);
        let list = vec![1u32, 2, 3, 4];
        assert_eq!(from_bytes::<Vec<u32>>(&to_bytes(&list)).unwrap(), list);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&5u32);
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        assert!(matches!(
            from_bytes::<u32>(&bytes),
            Err(XdrError::TrailingBytes(4))
        ));
    }

    #[test]
    fn absurd_vec_length_rejected() {
        // Claims 2^31 elements but provides none.
        let bytes = to_bytes(&0x8000_0000u32);
        assert!(matches!(
            from_bytes::<Vec<u32>>(&bytes),
            Err(XdrError::LengthTooLarge { .. })
        ));
    }
}
