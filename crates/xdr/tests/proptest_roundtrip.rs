//! Property-based round-trip tests for the XDR encoder/decoder.

use proptest::prelude::*;
use wg_xdr::{XdrDecoder, XdrEncoder};

proptest! {
    #[test]
    fn u32_roundtrip(v in any::<u32>()) {
        let mut e = XdrEncoder::new();
        e.put_u32(v);
        let bytes = e.into_bytes();
        prop_assert_eq!(bytes.len(), 4);
        let mut d = XdrDecoder::new(&bytes);
        prop_assert_eq!(d.get_u32().unwrap(), v);
    }

    #[test]
    fn i64_roundtrip(v in any::<i64>()) {
        let mut e = XdrEncoder::new();
        e.put_i64(v);
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        prop_assert_eq!(d.get_i64().unwrap(), v);
    }

    #[test]
    fn opaque_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let mut e = XdrEncoder::new();
        e.put_opaque(&data);
        let bytes = e.into_bytes();
        // Always a multiple of 4 bytes on the wire.
        prop_assert_eq!(bytes.len() % 4, 0);
        let mut d = XdrDecoder::new(&bytes);
        prop_assert_eq!(d.get_opaque().unwrap(), data);
        prop_assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn string_roundtrip(s in "\\PC{0,200}") {
        let mut e = XdrEncoder::new();
        e.put_string(&s);
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        prop_assert_eq!(d.get_string().unwrap(), s);
    }

    #[test]
    fn mixed_sequence_roundtrip(
        a in any::<u32>(),
        b in any::<bool>(),
        data in proptest::collection::vec(any::<u8>(), 0..256),
        c in any::<u64>(),
    ) {
        let mut e = XdrEncoder::new();
        e.put_u32(a);
        e.put_bool(b);
        e.put_opaque(&data);
        e.put_u64(c);
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        prop_assert_eq!(d.get_u32().unwrap(), a);
        prop_assert_eq!(d.get_bool().unwrap(), b);
        prop_assert_eq!(d.get_opaque().unwrap(), data);
        prop_assert_eq!(d.get_u64().unwrap(), c);
        prop_assert_eq!(d.remaining(), 0);
    }

    /// Decoding arbitrary garbage must never panic; it either yields a value
    /// or a structured error.
    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut d = XdrDecoder::new(&bytes);
        let _ = d.get_u32();
        let _ = d.get_bool();
        let _ = d.get_opaque();
        let _ = d.get_string();
        let _ = d.get_u64();
    }
}
