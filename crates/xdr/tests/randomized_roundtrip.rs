//! Randomized round-trip tests for the XDR encoder/decoder.
//!
//! The build environment is offline, so instead of the `proptest` crate these
//! use a small deterministic splitmix64 driver: the same seeds run on every
//! machine, failures are reproducible by construction, and the properties
//! checked are the same ones the original property tests stated.

use wg_xdr::{XdrDecoder, XdrEncoder};

/// Deterministic splitmix64 stream used to generate test inputs.
struct TestRng(u64);

impl TestRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next() as u8).collect()
    }
}

#[test]
fn integers_roundtrip() {
    let mut rng = TestRng(1);
    for _ in 0..512 {
        let u = rng.next() as u32;
        let i = rng.next() as i64;
        let mut e = XdrEncoder::new();
        e.put_u32(u);
        e.put_i64(i);
        let bytes = e.into_bytes();
        assert_eq!(bytes.len(), 12);
        let mut d = XdrDecoder::new(&bytes);
        assert_eq!(d.get_u32().unwrap(), u);
        assert_eq!(d.get_i64().unwrap(), i);
    }
}

#[test]
fn opaque_roundtrip() {
    let mut rng = TestRng(2);
    for _ in 0..256 {
        let len = rng.below(2048) as usize;
        let data = rng.bytes(len);
        let mut e = XdrEncoder::new();
        e.put_opaque(&data);
        let bytes = e.into_bytes();
        // Always a multiple of 4 bytes on the wire.
        assert_eq!(bytes.len() % 4, 0);
        let mut d = XdrDecoder::new(&bytes);
        assert_eq!(d.get_opaque().unwrap(), data);
        assert_eq!(d.remaining(), 0);
    }
}

#[test]
fn string_roundtrip() {
    let mut rng = TestRng(3);
    for _ in 0..256 {
        let len = rng.below(200) as usize;
        let s: String = (0..len)
            .map(|_| char::from_u32(0x20 + (rng.below(0x5E)) as u32).unwrap())
            .collect();
        let mut e = XdrEncoder::new();
        e.put_string(&s);
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        assert_eq!(d.get_string().unwrap(), s);
    }
}

#[test]
fn mixed_sequence_roundtrip() {
    let mut rng = TestRng(4);
    for _ in 0..256 {
        let a = rng.next() as u32;
        let b = rng.next().is_multiple_of(2);
        let dlen = rng.below(256) as usize;
        let data = rng.bytes(dlen);
        let c = rng.next();
        let mut e = XdrEncoder::new();
        e.put_u32(a);
        e.put_bool(b);
        e.put_opaque(&data);
        e.put_u64(c);
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        assert_eq!(d.get_u32().unwrap(), a);
        assert_eq!(d.get_bool().unwrap(), b);
        assert_eq!(d.get_opaque().unwrap(), data);
        assert_eq!(d.get_u64().unwrap(), c);
        assert_eq!(d.remaining(), 0);
    }
}

/// Decoding arbitrary garbage must never panic; it either yields a value or a
/// structured error.
#[test]
fn decoder_never_panics_on_garbage() {
    let mut rng = TestRng(5);
    for _ in 0..512 {
        let len = rng.below(512) as usize;
        let bytes = rng.bytes(len);
        let mut d = XdrDecoder::new(&bytes);
        let _ = d.get_u32();
        let _ = d.get_bool();
        let _ = d.get_opaque();
        let _ = d.get_string();
        let _ = d.get_u64();
    }
}
