//! # wg-bench — the benchmark harness that regenerates every table and figure
//!
//! The paper's evaluation consists of:
//!
//! * **Tables 1–6** — a 10 MB file copy over Ethernet or FDDI, against a
//!   single RZ26 or a 3-disk stripe set, with and without Prestoserve, with
//!   and without write gathering, swept over the client biod count.
//! * **Figure 1** — a `tcpdump`-style timeline of the 4-biod FDDI copy on a
//!   standard server vs a gathering server.
//! * **Figures 2–3** — SPEC SFS 1.0 (LADDIS) throughput vs average latency
//!   curves for a DEC 3800-class server with and without gathering, without
//!   (Figure 2) and with (Figure 3) Prestoserve.
//!
//! [`TableSpec`] captures the configuration of each table;
//! [`run_table`] executes every cell and returns rows shaped like the paper's.
//! The binaries (`tables`, `figure1`, `figure2_3`, `ablations`) print the
//! regenerated artefacts; the Criterion benches exercise reduced-size versions
//! of the same code paths so `cargo bench` tracks their cost over time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use wg_server::WritePolicy;
use wg_workload::{
    ExperimentConfig, FileCopyResult, NetworkKind, SfsConfig, SfsPoint, SfsSweep, TableRow,
};

/// Which table of the paper a configuration corresponds to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableSpec {
    /// Table number (1–6).
    pub number: u8,
    /// Human-readable caption from the paper.
    pub caption: &'static str,
    /// Network medium.
    pub network: NetworkKind,
    /// Prestoserve acceleration.
    pub prestoserve: bool,
    /// Disk spindles (1 or 3).
    pub spindles: usize,
    /// Biod counts across the columns.
    pub biods: &'static [usize],
}

/// The six tables of the paper's Results section.
pub const TABLES: [TableSpec; 6] = [
    TableSpec {
        number: 1,
        caption: "NFS 10MB file copy: Ethernet",
        network: NetworkKind::Ethernet,
        prestoserve: false,
        spindles: 1,
        biods: &[0, 3, 7, 11, 15],
    },
    TableSpec {
        number: 2,
        caption: "NFS 10MB file copy: Ethernet, Presto",
        network: NetworkKind::Ethernet,
        prestoserve: true,
        spindles: 1,
        biods: &[0, 3, 7, 11, 15],
    },
    TableSpec {
        number: 3,
        caption: "NFS 10MB file copy: FDDI",
        network: NetworkKind::Fddi,
        prestoserve: false,
        spindles: 1,
        biods: &[0, 3, 7, 11, 15],
    },
    TableSpec {
        number: 4,
        caption: "NFS 10MB file copy: FDDI, Presto",
        network: NetworkKind::Fddi,
        prestoserve: true,
        spindles: 1,
        biods: &[0, 3, 7, 11, 15],
    },
    TableSpec {
        number: 5,
        caption: "NFS 10MB file copy: FDDI, 3 striped drives",
        network: NetworkKind::Fddi,
        prestoserve: false,
        spindles: 3,
        biods: &[0, 3, 7, 11, 15, 19, 23],
    },
    TableSpec {
        number: 6,
        caption: "NFS 10MB file copy: FDDI, Presto, 3 striped drives",
        network: NetworkKind::Fddi,
        prestoserve: true,
        spindles: 3,
        biods: &[0, 3, 7, 11, 15, 19, 23],
    },
];

/// Find a table spec by number.
pub fn table_spec(number: u8) -> Option<&'static TableSpec> {
    TABLES.iter().find(|t| t.number == number)
}

/// The complete output of one table: the per-biod results for both policies.
#[derive(Clone, Debug)]
pub struct TableOutput {
    /// Which table this is.
    pub spec: TableSpec,
    /// Results without write gathering, one per biod column.
    pub without: Vec<FileCopyResult>,
    /// Results with write gathering, one per biod column.
    pub with: Vec<FileCopyResult>,
}

impl TableOutput {
    /// Render the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Table {}. {}\n",
            self.spec.number, self.spec.caption
        ));
        out.push_str(&format!("{:<34}", "# of Client Biods"));
        for b in self.spec.biods {
            out.push_str(&format!("{:>8}", b));
        }
        out.push('\n');
        for (title, results) in [
            ("Without Write Gathering", &self.without),
            ("With Write Gathering", &self.with),
        ] {
            out.push_str(title);
            out.push('\n');
            for row in rows_for(results) {
                out.push_str(&row.render());
                out.push('\n');
            }
        }
        out
    }
}

/// Build the four paper rows from a set of per-biod results.
pub fn rows_for(results: &[FileCopyResult]) -> Vec<TableRow> {
    vec![
        TableRow {
            label: "client write speed (KB/sec.)".into(),
            values: results.iter().map(|r| r.client_write_kb_per_sec).collect(),
        },
        TableRow {
            label: "server cpu util. (%)".into(),
            values: results.iter().map(|r| r.server_cpu_percent).collect(),
        },
        TableRow {
            label: "server disk (KB/sec)".into(),
            values: results.iter().map(|r| r.disk_kb_per_sec).collect(),
        },
        TableRow {
            label: "server disk (trans/sec)".into(),
            values: results.iter().map(|r| r.disk_trans_per_sec).collect(),
        },
    ]
}

/// Run every cell of a table.  `file_size` lets callers trade fidelity for
/// runtime (the paper uses 10 MB; the Criterion benches use less).
pub fn run_table(spec: &TableSpec, file_size: u64) -> TableOutput {
    run_table_with(spec, file_size, |_| {})
}

/// Run every cell of a table with a final hook over each cell's derived
/// [`wg_server::ServerConfig`].  The golden-parity tests use this to pin an
/// *explicit* `shards = 1, cores = 1` server to the paper's snapshot, and the
/// ablation harness to vary knobs the tables do not sweep.
pub fn run_table_with(
    spec: &TableSpec,
    file_size: u64,
    customize: impl Fn(&mut wg_server::ServerConfig),
) -> TableOutput {
    let run_policy = |policy: WritePolicy| -> Vec<FileCopyResult> {
        spec.biods
            .iter()
            .map(|&biods| {
                wg_workload::FileCopySystem::new_customized(
                    ExperimentConfig::new(spec.network, biods, policy)
                        .with_presto(spec.prestoserve)
                        .with_spindles(spec.spindles)
                        .with_file_size(file_size),
                    |sc| customize(sc),
                )
                .run()
            })
            .collect()
    };
    TableOutput {
        spec: *spec,
        without: run_policy(WritePolicy::Standard),
        with: run_policy(WritePolicy::Gathering),
    }
}

/// The offered loads swept for Figures 2 and 3 (operations per second).
pub const FIGURE_LOADS: [f64; 10] = [
    200.0, 400.0, 600.0, 800.0, 1000.0, 1200.0, 1400.0, 1600.0, 1800.0, 2000.0,
];

/// Run the Figure 2 (plain disks) or Figure 3 (Prestoserve) sweep for one
/// policy.
pub fn run_figure(figure: u8, policy: WritePolicy, duration_secs: u64) -> Vec<SfsPoint> {
    let mut base = match figure {
        2 => SfsConfig::figure2(0.0, policy),
        3 => SfsConfig::figure3(0.0, policy),
        other => panic!("no figure {other} in the paper's evaluation"),
    };
    base.duration = wg_simcore::Duration::from_secs(duration_secs);
    SfsSweep::new(base).run(&FIGURE_LOADS)
}

/// Render a figure sweep as an aligned text table.
pub fn render_figure(figure: u8, without: &[SfsPoint], with: &[SfsPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure {figure}. SPEC SFS 1.0-style throughput vs latency ({})\n",
        if figure == 2 {
            "no Prestoserve"
        } else {
            "Prestoserve"
        }
    ));
    out.push_str(&format!(
        "{:>10} | {:>22} | {:>22}\n",
        "offered", "WITHOUT gathering", "WITH gathering"
    ));
    out.push_str(&format!(
        "{:>10} | {:>10} {:>11} | {:>10} {:>11}\n",
        "ops/s", "ops/s", "latency ms", "ops/s", "latency ms"
    ));
    for (a, b) in without.iter().zip(with.iter()) {
        out.push_str(&format!(
            "{:>10.0} | {:>10.1} {:>11.2} | {:>10.1} {:>11.2}\n",
            a.offered_ops_per_sec,
            a.achieved_ops_per_sec,
            a.avg_latency_ms,
            b.achieved_ops_per_sec,
            b.avg_latency_ms,
        ));
    }
    out
}

/// Helpers for the hand-rolled JSON trajectory report (`BENCH_writepath.json`).
///
/// The build environment has no JSON-parsing dependency, and the file is
/// written only by the bench binaries (`writepath_bench`, `scale_sweep`), so
/// a brace-matching scan over their own output is reliable.  Both binaries
/// share these helpers: one scanner, not two drifting copies.
pub mod report {
    /// CPUs the host actually offers the process (1 when unknown).  Stamped
    /// into every recorded cell so wall-clock numbers can be read in context.
    pub fn host_parallelism() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// The provenance block every recorded bench cell must carry, spelled the
    /// same way everywhere: the run's `clamped_past` count (events silently
    /// clamped into the past — always asserted zero, recorded anyway), the
    /// host parallelism the wall-clock numbers were measured under, and the
    /// calendar queue's health counters (geometry, resizes, depth high-water,
    /// direct-search fallbacks) so a wall-clock shift can be read against the
    /// scheduler's behaviour in the same cell.  The sweep binaries append
    /// this to each cell's fields instead of hand-rolling the entries, so the
    /// stamps can't drift apart.
    pub fn stamp_cell(
        fields: &mut Vec<(&'static str, String)>,
        clamped_past: u64,
        sched: &wg_simcore::CalStats,
    ) {
        fields.push(("clamped_past", clamped_past.to_string()));
        fields.push(("host_parallelism", host_parallelism().to_string()));
        fields.push(("sched_buckets", sched.buckets.to_string()));
        fields.push(("sched_resizes", sched.resizes.to_string()));
        fields.push(("sched_max_depth", sched.max_depth.to_string()));
        fields.push(("sched_rotations", sched.rotations.to_string()));
    }

    /// Index just past a JSON string that starts at `at` (which must hold the
    /// opening quote), honouring backslash escapes.
    fn skip_string(text: &str, at: usize) -> Option<usize> {
        let bytes = text.as_bytes();
        debug_assert_eq!(bytes.get(at), Some(&b'"'));
        let mut i = at + 1;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => return Some(i + 1),
                _ => i += 1,
            }
        }
        None
    }

    /// Index just past the JSON value that starts at `at` — an object or
    /// array (brace-matched, with strings skipped so braces inside names
    /// can't unbalance the count), a string, or a scalar.
    fn skip_value(text: &str, at: usize) -> Option<usize> {
        let bytes = text.as_bytes();
        match bytes.get(at)? {
            b'"' => skip_string(text, at),
            b'{' | b'[' => {
                let mut depth = 0usize;
                let mut i = at;
                while i < bytes.len() {
                    match bytes[i] {
                        b'"' => {
                            i = skip_string(text, i)?;
                            continue;
                        }
                        b'{' | b'[' => depth += 1,
                        b'}' | b']' => {
                            depth -= 1;
                            if depth == 0 {
                                return Some(i + 1);
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                None
            }
            _ => {
                let mut i = at;
                while i < bytes.len() && !matches!(bytes[i], b',' | b'}' | b']') {
                    i += 1;
                }
                Some(i)
            }
        }
    }

    /// Walk the *top level* of the report object and return the value span of
    /// `key` as `(value_start, value_end)`.  Depth-aware on purpose: the
    /// report nests whole sub-reports (e.g. an `"sfs_scale"` object carrying
    /// its own `"baseline"`/`"current"` curves), and a naive substring search
    /// for `"baseline":` would happily land inside one of them.
    fn top_level_value_span(text: &str, key: &str) -> Option<(usize, usize)> {
        let bytes = text.as_bytes();
        let mut i = text.find('{')? + 1;
        loop {
            while i < bytes.len() && matches!(bytes[i], b' ' | b'\t' | b'\n' | b'\r' | b',') {
                i += 1;
            }
            if i >= bytes.len() || bytes[i] != b'"' {
                return None;
            }
            let key_start = i;
            let key_end = skip_string(text, i)?;
            let this_key = &text[key_start + 1..key_end - 1];
            i = key_end;
            while i < bytes.len() && matches!(bytes[i], b' ' | b'\t' | b'\n' | b'\r') {
                i += 1;
            }
            if i >= bytes.len() || bytes[i] != b':' {
                return None;
            }
            i += 1;
            while i < bytes.len() && matches!(bytes[i], b' ' | b'\t' | b'\n' | b'\r') {
                i += 1;
            }
            let value_start = i;
            let value_end = skip_value(text, i)?;
            if this_key == key {
                return Some((value_start, value_end));
            }
            i = value_end;
        }
    }

    /// Every `(key, value_start, value_end)` entry of the report's top level,
    /// in file order.  Stops (returning what it has) at the first malformed
    /// entry, mirroring [`top_level_value_span`]'s bail-out behaviour.
    fn top_level_entries(text: &str) -> Vec<(String, usize, usize)> {
        let bytes = text.as_bytes();
        let mut out = Vec::new();
        let Some(open) = text.find('{') else {
            return out;
        };
        let mut i = open + 1;
        loop {
            while i < bytes.len() && matches!(bytes[i], b' ' | b'\t' | b'\n' | b'\r' | b',') {
                i += 1;
            }
            if i >= bytes.len() || bytes[i] != b'"' {
                return out;
            }
            let key_start = i;
            let Some(key_end) = skip_string(text, i) else {
                return out;
            };
            let key = text[key_start + 1..key_end - 1].to_string();
            i = key_end;
            while i < bytes.len() && matches!(bytes[i], b' ' | b'\t' | b'\n' | b'\r') {
                i += 1;
            }
            if i >= bytes.len() || bytes[i] != b':' {
                return out;
            }
            i += 1;
            while i < bytes.len() && matches!(bytes[i], b' ' | b'\t' | b'\n' | b'\r') {
                i += 1;
            }
            let value_start = i;
            let Some(value_end) = skip_value(text, i) else {
                return out;
            };
            out.push((key, value_start, value_end));
            i = value_end;
        }
    }

    /// Every top-level `(key, value)` pair of a report whose key is *not* in
    /// `known`, values verbatim.  A bench binary rewriting the shared report
    /// passes the keys it owns and re-emits everything else unchanged — so a
    /// section written by another (possibly newer) binary survives the
    /// rewrite even though this binary has never heard its name.
    pub fn carry_unknown_keys(text: &str, known: &[&str]) -> Vec<(String, String)> {
        top_level_entries(text)
            .into_iter()
            .filter(|(key, _, _)| !known.contains(&key.as_str()))
            .map(|(key, start, end)| (key, text[start..end].to_string()))
            .collect()
    }

    /// Extract a top-level `"key":{...}` object (including its braces), if
    /// present.  Only the report's own top level is searched; identically
    /// named keys nested inside other objects are never matched.
    pub fn extract_object(text: &str, key: &str) -> Option<String> {
        let (start, end) = top_level_value_span(text, key)?;
        if text.as_bytes()[start] == b'{' {
            Some(text[start..end].to_string())
        } else {
            None
        }
    }

    /// Replace (or insert) a top-level `"key":{...}` object in a report,
    /// returning the new text (newline-terminated).  An empty `text` becomes
    /// a fresh single-key object.  Like [`extract_object`], only genuine
    /// top-level keys are replaced — a nested namesake stays untouched.
    pub fn upsert_object(text: &str, key: &str, value: &str) -> String {
        let trimmed = text.trim_end();
        if trimmed.is_empty() {
            return format!("{{\"{key}\":{value}}}\n");
        }
        if let Some((start, end)) = top_level_value_span(trimmed, key) {
            format!("{}{}{}\n", &trimmed[..start], value, &trimmed[end..])
        } else {
            let end = trimmed.rfind('}').expect("report is a JSON object");
            let body = trimmed[..end].trim_end();
            let sep = if body.ends_with('{') { "" } else { "," };
            format!("{body}{sep}\"{key}\":{value}}}\n")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn extract_finds_nested_objects() {
            let text = r#"{"a":{"x":{"y":1}},"b":{"z":2}}"#;
            assert_eq!(extract_object(text, "a"), Some(r#"{"x":{"y":1}}"#.into()));
            assert_eq!(extract_object(text, "b"), Some(r#"{"z":2}"#.into()));
            assert_eq!(extract_object(text, "c"), None);
        }

        #[test]
        fn upsert_replaces_and_inserts() {
            let fresh = upsert_object("", "scale", "{\"k\":1}");
            assert_eq!(fresh, "{\"scale\":{\"k\":1}}\n");
            let inserted = upsert_object("{\"a\":{\"x\":1}}", "scale", "{\"k\":2}");
            assert_eq!(inserted, "{\"a\":{\"x\":1},\"scale\":{\"k\":2}}\n");
            let replaced = upsert_object(&inserted, "scale", "{\"k\":3}");
            assert_eq!(replaced, "{\"a\":{\"x\":1},\"scale\":{\"k\":3}}\n");
            // Keys after the replaced one survive.
            let middle = upsert_object("{\"scale\":{\"k\":4},\"z\":{\"w\":5}}", "scale", "{}");
            assert_eq!(middle, "{\"scale\":{},\"z\":{\"w\":5}}\n");
        }

        #[test]
        fn nested_namesakes_are_never_matched() {
            // The sfs_scale sub-report nests its own "baseline" and "current"
            // curves; extraction of the top-level "baseline" must not land on
            // them even when sfs_scale comes first.
            let text = concat!(
                r#"{"sfs_scale":{"baseline":{"nested":1},"current":{"nested":2}},"#,
                r#""baseline":{"real":3}}"#
            );
            assert_eq!(
                extract_object(text, "baseline"),
                Some(r#"{"real":3}"#.into())
            );
            assert_eq!(extract_object(text, "nested"), None);
            // Upserting the top-level key leaves the nested namesake alone.
            let updated = upsert_object(text, "baseline", r#"{"real":4}"#);
            assert!(updated.contains(r#""baseline":{"nested":1}"#));
            assert!(updated.contains(r#""baseline":{"real":4}"#));
        }

        #[test]
        fn sfs_scale_and_scale_keys_do_not_collide() {
            let text = r#"{"sfs_scale":{"baseline":{"p":1}},"scale":{"c2_mb1":{"q":2}}}"#;
            assert_eq!(
                extract_object(text, "scale"),
                Some(r#"{"c2_mb1":{"q":2}}"#.into())
            );
            assert_eq!(
                extract_object(text, "sfs_scale"),
                Some(r#"{"baseline":{"p":1}}"#.into())
            );
            // A scale rewrite keeps the sfs_scale curves verbatim.
            let updated = upsert_object(text, "scale", r#"{"c2_mb1":{"q":9}}"#);
            assert!(updated.contains(r#""sfs_scale":{"baseline":{"p":1}}"#));
            assert!(updated.contains(r#""scale":{"c2_mb1":{"q":9}}"#));
        }

        #[test]
        fn unknown_keys_are_carried_generically() {
            // A key this code has never heard of — the way a newer binary's
            // section (say "faults") looks to an older one — must survive a
            // rewrite verbatim, whatever its value shape.
            let text = concat!(
                r#"{"bench":"writepath","baseline":{"x":1},"#,
                r#""mystery_section":{"cells":[{"a":1},{"b":2}],"note":"odd } brace"},"#,
                r#""count":42}"#
            );
            let carried = carry_unknown_keys(text, &["bench", "baseline"]);
            assert_eq!(carried.len(), 2);
            assert_eq!(carried[0].0, "mystery_section");
            assert_eq!(
                carried[0].1,
                r#"{"cells":[{"a":1},{"b":2}],"note":"odd } brace"}"#
            );
            // Non-object values are carried too.
            assert_eq!(carried[1], ("count".to_string(), "42".to_string()));
            // Knowing every key means nothing is carried; an empty file the
            // same.
            assert!(
                carry_unknown_keys(text, &["bench", "baseline", "mystery_section", "count"])
                    .is_empty()
            );
            assert!(carry_unknown_keys("", &[]).is_empty());
        }

        #[test]
        fn stability_key_rides_alongside_the_existing_sections() {
            // sfs_sweep writes both "sfs_scale" and "stability"; a binary
            // that owns neither must carry both verbatim, and upserting
            // "stability" must leave its neighbours untouched.
            let text = concat!(
                r#"{"bench":"writepath","faults":{"grid":{"c":1}},"#,
                r#""stability":{"sfs":{"sync":{"lost_acked_bytes":0},"#,
                r#""unstable":{"commits":17}},"copy":{"unstable":{"kb":1637}}},"#,
                r#""sfs_scale":{"baseline":{"p":1}}}"#
            );
            let carried = carry_unknown_keys(text, &["bench", "faults"]);
            assert_eq!(carried.len(), 2);
            assert_eq!(carried[0].0, "stability");
            assert!(carried[0].1.contains(r#""commits":17"#));
            assert_eq!(carried[1].0, "sfs_scale");
            assert_eq!(
                extract_object(text, "stability").as_deref(),
                Some(&carried[0].1[..])
            );
            // The nested "sync" cell is not a top-level key.
            assert_eq!(extract_object(text, "sync"), None);
            let updated = upsert_object(text, "stability", r#"{"sfs":{}}"#);
            assert!(updated.contains(r#""stability":{"sfs":{}}"#));
            assert!(updated.contains(r#""faults":{"grid":{"c":1}}"#));
            assert!(updated.contains(r#""sfs_scale":{"baseline":{"p":1}}"#));
        }

        #[test]
        fn braces_inside_strings_do_not_unbalance_the_scan() {
            let text = r#"{"a":{"label":"odd } text { here"},"b":{"v":1}}"#;
            assert_eq!(extract_object(text, "b"), Some(r#"{"v":1}"#.into()));
            assert_eq!(
                extract_object(text, "a"),
                Some(r#"{"label":"odd } text { here"}"#.into())
            );
        }
    }
}

/// Reference values transcribed from the paper, used by the harness to print
/// a paper-vs-measured comparison and by the `table_shapes` integration test
/// to check that the qualitative shape holds.
pub mod paper {
    /// Client write speed (KB/s) from Table 1, without gathering.
    pub const T1_WITHOUT_KBS: [f64; 5] = [165.0, 194.0, 201.0, 203.0, 205.0];
    /// Client write speed (KB/s) from Table 1, with gathering.
    pub const T1_WITH_KBS: [f64; 5] = [140.0, 375.0, 493.0, 575.0, 674.0];
    /// Client write speed (KB/s) from Table 3, without gathering.
    pub const T3_WITHOUT_KBS: [f64; 5] = [207.0, 209.0, 207.0, 209.0, 208.0];
    /// Client write speed (KB/s) from Table 3, with gathering.
    pub const T3_WITH_KBS: [f64; 5] = [177.0, 534.0, 846.0, 876.0, 1085.0];
    /// Server CPU (%) from Table 2, without gathering.
    pub const T2_WITHOUT_CPU: [f64; 5] = [30.0, 38.0, 41.0, 42.0, 43.0];
    /// Server CPU (%) from Table 2, with gathering.
    pub const T2_WITH_CPU: [f64; 5] = [18.0, 26.0, 30.0, 32.0, 34.0];
    /// SPEC SFS capacity gain the paper reports for Figure 2.
    pub const FIG2_CAPACITY_GAIN: f64 = 0.13;
    /// SPEC SFS latency reduction the paper reports for Figure 2.
    pub const FIG2_LATENCY_REDUCTION: f64 = 0.11;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_cover_all_six_tables() {
        assert_eq!(TABLES.len(), 6);
        for n in 1..=6u8 {
            let spec = table_spec(n).expect("table exists");
            assert_eq!(spec.number, n);
            assert!(!spec.biods.is_empty());
        }
        assert!(table_spec(7).is_none());
        assert!(TABLES[4].biods.len() == 7 && TABLES[5].biods.len() == 7);
        assert!(TABLES[1].prestoserve && TABLES[3].prestoserve && TABLES[5].prestoserve);
    }

    #[test]
    fn small_table_run_produces_all_rows() {
        // A reduced file keeps this unit test quick while exercising the whole
        // path.
        let spec = TableSpec {
            biods: &[0, 7],
            ..TABLES[0]
        };
        let out = run_table(&spec, 512 * 1024);
        assert_eq!(out.without.len(), 2);
        assert_eq!(out.with.len(), 2);
        let rendered = out.render();
        assert!(rendered.contains("Table 1"));
        assert!(rendered.contains("Without Write Gathering"));
        assert!(rendered.contains("With Write Gathering"));
        assert!(rendered.contains("client write speed"));
        assert_eq!(rows_for(&out.without).len(), 4);
    }

    #[test]
    fn figure_rendering_lines_up() {
        let p = SfsPoint {
            offered_ops_per_sec: 100.0,
            achieved_ops_per_sec: 99.0,
            avg_latency_ms: 5.0,
            server_cpu_percent: 10.0,
        };
        let text = render_figure(2, &[p], &[p]);
        assert!(text.contains("Figure 2"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "no figure")]
    fn unknown_figure_panics() {
        let _ = run_figure(4, WritePolicy::Standard, 1);
    }
}
