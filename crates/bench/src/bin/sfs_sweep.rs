//! SFS scale-out sweep: the Figure 2 throughput/latency curve measured twice
//! — once with the original single-generator harness against the paper's
//! monolithic server (the `"baseline"` curve) and once with N generator
//! streams over per-client LANs through the sharded, multi-core, pipelined
//! server (the `"current"` curve).
//!
//! Every point is checked for a clean run: zero `InProgress` duplicate-cache
//! evictions (the §6.9 orphaned-write hazard) and zero payload
//! materialisations (the zero-copy datapath).  In a full (non-`--smoke`) run
//! the sweep also asserts the headline results:
//!
//! * **knee shift** — the scaled configuration's peak achieved ops/sec beats
//!   the single-client baseline's by ≥ 1.3× at equal-or-lower average
//!   latency, and
//! * **parallel sweep** — running the independent load points on a worker
//!   pool is ≥ 2× faster in wall-clock than the serial runner, with
//!   bit-identical output points.
//!
//! The sweep also measures the **partitioned simulation core** itself: a
//! big-topology cell (256 clients in the full run) executed once on the
//! serial event loop and again on 2/4/8 cooperating event loops
//! (`SfsConfig::sim_threads`), every partitioned run asserted bit-identical
//! to the serial one and the wall clock recorded per thread count.  The
//! ≥ 2× speedup assert only arms in the full run on hosts that actually
//! offer ≥ 4 CPUs; a smoke cell (or a smaller host) records the measured
//! ratio as skipped instead of silently passing — or flakily failing on a
//! noisy shared runner.  `--sim-threads N` additionally runs every curve
//! point on N event loops (the points stay bit-identical by construction,
//! which the parity suites pin).
//!
//! The sweep also records the **stability ablation** — the three ways the
//! write path can promise durability, measured over the SFS mix and the file
//! copy: `sync` (the paper's synchronous FILE_SYNC writes), `nvram`
//! (Prestoserve absorbing the sync writes), and `unstable` (the NFSv3-style
//! `WRITE(UNSTABLE)` + `COMMIT` protocol over the bounded unified buffer
//! cache — the experiment the paper could not run).  A fourth SFS cell runs
//! the unstable mode in the **memory-pressure regime** (cache smaller than
//! the working set) and asserts the bounded cache actually evicts and
//! throttles instead of silently behaving like the old infinite store.
//! Every cell ends with an unmount-style quiesce and asserts zero
//! acknowledged-and-lost bytes and zero bytes left uncommitted.
//!
//! Results are merged into `BENCH_writepath.json` under the `"sfs_scale"`
//! and `"stability"` keys (the other bench binaries preserve them when they
//! rewrite the file).
//!
//! ```text
//! cargo run --release -p wg-bench --bin sfs_sweep                   # full sweep
//! cargo run --release -p wg-bench --bin sfs_sweep -- --smoke --clients 4 --shards 4 --spindles 6 --overlap
//! cargo run --release -p wg-bench --bin sfs_sweep -- --smoke --sim-threads 2 --clients 8 --shards 4
//! cargo run --release -p wg-bench --bin sfs_sweep -- --smoke --stability all --unified-cache
//! cargo run --release -p wg-bench --bin sfs_sweep -- --clients 8 --lans --threads 8
//! cargo run --release -p wg-bench --bin sfs_sweep -- --out other.json
//! ```

use std::time::Instant;

use wg_bench::report::{host_parallelism, stamp_cell, upsert_object};
use wg_server::{StabilityMode, WritePolicy};
use wg_workload::results::json;
use wg_workload::sfs::SfsSystem;
use wg_workload::{
    ExperimentConfig, FileCopySystem, MultiClientConfig, MultiClientSystem, NetworkKind, SfsConfig,
    SfsRunStats, SfsSweep,
};

/// Offered loads of the full sweep: the figure range plus enough headroom to
/// find the scaled configuration's knee.
const FULL_LOADS: [f64; 15] = [
    200.0, 400.0, 600.0, 800.0, 1000.0, 1200.0, 1400.0, 1600.0, 1800.0, 2000.0, 2400.0, 2800.0,
    3200.0, 4000.0, 4800.0,
];

/// One measured curve: per-point stats plus the sweep's wall clocks.
struct Curve {
    config: SfsConfig,
    stats: Vec<SfsRunStats>,
    serial_wall_ms: f64,
    parallel_wall_ms: f64,
    threads: usize,
}

impl Curve {
    /// The peak point: highest achieved ops/sec over the curve.
    fn peak(&self) -> &SfsRunStats {
        self.stats
            .iter()
            .max_by(|a, b| {
                a.point
                    .achieved_ops_per_sec
                    .total_cmp(&b.point.achieved_ops_per_sec)
            })
            .expect("curve has points")
    }

    fn parallel_speedup(&self) -> f64 {
        self.serial_wall_ms / self.parallel_wall_ms.max(1e-9)
    }

    fn to_json(&self) -> String {
        let points: Vec<String> = self.stats.iter().map(|s| s.to_json()).collect();
        let peak = self.peak();
        json::object(&[
            ("clients", self.config.clients.to_string()),
            ("shards", self.config.shards.to_string()),
            ("cores", self.config.cores.to_string()),
            ("spindles", self.config.spindles.to_string()),
            ("io_overlap", self.config.io_overlap.to_string()),
            ("per_client_lans", self.config.per_client_lans.to_string()),
            ("inode_groups", self.config.inode_groups.to_string()),
            ("read_caching", self.config.read_caching.to_string()),
            (
                "duration_secs",
                json::number(self.config.duration.as_secs_f64()),
            ),
            (
                "peak_achieved_ops_per_sec",
                json::number(peak.point.achieved_ops_per_sec),
            ),
            (
                "peak_avg_latency_ms",
                json::number(peak.point.avg_latency_ms),
            ),
            ("serial_wall_ms", json::number(self.serial_wall_ms)),
            ("parallel_wall_ms", json::number(self.parallel_wall_ms)),
            ("threads", self.threads.to_string()),
            ("sim_threads", self.config.sim_threads.to_string()),
            ("host_parallelism", host_parallelism().to_string()),
            ("parallel_speedup", json::number(self.parallel_speedup())),
            ("points", json::array(&points)),
        ])
    }
}

/// Run one curve: a timed serial pass collecting health counters, then a
/// timed parallel pass that must reproduce the points bit-identically.
fn run_curve(label: &str, config: SfsConfig, loads: &[f64], threads: usize) -> Curve {
    let sweep = SfsSweep::new(config.clone());
    let serial_start = Instant::now();
    let stats = sweep.run_stats(loads);
    let serial_wall_ms = serial_start.elapsed().as_secs_f64() * 1e3;
    let parallel_start = Instant::now();
    let parallel = sweep.run_parallel(loads, threads);
    let parallel_wall_ms = parallel_start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(parallel.len(), stats.len());
    for (serial, parallel) in stats.iter().zip(parallel.iter()) {
        assert!(
            serial.point.achieved_ops_per_sec == parallel.achieved_ops_per_sec
                && serial.point.avg_latency_ms == parallel.avg_latency_ms
                && serial.point.server_cpu_percent == parallel.server_cpu_percent,
            "{label}: parallel sweep diverged from serial at offered {} ops/s",
            serial.point.offered_ops_per_sec
        );
    }
    for s in &stats {
        assert_eq!(
            s.evicted_in_progress, 0,
            "{label} @ {} ops/s: dupcache evicted an InProgress entry: a \
             deferred gathered-write reply could have been orphaned (§6.9)",
            s.point.offered_ops_per_sec
        );
        assert_eq!(
            s.materializations, 0,
            "{label} @ {} ops/s: the zero-copy datapath materialised a payload",
            s.point.offered_ops_per_sec
        );
        assert_eq!(
            s.clamped_past, 0,
            "{label} @ {} ops/s: an event was scheduled into the past and \
             silently clamped",
            s.point.offered_ops_per_sec
        );
        println!(
            "{label:<9} offered {:>6.0}  achieved {:>7.1} ops/s  latency {:>9.2} ms  \
             cpu {:>5.1}%  fairness {:.3}  mints {}",
            s.point.offered_ops_per_sec,
            s.point.achieved_ops_per_sec,
            s.point.avg_latency_ms,
            s.point.server_cpu_percent,
            s.fairness,
            s.name_mints,
        );
    }
    println!(
        "{label:<9} sweep wall: serial {serial_wall_ms:.1} ms, parallel {parallel_wall_ms:.1} ms \
         on {threads} threads ({:.2}x)",
        serial_wall_ms / parallel_wall_ms.max(1e-9)
    );
    Curve {
        config,
        stats,
        serial_wall_ms,
        parallel_wall_ms,
        threads,
    }
}

/// The big-topology partitioned-core cell: one scaled configuration run on
/// the serial event loop and then on each of `thread_counts` cooperating
/// event loops, every partitioned run asserted bit-identical to the serial
/// one, with the wall clock recorded per thread count.
///
/// The ≥ 2× speedup assert is only armed when `assert_speedup` is set (the
/// full run) *and* the host offers ≥ 4 CPUs; otherwise the cell records the
/// assert as skipped, with the measured ratio — never as passed.  A smoke
/// cell is too small to measure wall clock reliably on a shared runner, so
/// it always records instead of asserting.
fn run_parallel_core_cell(
    clients: usize,
    secs: u64,
    load: f64,
    thread_counts: &[usize],
    assert_speedup: bool,
) -> String {
    let mut config = SfsConfig::scaled(load, WritePolicy::Gathering, clients);
    config.duration = wg_simcore::Duration::from_secs(secs);

    let serial_start = Instant::now();
    let serial = SfsSweep::new(config.clone())
        .run_stats(&[load])
        .pop()
        .expect("one point");
    let serial_wall_ms = serial_start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(serial.clamped_past, 0, "serial big-topology run clamped");
    println!(
        "parallel_core: {clients} clients, {secs}s @ {load:.0} ops/s — serial \
         {serial_wall_ms:.1} ms, achieved {:.1} ops/s",
        serial.point.achieved_ops_per_sec
    );

    let mut runs: Vec<String> = Vec::new();
    let mut best_speedup = 0.0f64;
    for &n in thread_counts {
        let start = Instant::now();
        let par = SfsSweep::new(config.clone().with_sim_threads(n))
            .run_stats(&[load])
            .pop()
            .expect("one point");
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        // Bit-identity of the partitioned run: the non-negotiable invariant.
        assert!(
            par.point.achieved_ops_per_sec == serial.point.achieved_ops_per_sec
                && par.point.avg_latency_ms == serial.point.avg_latency_ms
                && par.point.server_cpu_percent == serial.point.server_cpu_percent,
            "partitioned run on {n} event loops diverged from serial"
        );
        assert_eq!(par.per_client_achieved_ops, serial.per_client_achieved_ops);
        assert_eq!(par.issued, serial.issued);
        assert_eq!(par.completed, serial.completed);
        assert_eq!(par.retransmissions, serial.retransmissions);
        assert_eq!(par.gave_up, serial.gave_up);
        assert_eq!(par.name_mints, serial.name_mints);
        assert_eq!(par.evicted_in_progress, 0);
        assert_eq!(par.materializations, 0);
        assert_eq!(par.clamped_past, 0, "partitioned run clamped an event");
        let speedup = serial_wall_ms / wall_ms.max(1e-9);
        best_speedup = best_speedup.max(speedup);
        println!(
            "parallel_core: sim_threads {n} — {wall_ms:.1} ms ({speedup:.2}x), \
             bit-identical to serial"
        );
        runs.push(json::object(&[
            ("sim_threads", n.to_string()),
            ("wall_ms", json::number(wall_ms)),
            ("speedup_vs_serial", json::number(speedup)),
        ]));
    }

    let host = host_parallelism();
    let speedup_assert = if host < 4 {
        println!(
            "parallel_core: host offers {host} CPU(s); recording the wall \
             clocks without asserting the >=2x speedup"
        );
        format!("skipped: host offers {host} CPU(s)")
    } else if !assert_speedup {
        println!(
            "parallel_core: smoke cell; recording {best_speedup:.2}x without \
             asserting the >=2x speedup"
        );
        format!("skipped: smoke cell ({best_speedup:.2}x)")
    } else {
        assert!(
            best_speedup >= 2.0,
            "partitioned big-topology speedup {best_speedup:.2}x < 2x on a \
             {host}-CPU host"
        );
        "passed".to_string()
    };
    json::object(&[
        ("clients", clients.to_string()),
        ("duration_secs", secs.to_string()),
        ("offered_ops_per_sec", json::number(load)),
        (
            "achieved_ops_per_sec",
            json::number(serial.point.achieved_ops_per_sec),
        ),
        ("host_parallelism", host.to_string()),
        ("serial_wall_ms", json::number(serial_wall_ms)),
        ("runs", json::array(&runs)),
        ("best_speedup", json::number(best_speedup)),
        ("speedup_assert", json::string(&speedup_assert)),
    ])
}

/// One stability-ablation cell over the SFS mix: the workload run to
/// completion, the server quiesced (an unmount-style drain of the
/// write-behind cache), and the durability ledger asserted clean.
#[allow(clippy::too_many_arguments)]
fn run_stability_sfs_cell(
    label: &str,
    presto: bool,
    stability: StabilityMode,
    cache_pages: u64,
    dirty_ratio: f64,
    load: f64,
    secs: u64,
    expect_pressure: bool,
) -> String {
    let mut config = if presto {
        SfsConfig::figure3(load, WritePolicy::Gathering)
    } else {
        SfsConfig::figure2(load, WritePolicy::Gathering)
    };
    config.duration = wg_simcore::Duration::from_secs(secs);
    let config = config
        .with_unified_cache(cache_pages)
        .with_dirty_ratio(dirty_ratio)
        .with_stability(stability);
    let before = wg_nfsproto::payload::materialize_count();
    let mut system = SfsSystem::new(config);
    let point = system.run();
    let materializations = wg_nfsproto::payload::materialize_count() - before;
    system.quiesce_server();
    let evicted = system.server().dupcache_evicted_in_progress();
    let uncommitted = system.server().uncommitted_bytes();
    let stats = system.server().stats();
    let fs = system.server().fs().counters();

    assert_eq!(
        stats.lost_acked_bytes, 0,
        "{label}: acknowledged write data was lost without a crash"
    );
    assert_eq!(
        uncommitted, 0,
        "{label}: the quiesce left acknowledged-unstable bytes uncommitted"
    );
    assert_eq!(
        stats.forced_file_sync, 0,
        "{label}: the server downgraded an unstable write with a healthy battery"
    );
    assert_eq!(evicted, 0, "{label}: dupcache evicted an InProgress entry");
    assert_eq!(
        materializations, 0,
        "{label}: the zero-copy datapath materialised a payload"
    );
    assert_eq!(
        system.clamped_past(),
        0,
        "{label}: an event was scheduled into the past and silently clamped"
    );
    match stability {
        StabilityMode::Unstable => {
            assert!(
                stats.unstable_writes > 0 && stats.commits > 0,
                "{label}: the unstable cell never spoke WRITE(UNSTABLE)+COMMIT"
            );
        }
        StabilityMode::Stable => {
            assert_eq!(
                stats.unstable_writes + stats.commits,
                0,
                "{label}: a FILE_SYNC cell spoke the v3 protocol"
            );
        }
    }
    if expect_pressure {
        // The whole point of the memory-pressure cell: a cache smaller than
        // the working set must evict and throttle, not silently behave like
        // the old infinite store.
        assert!(
            fs.cache_evictions > 0,
            "{label}: cache smaller than the working set never evicted"
        );
        assert!(
            fs.throttle_stalls > 0,
            "{label}: dirty ratio over threshold never throttled a writer"
        );
    }

    println!(
        "{label:<18} achieved {:>7.1} ops/s  latency {:>8.2} ms  unstable {:>6}  \
         commits {:>4}  evictions {:>6}  throttle {:>5}  writeback {:>6}  \
         lost_acked {}  uncommitted {}",
        point.achieved_ops_per_sec,
        point.avg_latency_ms,
        stats.unstable_writes,
        stats.commits,
        fs.cache_evictions,
        fs.throttle_stalls,
        fs.writeback_blocks,
        stats.lost_acked_bytes,
        uncommitted,
    );
    let mut fields = vec![
        (
            "stability",
            json::string(match stability {
                StabilityMode::Stable => "file_sync",
                StabilityMode::Unstable => "unstable",
            }),
        ),
        ("prestoserve", presto.to_string()),
        ("cache_pages", cache_pages.to_string()),
        ("dirty_ratio", json::number(dirty_ratio)),
        (
            "offered_ops_per_sec",
            json::number(point.offered_ops_per_sec),
        ),
        (
            "achieved_ops_per_sec",
            json::number(point.achieved_ops_per_sec),
        ),
        ("avg_latency_ms", json::number(point.avg_latency_ms)),
        ("unstable_writes", stats.unstable_writes.to_string()),
        ("commits", stats.commits.to_string()),
        ("forced_file_sync", stats.forced_file_sync.to_string()),
        ("cache_evictions", fs.cache_evictions.to_string()),
        ("throttle_stalls", fs.throttle_stalls.to_string()),
        ("writeback_blocks", fs.writeback_blocks.to_string()),
        ("lost_acked_bytes", stats.lost_acked_bytes.to_string()),
        ("lost_unstable_bytes", stats.lost_unstable_bytes.to_string()),
        ("uncommitted_after_quiesce", uncommitted.to_string()),
        ("evicted_in_progress", evicted.to_string()),
        ("materializations", materializations.to_string()),
    ];
    stamp_cell(&mut fields, system.clamped_past(), &system.sched_stats());
    json::object(&fields)
}

/// One stability-ablation cell over the file copy: the 4-biod FDDI copy in
/// each durability mode, the client committing its unstable ranges at close.
fn run_stability_copy_cell(
    label: &str,
    presto: bool,
    stability: StabilityMode,
    cache_pages: u64,
    file_mb: u64,
) -> String {
    let config = ExperimentConfig::new(NetworkKind::Fddi, 4, WritePolicy::Gathering)
        .with_presto(presto)
        .with_file_size(file_mb * 1024 * 1024)
        .with_unified_cache(cache_pages)
        .with_stability(stability);
    let mut system = FileCopySystem::new(config);
    let result = system.run();
    let stats = system.server().stats();
    let client = system.client().stats();

    assert!(result.completed, "{label}: the copy did not complete");
    assert_eq!(
        stats.lost_acked_bytes, 0,
        "{label}: acknowledged write data was lost without a crash"
    );
    assert_eq!(
        system.lost_acked_bytes_on_disk(),
        0,
        "{label}: acknowledged data missing from the on-disk file"
    );
    assert_eq!(
        system.server().uncommitted_bytes(),
        0,
        "{label}: the client closed with acknowledged-unstable bytes uncommitted"
    );
    assert!(
        system.client().uncommitted_ranges().is_empty(),
        "{label}: the client still tracks uncommitted ranges after close"
    );
    assert_eq!(
        system.clamped_past(),
        0,
        "{label}: an event was scheduled into the past and silently clamped"
    );
    if stability == StabilityMode::Unstable {
        assert!(
            stats.unstable_writes > 0 && client.commits_sent > 0,
            "{label}: the unstable copy never spoke WRITE(UNSTABLE)+COMMIT"
        );
    }

    println!(
        "{label:<18} {:>7.0} KB/s  unstable {:>6}  commits {:>3}  \
         mismatches {}  lost_acked {}  completed {}",
        result.client_write_kb_per_sec,
        stats.unstable_writes,
        client.commits_sent,
        client.verifier_mismatches,
        stats.lost_acked_bytes,
        result.completed,
    );
    let mut fields = vec![
        (
            "stability",
            json::string(match stability {
                StabilityMode::Stable => "file_sync",
                StabilityMode::Unstable => "unstable",
            }),
        ),
        ("prestoserve", presto.to_string()),
        ("cache_pages", cache_pages.to_string()),
        ("file_mb", file_mb.to_string()),
        (
            "client_write_kb_per_sec",
            json::number(result.client_write_kb_per_sec),
        ),
        ("unstable_writes", stats.unstable_writes.to_string()),
        ("commits_sent", client.commits_sent.to_string()),
        (
            "verifier_mismatches",
            client.verifier_mismatches.to_string(),
        ),
        ("lost_acked_bytes", stats.lost_acked_bytes.to_string()),
        ("completed", result.completed.to_string()),
    ];
    stamp_cell(&mut fields, system.clamped_past(), &system.sched_stats());
    json::object(&fields)
}

/// One commit-pacing cell: the unstable multi-client fan-in with the client
/// either batching its whole file behind one close-time COMMIT
/// (`commit_interval = 0`, the default) or paying a COMMIT every
/// `commit_interval` acknowledged bytes.  Pacing trades commit traffic for a
/// bounded unstable backlog; either way the run must end fully committed,
/// verified on disk, with zero acknowledged loss.
fn run_commit_pacing_cell(
    label: &str,
    commit_interval: u64,
    cache_pages: u64,
    file_mb: u64,
) -> String {
    let config = MultiClientConfig::new(NetworkKind::Fddi, 4, 4, WritePolicy::Gathering)
        .with_bytes_per_client(file_mb * 1024 * 1024)
        .with_unified_cache(cache_pages)
        .with_stability(StabilityMode::Unstable)
        .with_commit_interval(commit_interval);
    let mut system = MultiClientSystem::new(config);
    let result = system.run();
    let stats = system.server().stats();
    let paced = system.paced_commits();

    assert!(result.completed, "{label}: a client never finished");
    system
        .verify_on_disk()
        .unwrap_or_else(|e| panic!("{label}: on-disk verification failed: {e}"));
    assert_eq!(
        stats.lost_acked_bytes, 0,
        "{label}: acknowledged write data was lost without a crash"
    );
    assert_eq!(
        system.server().uncommitted_bytes(),
        0,
        "{label}: the run ended with acknowledged-unstable bytes uncommitted"
    );
    assert_eq!(
        system.clamped_past(),
        0,
        "{label}: an event was scheduled into the past and silently clamped"
    );
    if commit_interval == 0 {
        assert_eq!(paced, 0, "{label}: pacing fired with the knob off");
    } else {
        // Each client writes file_mb MB: pacing at `commit_interval` bytes
        // must fire well before close.
        assert!(paced > 0, "{label}: the pacing knob never issued a COMMIT");
    }

    println!(
        "{label:<18} {:>7.0} KB/s  commits {:>4}  paced {:>4}  unstable {:>6}  \
         lost_acked {}",
        result.aggregate_kb_per_sec,
        stats.commits,
        paced,
        stats.unstable_writes,
        stats.lost_acked_bytes,
    );
    let mut fields = vec![
        ("commit_interval_bytes", commit_interval.to_string()),
        ("file_mb", file_mb.to_string()),
        ("cache_pages", cache_pages.to_string()),
        (
            "aggregate_kb_per_sec",
            json::number(result.aggregate_kb_per_sec),
        ),
        ("commits", stats.commits.to_string()),
        ("paced_commits", paced.to_string()),
        ("unstable_writes", stats.unstable_writes.to_string()),
        ("lost_acked_bytes", stats.lost_acked_bytes.to_string()),
        ("completed", result.completed.to_string()),
    ];
    stamp_cell(&mut fields, system.clamped_past(), &system.sched_stats());
    json::object(&fields)
}

/// Dirty-ratio threshold of the memory-pressure cell: tight enough that the
/// tiny cache's writers must stall on writeback instead of dirtying freely.
const PRESSURE_DIRTY_RATIO: f64 = 0.05;

/// The three-way stability ablation (sync vs NVRAM vs unstable+COMMIT) over
/// the SFS mix and the file copy, plus the memory-pressure cell.  `modes`
/// filters which durability modes run; the recorded object carries only the
/// cells that ran.
fn run_stability_ablation(
    modes: &str,
    cache_pages: u64,
    sync_cache_pages: u64,
    dirty_ratio: f64,
    smoke: bool,
) -> String {
    let (load, secs, file_mb, pressure_pages) = if smoke {
        (300.0, 3, 1, 64)
    } else {
        (800.0, 10, 4, 128)
    };
    let stable = modes == "all" || modes == "stable";
    let unstable = modes == "all" || modes == "unstable";

    let mut sfs_cells: Vec<(&str, String)> = Vec::new();
    let mut copy_cells: Vec<(&str, String)> = Vec::new();
    if stable {
        sfs_cells.push((
            "sync",
            run_stability_sfs_cell(
                "sfs_sync",
                false,
                StabilityMode::Stable,
                sync_cache_pages,
                dirty_ratio,
                load,
                secs,
                false,
            ),
        ));
        sfs_cells.push((
            "nvram",
            run_stability_sfs_cell(
                "sfs_nvram",
                true,
                StabilityMode::Stable,
                0,
                dirty_ratio,
                load,
                secs,
                false,
            ),
        ));
        copy_cells.push((
            "sync",
            run_stability_copy_cell("copy_sync", false, StabilityMode::Stable, 0, file_mb),
        ));
        copy_cells.push((
            "nvram",
            run_stability_copy_cell("copy_nvram", true, StabilityMode::Stable, 0, file_mb),
        ));
    }
    if unstable {
        sfs_cells.push((
            "unstable",
            run_stability_sfs_cell(
                "sfs_unstable",
                false,
                StabilityMode::Unstable,
                cache_pages,
                dirty_ratio,
                load,
                secs,
                false,
            ),
        ));
        // The memory-pressure regime: a cache far smaller than the working
        // set, with a correspondingly tight dirty threshold — a handful of
        // dirty pages is all the tiny cache can absorb before writers must
        // wait on the flush.
        sfs_cells.push((
            "unstable_pressure",
            run_stability_sfs_cell(
                "sfs_unstable_mp",
                false,
                StabilityMode::Unstable,
                pressure_pages,
                PRESSURE_DIRTY_RATIO,
                load,
                secs,
                true,
            ),
        ));
        copy_cells.push((
            "unstable",
            run_stability_copy_cell(
                "copy_unstable",
                false,
                StabilityMode::Unstable,
                cache_pages,
                file_mb,
            ),
        ));
    }

    // The commit-pacing comparison rides on the unstable modes: the same
    // fan-in with close-only COMMITs vs a COMMIT every 256 KiB of
    // acknowledged data.
    let mut pacing_cells: Vec<(&str, String)> = Vec::new();
    if unstable {
        pacing_cells.push((
            "close_only",
            run_commit_pacing_cell("pace_close_only", 0, cache_pages, file_mb),
        ));
        pacing_cells.push((
            "paced_256k",
            run_commit_pacing_cell("pace_256k", 256 * 1024, cache_pages, file_mb),
        ));
    }

    json::object(&[
        ("modes", json::string(modes)),
        ("smoke", smoke.to_string()),
        ("secs", secs.to_string()),
        ("offered_ops_per_sec", json::number(load)),
        ("cache_pages", cache_pages.to_string()),
        ("pressure_cache_pages", pressure_pages.to_string()),
        ("dirty_ratio", json::number(dirty_ratio)),
        ("sfs", json::object(&sfs_cells)),
        ("copy", json::object(&copy_cells)),
        ("commit_pacing", json::object(&pacing_cells)),
    ])
}

fn parse_list(s: &str) -> Vec<f64> {
    s.split(',')
        .map(|v| v.trim().parse().expect("comma-separated numbers"))
        .collect()
}

fn main() {
    let mut out_path = "BENCH_writepath.json".to_string();
    // Flag defaults come from the one canonical definition of the scaled
    // stack (`SfsConfig::scaled`, also what tests/sfs_scale.rs measures) so
    // the recorded "current" curve cannot drift from it.
    let scaled_defaults = SfsConfig::scaled(0.0, WritePolicy::Gathering, 4);
    let mut clients = scaled_defaults.clients;
    let mut shards = scaled_defaults.shards;
    let mut cores = scaled_defaults.cores;
    let mut spindles = scaled_defaults.spindles;
    let mut overlap = scaled_defaults.io_overlap;
    let mut lans = scaled_defaults.per_client_lans;
    let mut inode_groups = scaled_defaults.inode_groups;
    let mut read_caching = scaled_defaults.read_caching;
    let mut threads = 4usize;
    let mut sim_threads = scaled_defaults.sim_threads;
    let mut secs: Option<u64> = None;
    let mut loads: Option<Vec<f64>> = None;
    let mut smoke = false;
    let mut stability = "all".to_string();
    let mut unified_cache = false;
    let mut cache_pages = 4096u64;
    let mut dirty_ratio = 0.5f64;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => out_path = iter.next().expect("--out needs a path"),
            "--smoke" => smoke = true,
            "--clients" => {
                clients = iter
                    .next()
                    .expect("--clients needs a count")
                    .parse()
                    .expect("--clients needs a number");
            }
            "--shards" => {
                shards = iter
                    .next()
                    .expect("--shards needs a count")
                    .parse()
                    .expect("--shards needs a number");
            }
            "--cores" => {
                cores = iter
                    .next()
                    .expect("--cores needs a count")
                    .parse()
                    .expect("--cores needs a number");
            }
            "--spindles" => {
                spindles = iter
                    .next()
                    .expect("--spindles needs a count")
                    .parse()
                    .expect("--spindles needs a number");
            }
            "--inode-groups" => {
                inode_groups = iter
                    .next()
                    .expect("--inode-groups needs a count")
                    .parse()
                    .expect("--inode-groups needs a number");
            }
            "--threads" => {
                threads = iter
                    .next()
                    .expect("--threads needs a count")
                    .parse()
                    .expect("--threads needs a number");
            }
            "--sim-threads" => {
                sim_threads = iter
                    .next()
                    .expect("--sim-threads needs a count")
                    .parse()
                    .expect("--sim-threads needs a number");
            }
            "--secs" => {
                secs = Some(
                    iter.next()
                        .expect("--secs needs a count")
                        .parse()
                        .expect("--secs needs a number"),
                );
            }
            "--loads" => {
                loads = Some(parse_list(&iter.next().expect("--loads needs a list")));
            }
            // The scaled topology is the default; the bare flags exist so CI
            // invocations can spell the configuration out, and the --no-*
            // forms give ablations a way to switch pieces off.
            "--overlap" => overlap = true,
            "--no-overlap" => overlap = false,
            "--lans" => lans = true,
            "--no-lans" => lans = false,
            "--read-caching" => read_caching = true,
            "--no-read-caching" => read_caching = false,
            "--stability" => {
                stability = iter.next().expect("--stability needs stable|unstable|all");
                assert!(
                    matches!(stability.as_str(), "stable" | "unstable" | "all"),
                    "--stability needs stable|unstable|all, got {stability}"
                );
            }
            "--unified-cache" => unified_cache = true,
            "--cache-pages" => {
                cache_pages = iter
                    .next()
                    .expect("--cache-pages needs a count")
                    .parse()
                    .expect("--cache-pages needs a number");
            }
            "--dirty-ratio" => {
                dirty_ratio = iter
                    .next()
                    .expect("--dirty-ratio needs a ratio")
                    .parse()
                    .expect("--dirty-ratio needs a number");
            }
            other => panic!(
                "unknown argument {other}; use --smoke, --out PATH, --clients N, \
                 --shards N, --cores N, --spindles N, --inode-groups N, \
                 --threads N, --sim-threads N, --secs N, --loads A,B,C, \
                 --overlap/--no-overlap, --lans/--no-lans, \
                 --read-caching/--no-read-caching, --stability MODE, \
                 --unified-cache, --cache-pages N, --dirty-ratio X"
            ),
        }
    }

    // Smoke shortens the sweep, but an explicit --secs/--loads always wins
    // regardless of where it sits on the command line.
    let secs = secs.unwrap_or(if smoke { 3 } else { 20 });
    let loads = loads.unwrap_or_else(|| {
        if smoke {
            vec![300.0, 900.0]
        } else {
            FULL_LOADS.to_vec()
        }
    });
    let duration = wg_simcore::Duration::from_secs(secs);
    let mut baseline_config =
        SfsConfig::figure2(0.0, WritePolicy::Gathering).with_sim_threads(sim_threads);
    baseline_config.duration = duration;
    let mut current_config = SfsConfig::scaled(0.0, WritePolicy::Gathering, clients)
        .with_shards(shards)
        .with_cores(cores)
        .with_spindles(spindles)
        .with_io_overlap(overlap)
        .with_per_client_lans(lans)
        .with_inode_groups(inode_groups)
        .with_read_caching(read_caching)
        .with_sim_threads(sim_threads);
    current_config.duration = duration;

    let baseline = run_curve("baseline", baseline_config, &loads, threads);
    let current = run_curve("current", current_config, &loads, threads);

    let base_peak = baseline.peak();
    let cur_peak = current.peak();
    let peak_ratio =
        cur_peak.point.achieved_ops_per_sec / base_peak.point.achieved_ops_per_sec.max(1e-9);
    println!(
        "knee shift: baseline peak {:.1} ops/s @ {:.1} ms -> current peak {:.1} ops/s @ {:.1} ms \
         ({peak_ratio:.2}x)",
        base_peak.point.achieved_ops_per_sec,
        base_peak.point.avg_latency_ms,
        cur_peak.point.achieved_ops_per_sec,
        cur_peak.point.avg_latency_ms,
    );
    if !smoke {
        // The headline asserts only make sense at full duration and span.
        assert!(
            peak_ratio >= 1.3,
            "the scaled configuration's knee did not shift: {peak_ratio:.2}x < 1.3x"
        );
        assert!(
            cur_peak.point.avg_latency_ms <= base_peak.point.avg_latency_ms,
            "the scaled peak pays more latency than the baseline knee: {:.1} ms > {:.1} ms",
            cur_peak.point.avg_latency_ms,
            base_peak.point.avg_latency_ms
        );
        // The bit-identity of parallel vs serial points is asserted in every
        // run (see `run_curve`); the wall-clock win can only exist where the
        // host actually has cores to run the workers on.
        let host = host_parallelism();
        if loads.len() >= 8 && threads >= 4 && host >= 4 {
            let speedup = current.parallel_speedup();
            assert!(
                speedup >= 2.0,
                "parallel sweep speedup {speedup:.2}x < 2x on {threads} threads \
                 over {} points",
                loads.len()
            );
        } else if host < 4 {
            println!(
                "note: host offers {host} CPU(s); recording the parallel wall \
                 clock without asserting the >=2x speedup"
            );
        }
    }

    // The partitioned-core cell: big topology in the full run, scaled down
    // in smoke so CI still exercises the serial-vs-partitioned race.
    let parallel_core = if smoke {
        run_parallel_core_cell(32, 2, 600.0, &[2, 4], false)
    } else {
        run_parallel_core_cell(256, 5, 2000.0, &[2, 4, 8], true)
    };

    let sfs_scale = json::object(&[
        ("baseline", baseline.to_json()),
        ("current", current.to_json()),
        ("parallel_core", parallel_core),
        (
            "knee_shift",
            json::object(&[
                (
                    "baseline_peak_ops_per_sec",
                    json::number(base_peak.point.achieved_ops_per_sec),
                ),
                (
                    "current_peak_ops_per_sec",
                    json::number(cur_peak.point.achieved_ops_per_sec),
                ),
                ("peak_ratio", json::number(peak_ratio)),
                (
                    "baseline_peak_latency_ms",
                    json::number(base_peak.point.avg_latency_ms),
                ),
                (
                    "current_peak_latency_ms",
                    json::number(cur_peak.point.avg_latency_ms),
                ),
            ]),
        ),
    ]);
    // The three-way durability ablation: sync vs NVRAM vs unstable+COMMIT,
    // over the SFS mix and the file copy, plus the memory-pressure cell.
    // `--unified-cache` additionally bounds the sync cell's page cache (the
    // default sync cell keeps the paper's write path untouched).
    let sync_cache_pages = if unified_cache { cache_pages } else { 0 };
    let stability_cells = run_stability_ablation(
        &stability,
        cache_pages,
        sync_cache_pages,
        dirty_ratio,
        smoke,
    );

    let previous = std::fs::read_to_string(&out_path).unwrap_or_default();
    let report = upsert_object(&previous, "sfs_scale", &sfs_scale);
    let report = upsert_object(&report, "stability", &stability_cells);
    std::fs::write(&out_path, report).expect("write report");
    println!("wrote {out_path}");
}
