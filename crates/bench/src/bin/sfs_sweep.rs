//! SFS scale-out sweep: the Figure 2 throughput/latency curve measured twice
//! — once with the original single-generator harness against the paper's
//! monolithic server (the `"baseline"` curve) and once with N generator
//! streams over per-client LANs through the sharded, multi-core, pipelined
//! server (the `"current"` curve).
//!
//! Every point is checked for a clean run: zero `InProgress` duplicate-cache
//! evictions (the §6.9 orphaned-write hazard) and zero payload
//! materialisations (the zero-copy datapath).  In a full (non-`--smoke`) run
//! the sweep also asserts the headline results:
//!
//! * **knee shift** — the scaled configuration's peak achieved ops/sec beats
//!   the single-client baseline's by ≥ 1.3× at equal-or-lower average
//!   latency, and
//! * **parallel sweep** — running the independent load points on a worker
//!   pool is ≥ 2× faster in wall-clock than the serial runner, with
//!   bit-identical output points.
//!
//! The sweep also measures the **partitioned simulation core** itself: a
//! big-topology cell (256 clients in the full run) executed once on the
//! serial event loop and again on 2/4/8 cooperating event loops
//! (`SfsConfig::sim_threads`), every partitioned run asserted bit-identical
//! to the serial one and the wall clock recorded per thread count.  The
//! ≥ 2× speedup assert only arms in the full run on hosts that actually
//! offer ≥ 4 CPUs; a smoke cell (or a smaller host) records the measured
//! ratio as skipped instead of silently passing — or flakily failing on a
//! noisy shared runner.  `--sim-threads N` additionally runs every curve
//! point on N event loops (the points stay bit-identical by construction,
//! which the parity suites pin).
//!
//! Results are merged into `BENCH_writepath.json` under the `"sfs_scale"`
//! key (the other bench binaries preserve it when they rewrite the file).
//!
//! ```text
//! cargo run --release -p wg-bench --bin sfs_sweep                   # full sweep
//! cargo run --release -p wg-bench --bin sfs_sweep -- --smoke --clients 4 --shards 4 --spindles 6 --overlap
//! cargo run --release -p wg-bench --bin sfs_sweep -- --smoke --sim-threads 2 --clients 8 --shards 4
//! cargo run --release -p wg-bench --bin sfs_sweep -- --clients 8 --lans --threads 8
//! cargo run --release -p wg-bench --bin sfs_sweep -- --out other.json
//! ```

use std::time::Instant;

use wg_bench::report::upsert_object;
use wg_server::WritePolicy;
use wg_workload::results::json;
use wg_workload::{SfsConfig, SfsRunStats, SfsSweep};

/// Offered loads of the full sweep: the figure range plus enough headroom to
/// find the scaled configuration's knee.
const FULL_LOADS: [f64; 15] = [
    200.0, 400.0, 600.0, 800.0, 1000.0, 1200.0, 1400.0, 1600.0, 1800.0, 2000.0, 2400.0, 2800.0,
    3200.0, 4000.0, 4800.0,
];

/// One measured curve: per-point stats plus the sweep's wall clocks.
struct Curve {
    config: SfsConfig,
    stats: Vec<SfsRunStats>,
    serial_wall_ms: f64,
    parallel_wall_ms: f64,
    threads: usize,
}

impl Curve {
    /// The peak point: highest achieved ops/sec over the curve.
    fn peak(&self) -> &SfsRunStats {
        self.stats
            .iter()
            .max_by(|a, b| {
                a.point
                    .achieved_ops_per_sec
                    .total_cmp(&b.point.achieved_ops_per_sec)
            })
            .expect("curve has points")
    }

    fn parallel_speedup(&self) -> f64 {
        self.serial_wall_ms / self.parallel_wall_ms.max(1e-9)
    }

    fn to_json(&self) -> String {
        let points: Vec<String> = self.stats.iter().map(|s| s.to_json()).collect();
        let peak = self.peak();
        json::object(&[
            ("clients", self.config.clients.to_string()),
            ("shards", self.config.shards.to_string()),
            ("cores", self.config.cores.to_string()),
            ("spindles", self.config.spindles.to_string()),
            ("io_overlap", self.config.io_overlap.to_string()),
            ("per_client_lans", self.config.per_client_lans.to_string()),
            ("inode_groups", self.config.inode_groups.to_string()),
            ("read_caching", self.config.read_caching.to_string()),
            (
                "duration_secs",
                json::number(self.config.duration.as_secs_f64()),
            ),
            (
                "peak_achieved_ops_per_sec",
                json::number(peak.point.achieved_ops_per_sec),
            ),
            (
                "peak_avg_latency_ms",
                json::number(peak.point.avg_latency_ms),
            ),
            ("serial_wall_ms", json::number(self.serial_wall_ms)),
            ("parallel_wall_ms", json::number(self.parallel_wall_ms)),
            ("threads", self.threads.to_string()),
            ("sim_threads", self.config.sim_threads.to_string()),
            ("host_parallelism", host_parallelism().to_string()),
            ("parallel_speedup", json::number(self.parallel_speedup())),
            ("points", json::array(&points)),
        ])
    }
}

/// CPUs the host actually offers the process (1 when unknown).
fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run one curve: a timed serial pass collecting health counters, then a
/// timed parallel pass that must reproduce the points bit-identically.
fn run_curve(label: &str, config: SfsConfig, loads: &[f64], threads: usize) -> Curve {
    let sweep = SfsSweep::new(config.clone());
    let serial_start = Instant::now();
    let stats = sweep.run_stats(loads);
    let serial_wall_ms = serial_start.elapsed().as_secs_f64() * 1e3;
    let parallel_start = Instant::now();
    let parallel = sweep.run_parallel(loads, threads);
    let parallel_wall_ms = parallel_start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(parallel.len(), stats.len());
    for (serial, parallel) in stats.iter().zip(parallel.iter()) {
        assert!(
            serial.point.achieved_ops_per_sec == parallel.achieved_ops_per_sec
                && serial.point.avg_latency_ms == parallel.avg_latency_ms
                && serial.point.server_cpu_percent == parallel.server_cpu_percent,
            "{label}: parallel sweep diverged from serial at offered {} ops/s",
            serial.point.offered_ops_per_sec
        );
    }
    for s in &stats {
        assert_eq!(
            s.evicted_in_progress, 0,
            "{label} @ {} ops/s: dupcache evicted an InProgress entry: a \
             deferred gathered-write reply could have been orphaned (§6.9)",
            s.point.offered_ops_per_sec
        );
        assert_eq!(
            s.materializations, 0,
            "{label} @ {} ops/s: the zero-copy datapath materialised a payload",
            s.point.offered_ops_per_sec
        );
        assert_eq!(
            s.clamped_past, 0,
            "{label} @ {} ops/s: an event was scheduled into the past and \
             silently clamped",
            s.point.offered_ops_per_sec
        );
        println!(
            "{label:<9} offered {:>6.0}  achieved {:>7.1} ops/s  latency {:>9.2} ms  \
             cpu {:>5.1}%  fairness {:.3}  mints {}",
            s.point.offered_ops_per_sec,
            s.point.achieved_ops_per_sec,
            s.point.avg_latency_ms,
            s.point.server_cpu_percent,
            s.fairness,
            s.name_mints,
        );
    }
    println!(
        "{label:<9} sweep wall: serial {serial_wall_ms:.1} ms, parallel {parallel_wall_ms:.1} ms \
         on {threads} threads ({:.2}x)",
        serial_wall_ms / parallel_wall_ms.max(1e-9)
    );
    Curve {
        config,
        stats,
        serial_wall_ms,
        parallel_wall_ms,
        threads,
    }
}

/// The big-topology partitioned-core cell: one scaled configuration run on
/// the serial event loop and then on each of `thread_counts` cooperating
/// event loops, every partitioned run asserted bit-identical to the serial
/// one, with the wall clock recorded per thread count.
///
/// The ≥ 2× speedup assert is only armed when `assert_speedup` is set (the
/// full run) *and* the host offers ≥ 4 CPUs; otherwise the cell records the
/// assert as skipped, with the measured ratio — never as passed.  A smoke
/// cell is too small to measure wall clock reliably on a shared runner, so
/// it always records instead of asserting.
fn run_parallel_core_cell(
    clients: usize,
    secs: u64,
    load: f64,
    thread_counts: &[usize],
    assert_speedup: bool,
) -> String {
    let mut config = SfsConfig::scaled(load, WritePolicy::Gathering, clients);
    config.duration = wg_simcore::Duration::from_secs(secs);

    let serial_start = Instant::now();
    let serial = SfsSweep::new(config.clone())
        .run_stats(&[load])
        .pop()
        .expect("one point");
    let serial_wall_ms = serial_start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(serial.clamped_past, 0, "serial big-topology run clamped");
    println!(
        "parallel_core: {clients} clients, {secs}s @ {load:.0} ops/s — serial \
         {serial_wall_ms:.1} ms, achieved {:.1} ops/s",
        serial.point.achieved_ops_per_sec
    );

    let mut runs: Vec<String> = Vec::new();
    let mut best_speedup = 0.0f64;
    for &n in thread_counts {
        let start = Instant::now();
        let par = SfsSweep::new(config.clone().with_sim_threads(n))
            .run_stats(&[load])
            .pop()
            .expect("one point");
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        // Bit-identity of the partitioned run: the non-negotiable invariant.
        assert!(
            par.point.achieved_ops_per_sec == serial.point.achieved_ops_per_sec
                && par.point.avg_latency_ms == serial.point.avg_latency_ms
                && par.point.server_cpu_percent == serial.point.server_cpu_percent,
            "partitioned run on {n} event loops diverged from serial"
        );
        assert_eq!(par.per_client_achieved_ops, serial.per_client_achieved_ops);
        assert_eq!(par.issued, serial.issued);
        assert_eq!(par.completed, serial.completed);
        assert_eq!(par.retransmissions, serial.retransmissions);
        assert_eq!(par.gave_up, serial.gave_up);
        assert_eq!(par.name_mints, serial.name_mints);
        assert_eq!(par.evicted_in_progress, 0);
        assert_eq!(par.materializations, 0);
        assert_eq!(par.clamped_past, 0, "partitioned run clamped an event");
        let speedup = serial_wall_ms / wall_ms.max(1e-9);
        best_speedup = best_speedup.max(speedup);
        println!(
            "parallel_core: sim_threads {n} — {wall_ms:.1} ms ({speedup:.2}x), \
             bit-identical to serial"
        );
        runs.push(json::object(&[
            ("sim_threads", n.to_string()),
            ("wall_ms", json::number(wall_ms)),
            ("speedup_vs_serial", json::number(speedup)),
        ]));
    }

    let host = host_parallelism();
    let speedup_assert = if host < 4 {
        println!(
            "parallel_core: host offers {host} CPU(s); recording the wall \
             clocks without asserting the >=2x speedup"
        );
        format!("skipped: host offers {host} CPU(s)")
    } else if !assert_speedup {
        println!(
            "parallel_core: smoke cell; recording {best_speedup:.2}x without \
             asserting the >=2x speedup"
        );
        format!("skipped: smoke cell ({best_speedup:.2}x)")
    } else {
        assert!(
            best_speedup >= 2.0,
            "partitioned big-topology speedup {best_speedup:.2}x < 2x on a \
             {host}-CPU host"
        );
        "passed".to_string()
    };
    json::object(&[
        ("clients", clients.to_string()),
        ("duration_secs", secs.to_string()),
        ("offered_ops_per_sec", json::number(load)),
        (
            "achieved_ops_per_sec",
            json::number(serial.point.achieved_ops_per_sec),
        ),
        ("host_parallelism", host.to_string()),
        ("serial_wall_ms", json::number(serial_wall_ms)),
        ("runs", json::array(&runs)),
        ("best_speedup", json::number(best_speedup)),
        ("speedup_assert", json::string(&speedup_assert)),
    ])
}

fn parse_list(s: &str) -> Vec<f64> {
    s.split(',')
        .map(|v| v.trim().parse().expect("comma-separated numbers"))
        .collect()
}

fn main() {
    let mut out_path = "BENCH_writepath.json".to_string();
    // Flag defaults come from the one canonical definition of the scaled
    // stack (`SfsConfig::scaled`, also what tests/sfs_scale.rs measures) so
    // the recorded "current" curve cannot drift from it.
    let scaled_defaults = SfsConfig::scaled(0.0, WritePolicy::Gathering, 4);
    let mut clients = scaled_defaults.clients;
    let mut shards = scaled_defaults.shards;
    let mut cores = scaled_defaults.cores;
    let mut spindles = scaled_defaults.spindles;
    let mut overlap = scaled_defaults.io_overlap;
    let mut lans = scaled_defaults.per_client_lans;
    let mut inode_groups = scaled_defaults.inode_groups;
    let mut read_caching = scaled_defaults.read_caching;
    let mut threads = 4usize;
    let mut sim_threads = scaled_defaults.sim_threads;
    let mut secs: Option<u64> = None;
    let mut loads: Option<Vec<f64>> = None;
    let mut smoke = false;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => out_path = iter.next().expect("--out needs a path"),
            "--smoke" => smoke = true,
            "--clients" => {
                clients = iter
                    .next()
                    .expect("--clients needs a count")
                    .parse()
                    .expect("--clients needs a number");
            }
            "--shards" => {
                shards = iter
                    .next()
                    .expect("--shards needs a count")
                    .parse()
                    .expect("--shards needs a number");
            }
            "--cores" => {
                cores = iter
                    .next()
                    .expect("--cores needs a count")
                    .parse()
                    .expect("--cores needs a number");
            }
            "--spindles" => {
                spindles = iter
                    .next()
                    .expect("--spindles needs a count")
                    .parse()
                    .expect("--spindles needs a number");
            }
            "--inode-groups" => {
                inode_groups = iter
                    .next()
                    .expect("--inode-groups needs a count")
                    .parse()
                    .expect("--inode-groups needs a number");
            }
            "--threads" => {
                threads = iter
                    .next()
                    .expect("--threads needs a count")
                    .parse()
                    .expect("--threads needs a number");
            }
            "--sim-threads" => {
                sim_threads = iter
                    .next()
                    .expect("--sim-threads needs a count")
                    .parse()
                    .expect("--sim-threads needs a number");
            }
            "--secs" => {
                secs = Some(
                    iter.next()
                        .expect("--secs needs a count")
                        .parse()
                        .expect("--secs needs a number"),
                );
            }
            "--loads" => {
                loads = Some(parse_list(&iter.next().expect("--loads needs a list")));
            }
            // The scaled topology is the default; the bare flags exist so CI
            // invocations can spell the configuration out, and the --no-*
            // forms give ablations a way to switch pieces off.
            "--overlap" => overlap = true,
            "--no-overlap" => overlap = false,
            "--lans" => lans = true,
            "--no-lans" => lans = false,
            "--read-caching" => read_caching = true,
            "--no-read-caching" => read_caching = false,
            other => panic!(
                "unknown argument {other}; use --smoke, --out PATH, --clients N, \
                 --shards N, --cores N, --spindles N, --inode-groups N, \
                 --threads N, --sim-threads N, --secs N, --loads A,B,C, \
                 --overlap/--no-overlap, --lans/--no-lans, \
                 --read-caching/--no-read-caching"
            ),
        }
    }

    // Smoke shortens the sweep, but an explicit --secs/--loads always wins
    // regardless of where it sits on the command line.
    let secs = secs.unwrap_or(if smoke { 3 } else { 20 });
    let loads = loads.unwrap_or_else(|| {
        if smoke {
            vec![300.0, 900.0]
        } else {
            FULL_LOADS.to_vec()
        }
    });
    let duration = wg_simcore::Duration::from_secs(secs);
    let mut baseline_config =
        SfsConfig::figure2(0.0, WritePolicy::Gathering).with_sim_threads(sim_threads);
    baseline_config.duration = duration;
    let mut current_config = SfsConfig::scaled(0.0, WritePolicy::Gathering, clients)
        .with_shards(shards)
        .with_cores(cores)
        .with_spindles(spindles)
        .with_io_overlap(overlap)
        .with_per_client_lans(lans)
        .with_inode_groups(inode_groups)
        .with_read_caching(read_caching)
        .with_sim_threads(sim_threads);
    current_config.duration = duration;

    let baseline = run_curve("baseline", baseline_config, &loads, threads);
    let current = run_curve("current", current_config, &loads, threads);

    let base_peak = baseline.peak();
    let cur_peak = current.peak();
    let peak_ratio =
        cur_peak.point.achieved_ops_per_sec / base_peak.point.achieved_ops_per_sec.max(1e-9);
    println!(
        "knee shift: baseline peak {:.1} ops/s @ {:.1} ms -> current peak {:.1} ops/s @ {:.1} ms \
         ({peak_ratio:.2}x)",
        base_peak.point.achieved_ops_per_sec,
        base_peak.point.avg_latency_ms,
        cur_peak.point.achieved_ops_per_sec,
        cur_peak.point.avg_latency_ms,
    );
    if !smoke {
        // The headline asserts only make sense at full duration and span.
        assert!(
            peak_ratio >= 1.3,
            "the scaled configuration's knee did not shift: {peak_ratio:.2}x < 1.3x"
        );
        assert!(
            cur_peak.point.avg_latency_ms <= base_peak.point.avg_latency_ms,
            "the scaled peak pays more latency than the baseline knee: {:.1} ms > {:.1} ms",
            cur_peak.point.avg_latency_ms,
            base_peak.point.avg_latency_ms
        );
        // The bit-identity of parallel vs serial points is asserted in every
        // run (see `run_curve`); the wall-clock win can only exist where the
        // host actually has cores to run the workers on.
        let host = host_parallelism();
        if loads.len() >= 8 && threads >= 4 && host >= 4 {
            let speedup = current.parallel_speedup();
            assert!(
                speedup >= 2.0,
                "parallel sweep speedup {speedup:.2}x < 2x on {threads} threads \
                 over {} points",
                loads.len()
            );
        } else if host < 4 {
            println!(
                "note: host offers {host} CPU(s); recording the parallel wall \
                 clock without asserting the >=2x speedup"
            );
        }
    }

    // The partitioned-core cell: big topology in the full run, scaled down
    // in smoke so CI still exercises the serial-vs-partitioned race.
    let parallel_core = if smoke {
        run_parallel_core_cell(32, 2, 600.0, &[2, 4], false)
    } else {
        run_parallel_core_cell(256, 5, 2000.0, &[2, 4, 8], true)
    };

    let sfs_scale = json::object(&[
        ("baseline", baseline.to_json()),
        ("current", current.to_json()),
        ("parallel_core", parallel_core),
        (
            "knee_shift",
            json::object(&[
                (
                    "baseline_peak_ops_per_sec",
                    json::number(base_peak.point.achieved_ops_per_sec),
                ),
                (
                    "current_peak_ops_per_sec",
                    json::number(cur_peak.point.achieved_ops_per_sec),
                ),
                ("peak_ratio", json::number(peak_ratio)),
                (
                    "baseline_peak_latency_ms",
                    json::number(base_peak.point.avg_latency_ms),
                ),
                (
                    "current_peak_latency_ms",
                    json::number(cur_peak.point.avg_latency_ms),
                ),
            ]),
        ),
    ]);
    let previous = std::fs::read_to_string(&out_path).unwrap_or_default();
    let report = upsert_object(&previous, "sfs_scale", &sfs_scale);
    std::fs::write(&out_path, report).expect("write report");
    println!("wrote {out_path}");
}
