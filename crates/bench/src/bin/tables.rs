//! Regenerate Tables 1–6 of the paper.
//!
//! ```text
//! cargo run --release -p wg-bench --bin tables                # all six tables
//! cargo run --release -p wg-bench --bin tables -- --table 3   # just Table 3
//! cargo run --release -p wg-bench --bin tables -- --file-mb 2 # smaller copy
//! cargo run --release -p wg-bench --bin tables -- --json      # machine readable
//! ```

use wg_bench::{run_table, table_spec, TABLES};

struct Args {
    table: Option<u8>,
    file_mb: u64,
    json: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        table: None,
        file_mb: 10,
        json: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--table" => {
                args.table = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .or_else(|| panic!("--table needs a number 1-6"));
            }
            "--file-mb" => {
                args.file_mb = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--file-mb needs a number"));
            }
            "--json" => args.json = true,
            other => panic!("unknown argument {other}; use --table N, --file-mb M, --json"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let file_size = args.file_mb * 1024 * 1024;
    let specs: Vec<_> = match args.table {
        Some(n) => {
            vec![*table_spec(n).unwrap_or_else(|| panic!("the paper has tables 1-6, not {n}"))]
        }
        None => TABLES.to_vec(),
    };
    for spec in specs {
        let output = run_table(&spec, file_size);
        if args.json {
            use wg_workload::results::json;
            let cells = |results: &[wg_workload::FileCopyResult]| {
                json::array(&results.iter().map(|r| r.to_json()).collect::<Vec<_>>())
            };
            let j = json::object(&[
                ("table", spec.number.to_string()),
                ("caption", json::string(spec.caption)),
                ("without", cells(&output.without)),
                ("with", cells(&output.with)),
            ]);
            println!("{j}");
        } else {
            println!("{}", output.render());
        }
    }
}
