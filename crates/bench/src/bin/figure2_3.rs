//! Regenerate Figures 2 and 3: SPEC SFS 1.0-style throughput vs average
//! latency, with and without write gathering, without (Figure 2) and with
//! (Figure 3) Prestoserve.
//!
//! ```text
//! cargo run --release -p wg-bench --bin figure2_3                 # both figures
//! cargo run --release -p wg-bench --bin figure2_3 -- --figure 2
//! cargo run --release -p wg-bench --bin figure2_3 -- --secs 30    # longer runs
//! ```

use wg_bench::{render_figure, run_figure};
use wg_server::WritePolicy;

fn main() {
    let mut figure: Option<u8> = None;
    let mut secs: u64 = 15;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--figure" => figure = iter.next().and_then(|v| v.parse().ok()),
            "--secs" => secs = iter.next().and_then(|v| v.parse().ok()).unwrap_or(15),
            other => panic!("unknown argument {other}; use --figure 2|3, --secs N"),
        }
    }
    let figures: Vec<u8> = match figure {
        Some(f) => vec![f],
        None => vec![2, 3],
    };
    for f in figures {
        let without = run_figure(f, WritePolicy::Standard, secs);
        let with = run_figure(f, WritePolicy::Gathering, secs);
        println!("{}", render_figure(f, &without, &with));
        // Summarise the two headline numbers the paper quotes for Figure 2:
        // the capacity gain and the latency reduction.
        let cap_without = without
            .iter()
            .map(|p| p.achieved_ops_per_sec)
            .fold(0.0f64, f64::max);
        let cap_with = with
            .iter()
            .map(|p| p.achieved_ops_per_sec)
            .fold(0.0f64, f64::max);
        let lat_without: f64 =
            without.iter().map(|p| p.avg_latency_ms).sum::<f64>() / without.len() as f64;
        let lat_with: f64 = with.iter().map(|p| p.avg_latency_ms).sum::<f64>() / with.len() as f64;
        println!(
            "capacity: {:.0} -> {:.0} ops/s ({:+.1}%), mean latency over the sweep: {:.2} -> {:.2} ms ({:+.1}%)\n",
            cap_without,
            cap_with,
            (cap_with / cap_without - 1.0) * 100.0,
            lat_without,
            lat_with,
            (lat_with / lat_without - 1.0) * 100.0,
        );
    }
}
