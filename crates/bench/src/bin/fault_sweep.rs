//! Chaos sweep: the SFS workload and the file copy run under injected
//! faults — periodic server crashes with NVRAM-replay reboots, datagram
//! loss, and an NVRAM battery failure — with the recovery oracle asserted
//! on every cell.
//!
//! The oracle is the headline robustness claim: after every crash the
//! server walks the write data it acknowledged and counts any byte that was
//! still volatile when it died.  For every policy that honours the NFS
//! stable-storage rule (standard, gathering, Prestoserve) that count must
//! be **zero**, no matter what the fault schedule did; only the
//! deliberately unsafe `DangerousAsync` mode is allowed a positive count,
//! and the sweep records it rather than hiding it.
//!
//! Every cell also re-asserts the standing health invariants: zero
//! `InProgress` duplicate-cache evictions (§6.9) and zero payload
//! materialisations (the zero-copy datapath), both of which must survive
//! crash/reboot and retransmission storms.
//!
//! Results are merged into `BENCH_writepath.json` under the `"faults"` key;
//! the other bench binaries preserve it when they rewrite the file.
//!
//! ```text
//! cargo run --release -p wg-bench --bin fault_sweep              # full grid
//! cargo run --release -p wg-bench --bin fault_sweep -- --smoke
//! cargo run --release -p wg-bench --bin fault_sweep -- --out other.json
//! ```

use wg_bench::report::{stamp_cell, upsert_object};
use wg_server::{StabilityMode, WritePolicy};
use wg_simcore::{Duration, FaultKind, FaultPlan, SimTime};
use wg_workload::results::json;
use wg_workload::sfs::SfsSystem;
use wg_workload::{ExperimentConfig, FileCopySystem, NetworkKind, SfsConfig};

/// One SFS chaos cell: the workload under a crash schedule and a steady
/// loss rate, with the oracle and health counters checked.
#[allow(clippy::too_many_arguments)]
fn run_sfs_cell(
    label: &str,
    presto: bool,
    load: f64,
    secs: u64,
    crash_interval_secs: f64,
    loss: f64,
    battery_failure: bool,
) -> String {
    let mut config = if presto {
        SfsConfig::figure3(load, WritePolicy::Gathering)
    } else {
        SfsConfig::figure2(load, WritePolicy::Gathering)
    };
    config.duration = Duration::from_secs(secs);
    let mut plan = if crash_interval_secs > 0.0 {
        FaultPlan::crash_every(
            Duration::from_secs_f64(crash_interval_secs),
            config.duration,
        )
    } else {
        FaultPlan::new()
    };
    if battery_failure {
        // The battery dies a third of the way in and is repaired a third
        // later: the cell measures write-through degradation and recovery.
        plan = plan.at(
            SimTime::ZERO + Duration::from_secs(secs / 3),
            FaultKind::BatteryFailure {
                repair_after: Duration::from_secs(secs / 3),
            },
        );
    }
    let config = config.with_fault_plan(plan).with_loss(loss);
    let before = wg_nfsproto::payload::materialize_count();
    let mut system = SfsSystem::new(config);
    let point = system.run();
    let materializations = wg_nfsproto::payload::materialize_count() - before;
    let (issued, completed) = system.counts();
    let gave_up = system.gave_up();
    let stats = system.server().stats();
    let evicted = system.server().dupcache_evicted_in_progress();

    // The recovery oracle and the standing health invariants, per cell.
    assert_eq!(
        stats.lost_acked_bytes, 0,
        "{label}: a safe policy lost acknowledged write data across a crash"
    );
    assert_eq!(
        evicted, 0,
        "{label}: dupcache evicted an InProgress entry (§6.9 hazard)"
    );
    assert_eq!(
        materializations, 0,
        "{label}: the zero-copy datapath materialised a payload"
    );
    assert_eq!(
        system.clamped_past(),
        0,
        "{label}: an event was scheduled into the past and silently clamped"
    );
    // With the fault layer armed, the client-side retry machinery drives
    // every issued call to a counted outcome.  (Unarmed cells legitimately
    // end with calls still queued at the cutoff.)
    if crash_interval_secs > 0.0 || loss > 0.0 {
        assert_eq!(
            issued,
            completed + gave_up,
            "{label}: an issued call neither completed nor was counted given up"
        );
    }

    println!(
        "{label:<26} achieved {:>7.1} ops/s  latency {:>8.2} ms  crashes {:>2}  \
         retrans {:>5}  gave_up {:>4}  dropped@boot {:>5}",
        point.achieved_ops_per_sec,
        point.avg_latency_ms,
        stats.crashes,
        system.retransmissions(),
        gave_up,
        stats.dropped_during_recovery,
    );
    let mut fields = vec![
        (
            "offered_ops_per_sec",
            json::number(point.offered_ops_per_sec),
        ),
        (
            "achieved_ops_per_sec",
            json::number(point.achieved_ops_per_sec),
        ),
        ("avg_latency_ms", json::number(point.avg_latency_ms)),
        ("crash_interval_secs", json::number(crash_interval_secs)),
        ("loss_rate", json::number(loss)),
        ("prestoserve", presto.to_string()),
        ("battery_failure", battery_failure.to_string()),
        ("crashes", stats.crashes.to_string()),
        ("battery_failures", stats.battery_failures.to_string()),
        ("lost_acked_bytes", stats.lost_acked_bytes.to_string()),
        (
            "discarded_dirty_bytes",
            stats.discarded_dirty_bytes.to_string(),
        ),
        (
            "dropped_during_recovery",
            stats.dropped_during_recovery.to_string(),
        ),
        ("issued", issued.to_string()),
        ("completed", completed.to_string()),
        ("retransmissions", system.retransmissions().to_string()),
        ("gave_up", gave_up.to_string()),
        ("evicted_in_progress", evicted.to_string()),
        ("materializations", materializations.to_string()),
    ];
    stamp_cell(&mut fields, system.clamped_past(), &system.sched_stats());
    json::object(&fields)
}

/// The battery-failure × unstable-mode cell: the Prestoserve configuration
/// speaking `WRITE(UNSTABLE)` + `COMMIT` over the unified cache while the
/// NVRAM battery dies mid-run.  A dead battery leaves unstable data with no
/// stable destination, so the server must force `FILE_SYNC` semantics for
/// the outage — counted in `forced_file_sync` — rather than silently acking
/// unstable writes it could lose.  The oracle still demands zero lost
/// acknowledged bytes and zero bytes left uncommitted after the quiesce.
fn run_unstable_battery_cell(label: &str, load: f64, secs: u64) -> String {
    let mut config = SfsConfig::figure3(load, WritePolicy::Gathering);
    config.duration = Duration::from_secs(secs);
    let plan = FaultPlan::new().at(
        SimTime::ZERO + Duration::from_secs(secs / 3),
        FaultKind::BatteryFailure {
            repair_after: Duration::from_secs(secs / 3),
        },
    );
    let config = config
        .with_fault_plan(plan)
        .with_unified_cache(4096)
        .with_stability(StabilityMode::Unstable);
    let before = wg_nfsproto::payload::materialize_count();
    let mut system = SfsSystem::new(config);
    let point = system.run();
    let materializations = wg_nfsproto::payload::materialize_count() - before;
    system.quiesce_server();
    let evicted = system.server().dupcache_evicted_in_progress();
    let uncommitted = system.server().uncommitted_bytes();
    let stats = system.server().stats();

    assert!(
        stats.battery_failures > 0,
        "{label}: the battery-failure fault never fired"
    );
    assert!(
        stats.forced_file_sync > 0,
        "{label}: a dead battery must downgrade unstable writes to FILE_SYNC, \
         not ack them with no stable destination"
    );
    assert!(
        stats.unstable_writes > 0 && stats.commits > 0,
        "{label}: the healthy-battery phases never spoke WRITE(UNSTABLE)+COMMIT"
    );
    assert_eq!(
        stats.lost_acked_bytes, 0,
        "{label}: acknowledged write data was lost across the battery outage"
    );
    assert_eq!(
        uncommitted, 0,
        "{label}: the quiesce left acknowledged-unstable bytes uncommitted"
    );
    assert_eq!(
        evicted, 0,
        "{label}: dupcache evicted an InProgress entry (§6.9 hazard)"
    );
    assert_eq!(
        materializations, 0,
        "{label}: the zero-copy datapath materialised a payload"
    );
    assert_eq!(
        system.clamped_past(),
        0,
        "{label}: an event was scheduled into the past and silently clamped"
    );

    println!(
        "{label:<26} achieved {:>7.1} ops/s  latency {:>8.2} ms  unstable {:>6}  \
         forced_sync {:>5}  commits {:>4}  lost_acked {}",
        point.achieved_ops_per_sec,
        point.avg_latency_ms,
        stats.unstable_writes,
        stats.forced_file_sync,
        stats.commits,
        stats.lost_acked_bytes,
    );
    let mut fields = vec![
        (
            "offered_ops_per_sec",
            json::number(point.offered_ops_per_sec),
        ),
        (
            "achieved_ops_per_sec",
            json::number(point.achieved_ops_per_sec),
        ),
        ("avg_latency_ms", json::number(point.avg_latency_ms)),
        ("prestoserve", "true".to_string()),
        ("stability", json::string("unstable")),
        ("battery_failures", stats.battery_failures.to_string()),
        ("unstable_writes", stats.unstable_writes.to_string()),
        ("forced_file_sync", stats.forced_file_sync.to_string()),
        ("commits", stats.commits.to_string()),
        ("lost_acked_bytes", stats.lost_acked_bytes.to_string()),
        ("lost_unstable_bytes", stats.lost_unstable_bytes.to_string()),
        ("uncommitted_after_quiesce", uncommitted.to_string()),
        ("evicted_in_progress", evicted.to_string()),
        ("materializations", materializations.to_string()),
    ];
    stamp_cell(&mut fields, system.clamped_past(), &system.sched_stats());
    json::object(&fields)
}

/// One file-copy chaos cell: a mid-copy crash under a given policy, the
/// client retransmitting through the reboot.  Safe policies must finish the
/// copy with zero acknowledged loss; `DangerousAsync` reports its counted
/// losses instead of hiding them.
fn run_copy_cell(label: &str, policy: WritePolicy, presto: bool, file_mb: u64) -> String {
    let crash_at = SimTime::ZERO + Duration::from_millis(700);
    let plan = FaultPlan::new().at(crash_at, FaultKind::ServerCrash);
    let mut system = FileCopySystem::new(
        ExperimentConfig::new(NetworkKind::Fddi, 8, policy)
            .with_presto(presto)
            .with_file_size(file_mb * 1024 * 1024)
            .with_fault_plan(plan),
    );
    let result = system.run();
    let stats = system.server().stats();
    assert_eq!(
        system.clamped_past(),
        0,
        "{label}: an event was scheduled into the past and silently clamped"
    );
    let safe = policy != WritePolicy::DangerousAsync;
    if safe {
        assert_eq!(
            stats.lost_acked_bytes, 0,
            "{label}: a safe policy lost acknowledged write data"
        );
        assert_eq!(
            system.lost_acked_bytes_on_disk(),
            0,
            "{label}: acknowledged data missing from the recovered disk"
        );
        assert!(
            result.completed,
            "{label}: the copy did not survive the crash"
        );
    }
    println!(
        "{label:<26} {:>7.0} KB/s  crashes {:>2}  retrans {:>4}  gave_up {:>3}  \
         lost_acked {:>8} B  completed {}",
        result.client_write_kb_per_sec,
        stats.crashes,
        result.retransmissions,
        result.gave_up,
        stats.lost_acked_bytes,
        result.completed,
    );
    let mut fields = vec![
        (
            "client_write_kb_per_sec",
            json::number(result.client_write_kb_per_sec),
        ),
        ("file_mb", file_mb.to_string()),
        ("prestoserve", presto.to_string()),
        ("safe_policy", safe.to_string()),
        ("crashes", stats.crashes.to_string()),
        ("lost_acked_bytes", stats.lost_acked_bytes.to_string()),
        (
            "discarded_dirty_bytes",
            stats.discarded_dirty_bytes.to_string(),
        ),
        ("retransmissions", result.retransmissions.to_string()),
        ("gave_up", result.gave_up.to_string()),
        ("completed", result.completed.to_string()),
        (
            "evicted_in_progress",
            system.server().dupcache_evicted_in_progress().to_string(),
        ),
    ];
    stamp_cell(&mut fields, system.clamped_past(), &system.sched_stats());
    json::object(&fields)
}

fn main() {
    let mut out_path = "BENCH_writepath.json".to_string();
    let mut smoke = false;
    let mut secs: Option<u64> = None;
    let mut load: Option<f64> = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => out_path = iter.next().expect("--out needs a path"),
            "--smoke" => smoke = true,
            "--secs" => {
                secs = Some(
                    iter.next()
                        .expect("--secs needs a count")
                        .parse()
                        .expect("--secs needs a number"),
                );
            }
            "--load" => {
                load = Some(
                    iter.next()
                        .expect("--load needs a value")
                        .parse()
                        .expect("--load needs a number"),
                );
            }
            other => {
                panic!("unknown argument {other}; use --smoke, --out PATH, --secs N, --load N")
            }
        }
    }
    let secs = secs.unwrap_or(if smoke { 6 } else { 20 });
    let load = load.unwrap_or(if smoke { 300.0 } else { 800.0 });
    let (crash_intervals, loss_rates): (&[f64], &[f64]) = if smoke {
        (&[2.0], &[0.0, 0.02])
    } else {
        (&[2.0, 5.0, 10.0], &[0.0, 0.01, 0.05])
    };

    // The degradation grid: crash interval x loss rate over the SFS
    // gathering workload.
    let mut cells: Vec<(String, String)> = Vec::new();
    for &interval in crash_intervals {
        for &loss in loss_rates {
            let name = format!("crash{interval}s_loss{loss}");
            let cell = run_sfs_cell(&name, false, load, secs, interval, loss, false);
            cells.push((name, cell));
        }
    }
    // A fault-free reference cell at the same load, so the grid reads as
    // "degradation relative to this".
    let reference = run_sfs_cell("reference_no_fault", false, load, secs, 0.0, 0.0, false);
    // Battery failure mid-run on the Prestoserve configuration: NVRAM
    // drains, degrades to write-through, recovers on repair.
    let battery = run_sfs_cell("presto_battery_failure", true, load, secs, 0.0, 0.0, true);
    // The same outage with the v3 unstable-write protocol armed: the dead
    // battery must force FILE_SYNC semantics, never ack unstable data with
    // no stable destination.
    let battery_unstable = run_unstable_battery_cell("presto_battery_unstable", load, secs);
    // Mid-copy crash under each policy: the copy survives on the safe
    // policies; the dangerous one's losses are counted, never hidden.
    let copy_standard = run_copy_cell("copy_crash_standard", WritePolicy::Standard, false, 2);
    let copy_gathering = run_copy_cell("copy_crash_gathering", WritePolicy::Gathering, false, 2);
    let copy_presto = run_copy_cell("copy_crash_presto", WritePolicy::Gathering, true, 2);
    let copy_dangerous = run_copy_cell(
        "copy_crash_dangerous",
        WritePolicy::DangerousAsync,
        false,
        2,
    );

    let grid_fields: Vec<(&str, String)> = cells
        .iter()
        .map(|(name, cell)| (name.as_str(), cell.clone()))
        .collect();
    let faults = json::object(&[
        ("smoke", smoke.to_string()),
        ("secs", secs.to_string()),
        ("offered_ops_per_sec", json::number(load)),
        ("grid", json::object(&grid_fields)),
        ("reference_no_fault", reference),
        ("presto_battery_failure", battery),
        ("presto_battery_unstable", battery_unstable),
        ("copy_crash_standard", copy_standard),
        ("copy_crash_gathering", copy_gathering),
        ("copy_crash_presto", copy_presto),
        ("copy_crash_dangerous", copy_dangerous),
    ]);
    let previous = std::fs::read_to_string(&out_path).unwrap_or_default();
    let report = upsert_object(&previous, "faults", &faults);
    std::fs::write(&out_path, report).expect("write report");
    println!("wrote {out_path}");
}
