//! Multi-client scale-out sweep: clients × per-client file size — plus, since
//! the sharded-server and pipelined-storage PRs, shard-count, core-count,
//! spindle-count and I/O-overlap axes — up to a 1 GB aggregate.
//!
//! Each cell runs a [`wg_workload::MultiClientSystem`], verifies the data
//! landed correctly (every block carries its writer's salted fill byte),
//! asserts that no `InProgress` duplicate-cache entry was ever evicted (the
//! §6.9 orphaned-write hazard), asserts the zero-copy datapath never
//! materialised a payload, and records wall-clock plus the simulated
//! aggregate/fairness numbers and a per-spindle busy/queue-depth breakdown.
//! Cells running `--overlap` are raced against their serial twin (the same
//! configuration with the serial driver) and must never be slower — and, on
//! a striped device, must beat it outright: the one check a dead overlap
//! knob cannot pass.  The results are merged into `BENCH_writepath.json`
//! under the
//! `"scale"` key — cell by cell, so new-axis cells sit alongside the earlier
//! cells instead of replacing them.
//!
//! ```text
//! cargo run --release -p wg-bench --bin scale_sweep                 # full sweep
//! cargo run --release -p wg-bench --bin scale_sweep -- --smoke      # CI: 2 clients, small files
//! cargo run --release -p wg-bench --bin scale_sweep -- --shards 4 --cores 4 --lans
//! cargo run --release -p wg-bench --bin scale_sweep -- --spindles 3 --overlap
//! cargo run --release -p wg-bench --bin scale_sweep -- --out other.json
//! ```

use std::time::Instant;

use wg_bench::report::{extract_object, upsert_object};
use wg_disk::SpindleStats;
use wg_nfsproto::payload::materialize_count;
use wg_server::WritePolicy;
use wg_simcore::Duration;
use wg_workload::results::json;
use wg_workload::{MultiClientConfig, MultiClientSystem, NetworkKind};

/// One timed sweep cell.
struct ScaleCell {
    clients: usize,
    mb_per_client: u64,
    shards: usize,
    cores: usize,
    spindles: usize,
    overlap: bool,
    lans: bool,
    wall_ms: f64,
    events_processed: u64,
    sim_aggregate_kb_per_sec: f64,
    sim_fairness: f64,
    sim_elapsed_secs: f64,
    evicted_in_progress: u64,
    materializations: u64,
    /// Aggregate throughput of the identical configuration with the serial
    /// driver, run alongside every `--overlap` cell: the proof the pipeline
    /// actually overlaps (`None` for serial cells).
    serial_twin_kb_per_sec: Option<f64>,
    /// Per-spindle breakdown over the simulated elapsed span.
    spindles_detail: Vec<SpindleStats>,
}

impl ScaleCell {
    /// Cell key: the default configuration (1 shard, 1 core, 1 spindle,
    /// serial driver, shared medium) keeps the PR 2 names (`c4_mb256`) so
    /// trajectories line up; every non-default axis is part of the key
    /// (`_s4`, `_cr4`, `_sp3`, `_ov`, `_lan`) so sweeps over different
    /// topologies never overwrite each other's cells.
    fn name(&self) -> String {
        let mut name = format!("c{}_mb{}", self.clients, self.mb_per_client);
        if self.shards > 1 {
            name.push_str(&format!("_s{}", self.shards));
        }
        if self.cores > 1 {
            name.push_str(&format!("_cr{}", self.cores));
        }
        if self.spindles > 1 {
            name.push_str(&format!("_sp{}", self.spindles));
        }
        if self.overlap {
            name.push_str("_ov");
        }
        if self.lans {
            name.push_str("_lan");
        }
        name
    }

    /// Aggregate spindle busy seconds and the busiest single spindle's.
    fn busy_split(&self) -> (f64, f64) {
        let busys: Vec<f64> = self
            .spindles_detail
            .iter()
            .map(|s| s.stats.busy.busy_time().as_secs_f64())
            .collect();
        let total: f64 = busys.iter().sum();
        let max = busys.iter().copied().fold(0.0, f64::max);
        (total, max)
    }

    fn to_json(&self) -> (String, String) {
        let observed = Duration::from_secs_f64(self.sim_elapsed_secs.max(1e-9));
        let spindle_objs: Vec<String> = self
            .spindles_detail
            .iter()
            .map(|s| {
                json::object(&[
                    ("busy_percent", json::number(s.busy_percent(observed))),
                    ("transfers", s.stats.transfers.events().to_string()),
                    ("bytes", s.stats.transfers.bytes().to_string()),
                    ("max_queue_depth", s.max_queue_depth.to_string()),
                ])
            })
            .collect();
        (
            self.name(),
            json::object(&[
                ("clients", self.clients.to_string()),
                ("mb_per_client", self.mb_per_client.to_string()),
                ("shards", self.shards.to_string()),
                ("cores", self.cores.to_string()),
                ("spindles", self.spindles.to_string()),
                ("io_overlap", self.overlap.to_string()),
                ("per_client_lans", self.lans.to_string()),
                ("wall_ms", json::number(self.wall_ms)),
                ("events_processed", self.events_processed.to_string()),
                (
                    "sim_aggregate_kb_per_sec",
                    json::number(self.sim_aggregate_kb_per_sec),
                ),
                ("sim_fairness", json::number(self.sim_fairness)),
                ("sim_elapsed_secs", json::number(self.sim_elapsed_secs)),
                ("evicted_in_progress", self.evicted_in_progress.to_string()),
                ("materializations", self.materializations.to_string()),
                (
                    "serial_twin_kb_per_sec",
                    self.serial_twin_kb_per_sec
                        .map(json::number)
                        .unwrap_or_else(|| "null".to_string()),
                ),
                ("spindle_breakdown", json::array(&spindle_objs)),
            ]),
        )
    }
}

struct SweepAxes {
    shards: usize,
    cores: usize,
    spindles: usize,
    overlap: bool,
    lans: bool,
}

fn run_cell(clients: usize, mb_per_client: u64, axes: &SweepAxes) -> ScaleCell {
    let build = |overlap: bool| {
        MultiClientSystem::new(
            MultiClientConfig::new(NetworkKind::Fddi, clients, 4, WritePolicy::Gathering)
                .with_bytes_per_client(mb_per_client * 1024 * 1024)
                .with_shards(axes.shards)
                .with_cores(axes.cores)
                .with_spindles(axes.spindles)
                .with_io_overlap(overlap)
                .with_per_client_lans(axes.lans),
        )
    };
    // An `--overlap` cell is raced against its serial twin: a fully serial
    // run also keeps every spindle of a stripe set busy, so only the
    // aggregate-throughput comparison proves the pipeline is actually
    // overlapping (see the assertion below).
    let serial_twin_kb_per_sec = axes.overlap.then(|| {
        let mut twin = build(false);
        let twin_result = twin.run();
        assert!(
            twin_result.completed,
            "{clients}x{mb_per_client}MB serial twin did not complete"
        );
        twin_result.aggregate_kb_per_sec
    });
    let start = Instant::now();
    let materialized_before = materialize_count();
    let mut system = build(axes.overlap);
    let result = system.run();
    let wall = start.elapsed();
    assert!(
        result.completed,
        "{clients}x{mb_per_client}MB cell did not complete"
    );
    system
        .verify_on_disk()
        .expect("multi-client data integrity check failed");
    let evicted = system.server().dupcache_evicted_in_progress();
    assert_eq!(
        evicted, 0,
        "dupcache evicted an InProgress entry: a deferred gathered-write \
         reply could have been orphaned (§6.9)"
    );
    let materializations = materialize_count() - materialized_before;
    assert_eq!(
        materializations, 0,
        "the zero-copy datapath materialised a payload"
    );
    let cell = ScaleCell {
        clients,
        mb_per_client,
        shards: axes.shards,
        cores: axes.cores,
        spindles: axes.spindles,
        overlap: axes.overlap,
        lans: axes.lans,
        wall_ms: wall.as_secs_f64() * 1e3,
        events_processed: system.events_processed(),
        sim_aggregate_kb_per_sec: result.aggregate_kb_per_sec,
        sim_fairness: result.fairness,
        sim_elapsed_secs: result.elapsed_secs,
        evicted_in_progress: evicted,
        materializations,
        serial_twin_kb_per_sec,
        spindles_detail: system.server().spindle_stats(),
    };
    if let Some(serial) = serial_twin_kb_per_sec {
        // Pipelining must never lose throughput, and on a striped device it
        // must win outright — a dead io_overlap knob fails this even though
        // stripe pieces would still spread busy time over every member.
        if axes.spindles > 1 {
            assert!(
                cell.sim_aggregate_kb_per_sec > serial,
                "pipelining lost its win: overlap {:.1} KB/s vs serial twin {serial:.1} KB/s",
                cell.sim_aggregate_kb_per_sec
            );
        } else {
            assert!(
                cell.sim_aggregate_kb_per_sec >= serial * 0.999,
                "pipelining slowed a single-spindle run: overlap {:.1} KB/s \
                 vs serial twin {serial:.1} KB/s",
                cell.sim_aggregate_kb_per_sec
            );
        }
    }
    cell
}

fn parse_list(s: &str) -> Vec<u64> {
    s.split(',')
        .map(|v| v.trim().parse().expect("comma-separated numbers"))
        .collect()
}

fn main() {
    let mut out_path = "BENCH_writepath.json".to_string();
    let mut clients: Vec<u64> = vec![1, 2, 4];
    let mut mb_per_client: Vec<u64> = vec![64, 256];
    let mut axes = SweepAxes {
        shards: 1,
        cores: 1,
        spindles: 1,
        overlap: false,
        lans: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => out_path = iter.next().expect("--out needs a path"),
            "--smoke" => {
                clients = vec![2];
                mb_per_client = vec![1];
            }
            "--clients" => {
                clients = parse_list(&iter.next().expect("--clients needs a list"));
            }
            "--mb-per-client" => {
                mb_per_client = parse_list(&iter.next().expect("--mb-per-client needs a list"));
            }
            "--shards" => {
                axes.shards = iter
                    .next()
                    .expect("--shards needs a count")
                    .parse()
                    .expect("--shards needs a number");
            }
            "--cores" => {
                axes.cores = iter
                    .next()
                    .expect("--cores needs a count")
                    .parse()
                    .expect("--cores needs a number");
            }
            "--spindles" => {
                axes.spindles = iter
                    .next()
                    .expect("--spindles needs a count")
                    .parse()
                    .expect("--spindles needs a number");
            }
            "--overlap" => axes.overlap = true,
            "--lans" => axes.lans = true,
            other => panic!(
                "unknown argument {other}; use --smoke, --out PATH, \
                 --clients A,B,C, --mb-per-client A,B,C, --shards N, \
                 --cores N, --spindles N, --overlap, --lans"
            ),
        }
    }

    let mut cells = Vec::new();
    for &c in &clients {
        for &mb in &mb_per_client {
            let aggregate_mb = c * mb;
            if aggregate_mb > 1024 {
                println!("skipping {c} clients x {mb} MB ({aggregate_mb} MB aggregate > 1 GB cap)");
                continue;
            }
            let cell = run_cell(c as usize, mb, &axes);
            let (total_busy, max_busy) = cell.busy_split();
            println!(
                "{:<22} {:>9.1} ms wall   {:>9} events   sim {:>8.0} KB/s aggregate   \
                 fairness {:.3}   {:>7.1} sim-secs   spindle busy {:.1}s/{:.1}s",
                cell.name(),
                cell.wall_ms,
                cell.events_processed,
                cell.sim_aggregate_kb_per_sec,
                cell.sim_fairness,
                cell.sim_elapsed_secs,
                max_busy,
                total_busy,
            );
            cells.push(cell);
        }
    }

    // Merge cell-by-cell into the existing "scale" object so cells from
    // earlier sweeps (other shard counts, other client axes) are preserved.
    let previous = std::fs::read_to_string(&out_path).unwrap_or_default();
    let mut scale = extract_object(&previous, "scale").unwrap_or_else(|| "{}".to_string());
    for cell in &cells {
        let (name, value) = cell.to_json();
        scale = upsert_object(&scale, &name, &value);
        scale = scale.trim_end().to_string();
    }
    let report = upsert_object(&previous, "scale", &scale);
    std::fs::write(&out_path, report).expect("write report");
    println!("wrote {out_path}");
}
