//! Multi-client scale-out sweep: clients × per-client file size — and, since
//! the sharded-server PR, a shard-count axis — up to a 1 GB aggregate.
//!
//! Each cell runs a [`wg_workload::MultiClientSystem`], verifies the data
//! landed correctly (every block carries its writer's salted fill byte),
//! asserts that no `InProgress` duplicate-cache entry was ever evicted (the
//! §6.9 orphaned-write hazard), and records wall-clock plus the simulated
//! aggregate/fairness numbers.  The results are merged into
//! `BENCH_writepath.json` under the `"scale"` key — cell by cell, so sharded
//! cells sit alongside the earlier shared-medium cells instead of replacing
//! them.
//!
//! ```text
//! cargo run --release -p wg-bench --bin scale_sweep                 # full sweep
//! cargo run --release -p wg-bench --bin scale_sweep -- --smoke      # CI: 2 clients, small files
//! cargo run --release -p wg-bench --bin scale_sweep -- --shards 4 --cores 4 --lans
//! cargo run --release -p wg-bench --bin scale_sweep -- --out other.json
//! ```

use std::time::Instant;

use wg_bench::report::{extract_object, upsert_object};
use wg_server::WritePolicy;
use wg_workload::results::json;
use wg_workload::{MultiClientConfig, MultiClientSystem, NetworkKind};

/// One timed sweep cell.
struct ScaleCell {
    clients: usize,
    mb_per_client: u64,
    shards: usize,
    cores: usize,
    lans: bool,
    wall_ms: f64,
    events_processed: u64,
    sim_aggregate_kb_per_sec: f64,
    sim_fairness: f64,
    sim_elapsed_secs: f64,
    evicted_in_progress: u64,
}

impl ScaleCell {
    /// Cell key: the default configuration (1 shard, 1 core, shared medium)
    /// keeps the PR 2 names (`c4_mb256`) so trajectories line up; every
    /// non-default axis is part of the key (`_s4`, `_cr4`, `_lan`) so sweeps
    /// over different topologies never overwrite each other's cells.
    fn name(&self) -> String {
        let mut name = format!("c{}_mb{}", self.clients, self.mb_per_client);
        if self.shards > 1 {
            name.push_str(&format!("_s{}", self.shards));
        }
        if self.cores > 1 {
            name.push_str(&format!("_cr{}", self.cores));
        }
        if self.lans {
            name.push_str("_lan");
        }
        name
    }

    fn to_json(&self) -> (String, String) {
        (
            self.name(),
            json::object(&[
                ("clients", self.clients.to_string()),
                ("mb_per_client", self.mb_per_client.to_string()),
                ("shards", self.shards.to_string()),
                ("cores", self.cores.to_string()),
                ("per_client_lans", self.lans.to_string()),
                ("wall_ms", json::number(self.wall_ms)),
                ("events_processed", self.events_processed.to_string()),
                (
                    "sim_aggregate_kb_per_sec",
                    json::number(self.sim_aggregate_kb_per_sec),
                ),
                ("sim_fairness", json::number(self.sim_fairness)),
                ("sim_elapsed_secs", json::number(self.sim_elapsed_secs)),
                ("evicted_in_progress", self.evicted_in_progress.to_string()),
            ]),
        )
    }
}

struct SweepAxes {
    shards: usize,
    cores: usize,
    lans: bool,
}

fn run_cell(clients: usize, mb_per_client: u64, axes: &SweepAxes) -> ScaleCell {
    let start = Instant::now();
    let mut system = MultiClientSystem::new(
        MultiClientConfig::new(NetworkKind::Fddi, clients, 4, WritePolicy::Gathering)
            .with_bytes_per_client(mb_per_client * 1024 * 1024)
            .with_shards(axes.shards)
            .with_cores(axes.cores)
            .with_per_client_lans(axes.lans),
    );
    let result = system.run();
    let wall = start.elapsed();
    assert!(
        result.completed,
        "{clients}x{mb_per_client}MB cell did not complete"
    );
    system
        .verify_on_disk()
        .expect("multi-client data integrity check failed");
    let evicted = system.server().dupcache_evicted_in_progress();
    assert_eq!(
        evicted, 0,
        "dupcache evicted an InProgress entry: a deferred gathered-write \
         reply could have been orphaned (§6.9)"
    );
    ScaleCell {
        clients,
        mb_per_client,
        shards: axes.shards,
        cores: axes.cores,
        lans: axes.lans,
        wall_ms: wall.as_secs_f64() * 1e3,
        events_processed: system.events_processed(),
        sim_aggregate_kb_per_sec: result.aggregate_kb_per_sec,
        sim_fairness: result.fairness,
        sim_elapsed_secs: result.elapsed_secs,
        evicted_in_progress: evicted,
    }
}

fn parse_list(s: &str) -> Vec<u64> {
    s.split(',')
        .map(|v| v.trim().parse().expect("comma-separated numbers"))
        .collect()
}

fn main() {
    let mut out_path = "BENCH_writepath.json".to_string();
    let mut clients: Vec<u64> = vec![1, 2, 4];
    let mut mb_per_client: Vec<u64> = vec![64, 256];
    let mut axes = SweepAxes {
        shards: 1,
        cores: 1,
        lans: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => out_path = iter.next().expect("--out needs a path"),
            "--smoke" => {
                clients = vec![2];
                mb_per_client = vec![1];
            }
            "--clients" => {
                clients = parse_list(&iter.next().expect("--clients needs a list"));
            }
            "--mb-per-client" => {
                mb_per_client = parse_list(&iter.next().expect("--mb-per-client needs a list"));
            }
            "--shards" => {
                axes.shards = iter
                    .next()
                    .expect("--shards needs a count")
                    .parse()
                    .expect("--shards needs a number");
            }
            "--cores" => {
                axes.cores = iter
                    .next()
                    .expect("--cores needs a count")
                    .parse()
                    .expect("--cores needs a number");
            }
            "--lans" => axes.lans = true,
            other => panic!(
                "unknown argument {other}; use --smoke, --out PATH, \
                 --clients A,B,C, --mb-per-client A,B,C, --shards N, \
                 --cores N, --lans"
            ),
        }
    }

    let mut cells = Vec::new();
    for &c in &clients {
        for &mb in &mb_per_client {
            let aggregate_mb = c * mb;
            if aggregate_mb > 1024 {
                println!("skipping {c} clients x {mb} MB ({aggregate_mb} MB aggregate > 1 GB cap)");
                continue;
            }
            let cell = run_cell(c as usize, mb, &axes);
            println!(
                "{:<16} {:>9.1} ms wall   {:>9} events   sim {:>8.0} KB/s aggregate   \
                 fairness {:.3}   {:>7.1} sim-secs",
                cell.name(),
                cell.wall_ms,
                cell.events_processed,
                cell.sim_aggregate_kb_per_sec,
                cell.sim_fairness,
                cell.sim_elapsed_secs,
            );
            cells.push(cell);
        }
    }

    // Merge cell-by-cell into the existing "scale" object so cells from
    // earlier sweeps (other shard counts, other client axes) are preserved.
    let previous = std::fs::read_to_string(&out_path).unwrap_or_default();
    let mut scale = extract_object(&previous, "scale").unwrap_or_else(|| "{}".to_string());
    for cell in &cells {
        let (name, value) = cell.to_json();
        scale = upsert_object(&scale, &name, &value);
        scale = scale.trim_end().to_string();
    }
    let report = upsert_object(&previous, "scale", &scale);
    std::fs::write(&out_path, report).expect("write report");
    println!("wrote {out_path}");
}
