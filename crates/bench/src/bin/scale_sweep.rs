//! Multi-client scale-out sweep: clients × per-client file size, up to a
//! 1 GB aggregate, against one shared server and medium.
//!
//! Each cell runs a [`wg_workload::MultiClientSystem`], verifies the data
//! landed correctly (every block carries its writer's salted fill byte), and
//! records wall-clock plus the simulated aggregate/fairness numbers.  The
//! results are merged into `BENCH_writepath.json` under the `"scale"` key so
//! the perf trajectory file carries the multi-client story alongside the
//! single-client cells.
//!
//! ```text
//! cargo run --release -p wg-bench --bin scale_sweep              # full sweep
//! cargo run --release -p wg-bench --bin scale_sweep -- --smoke   # CI: 2 clients, small files
//! cargo run --release -p wg-bench --bin scale_sweep -- --out other.json
//! ```

use std::time::Instant;

use wg_bench::report::upsert_object;
use wg_server::WritePolicy;
use wg_workload::results::json;
use wg_workload::{MultiClientConfig, MultiClientSystem, NetworkKind};

/// One timed sweep cell.
struct ScaleCell {
    clients: usize,
    mb_per_client: u64,
    wall_ms: f64,
    events_processed: u64,
    sim_aggregate_kb_per_sec: f64,
    sim_fairness: f64,
    sim_elapsed_secs: f64,
}

impl ScaleCell {
    fn name(&self) -> String {
        format!("c{}_mb{}", self.clients, self.mb_per_client)
    }

    fn to_json(&self) -> (String, String) {
        (
            self.name(),
            json::object(&[
                ("clients", self.clients.to_string()),
                ("mb_per_client", self.mb_per_client.to_string()),
                ("wall_ms", json::number(self.wall_ms)),
                ("events_processed", self.events_processed.to_string()),
                (
                    "sim_aggregate_kb_per_sec",
                    json::number(self.sim_aggregate_kb_per_sec),
                ),
                ("sim_fairness", json::number(self.sim_fairness)),
                ("sim_elapsed_secs", json::number(self.sim_elapsed_secs)),
            ]),
        )
    }
}

fn run_cell(clients: usize, mb_per_client: u64) -> ScaleCell {
    let start = Instant::now();
    let mut system = MultiClientSystem::new(
        MultiClientConfig::new(NetworkKind::Fddi, clients, 4, WritePolicy::Gathering)
            .with_bytes_per_client(mb_per_client * 1024 * 1024),
    );
    let result = system.run();
    let wall = start.elapsed();
    assert!(
        result.completed,
        "{clients}x{mb_per_client}MB cell did not complete"
    );
    system
        .verify_on_disk()
        .expect("multi-client data integrity check failed");
    ScaleCell {
        clients,
        mb_per_client,
        wall_ms: wall.as_secs_f64() * 1e3,
        events_processed: system.events_processed(),
        sim_aggregate_kb_per_sec: result.aggregate_kb_per_sec,
        sim_fairness: result.fairness,
        sim_elapsed_secs: result.elapsed_secs,
    }
}

fn parse_list(s: &str) -> Vec<u64> {
    s.split(',')
        .map(|v| v.trim().parse().expect("comma-separated numbers"))
        .collect()
}

fn main() {
    let mut out_path = "BENCH_writepath.json".to_string();
    let mut clients: Vec<u64> = vec![1, 2, 4];
    let mut mb_per_client: Vec<u64> = vec![64, 256];
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => out_path = iter.next().expect("--out needs a path"),
            "--smoke" => {
                clients = vec![2];
                mb_per_client = vec![1];
            }
            "--clients" => {
                clients = parse_list(&iter.next().expect("--clients needs a list"));
            }
            "--mb-per-client" => {
                mb_per_client = parse_list(&iter.next().expect("--mb-per-client needs a list"));
            }
            other => panic!(
                "unknown argument {other}; use --smoke, --out PATH, \
                 --clients A,B,C, --mb-per-client A,B,C"
            ),
        }
    }

    let mut cells = Vec::new();
    for &c in &clients {
        for &mb in &mb_per_client {
            let aggregate_mb = c * mb;
            if aggregate_mb > 1024 {
                println!("skipping {c} clients x {mb} MB ({aggregate_mb} MB aggregate > 1 GB cap)");
                continue;
            }
            let cell = run_cell(c as usize, mb);
            println!(
                "{:<12} {:>9.1} ms wall   {:>9} events   sim {:>8.0} KB/s aggregate   \
                 fairness {:.3}   {:>7.1} sim-secs",
                cell.name(),
                cell.wall_ms,
                cell.events_processed,
                cell.sim_aggregate_kb_per_sec,
                cell.sim_fairness,
                cell.sim_elapsed_secs,
            );
            cells.push(cell);
        }
    }

    let fields: Vec<(String, String)> = cells.iter().map(|c| c.to_json()).collect();
    let borrowed: Vec<(&str, String)> = fields
        .iter()
        .map(|(k, v)| (k.as_str(), v.clone()))
        .collect();
    let scale = json::object(&borrowed);
    let previous = std::fs::read_to_string(&out_path).unwrap_or_default();
    let report = upsert_object(&previous, "scale", &scale);
    std::fs::write(&out_path, report).expect("write report");
    println!("wrote {out_path}");
}
