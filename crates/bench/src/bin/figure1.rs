//! Regenerate Figure 1: the side-by-side timeline of a standard server and a
//! gathering server handling a 4-biod sequential writer over FDDI.
//!
//! ```text
//! cargo run --release -p wg-bench --bin figure1
//! cargo run --release -p wg-bench --bin figure1 -- --kb 256   # shorter trace
//! ```

use wg_server::WritePolicy;
use wg_simcore::TraceKind;
use wg_workload::{ExperimentConfig, FileCopySystem, NetworkKind};

fn main() {
    let mut kb: u64 = 512;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--kb" => kb = iter.next().and_then(|v| v.parse().ok()).unwrap_or(512),
            other => panic!("unknown argument {other}; use --kb N"),
        }
    }
    println!("Figure 1. Write Gathering NFS Server Comparison");
    println!("(sequential file writer, 4 biods, FDDI, RZ26 disk; first {kb} KB of the copy)\n");
    for (name, policy) in [
        ("STANDARD SERVER", WritePolicy::Standard),
        ("GATHERING SERVER", WritePolicy::Gathering),
    ] {
        let mut system = FileCopySystem::new(
            ExperimentConfig::new(NetworkKind::Fddi, 4, policy)
                .with_file_size(kb * 1024)
                .with_trace(true),
        );
        let result = system.run();
        println!("==== {name} ====");
        // Print the first part of the trace, like the figure's excerpt.
        let trace = system.trace();
        let mut lines = 0;
        for event in trace.events() {
            let interesting = matches!(
                event.kind,
                TraceKind::RequestArrived
                    | TraceKind::DataToDisk
                    | TraceKind::MetadataToDisk
                    | TraceKind::ReplySent
                    | TraceKind::Procrastinate
                    | TraceKind::ReplyDeferred
            );
            if interesting {
                println!(
                    "{:>10.3} ms  {:<18} {}",
                    event.at.as_millis_f64(),
                    format!("{:?}", event.kind),
                    event.detail
                );
                lines += 1;
                if lines >= 60 {
                    println!("  ... (trace truncated)");
                    break;
                }
            }
        }
        println!(
            "\nsummary: {:.0} KB/s client write speed, {:.0} disk transactions/s, \
             {:.1} writes gathered per metadata update\n",
            result.client_write_kb_per_sec,
            result.disk_trans_per_sec,
            result.mean_batch_size.max(1.0),
        );
    }
}
